"""Additional SFQ queue coverage: weight dynamics, float ties, removal."""

from fractions import Fraction

import pytest

from repro.core.sfq import SfqQueue
from repro.core.tags import TagMath
from repro.errors import SchedulingError


class Entity:
    def __init__(self, name, weight=1):
        self.name = name
        self.weight = weight

    def __repr__(self):
        return "E(%s)" % self.name


class TestWeightDynamics:
    def test_weight_increase_slows_tag_growth(self):
        queue = SfqQueue()
        e = Entity("e", 1)
        queue.add(e)
        queue.set_runnable(e)
        queue.pick()
        queue.charge(e, 10)          # F = 10
        e.weight = 10
        queue.pick()
        queue.charge(e, 10)          # F = 10 + 1
        assert queue.finish_tag(e) == Fraction(11)

    def test_figure11_style_ratio_shift(self):
        queue = SfqQueue()
        a, b = Entity("a", 4), Entity("b", 4)
        for e in (a, b):
            queue.add(e)
            queue.set_runnable(e)
        served = {a: 0, b: 0}
        for __ in range(100):
            e = queue.pick()
            served[e] += 1
            queue.charge(e, 10)
        assert served[a] == served[b]
        # now a doubles its weight: from here it gets 2x
        a.weight = 8
        served = {a: 0, b: 0}
        for __ in range(300):
            e = queue.pick()
            served[e] += 1
            queue.charge(e, 10)
        assert served[a] == pytest.approx(2 * served[b], abs=2)


class TestRemovalPaths:
    def test_remove_after_block_allows_reuse(self):
        queue = SfqQueue()
        e = Entity("e")
        queue.add(e)
        queue.set_runnable(e)
        queue.pick()
        queue.charge(e, 5)
        queue.set_blocked(e)
        queue.remove(e)
        # re-adding starts from a clean record (finish tag 0)
        queue.add(e)
        assert queue.finish_tag(e) == 0

    def test_stale_heap_entries_ignored_after_remove(self):
        queue = SfqQueue()
        a, b = Entity("a"), Entity("b")
        queue.add(a)
        queue.add(b)
        queue.set_runnable(a)
        queue.set_runnable(b)
        queue.set_blocked(a)
        queue.remove(a)
        assert queue.pick() is b

    def test_charge_unknown_entity_rejected(self):
        queue = SfqQueue()
        with pytest.raises(SchedulingError):
            queue.charge(Entity("ghost"), 1)


class TestFloatModeDeterminism:
    def test_ties_resolved_by_arrival_order(self):
        queue = SfqQueue(TagMath(exact=False))
        entities = [Entity(str(i)) for i in range(5)]
        for e in entities:
            queue.add(e)
            queue.set_runnable(e)
        order = []
        for __ in range(5):
            e = queue.pick()
            order.append(e.name)
            queue.charge(e, 7)
        assert order == ["0", "1", "2", "3", "4"]

    def test_float_and_exact_agree_on_simple_script(self):
        def run(exact):
            queue = SfqQueue(TagMath(exact=exact))
            a, b = Entity("a", 2), Entity("b", 3)
            for e in (a, b):
                queue.add(e)
                queue.set_runnable(e)
            order = []
            for __ in range(20):
                e = queue.pick()
                order.append(e.name)
                queue.charge(e, 6)
            return order

        assert run(True) == run(False)


class TestIdleTransitions:
    def test_multiple_idle_periods_keep_monotone_v(self):
        queue = SfqQueue()
        e = Entity("e")
        queue.add(e)
        v_values = [queue.virtual_time]
        for round_index in range(5):
            queue.set_runnable(e)
            queue.pick()
            queue.charge(e, 10)
            queue.set_blocked(e)
            v_values.append(queue.virtual_time)
        assert v_values == sorted(v_values)
        assert queue.virtual_time == 50

    def test_runnable_count_tracks(self):
        queue = SfqQueue()
        entities = [Entity(str(i)) for i in range(3)]
        for e in entities:
            queue.add(e)
        assert queue.runnable_count == 0
        for index, e in enumerate(entities):
            queue.set_runnable(e)
            assert queue.runnable_count == index + 1
        queue.set_blocked(entities[0])
        assert queue.runnable_count == 2
