"""Mutexes and weight-donation priority-inversion avoidance (paper §4)."""

import pytest

from repro.errors import SchedulingError
from repro.sync.mutex import Acquire, Release, SimMutex
from repro.threads.segments import Compute, SegmentListWorkload, SleepFor
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.units import MS, SECOND

from tests.conftest import Harness

KILO = 1000


def make_thread(name="t", weight=1):
    return SimThread(name, SegmentListWorkload([]), weight=weight)


class TestMutexUnit:
    def test_uncontended_acquire(self):
        mutex = SimMutex("m")
        t = make_thread()
        assert mutex.try_acquire(t)
        assert mutex.locked
        assert mutex.holder is t

    def test_contended_acquire_returns_false(self):
        mutex = SimMutex("m")
        a, b = make_thread("a"), make_thread("b")
        mutex.try_acquire(a)
        assert not mutex.try_acquire(b)

    def test_reentrant_acquire_rejected(self):
        mutex = SimMutex("m")
        t = make_thread()
        mutex.try_acquire(t)
        with pytest.raises(SchedulingError):
            mutex.try_acquire(t)

    def test_release_grants_fifo(self):
        mutex = SimMutex("m")
        a, b, c = make_thread("a"), make_thread("b"), make_thread("c")
        mutex.try_acquire(a)
        mutex.enqueue_waiter(b)
        mutex.enqueue_waiter(c)
        assert mutex.release(a) is b
        assert mutex.release(b) is c
        assert mutex.release(c) is None
        assert not mutex.locked

    def test_release_by_non_holder_rejected(self):
        mutex = SimMutex("m")
        a, b = make_thread("a"), make_thread("b")
        mutex.try_acquire(a)
        with pytest.raises(SchedulingError):
            mutex.release(b)

    def test_donation_boosts_holder(self):
        mutex = SimMutex("m", donate_weight=True)
        holder = make_thread("h", weight=1)
        waiter = make_thread("w", weight=9)
        mutex.try_acquire(holder)
        mutex.enqueue_waiter(waiter)
        assert holder.weight == 10

    def test_donation_withdrawn_on_release(self):
        mutex = SimMutex("m", donate_weight=True)
        holder = make_thread("h", weight=1)
        waiter = make_thread("w", weight=9)
        mutex.try_acquire(holder)
        mutex.enqueue_waiter(waiter)
        granted = mutex.release(holder)
        assert holder.weight == 1
        assert granted is waiter
        assert waiter.weight == 9  # no self-donation

    def test_donation_restacks_on_new_holder(self):
        mutex = SimMutex("m", donate_weight=True)
        holder = make_thread("h", weight=1)
        w1 = make_thread("w1", weight=4)
        w2 = make_thread("w2", weight=6)
        mutex.try_acquire(holder)
        mutex.enqueue_waiter(w1)
        mutex.enqueue_waiter(w2)
        assert holder.weight == 11
        granted = mutex.release(holder)
        assert holder.weight == 1
        assert granted is w1
        assert w1.weight == 10  # w2 now donates to w1

    def test_drop_waiter_returns_donation(self):
        mutex = SimMutex("m", donate_weight=True)
        holder = make_thread("h", weight=1)
        waiter = make_thread("w", weight=9)
        mutex.try_acquire(holder)
        mutex.enqueue_waiter(waiter)
        mutex.drop_waiter(waiter)
        assert holder.weight == 1
        assert not mutex.waiters


class TestMutexOnMachine:
    def test_critical_sections_serialize(self, harness):
        mutex = SimMutex("m")
        a = harness.spawn_segments("a", [Acquire(mutex), Compute(20 * KILO),
                                         Release(mutex)])
        b = harness.spawn_segments("b", [Acquire(mutex), Compute(20 * KILO),
                                         Release(mutex)])
        harness.machine.run_until(SECOND)
        # without the mutex, SFQ alternates a/b; with it, a finishes first
        from repro.trace.timeline import execution_order
        assert execution_order(harness.recorder, [a, b]) == ["a", "b"]
        assert a.stats.exited_at == 20 * MS
        assert b.stats.exited_at == 40 * MS

    def test_waiter_granted_on_release(self, harness):
        mutex = SimMutex("m")
        a = harness.spawn_segments(
            "a", [Acquire(mutex), Compute(5 * KILO), Release(mutex),
                  Compute(5 * KILO)])
        b = harness.spawn_segments(
            "b", [Acquire(mutex), Compute(5 * KILO), Release(mutex)])
        harness.machine.run_until(SECOND)
        assert a.state is ThreadState.EXITED
        assert b.state is ThreadState.EXITED
        assert not mutex.locked

    def test_exit_releases_held_mutex(self, harness):
        mutex = SimMutex("m")
        holder = harness.spawn_segments(
            "holder", [Acquire(mutex), Compute(KILO)])  # exits holding it
        waiter = harness.spawn_segments(
            "waiter", [Acquire(mutex), Compute(KILO), Release(mutex)])
        harness.machine.run_until(SECOND)
        assert holder.state is ThreadState.EXITED
        assert waiter.state is ThreadState.EXITED
        assert not mutex.locked

    def test_priority_inversion_without_donation(self, harness):
        """Classic inversion: a middle hog delays the high-weight thread."""
        mutex = SimMutex("m", donate_weight=False)
        # low acquires, computes slowly; high waits on the mutex; a hog
        # with large weight starves low, which starves high transitively.
        low = harness.spawn_segments(
            "low", [Acquire(mutex), Compute(50 * KILO), Release(mutex)],
            weight=1)
        hog = harness.spawn_dhrystone("hog", weight=8)
        high = harness.spawn_segments(
            "high", [SleepFor(1 * MS), Acquire(mutex), Compute(KILO),
                     Release(mutex)], weight=8)
        harness.machine.run_until(2 * SECOND)
        # low runs at 1/9 share: ~50 KILO takes ~450 ms; high inverted
        assert high.stats.exited_at > 300 * MS

    def test_priority_inversion_with_donation(self, harness):
        """Weight transfer bounds the inversion (paper §4's remedy)."""
        mutex = SimMutex("m", donate_weight=True)
        low = harness.spawn_segments(
            "low", [Acquire(mutex), Compute(50 * KILO), Release(mutex)],
            weight=1)
        hog = harness.spawn_dhrystone("hog", weight=8)
        high = harness.spawn_segments(
            "high", [SleepFor(1 * MS), Acquire(mutex), Compute(KILO),
                     Release(mutex)], weight=8)
        harness.machine.run_until(2 * SECOND)
        # low inherits high's weight (9 vs hog's 8): ~53% share, so the
        # critical section drains in ~100 ms instead of ~450 ms
        assert high.stats.exited_at < 200 * MS
        # donation fully withdrawn afterwards
        assert low.weight == 1
