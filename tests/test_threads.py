"""Thread model: states, segments, SimThread."""

import pytest

from repro.errors import SchedulingError, WorkloadError
from repro.threads.segments import (
    Compute,
    Exit,
    SegmentListWorkload,
    SleepFor,
    SleepUntil,
)
from repro.threads.states import ALLOWED_TRANSITIONS, ThreadState
from repro.threads.thread import SimThread


class TestSegments:
    def test_compute_requires_positive_work(self):
        with pytest.raises(WorkloadError):
            Compute(0)

    def test_sleepfor_rejects_negative(self):
        with pytest.raises(WorkloadError):
            SleepFor(-1)

    def test_sleepfor_zero_allowed(self):
        assert SleepFor(0).duration == 0

    def test_sleepuntil_past_allowed(self):
        # "wake immediately" semantics for overruns
        assert SleepUntil(-5).wakeup == -5

    def test_reprs(self):
        assert "Compute(5)" == repr(Compute(5))
        assert "SleepFor(7)" == repr(SleepFor(7))
        assert "SleepUntil(9)" == repr(SleepUntil(9))
        assert "Exit()" == repr(Exit())


class TestSegmentListWorkload:
    def test_replays_then_exits(self):
        wl = SegmentListWorkload([Compute(1), SleepFor(2)])
        thread = SimThread("t", wl)
        assert isinstance(wl.next_segment(0, thread), Compute)
        assert isinstance(wl.next_segment(0, thread), SleepFor)
        assert isinstance(wl.next_segment(0, thread), Exit)

    def test_reset_restarts(self):
        wl = SegmentListWorkload([Compute(1)])
        thread = SimThread("t", wl)
        wl.next_segment(0, thread)
        wl.reset()
        assert isinstance(wl.next_segment(0, thread), Compute)


class TestStates:
    def test_exited_is_terminal(self):
        assert ALLOWED_TRANSITIONS[ThreadState.EXITED] == set()

    def test_runnable_only_to_running(self):
        assert ALLOWED_TRANSITIONS[ThreadState.RUNNABLE] == {ThreadState.RUNNING}

    def test_sleeping_can_exit(self):
        # a workload may return Exit right after a sleep
        assert ThreadState.EXITED in ALLOWED_TRANSITIONS[ThreadState.SLEEPING]


class TestSimThread:
    def make(self) -> SimThread:
        return SimThread("worker", SegmentListWorkload([Compute(10)]),
                         weight=2, params={"period": 100})

    def test_initial_state_new(self):
        assert self.make().state is ThreadState.NEW

    def test_unique_tids(self):
        assert self.make().tid != self.make().tid

    def test_valid_transition(self):
        thread = self.make()
        thread.transition(ThreadState.RUNNABLE)
        assert thread.state is ThreadState.RUNNABLE

    def test_invalid_transition_raises(self):
        thread = self.make()
        with pytest.raises(SchedulingError):
            thread.transition(ThreadState.RUNNING)  # NEW -> RUNNING illegal

    def test_is_runnable(self):
        thread = self.make()
        assert not thread.is_runnable
        thread.transition(ThreadState.RUNNABLE)
        assert thread.is_runnable
        thread.transition(ThreadState.RUNNING)
        assert thread.is_runnable

    def test_alive_until_exit(self):
        thread = self.make()
        assert thread.alive
        thread.transition(ThreadState.RUNNABLE)
        thread.transition(ThreadState.RUNNING)
        thread.transition(ThreadState.EXITED)
        assert not thread.alive

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            SimThread("x", SegmentListWorkload([]), weight=0)

    def test_set_weight_validates(self):
        thread = self.make()
        thread.set_weight(5)
        assert thread.weight == 5
        with pytest.raises(ValueError):
            thread.set_weight(-1)

    def test_params_are_copied(self):
        params = {"period": 1}
        thread = SimThread("x", SegmentListWorkload([]), params=params)
        params["period"] = 2
        assert thread.params["period"] == 1

    def test_marker_bumping(self):
        thread = self.make()
        thread.stats.bump_marker("frames")
        thread.stats.bump_marker("frames", 2)
        assert thread.stats.markers["frames"] == 3
