"""FIFO, round-robin, and SFQ-leaf schedulers."""

import pytest

from repro.errors import SchedulingError
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.segments import Compute, SleepFor
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.trace.timeline import execution_order
from repro.units import MS, SECOND

from tests.conftest import FlatHarness

KILO = 1000


def make_thread(name="t", weight=1):
    from repro.threads.segments import SegmentListWorkload
    return SimThread(name, SegmentListWorkload([]), weight=weight)


class TestFifoUnit:
    def test_picks_in_arrival_order(self):
        sched = FifoScheduler()
        a, b = make_thread("a"), make_thread("b")
        for t in (a, b):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        assert sched.pick_next(0) is a
        sched.on_block(a, 0)
        assert sched.pick_next(0) is b

    def test_rejoin_at_tail(self):
        sched = FifoScheduler()
        a, b = make_thread("a"), make_thread("b")
        for t in (a, b):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        sched.on_block(a, 0)
        sched.on_runnable(a, 0)
        assert sched.pick_next(0) is b

    def test_unregistered_thread_rejected(self):
        sched = FifoScheduler()
        with pytest.raises(SchedulingError):
            sched.on_runnable(make_thread(), 0)

    def test_double_add_rejected(self):
        sched = FifoScheduler()
        t = make_thread()
        sched.add_thread(t)
        with pytest.raises(SchedulingError):
            sched.add_thread(t)

    def test_remove_runnable_thread(self):
        sched = FifoScheduler()
        t = make_thread()
        sched.add_thread(t)
        sched.on_runnable(t, 0)
        sched.remove_thread(t)
        assert not sched.has_runnable()

    def test_fifo_runs_to_block(self):
        harness = FlatHarness(FifoScheduler())
        a = harness.spawn_segments("a", [Compute(30 * KILO)])
        b = harness.spawn_segments("b", [Compute(10 * KILO)])
        harness.machine.run_until(SECOND)
        # a holds the CPU across quantum expiries until it finishes
        assert execution_order(harness.recorder, [a, b]) == ["a", "b"]


class TestRoundRobinUnit:
    def test_rotation_on_quantum_expiry(self):
        sched = RoundRobinScheduler()
        a, b = make_thread("a"), make_thread("b")
        for t in (a, b):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
            t.transition(ThreadState.RUNNABLE)
        assert sched.pick_next(0) is a
        sched.charge(a, 100, 0)  # still runnable -> rotate
        assert sched.pick_next(0) is b

    def test_blocked_thread_leaves_ring(self):
        sched = RoundRobinScheduler()
        a, b = make_thread("a"), make_thread("b")
        for t in (a, b):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        sched.on_block(a, 0)
        assert sched.pick_next(0) is b
        assert sched.has_runnable()

    def test_equal_time_slices(self):
        harness = FlatHarness(RoundRobinScheduler())
        a = harness.spawn_segments("a", [Compute(30 * KILO)])
        b = harness.spawn_segments("b", [Compute(30 * KILO)])
        harness.machine.run_until(SECOND)
        order = execution_order(harness.recorder, [a, b])
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_custom_quantum(self):
        sched = RoundRobinScheduler(quantum=5 * MS)
        t = make_thread()
        sched.add_thread(t)
        assert sched.quantum_for(t) == 5 * MS


class TestSfqLeafUnit:
    def test_remove_runnable_thread(self):
        sched = SfqScheduler()
        t = make_thread()
        sched.add_thread(t)
        sched.on_runnable(t, 0)
        sched.remove_thread(t)
        assert not sched.has_runnable()

    def test_custom_quantum(self):
        sched = SfqScheduler(quantum=7 * MS)
        t = make_thread()
        sched.add_thread(t)
        assert sched.quantum_for(t) == 7 * MS

    def test_proportional_share_on_machine(self):
        harness = FlatHarness(SfqScheduler())
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=3)
        harness.machine.run_until(2 * SECOND)
        assert b.stats.work_done == pytest.approx(3 * a.stats.work_done,
                                                  rel=0.02)

    def test_blocked_thread_gets_no_catchup(self):
        harness = FlatHarness(SfqScheduler())
        a = harness.spawn_dhrystone("a")
        b = harness.spawn_segments(
            "b", [SleepFor(500 * MS), Compute(100 * KILO)])
        harness.machine.run_until(SECOND)
        # b slept 500 ms; on waking it shares 50/50 from then on, with no
        # credit for the sleep: it gets ~250 KILO of the second half... but
        # its segment is only 100 KILO, so it finishes; a gets the rest.
        assert a.stats.work_done == pytest.approx(900 * KILO, rel=0.06)
