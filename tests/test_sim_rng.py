"""Seeded randomness streams."""

from repro.sim.rng import Stream, derive_seed, make_rng


class TestMakeRng:
    def test_deterministic_for_same_seed_and_label(self):
        a = make_rng(1, "x")
        b = make_rng(1, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_differ(self):
        a = make_rng(1, "x")
        b = make_rng(1, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = make_rng(1, "x")
        b = make_rng(2, "x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_default_label(self):
        assert make_rng(7).random() == make_rng(7).random()


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, "a") == derive_seed(3, "a")

    def test_label_and_seed_sensitivity(self):
        assert derive_seed(3, "a") != derive_seed(3, "b")
        assert derive_seed(3, "a") != derive_seed(4, "a")

    def test_make_rng_is_random_over_derived_seed(self):
        a = make_rng(9, "lbl")
        import random
        b = random.Random(derive_seed(9, "lbl"))
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


class TestStream:
    def test_root_rng_matches_make_rng(self):
        # Bit-compatibility contract: migrating a make_rng caller to a
        # root Stream must not change its draws.
        a = Stream(11).rng("mpeg/scene")
        b = make_rng(11, "mpeg/scene")
        assert [a.random() for _ in range(8)] == [b.random() for _ in range(8)]

    def test_substream_is_deterministic(self):
        a = Stream(5).substream("faults").rng("storm")
        b = Stream(5).substream("faults").rng("storm")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_substreams_do_not_collide(self):
        root = Stream(5)
        a = root.substream("faults").rng("x")
        b = root.substream("workload").rng("x")
        c = root.rng("x")
        draws = [[r.random() for _ in range(5)] for r in (a, b, c)]
        assert draws[0] != draws[1]
        assert draws[0] != draws[2]
        assert draws[1] != draws[2]

    def test_nested_substream_path(self):
        leaf = Stream(1).substream("campaign").substream("cell-3")
        assert leaf.path == "campaign/cell-3"
        assert leaf.seed == derive_seed(derive_seed(1, "campaign"), "cell-3")

    def test_equal_seeds_draw_identically_regardless_of_path(self):
        a = Stream(derive_seed(2, "k"), path="via-ctor")
        b = Stream(2).substream("k")
        assert a.rng("z").random() == b.rng("z").random()
