"""Seeded randomness streams."""

from repro.sim.rng import make_rng


class TestMakeRng:
    def test_deterministic_for_same_seed_and_label(self):
        a = make_rng(1, "x")
        b = make_rng(1, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_differ(self):
        a = make_rng(1, "x")
        b = make_rng(1, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = make_rng(1, "x")
        b = make_rng(2, "x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_default_label(self):
        assert make_rng(7).random() == make_rng(7).random()
