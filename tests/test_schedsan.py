"""Tests for SCHEDSAN, the opt-in runtime scheduler sanitizer.

The sanitizer is wired into ``Machine.__init__`` via
``repro.devtools.schedsan.maybe_wrap`` and activates when the
``REPRO_SCHEDSAN`` environment variable is set at machine-construction
time, so these tests monkeypatch the environment *before* building a
harness.
"""

import pytest

from repro.devtools import schedsan
from repro.devtools.schedsan import SchedsanError, SchedsanScheduler
from repro.errors import SchedulingError
from repro.schedulers.fifo import FifoScheduler
from repro.units import MS

from tests.conftest import FlatHarness, Harness, compute


@pytest.fixture
def sanitized(monkeypatch):
    """Enable SCHEDSAN for machines built inside the test."""
    monkeypatch.setenv(schedsan.ENV_ENABLE, "1")
    monkeypatch.delenv(schedsan.ENV_MODE, raising=False)


class TestEnablement:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(schedsan.ENV_ENABLE, raising=False)
        h = Harness()
        assert not isinstance(h.machine.scheduler, SchedsanScheduler)

    def test_zero_means_disabled(self, monkeypatch):
        monkeypatch.setenv(schedsan.ENV_ENABLE, "0")
        h = Harness()
        assert not isinstance(h.machine.scheduler, SchedsanScheduler)

    def test_env_enables_wrapper(self, sanitized):
        h = Harness()
        assert isinstance(h.machine.scheduler, SchedsanScheduler)

    def test_wrap_is_idempotent(self, sanitized):
        h = Harness()
        wrapped = schedsan.maybe_wrap(h.machine.scheduler)
        assert wrapped is h.machine.scheduler

    def test_wrapper_preserves_decision_depth(self, sanitized):
        h = Harness()
        assert h.machine.scheduler.decision_depth == \
            h.machine.scheduler.inner.decision_depth


class TestHealthyRuns:
    """A correct scheduler produces zero violations under the sanitizer."""

    def test_hierarchical_scenario_is_clean(self, sanitized):
        from repro.schedulers.sfq_leaf import SfqScheduler

        h = Harness()
        video = h.structure.mknod("/video", 2)
        decode = h.structure.mknod("/video/decode", 3,
                                   scheduler=SfqScheduler())
        h.spawn_dhrystone("app-a", weight=1)
        h.spawn_dhrystone("app-b", weight=2)
        h.spawn_segments("frames", [compute(50_000)] * 4, leaf=decode)
        h.machine.run_until(200 * MS)
        assert h.machine.scheduler.violations == []
        assert video.queue.virtual_time >= 0

    def test_blocking_workload_is_clean(self, sanitized):
        from repro.threads.segments import SleepFor

        h = Harness()
        h.spawn_segments("sleeper", [compute(10_000), SleepFor(5 * MS),
                                     compute(10_000)])
        h.spawn_dhrystone("background")
        h.machine.run_until(100 * MS)
        assert h.machine.scheduler.violations == []

    def test_flat_machine_is_clean(self, sanitized):
        h = FlatHarness(FifoScheduler())
        h.spawn_segments("a", [compute(30_000)])
        h.spawn_segments("b", [compute(30_000)])
        h.machine.run_until(100 * MS)
        assert h.machine.scheduler.violations == []


class _ForgetfulFifo(FifoScheduler):
    """Broken on purpose: drops wakeups on the floor."""

    algorithm = "forgetful-fifo"

    def on_runnable(self, thread, now):
        pass  # never enqueues -> lost wakeup


class _StickyFifo(FifoScheduler):
    """Broken on purpose: pick_next dequeues (contract forbids it)."""

    algorithm = "sticky-fifo"

    def pick_next(self, now):
        if self._ready:
            return self._ready.popleft()
        return None


class TestBrokenSchedulers:
    def test_lost_wakeup_is_caught(self, sanitized):
        h = FlatHarness(_ForgetfulFifo())
        with pytest.raises(SchedsanError) as excinfo:
            h.spawn_segments("victim", [compute(10_000)])
            h.machine.run_until(50 * MS)
        message = str(excinfo.value)
        assert "lost-wakeup" in message
        assert "victim" in message

    def test_pick_dequeue_is_caught(self, sanitized):
        h = FlatHarness(_StickyFifo())
        with pytest.raises(SchedsanError) as excinfo:
            h.spawn_segments("only", [compute(10_000)])
            h.machine.run_until(50 * MS)
        assert "pick" in str(excinfo.value)

    def test_violation_reports_node_path_and_time(self, sanitized):
        h = FlatHarness(_ForgetfulFifo())
        with pytest.raises(SchedsanError) as excinfo:
            h.spawn_segments("victim", [compute(10_000)])
            h.machine.run_until(50 * MS)
        message = str(excinfo.value)
        assert "SCHEDSAN[" in message
        assert "t=" in message and "ns" in message

    def test_schedsan_error_is_a_scheduling_error(self):
        assert issubclass(SchedsanError, SchedulingError)

    def test_negative_work_is_caught(self, sanitized):
        h = Harness()
        thread = h.spawn_dhrystone("t")
        with pytest.raises(SchedsanError) as excinfo:
            h.machine.scheduler.charge(thread, -5, 0)
        assert "negative" in str(excinfo.value)

    def test_double_charge_is_caught(self, sanitized):
        h = Harness()
        thread = h.spawn_dhrystone("t")
        # Spawning dispatches eagerly, so one charge settles that pick;
        # a second charge breaks "exactly one charge per dispatch".
        h.machine.scheduler.charge(thread, 100, 0)
        with pytest.raises(SchedsanError) as excinfo:
            h.machine.scheduler.charge(thread, 100, 0)
        assert "without a matching pick_next" in str(excinfo.value)


class TestDormantWeightInvariant:
    """Paper §3: weight changes while a node is dormant must not warp
    its tags.  The static twin of this rule is schedflow's SF204."""

    def _dormant_harness(self):
        """A sleeper on its own leaf (dormant at 5 ms) plus a busy
        background thread keeping the machine (and the sweeps) going."""
        from repro.schedulers.sfq_leaf import SfqScheduler
        from repro.threads.segments import SleepFor

        h = Harness()
        media = h.structure.mknod("/media", 1, scheduler=SfqScheduler())
        h.spawn_segments("sleeper", [compute(1_000), SleepFor(50 * MS),
                                     compute(1_000)], leaf=media)
        h.spawn_dhrystone("background")
        h.machine.run_until(5 * MS)  # sleeper blocked, /media dormant
        return h, media

    def test_sanctioned_dormant_weight_change_is_clean(self, sanitized):
        from repro.core.structure import ADMIN_SET_WEIGHT

        h, media = self._dormant_harness()
        # set_weight while dormant is fine: tags stay put, the new
        # weight takes effect at the next stamping
        h.structure.admin(media.node_id, ADMIN_SET_WEIGHT, 7)
        h.machine.run_until(100 * MS)
        assert h.machine.scheduler.violations == []

    def test_dormant_weight_warp_is_caught(self, sanitized):
        h, media = self._dormant_harness()
        # a buggy implementation stores the weight directly and eagerly
        # recomputes the dormant node's finish tag from it
        root_queue = h.structure.root.queue
        slot = root_queue.slot_of(media)
        arena = root_queue.arena
        assert not arena.run[slot], "test premise: leaf must be dormant"
        media.weight = 7  # schedflow: disable=SF204
        arena.fin[slot] = root_queue.tags.advance(arena.start[slot], 50_000, 7)
        with pytest.raises(SchedsanError) as excinfo:
            h.machine.run_until(100 * MS)
        message = str(excinfo.value)
        assert "dormant-weight-warp" in message
        assert "1 -> 7" in message

    def test_weight_change_while_runnable_is_clean(self, sanitized):
        from repro.core.structure import ADMIN_SET_WEIGHT

        h = Harness()
        h.spawn_dhrystone("worker")
        h.machine.run_until(5 * MS)
        h.structure.admin(h.leaf.node_id, ADMIN_SET_WEIGHT, 3)
        h.machine.run_until(50 * MS)
        assert h.machine.scheduler.violations == []


class TestCollectMode:
    def test_collect_mode_accumulates_instead_of_raising(self, monkeypatch):
        monkeypatch.setenv(schedsan.ENV_ENABLE, "1")
        monkeypatch.setenv(schedsan.ENV_MODE, "collect")
        h = FlatHarness(_ForgetfulFifo())
        h.spawn_segments("victim", [compute(10_000)])
        h.machine.run_until(50 * MS)  # must not raise
        violations = h.machine.scheduler.violations
        assert violations, "collect mode recorded nothing"
        assert any(v.rule == "lost-wakeup" for v in violations)
        assert all(v.time >= 0 for v in violations)

    def test_collected_violations_render_usefully(self, monkeypatch):
        monkeypatch.setenv(schedsan.ENV_ENABLE, "1")
        monkeypatch.setenv(schedsan.ENV_MODE, "collect")
        h = FlatHarness(_ForgetfulFifo())
        h.spawn_segments("victim", [compute(10_000)])
        h.machine.run_until(50 * MS)
        rendered = str(h.machine.scheduler.violations[0])
        assert rendered.startswith("SCHEDSAN[")
        assert "victim" in rendered
