"""Documentation coverage: every public item in the library is documented.

Deliverable (e) of the reproduction: doc comments on every public item.
This test walks every module under ``repro`` and asserts a docstring on
the module itself and on every public class, function, and method defined
there (names not starting with ``_``, excluding trivial dunder wiring).
"""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-export: documented at its definition site
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


class TestDocstringCoverage:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__ for module in iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in public_members(module):
                if not (obj.__doc__ or "").strip():
                    undocumented.append("%s.%s" % (module.__name__, name))
        assert undocumented == []

    def test_every_public_method_documented(self):
        """A method passes if it, or the base-class method it overrides,
        carries a docstring — interface contracts are documented once, on
        the base (e.g. LeafScheduler, TopScheduler, Workload)."""
        undocumented = []
        for module in iter_modules():
            for cls_name, cls in public_members(module):
                if not inspect.isclass(cls):
                    continue
                for name, member in vars(cls).items():
                    if name.startswith("_"):
                        continue
                    func = None
                    if inspect.isfunction(member):
                        func = member
                    elif isinstance(member, property):
                        func = member.fget
                    if func is None:
                        continue
                    if (func.__doc__ or "").strip():
                        continue
                    if self._inherited_doc(cls, name):
                        continue
                    undocumented.append(
                        "%s.%s.%s" % (module.__name__, cls_name, name))
        assert undocumented == []

    @staticmethod
    def _inherited_doc(cls, name):
        for base in cls.__mro__[1:]:
            member = vars(base).get(name)
            func = None
            if inspect.isfunction(member):
                func = member
            elif isinstance(member, property):
                func = member.fget
            if func is not None and (func.__doc__ or "").strip():
                return True
        return False
