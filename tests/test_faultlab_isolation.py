"""Worker-crash containment and the SCHEDSAN isolation twin.

The static SF4xx rules promise that pooled campaign workers neither
depend on nor dirty shared process state; ``IsolationGuard`` is the
runtime twin of that promise, and ``run_cell_guarded`` is the crash
barrier that turns a dead worker into a structured oracle failure
instead of a half-written report.
"""

import random
import sys

import pytest

from repro.devtools import schedsan
from repro.devtools.schedsan import (
    IsolationError,
    IsolationGuard,
    shared_state_fingerprint,
)
from repro.faultlab import cli as faultlab_cli
from repro.faultlab.campaign import (
    CellSpec,
    render_report,
    run_campaign,
    run_cell_guarded,
)
from repro.faultlab.faults import FAULTS, ensure_registered
from repro.obs.events import BUS


def _spec(workload="flat_mix", faults=(), seed=1, cell_id="test-cell"):
    return CellSpec(workload, list(faults), seed, True, cell_id)


def _crash_spec(cell_id="crash-cell"):
    """A spec whose cell dies before producing a result."""
    return _spec(workload="no-such-workload", cell_id=cell_id)


class TestWorkerCrash:
    def test_crash_becomes_structured_failure(self):
        result = run_cell_guarded(_crash_spec().to_dict())
        assert result["ok"] is False
        assert [f["oracle"] for f in result["failures"]] == ["worker-crash"]
        assert "KeyError" in result["failures"][0]["message"]
        assert set(result["counters"]) == {
            "events", "dispatches", "interrupts", "injections",
            "violations", "threads_alive"}
        assert all(v == 0 for v in result["counters"].values())

    def test_crash_digest_is_deterministic(self):
        first = run_cell_guarded(_crash_spec().to_dict())
        second = run_cell_guarded(_crash_spec().to_dict())
        assert first == second

    def test_crash_cell_report_serial_equals_pooled(self):
        specs = [_spec(cell_id="flat_mix+none"), _crash_spec()]
        serial = render_report(run_campaign(specs, workers=0, seed=5))
        pooled = render_report(run_campaign(specs, workers=2, seed=5))
        assert serial == pooled
        assert '"worker-crash"' in serial

    def test_crash_counts_as_a_failure(self):
        report = run_campaign([_crash_spec()], workers=0, seed=5)
        assert report["failure_count"] == 1
        assert report["cell_count"] == 1

    def test_cli_skips_shrinking_crash_cells(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.setattr(faultlab_cli._campaign, "default_grid",
                            lambda *args, **kwargs: [_crash_spec()])
        code = faultlab_cli.main([
            "run", "--out", str(tmp_path / "report.json"),
            "--repro-dir", str(tmp_path / "repros")])
        out = capsys.readouterr().out
        assert code == 1
        assert "crash-cell crashed; skipping shrink" in out
        assert "shrunk" not in out
        # The unshrunk spec still gets a reproducer.
        assert list((tmp_path / "repros").glob("*.json"))


class TestIsolationGuard:
    def test_clean_boundary_verifies(self):
        guard = IsolationGuard("noop")
        guard.verify()

    def test_fingerprint_is_stable(self):
        assert shared_state_fingerprint() == shared_state_fingerprint()

    def test_leaked_subscriber_is_reported(self):
        guard = IsolationGuard("leaky cell")
        with BUS.subscription(lambda event: None):
            with pytest.raises(IsolationError, match="BUS.subscribers"):
                guard.verify()
        guard.verify()  # clean again once the subscription unwinds

    def test_fault_registry_growth_is_reported(self):
        guard = IsolationGuard("registering cell")
        FAULTS["zz-isolation-probe"] = object
        try:
            with pytest.raises(IsolationError, match="FAULTS"):
                guard.verify()
        finally:
            del FAULTS["zz-isolation-probe"]
        guard.verify()

    def test_global_rng_use_is_reported(self):
        guard = IsolationGuard("rng cell")
        random.random()  # schedlint: disable=SF403 (the violation under test)
        with pytest.raises(IsolationError, match="random.global_state"):
            guard.verify()

    def test_error_names_the_context(self):
        guard = IsolationGuard("cell flat_mix+none")
        FAULTS["zz-isolation-probe"] = object
        try:
            with pytest.raises(IsolationError,
                               match="cell flat_mix\\+none"):
                guard.verify()
        finally:
            del FAULTS["zz-isolation-probe"]


class TestSchedsanTwin:
    def _grid(self):
        ensure_registered("cost-spike")
        return [
            _spec(cell_id="flat_mix+none"),
            _spec(faults=[{"kind": "cost-spike", "params": {}}],
                  cell_id="flat_mix+cost-spike"),
        ]

    def test_report_bytes_unchanged_under_twin(self, monkeypatch):
        monkeypatch.delenv(schedsan.ENV_ENABLE, raising=False)
        baseline = render_report(run_campaign(self._grid(), seed=3))
        monkeypatch.setenv(schedsan.ENV_ENABLE, "1")
        assert schedsan.enabled()
        guarded = render_report(run_campaign(self._grid(), seed=3))
        assert guarded == baseline

    def test_pooled_twin_matches_serial_baseline(self, monkeypatch):
        monkeypatch.delenv(schedsan.ENV_ENABLE, raising=False)
        baseline = render_report(run_campaign(self._grid(), seed=3))
        monkeypatch.setenv(schedsan.ENV_ENABLE, "1")
        pooled = render_report(
            run_campaign(self._grid(), workers=2, seed=3))
        assert pooled == baseline

    def test_lazy_fault_registration_is_not_a_leak(self, monkeypatch):
        """Selftest kinds register during the run; pre-registration keeps
        the guard from mistaking that import-time effect for a leak."""
        monkeypatch.setenv(schedsan.ENV_ENABLE, "1")
        # Force the lazy path regardless of test order: registration is
        # an import-time effect, so evict the module along with the kind.
        sys.modules.pop("repro.faultlab.selftest", None)
        FAULTS.pop("selftest-double-charge", None)
        spec = _spec(
            faults=[{"kind": "selftest-double-charge", "params": {}}],
            cell_id="flat_mix+selftest-double-charge")
        report = run_campaign([spec], seed=1)
        cell = report["cells"][0]
        # The selftest fault is *supposed* to trip its oracle; the point
        # here is that it fails through oracles, not IsolationError.
        assert [f["oracle"] for f in cell["failures"]] != ["worker-crash"]

    def test_crash_containment_under_twin(self, monkeypatch):
        monkeypatch.setenv(schedsan.ENV_ENABLE, "1")
        result = run_cell_guarded(_crash_spec().to_dict())
        assert [f["oracle"] for f in result["failures"]] == ["worker-crash"]
