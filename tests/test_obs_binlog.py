"""The binary trace codec: writer, reader, and bus integration."""

import io

import pytest

from repro.obs import events as ev
from repro.obs.binlog import (
    BinaryTraceReader,
    BinaryTraceWriter,
    BinlogError,
    read_events,
    replay,
    write_events,
)
from repro.obs.events import Event, EventBus

MIXED_EVENTS = [
    Event("dispatch", 10, {"tid": 1, "name": "mpeg", "node": "/a/b",
                           "cpu": 0, "depth": 2, "switched": True,
                           "overhead_ns": 200, "quantum_work": 1000}),
    Event("dispatch", 25, {"tid": 2, "name": "x", "node": "/a", "cpu": 0,
                           "depth": 1, "switched": False, "overhead_ns": 0,
                           "quantum_work": 900}),
    # type drift: switched becomes int -> generic-record fallback
    Event("dispatch", 30, {"tid": 3, "name": "y", "node": "/a", "cpu": 0,
                           "depth": 1, "switched": 1, "overhead_ns": 0,
                           "quantum_work": 900}),
    # shape drift: extra field -> second schema for the same kind
    Event("dispatch", 31, {"tid": 3, "name": "y", "node": "/a", "cpu": 0,
                           "depth": 1, "switched": True, "overhead_ns": 0,
                           "quantum_work": 900, "extra": None}),
    # int beyond the fast path's fixed-width field -> generic fallback
    Event("tag-update", 40, {"node": "/a", "start": 1.5, "finish": 2.5,
                             "work": 1 << 80}),
    Event("tag-update", 41, {"node": "/a", "start": 1.5, "finish": 2.5,
                             "work": 100}),
    # the fairqueue 5-field tag-update shape
    Event("tag-update", 42, {"node": "/a", "tid": 7, "start": 1.5,
                             "finish": 2.5, "work": 100}),
    # time going backwards (negative delta)
    Event("vtime-advance", 5, {"node": "/", "v": 0.25}),
    Event("weird", 5, {"n": None, "t": True, "f": False, "neg": -12345,
                       "s": "hello", "fl": -0.0}),
    # first schema again: fast path resumes after the fallbacks
    Event("dispatch", 50, {"tid": 1, "name": "mpeg", "node": "/a/b",
                           "cpu": 0, "depth": 2, "switched": False,
                           "overhead_ns": 0, "quantum_work": 1000}),
]


def sealed_bytes(events, defer=False):
    buffer = io.BytesIO()
    writer = BinaryTraceWriter(buffer, defer=defer)
    for event in events:
        writer(event)
    writer.close()
    return buffer.getvalue()


class TestRoundTrip:
    def test_mixed_stream_roundtrips_losslessly(self):
        raw = sealed_bytes(MIXED_EVENTS)
        out = list(read_events(io.BytesIO(raw)))
        assert len(out) == len(MIXED_EVENTS)
        for original, decoded in zip(MIXED_EVENTS, out):
            assert original.kind == decoded.kind
            assert original.time == decoded.time
            assert original.data == decoded.data

    def test_value_types_survive_exactly(self):
        raw = sealed_bytes(MIXED_EVENTS)
        for original, decoded in zip(MIXED_EVENTS,
                                     read_events(io.BytesIO(raw))):
            for key in original.data:
                assert type(original.data[key]) is type(decoded.data[key]), (
                    original.kind, key)

    def test_field_insertion_order_is_canonicalized_not_lost(self):
        # same keys, different dict order -> same schema, equal dicts back
        first = Event("k", 1, {"a": 1, "b": 2})
        second = Event("k", 2, {"b": 20, "a": 10})
        out = list(read_events(io.BytesIO(sealed_bytes([first, second]))))
        assert out[0].data == {"a": 1, "b": 2}
        assert out[1].data == {"a": 10, "b": 20}

    def test_empty_log_roundtrips(self):
        buffer = io.BytesIO()
        assert write_events([], buffer) == 0
        assert list(read_events(io.BytesIO(buffer.getvalue()))) == []

    def test_write_events_returns_count(self):
        buffer = io.BytesIO()
        assert write_events(MIXED_EVENTS, buffer) == len(MIXED_EVENTS)

    def test_replay_feeds_subscribers_in_order(self):
        raw = sealed_bytes(MIXED_EVENTS)
        seen = []
        count = replay(io.BytesIO(raw),
                       lambda event: seen.append(event.kind))
        assert count == len(MIXED_EVENTS)
        assert seen == [event.kind for event in MIXED_EVENTS]


class TestWriterModes:
    def test_deferred_and_streaming_bytes_are_identical(self):
        assert sealed_bytes(MIXED_EVENTS, defer=True) == \
            sealed_bytes(MIXED_EVENTS, defer=False)

    def test_deferred_mode_encodes_nothing_until_close(self):
        buffer = io.BytesIO()
        writer = BinaryTraceWriter(buffer, defer=True)
        for event in MIXED_EVENTS:
            writer(event)
        writer._flush()
        header_only = buffer.getvalue()
        assert len(header_only) == 5  # magic + version, no event bytes
        writer.close()
        assert list(read_events(io.BytesIO(buffer.getvalue())))

    def test_deferred_mode_withholds_the_raw_table(self):
        assert BinaryTraceWriter(io.BytesIO(), defer=True).raw_encoders \
            is None
        writer = BinaryTraceWriter(io.BytesIO())
        assert writer.raw_encoders is writer._hot

    def test_event_count_tracks_both_modes(self):
        for defer in (False, True):
            writer = BinaryTraceWriter(io.BytesIO(), defer=defer)
            for event in MIXED_EVENTS:
                writer(event)
            writer.close()
            assert writer.event_count == len(MIXED_EVENTS)

    def test_close_is_idempotent(self):
        buffer = io.BytesIO()
        writer = BinaryTraceWriter(buffer)
        writer(MIXED_EVENTS[0])
        writer.close()
        sealed = buffer.getvalue()
        writer.close()
        assert buffer.getvalue() == sealed

    def test_context_manager_seals(self):
        buffer = io.BytesIO()
        with BinaryTraceWriter(buffer) as writer:
            writer(MIXED_EVENTS[0])
        assert len(list(read_events(io.BytesIO(buffer.getvalue())))) == 1

    def test_path_open_and_close(self, tmp_path):
        path = tmp_path / "run.binlog"
        with BinaryTraceWriter(str(path)) as writer:
            for event in MIXED_EVENTS:
                writer(event)
        reader = BinaryTraceReader(str(path))
        assert len(reader) == len(MIXED_EVENTS)

    def test_unencodable_value_raises_and_keeps_log_valid(self):
        buffer = io.BytesIO()
        writer = BinaryTraceWriter(buffer)
        writer(MIXED_EVENTS[0])
        with pytest.raises(TypeError):
            writer(Event("bad", 60, {"payload": [1, 2, 3]}))
        writer(MIXED_EVENTS[-1])
        writer.close()
        out = list(read_events(io.BytesIO(buffer.getvalue())))
        assert [event.time for event in out] == [10, 50]


class TestRejection:
    def test_every_truncation_is_rejected(self):
        raw = sealed_bytes(MIXED_EVENTS)
        for cut in range(len(raw)):
            with pytest.raises(BinlogError):
                BinaryTraceReader(io.BytesIO(raw[:cut]))

    def test_every_single_byte_corruption_is_rejected(self):
        # the footer hash covers every preceding byte; flips inside the
        # hash or count fields trip their own checks
        raw = sealed_bytes(MIXED_EVENTS[:3])
        for index in range(len(raw)):
            mutated = bytearray(raw)
            mutated[index] ^= 0xFF
            with pytest.raises(BinlogError):
                BinaryTraceReader(io.BytesIO(bytes(mutated)))

    def test_unsealed_stream_is_rejected(self):
        buffer = io.BytesIO()
        writer = BinaryTraceWriter(buffer)
        writer(MIXED_EVENTS[0])
        writer._flush()  # bytes on disk, but no footer
        with pytest.raises(BinlogError):
            BinaryTraceReader(io.BytesIO(buffer.getvalue()))

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            BinaryTraceReader(str(tmp_path / "nope.binlog"))


class TestInfo:
    def test_info_summarizes_the_log(self):
        reader = BinaryTraceReader(io.BytesIO(sealed_bytes(MIXED_EVENTS)))
        info = reader.info()
        assert info["format"] == "repro.binlog/1"
        assert info["events"] == len(MIXED_EVENTS)
        assert info["kinds"]["dispatch"] == 5
        assert info["time_first_ns"] == 10
        assert info["time_last_ns"] == 50
        assert info["strings"] > 0 and info["schemas"] >= 3

    def test_len_matches_event_count(self):
        reader = BinaryTraceReader(io.BytesIO(sealed_bytes(MIXED_EVENTS)))
        assert len(reader) == len(MIXED_EVENTS)
        assert len(list(reader)) == len(MIXED_EVENTS)


class TestBusIntegration:
    """The raw-consumer protocol must never change what gets written."""

    def emit_all(self, bus):
        for event in MIXED_EVENTS:
            bus.emit(event.kind, event.time, **event.data)

    def test_sole_subscriber_uses_raw_table(self):
        bus = EventBus()
        writer = BinaryTraceWriter(io.BytesIO())
        bus.subscribe(writer)
        assert bus._raw is not None
        assert bus._raw_table is writer.raw_encoders
        bus.unsubscribe(bus.subscribe(lambda event: None))
        assert bus._raw_table is writer.raw_encoders  # refreshed back

    def test_raw_path_and_event_path_write_identical_bytes(self):
        # sole subscriber: zero-copy raw dispatch
        bus = EventBus()
        buffer_raw = io.BytesIO()
        writer = BinaryTraceWriter(buffer_raw)
        bus.subscribe(writer)
        self.emit_all(bus)
        writer.close()
        # second subscriber forces Event construction and __call__
        bus = EventBus()
        buffer_event = io.BytesIO()
        writer = BinaryTraceWriter(buffer_event)
        bus.subscribe(lambda event: None)
        bus.subscribe(writer)
        assert bus._raw is None
        self.emit_all(bus)
        writer.close()
        assert buffer_raw.getvalue() == buffer_event.getvalue()

    def test_deferred_writer_on_the_bus(self):
        bus = EventBus()
        buffer = io.BytesIO()
        writer = BinaryTraceWriter(buffer, defer=True)
        bus.subscribe(writer)
        assert bus._raw is not None and bus._raw_table is None
        self.emit_all(bus)
        writer.close()
        assert buffer.getvalue() == sealed_bytes(MIXED_EVENTS)

    def test_collector_alongside_writer_sees_every_event(self):
        bus = EventBus()
        writer = BinaryTraceWriter(io.BytesIO())
        seen = []
        bus.subscribe(writer)
        bus.subscribe(lambda event: seen.append(event.kind))
        self.emit_all(bus)
        assert seen == [event.kind for event in MIXED_EVENTS]
        assert writer.event_count == len(MIXED_EVENTS)

    def test_emit_raw_handles_unknown_kinds(self):
        writer = BinaryTraceWriter(buffer := io.BytesIO())
        writer.emit_raw("fresh", 1, {"x": 1})
        writer.emit_raw("fresh", 2, {"x": 2})
        writer.close()
        out = list(read_events(io.BytesIO(buffer.getvalue())))
        assert [event.data["x"] for event in out] == [1, 2]


def test_machine_capture_matches_event_formatting(harness):
    """A live machine run captured to binlog replays identically."""
    buffer = io.BytesIO()
    writer = BinaryTraceWriter(buffer)
    live = []
    with ev.BUS.subscription(writer), ev.BUS.subscription(
            lambda event: live.append(
                (event.kind, event.time, dict(event.data)))):
        harness.spawn_dhrystone("a")
        harness.spawn_dhrystone("b", weight=2)
        harness.machine.run_until(200_000_000)
    writer.close()
    decoded = [(event.kind, event.time, event.data)
               for event in read_events(io.BytesIO(buffer.getvalue()))]
    assert decoded == live
