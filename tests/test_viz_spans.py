"""Span extraction and the depth-axis hierarchy Gantt."""

import io

import pytest

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.cpu.interrupts import PoissonInterruptSource
from repro.cpu.machine import Machine
from repro.obs import events as ev
from repro.obs.binlog import BinaryTraceReader, BinaryTraceWriter
from repro.obs.events import Event
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.threads.thread import SimThread
from repro.units import MS, SECOND
from repro.viz.depth_gantt import depth_gantt
from repro.viz.gantt import gantt_chart
from repro.viz.spans import Span, extract_spans, node_depth
from repro.workloads.dhrystone import DhrystoneWorkload

EVENTS = [
    Event(ev.SLICE, 30, {"tid": 1, "name": "a", "node": "/apps/rt",
                         "cpu": 0, "start": 10, "work": 2000}),
    Event(ev.SLICE, 60, {"tid": 2, "name": "b", "node": "/apps",
                         "cpu": 0, "start": 30, "work": 3000}),
    Event(ev.PREEMPT, 30, {"tid": 1, "name": "a", "node": "/apps/rt"}),
    Event(ev.INTERRUPT, 60, {"cpu": 0, "service": 15}),
    Event(ev.SLICE, 100, {"tid": 1, "name": "a", "node": "/apps/rt",
                          "cpu": 0, "start": 75, "work": 2500}),
]


class TestNodeDepth:
    def test_root_is_zero(self):
        assert node_depth("/") == 0

    def test_nested_paths(self):
        assert node_depth("/a") == 1
        assert node_depth("/a/b") == 2
        assert node_depth("/a/b/c/d") == 4

    def test_non_path_labels_sit_at_root_depth(self):
        assert node_depth("fq:sfq") == 0


class TestExtractFromEvents:
    def test_slices_become_spans(self):
        spanset = extract_spans(EVENTS)
        assert spanset.spans == [
            Span(10, 30, 1, "a", "/apps/rt"),
            Span(30, 60, 2, "b", "/apps"),
            Span(75, 100, 1, "a", "/apps/rt"),
        ]

    def test_instants_are_kept(self):
        spanset = extract_spans(EVENTS)
        assert spanset.interrupts == [(60, 75)]
        assert spanset.preempts == [(30, 1, "/apps/rt")]

    def test_end_covers_interrupt_tail(self):
        spanset = extract_spans(EVENTS[:4])  # last slice dropped
        assert spanset.end() == 75

    def test_nodes_ordered_by_depth_then_path(self):
        assert extract_spans(EVENTS).nodes() == ["/apps", "/apps/rt"]

    def test_threads_in_tid_order(self):
        assert extract_spans(EVENTS).threads() == [(1, "a"), (2, "b")]


class TestExtractFromRecorder:
    def test_recorder_spans_match_event_spans(self, harness):
        buffer = io.BytesIO()
        writer = BinaryTraceWriter(buffer)
        with ev.BUS.subscription(writer):
            harness.spawn_dhrystone("a")
            harness.spawn_dhrystone("b", weight=2)
            harness.machine.run_until(200 * MS)
        writer.close()
        from_recorder = extract_spans(harness.recorder)
        from_binlog = extract_spans(
            BinaryTraceReader(io.BytesIO(buffer.getvalue())))
        assert from_recorder.spans == from_binlog.spans

    def test_thread_order_override(self, harness):
        a = harness.spawn_dhrystone("a")
        b = harness.spawn_dhrystone("b")
        harness.machine.run_until(100 * MS)
        spanset = extract_spans(harness.recorder, [b, a])
        assert spanset.threads() == [(a.tid, "a"), (b.tid, "b")]


def hierarchy_machine():
    structure = SchedulingStructure()
    apps = structure.mknod("apps", 3)
    rt = structure.mknod("rt", 2, parent=apps, scheduler=SfqScheduler())
    batch = structure.mknod("batch", 1, scheduler=SfqScheduler())
    engine = Simulator()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=100_000_000, default_quantum=10 * MS)
    machine.add_interrupt_source(PoissonInterruptSource(
        mean_interarrival=5 * MS, mean_service=100_000,
        rng=make_rng(7, "intr")))
    for name, leaf in (("rt-0", rt), ("batch-0", batch)):
        thread = SimThread(name, DhrystoneWorkload(300, 10_000))
        leaf.attach_thread(thread)
        machine.spawn(thread)
    return machine


class TestDepthGantt:
    def capture(self):
        buffer = io.BytesIO()
        writer = BinaryTraceWriter(buffer)
        with ev.BUS.subscription(writer):
            hierarchy_machine().run_until(1 * SECOND)
        writer.close()
        return BinaryTraceReader(io.BytesIO(buffer.getvalue()))

    def test_lanes_ordered_by_depth(self):
        chart = depth_gantt(self.capture(), width=40, title="hier")
        lines = chart.splitlines()
        assert lines[0] == "hier"
        labels = [line.split("|")[0].strip() for line in lines[1:-1]]
        assert labels[0] == "irq"
        depths = [int(label.split()[0]) for label in labels[1:]]
        assert depths == sorted(depths)
        assert "2 /apps/rt" in labels
        assert "1 /batch" in labels

    def test_busy_hierarchy_fills_lanes(self):
        chart = depth_gantt(self.capture(), width=40)
        for node in ("/apps/rt", "/batch"):
            line = next(line for line in chart.splitlines() if node in line)
            strip = line.split("|")[1]
            assert "#" in strip or "+" in strip, node

    def test_time_axis_is_last_line(self):
        lines = depth_gantt(self.capture(), width=40).splitlines()
        assert "t=0" in lines[-1]
        assert "t=1000000000" in lines[-1]

    def test_renders_from_plain_event_list(self):
        chart = depth_gantt(EVENTS, width=20)
        lines = chart.splitlines()
        assert lines[0].lstrip().startswith("irq")
        assert any("/apps/rt" in line for line in lines)

    def test_preempt_instants_marked(self):
        chart = depth_gantt(EVENTS, start=0, end=100, width=20)
        rt_line = next(line for line in chart.splitlines()
                       if "/apps/rt" in line)
        assert "!" in rt_line.split("|")[1]

    def test_empty_trace_renders_axis_only(self):
        chart = depth_gantt([], width=20)
        assert "irq" in chart


class TestGanttFromEvents:
    def test_gantt_accepts_event_streams(self):
        chart = gantt_chart(EVENTS, start=0, end=100, width=20)
        lines = chart.splitlines()
        assert lines[0].lstrip().startswith("a")
        assert "#" in lines[0]
