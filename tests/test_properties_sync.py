"""Property-based tests of synchronization invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sync.mutex import SimMutex
from repro.sync.semaphore import SimSemaphore
from repro.threads.segments import SegmentListWorkload
from repro.threads.thread import SimThread


def make_thread(index, weight):
    return SimThread("t%d" % index, SegmentListWorkload([]), weight=weight)


#: scripts of (op, thread_index): ops acquire / release
mutex_scripts = st.lists(
    st.tuples(st.sampled_from(["acquire", "release"]), st.integers(0, 4)),
    min_size=1, max_size=120)
weight_lists = st.lists(st.integers(1, 9), min_size=5, max_size=5)


class TestMutexProperties:
    @given(weight_lists, mutex_scripts, st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_single_holder_and_weight_accounting(self, weights, script,
                                                 donate):
        """At most one holder; every weight boost is backed by exactly one
        live donation from a *blocked* (hence non-competing) waiter."""
        threads = [make_thread(i, w) for i, w in enumerate(weights)]
        mutex = SimMutex("m", donate_weight=donate)
        total_weight = sum(weights)
        blocked = set()
        for op, index in script:
            thread = threads[index]
            if op == "acquire":
                if thread is mutex.holder or thread in blocked:
                    continue
                if not mutex.try_acquire(thread):
                    mutex.enqueue_waiter(thread)
                    blocked.add(thread)
            else:
                if mutex.holder is thread:
                    granted = mutex.release(thread)
                    if granted is not None:
                        blocked.discard(granted)
            # invariants after every step
            live_donations = sum(mutex._donations.values())
            assert sum(t.weight for t in threads) == \
                total_weight + live_donations
            # the *runnable* total never exceeds the original total
            runnable_total = sum(t.weight for t in threads
                                 if t not in blocked)
            assert runnable_total <= total_weight
            assert (mutex.holder is None) == (not mutex.locked)
            assert mutex.holder not in mutex.waiters
            if not donate:
                assert live_donations == 0
                for t, w in zip(threads, weights):
                    assert t.weight == w

    @given(weight_lists, mutex_scripts)
    @settings(max_examples=80, deadline=None)
    def test_donation_fully_unwinds(self, weights, script):
        """Once the mutex drains, every thread has its original weight."""
        threads = [make_thread(i, w) for i, w in enumerate(weights)]
        mutex = SimMutex("m", donate_weight=True)
        blocked = set()
        for op, index in script:
            thread = threads[index]
            if op == "acquire":
                if thread is mutex.holder or thread in blocked:
                    continue
                if not mutex.try_acquire(thread):
                    mutex.enqueue_waiter(thread)
                    blocked.add(thread)
            else:
                if mutex.holder is thread:
                    granted = mutex.release(thread)
                    if granted is not None:
                        blocked.discard(granted)
        # drain: release the chain to the end
        while mutex.holder is not None:
            granted = mutex.release(mutex.holder)
            if granted is not None:
                blocked.discard(granted)
        for thread, weight in zip(threads, weights):
            assert thread.weight == weight


class TestSemaphoreProperties:
    @given(st.integers(0, 5),
           st.lists(st.tuples(st.sampled_from(["down", "up"]),
                              st.integers(0, 4)),
                    min_size=1, max_size=120))
    @settings(max_examples=120, deadline=None)
    def test_units_conserved(self, initial, script):
        """count + granted - released == initial at every step;
        count is never negative; a positive count implies no waiters."""
        threads = [make_thread(i, 1) for i in range(5)]
        sem = SimSemaphore("s", initial=initial)
        blocked = set()
        grants = 0
        ups = 0
        for op, index in script:
            thread = threads[index]
            if op == "down":
                if thread in blocked:
                    continue
                if sem.try_down(thread):
                    grants += 1
                else:
                    sem.enqueue_waiter(thread)
                    blocked.add(thread)
            else:
                ups += 1
                granted = sem.up()
                if granted is not None:
                    grants += 1
                    blocked.discard(granted)
            assert sem.count >= 0
            assert sem.count == initial + ups - grants
            if sem.count > 0:
                assert not sem.waiters
