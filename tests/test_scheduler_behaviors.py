"""Deeper behavioral tests of individual schedulers on the machine."""

import pytest

from repro.schedulers.eevdf import EevdfScheduler
from repro.schedulers.fairqueue import ScfqScheduler, WfqScheduler
from repro.schedulers.lottery import LotteryScheduler
from repro.schedulers.stride import StrideScheduler
from repro.schedulers.svr4 import DispatchRow, Svr4TimeSharing, TS_LEVELS
from repro.sim.rng import make_rng
from repro.threads.segments import Compute, SleepFor
from repro.units import MS, SECOND

from tests.conftest import FlatHarness

CAPACITY = 1_000_000
KILO = 1000
QW = 10 * KILO


class TestWfqBehaviour:
    def test_assumed_length_penalizes_early_blockers(self):
        """WFQ's documented drawback: a thread that blocks before using
        its assumed quantum still pays for the full assumed length."""
        harness = FlatHarness(WfqScheduler(QW, CAPACITY),
                              capacity_ips=CAPACITY,
                              default_quantum=10 * MS)
        full = harness.spawn_dhrystone("full", weight=1)
        nibbler_segments = []
        for __ in range(50):
            nibbler_segments.append(Compute(KILO))    # uses 1/10 quantum
            nibbler_segments.append(SleepFor(1 * MS))
        nibbler = harness.spawn_segments("nibbler", nibbler_segments,
                                         weight=1)
        harness.machine.run_until(2 * SECOND)
        # under SFQ the nibbler's finish tags reflect its small actual
        # usage; under WFQ each nibble is tagged as a full quantum, so
        # the nibbler waits one assumed quantum per nibble
        from tests.conftest import FlatHarness as FH
        from repro.schedulers.sfq_leaf import SfqScheduler
        sfq = FH(SfqScheduler(), capacity_ips=CAPACITY,
                 default_quantum=10 * MS)
        sfq_full = sfq.spawn_dhrystone("full", weight=1)
        sfq_nibbler_segments = []
        for __ in range(50):
            sfq_nibbler_segments.append(Compute(KILO))
            sfq_nibbler_segments.append(SleepFor(1 * MS))
        sfq_nibbler = sfq.spawn_segments("nibbler", sfq_nibbler_segments,
                                         weight=1)
        sfq.machine.run_until(2 * SECOND)
        assert nibbler.stats.exited_at > sfq_nibbler.stats.exited_at

    def test_idle_period_resets_clock(self):
        harness = FlatHarness(WfqScheduler(QW, CAPACITY),
                              capacity_ips=CAPACITY,
                              default_quantum=10 * MS)
        first = harness.spawn_segments("first", [Compute(5 * KILO)])
        late = harness.spawn_segments(
            "late", [SleepFor(500 * MS), Compute(5 * KILO)])
        harness.machine.run_until(SECOND)
        # both complete despite the long idle gap between busy periods
        assert first.stats.exited_at == 5 * MS
        assert late.stats.exited_at == 505 * MS


class TestScfqBehaviour:
    def test_self_clocked_virtual_time_is_service_based(self):
        harness = FlatHarness(ScfqScheduler(QW), capacity_ips=CAPACITY,
                              default_quantum=10 * MS)
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=1)
        harness.machine.run_until(SECOND)
        # equal weights: equal split, exactly
        assert a.stats.work_done == b.stats.work_done


class TestEevdfBehaviour:
    def test_latency_for_low_weight_thread(self):
        """EEVDF's eligibility keeps a light thread from being starved
        for long stretches (contrast with strict finish-tag ordering)."""
        harness = FlatHarness(EevdfScheduler(QW), capacity_ips=CAPACITY,
                              default_quantum=10 * MS)
        light = harness.spawn_dhrystone("light", weight=1)
        for index in range(4):
            harness.spawn_dhrystone("heavy-%d" % index, weight=5)
        harness.machine.run_until(2 * SECOND)
        # light gets its 1/21 share
        total = sum(t.stats.work_done for t in harness.machine.threads)
        assert light.stats.work_done / total == pytest.approx(1 / 21,
                                                              rel=0.1)


class TestStrideLotteryBehaviour:
    def test_stride_handles_weight_change(self):
        harness = FlatHarness(StrideScheduler(), capacity_ips=CAPACITY,
                              default_quantum=10 * MS)
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=1)
        harness.engine.at(SECOND, lambda: a.set_weight(3))
        harness.machine.run_until(3 * SECOND)
        # second phase: 3:1 split
        from repro.trace.metrics import throughput_series
        late_a = throughput_series(harness.recorder, a, SECOND,
                                   3 * SECOND)[-1]
        late_b = throughput_series(harness.recorder, b, SECOND,
                                   3 * SECOND)[-1]
        assert late_a / late_b == pytest.approx(3.0, rel=0.05)

    def test_lottery_seed_changes_schedule(self):
        def run_with(seed):
            harness = FlatHarness(
                LotteryScheduler(rng=make_rng(seed, "b")),
                capacity_ips=CAPACITY, default_quantum=10 * MS)
            a = harness.spawn_dhrystone("a")
            harness.spawn_dhrystone("b")
            harness.machine.run_until(SECOND)
            return a.stats.work_done

        assert run_with(1) != run_with(2)


class TestSvr4CustomTable:
    def test_flat_table_behaves_like_round_robin(self):
        # a table with no demotion and uniform quanta degenerates to RR
        table = [DispatchRow(50 * MS, pri, pri, SECOND * 10**6, pri)
                 for pri in range(TS_LEVELS)]
        harness = FlatHarness(Svr4TimeSharing(table=table),
                              capacity_ips=CAPACITY,
                              default_quantum=10 * MS)
        a = harness.spawn_dhrystone("a", params={"priority": 20})
        b = harness.spawn_dhrystone("b", params={"priority": 20})
        harness.machine.run_until(2 * SECOND)
        assert a.stats.work_done == b.stats.work_done

    def test_priority_ladder_without_aging(self):
        # demotion without aging: both threads sink to priority 0
        table = [DispatchRow(50 * MS, max(0, pri - 10),
                             min(TS_LEVELS - 1, pri + 25),
                             SECOND * 10**6, pri)
                 for pri in range(TS_LEVELS)]
        scheduler = Svr4TimeSharing(table=table)
        harness = FlatHarness(scheduler, capacity_ips=CAPACITY,
                              default_quantum=10 * MS)
        a = harness.spawn_dhrystone("a", params={"priority": 45})
        harness.machine.run_until(2 * SECOND)
        assert scheduler.priority_of(a) == 0
