"""Tracing: recorder, metrics, timeline."""

import pytest

from repro.threads.segments import Compute, SleepFor
from repro.trace.metrics import (
    common_runnable_intervals,
    cumulative_work_series,
    marker_rate,
    node_work,
    response_times,
    throughput_series,
)
from repro.trace.recorder import Recorder, ThreadTrace
from repro.trace.timeline import execution_order, merge_timeline
from repro.units import MS, SECOND

KILO = 1000


class TestServiceCurve:
    def make_trace(self):
        trace = ThreadTrace(None)
        trace.add_slice(0, 10 * MS, 10 * KILO)
        trace.add_slice(20 * MS, 30 * MS, 10 * KILO)
        return trace

    def test_total_work(self):
        assert self.make_trace().total_work == 20 * KILO

    def test_service_at_boundaries(self):
        trace = self.make_trace()
        assert trace.service_at(0) == 0
        assert trace.service_at(10 * MS) == 10 * KILO
        assert trace.service_at(15 * MS) == 10 * KILO  # idle gap
        assert trace.service_at(30 * MS) == 20 * KILO
        assert trace.service_at(SECOND) == 20 * KILO

    def test_service_interpolates_inside_slice(self):
        trace = self.make_trace()
        assert trace.service_at(5 * MS) == pytest.approx(5 * KILO)
        assert trace.service_at(25 * MS) == pytest.approx(15 * KILO)

    def test_service_before_first_slice(self):
        trace = self.make_trace()
        assert trace.service_at(-1) == 0

    def test_work_in_interval(self):
        trace = self.make_trace()
        assert trace.work_in(0, 30 * MS) == 20 * KILO
        assert trace.work_in(5 * MS, 25 * MS) == pytest.approx(10 * KILO)
        with pytest.raises(ValueError):
            trace.work_in(10, 5)


class TestRunnableIntervals:
    def test_open_interval_closed_at_horizon(self):
        trace = ThreadTrace(None)
        trace.runnables = [10]
        assert trace.runnable_intervals(100) == [(10, 100)]

    def test_paired_with_blocks(self):
        trace = ThreadTrace(None)
        trace.runnables = [10, 50]
        trace.blocks = [30]
        assert trace.runnable_intervals(100) == [(10, 30), (50, 100)]

    def test_exit_ends_interval(self):
        trace = ThreadTrace(None)
        trace.runnables = [10]
        trace.exited_at = 40
        assert trace.runnable_intervals(100) == [(10, 40)]

    def test_common_intervals(self):
        a = ThreadTrace(None)
        b = ThreadTrace(None)
        a.runnables, a.blocks = [0, 60], [30]
        b.runnables, b.blocks = [10], [80]
        assert common_runnable_intervals(a, b, 100) == [(10, 30), (60, 80)]


class TestMetricsOnMachine:
    def run_two(self):
        from tests.conftest import Harness
        harness = Harness()
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=1)
        harness.machine.run_until(SECOND)
        return harness, a, b

    def test_throughput_series_sums_to_capacity(self):
        harness, a, b = self.run_two()
        sa = throughput_series(harness.recorder, a, 100 * MS, SECOND)
        sb = throughput_series(harness.recorder, b, 100 * MS, SECOND)
        for wa, wb in zip(sa, sb):
            assert wa + wb == pytest.approx(100 * KILO, rel=0.01)

    def test_cumulative_series_monotone(self):
        harness, a, __ = self.run_two()
        series = cumulative_work_series(harness.recorder, a, 100 * MS, SECOND)
        values = [w for __, w in series]
        assert values == sorted(values)
        assert len(series) == 11

    def test_node_work_aggregates(self):
        harness, a, b = self.run_two()
        total = node_work(harness.recorder, [a, b], 0, SECOND)
        assert total == pytest.approx(1000 * KILO, rel=0.01)

    def test_marker_rate(self):
        harness, a, __ = self.run_two()
        a.stats.markers["frames"] = 50
        assert marker_rate(a, "frames", SECOND) == 50.0
        assert marker_rate(a, "missing", SECOND) == 0.0

    def test_marker_rate_scales_with_elapsed_ns(self):
        """Regression: the per-second normalization must use the SECOND
        units constant, not an ad-hoc literal — markers/s over any
        window length."""
        harness, a, __ = self.run_two()
        a.stats.markers["frames"] = 50
        assert marker_rate(a, "frames", 2 * SECOND) == 25.0
        assert marker_rate(a, "frames", SECOND // 2) == 100.0
        assert marker_rate(a, "frames", 0) == 0.0

    def test_response_times(self):
        from tests.conftest import Harness
        harness = Harness()
        segments = []
        for __ in range(5):
            segments.append(Compute(KILO))
            segments.append(SleepFor(20 * MS))
        t = harness.spawn_segments("i", segments)
        harness.machine.run_until(SECOND)
        times = response_times(harness.recorder, t)
        assert len(times) == 4  # 4 wakeups followed by a completion
        assert all(rt == 1 * MS for rt in times)


class TestTimeline:
    def test_merge_coalesces_adjacent_same_thread(self):
        from tests.conftest import Harness
        harness = Harness()
        # single thread: many quanta but one coalesced run
        t = harness.spawn_segments("solo", [Compute(50 * KILO)])
        harness.machine.run_until(SECOND)
        merged = merge_timeline(harness.recorder, [t])
        assert merged == [(0, 50 * MS, t)]

    def test_execution_order_alternation(self):
        from tests.conftest import Harness
        harness = Harness()
        a = harness.spawn_segments("a", [Compute(20 * KILO)])
        b = harness.spawn_segments("b", [Compute(20 * KILO)])
        harness.machine.run_until(SECOND)
        assert execution_order(harness.recorder, [a, b]) == \
            ["a", "b", "a", "b"]

    def test_recorder_interrupt_totals(self):
        recorder = Recorder()
        recorder.on_interrupt(0, 5)
        recorder.on_interrupt(10, 7)
        assert recorder.total_interrupt_time() == 12
        assert recorder.interrupts == [(0, 5), (10, 7)]
