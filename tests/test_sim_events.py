"""The event queue: ordering, stability, cancellation."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def collect(queue):
    fired = []
    while True:
        handle = queue.pop()
        if handle is None:
            return fired
        fired.append(handle)


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(30, lambda: None)
        q.push(10, lambda: None)
        q.push(20, lambda: None)
        assert [h.time for h in collect(q)] == [10, 20, 30]

    def test_same_time_fifo(self):
        q = EventQueue()
        first = q.push(5, lambda: None)
        second = q.push(5, lambda: None)
        popped = collect(q)
        assert popped[0].seq == first.seq
        assert popped[1].seq == second.seq

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        low = q.push(5, lambda: None, priority=10)
        high = q.push(5, lambda: None, priority=-10)
        popped = collect(q)
        assert popped[0] is high
        assert popped[1] is low

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(42, lambda: None)
        assert q.peek_time() == 42

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(-1, lambda: None)


class TestCancellation:
    def test_cancelled_event_not_popped(self):
        q = EventQueue()
        handle = q.push(10, lambda: None)
        keep = q.push(20, lambda: None)
        q.discard(handle)
        assert collect(q) == [keep]

    def test_len_counts_live_events(self):
        q = EventQueue()
        a = q.push(1, lambda: None)
        q.push(2, lambda: None)
        assert len(q) == 2
        q.discard(a)
        assert len(q) == 1

    def test_discard_none_is_noop(self):
        q = EventQueue()
        q.discard(None)
        assert len(q) == 0

    def test_double_discard_safe(self):
        q = EventQueue()
        handle = q.push(1, lambda: None)
        q.discard(handle)
        q.discard(handle)
        assert len(q) == 0

    def test_cancel_releases_callback(self):
        q = EventQueue()
        handle = q.push(1, lambda: None, arg=object())
        handle.cancel()
        assert handle.callback is None
        assert handle.arg is None

    def test_peek_skips_cancelled_head(self):
        q = EventQueue()
        first = q.push(1, lambda: None)
        q.push(2, lambda: None)
        q.discard(first)
        assert q.peek_time() == 2

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None


class TestHandleRepr:
    def test_repr_mentions_state(self):
        q = EventQueue()
        handle = q.push(7, lambda: None)
        assert "pending" in repr(handle)
        handle.cancel()
        assert "cancelled" in repr(handle)
