"""The event queue: ordering, stability, cancellation."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def collect(queue):
    fired = []
    while True:
        handle = queue.pop()
        if handle is None:
            return fired
        fired.append(handle)


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(30, lambda: None)
        q.push(10, lambda: None)
        q.push(20, lambda: None)
        assert [h.time for h in collect(q)] == [10, 20, 30]

    def test_same_time_fifo(self):
        q = EventQueue()
        first = q.push(5, lambda: None)
        second = q.push(5, lambda: None)
        popped = collect(q)
        assert popped[0].seq == first.seq
        assert popped[1].seq == second.seq

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        low = q.push(5, lambda: None, priority=10)
        high = q.push(5, lambda: None, priority=-10)
        popped = collect(q)
        assert popped[0] is high
        assert popped[1] is low

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(42, lambda: None)
        assert q.peek_time() == 42

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(-1, lambda: None)


class TestCancellation:
    def test_cancelled_event_not_popped(self):
        q = EventQueue()
        handle = q.push(10, lambda: None)
        keep = q.push(20, lambda: None)
        q.discard(handle)
        assert collect(q) == [keep]

    def test_len_counts_live_events(self):
        q = EventQueue()
        a = q.push(1, lambda: None)
        q.push(2, lambda: None)
        assert len(q) == 2
        q.discard(a)
        assert len(q) == 1

    def test_discard_none_is_noop(self):
        q = EventQueue()
        q.discard(None)
        assert len(q) == 0

    def test_double_discard_safe(self):
        q = EventQueue()
        handle = q.push(1, lambda: None)
        q.discard(handle)
        q.discard(handle)
        assert len(q) == 0

    def test_cancel_releases_callback(self):
        q = EventQueue()
        handle = q.push(1, lambda: None, arg=object())
        handle.cancel()
        assert handle.callback is None
        assert handle.arg is None

    def test_peek_skips_cancelled_head(self):
        q = EventQueue()
        first = q.push(1, lambda: None)
        q.push(2, lambda: None)
        q.discard(first)
        assert q.peek_time() == 2

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None


class TestHandleRepr:
    def test_repr_mentions_state(self):
        q = EventQueue()
        handle = q.push(7, lambda: None)
        assert "pending" in repr(handle)
        handle.cancel()
        assert "cancelled" in repr(handle)


class TestFifoTieBreakContract:
    """The (time, priority, seq) ordering is a documented contract.

    Regression guard for the stable FIFO tie-break: events scheduled at
    the same instant with the same priority MUST fire strictly in the
    order they were scheduled, no matter how many there are or how the
    pushes interleave with other timestamps.
    """

    def test_many_same_instant_events_fire_in_push_order(self):
        q = EventQueue()
        handles = [q.push(100, lambda: None, arg=index) for index in range(50)]
        assert [h.arg for h in collect(q)] == list(range(50))
        assert handles[0].seq < handles[-1].seq

    def test_fifo_survives_interleaved_timestamps(self):
        q = EventQueue()
        # Push in a scrambled time order; each instant keeps push order.
        for index in range(30):
            q.push((index * 7) % 3, lambda: None, arg=index)
        fired = [(h.time, h.arg) for h in collect(q)]
        assert fired == sorted(fired, key=lambda pair: pair[0])
        for instant in (0, 1, 2):
            args = [arg for time, arg in fired if time == instant]
            assert args == sorted(args), (
                "same-instant events at t=%d fired out of push order" % instant)

    def test_priority_then_seq(self):
        q = EventQueue()
        q.push(5, lambda: None, arg="late-a", priority=1)
        q.push(5, lambda: None, arg="early-a", priority=-1)
        q.push(5, lambda: None, arg="late-b", priority=1)
        q.push(5, lambda: None, arg="early-b", priority=-1)
        assert [h.arg for h in collect(q)] == [
            "early-a", "early-b", "late-a", "late-b"]

    def test_seq_is_monotonic_across_pops(self):
        q = EventQueue()
        first = q.push(1, lambda: None)
        q.pop()
        second = q.push(1, lambda: None)
        assert second.seq > first.seq


class TestPopDue:
    def test_pop_due_returns_events_up_to_horizon(self):
        q = EventQueue()
        q.push(10, lambda: None, arg="a")
        q.push(20, lambda: None, arg="b")
        q.push(30, lambda: None, arg="c")
        assert q.pop_due(20).arg == "a"
        assert q.pop_due(20).arg == "b"
        assert q.pop_due(20) is None  # t=30 is past the horizon
        assert len(q) == 1
        assert q.pop_due(30).arg == "c"

    def test_pop_due_preserves_fifo_order(self):
        q = EventQueue()
        for index in range(10):
            q.push(5, lambda: None, arg=index)
        fired = []
        while True:
            handle = q.pop_due(5)
            if handle is None:
                break
            fired.append(handle.arg)
        assert fired == list(range(10))

    def test_pop_due_skips_cancelled_events(self):
        q = EventQueue()
        doomed = q.push(1, lambda: None, arg="doomed")
        q.push(2, lambda: None, arg="live")
        q.discard(doomed)
        assert q.pop_due(10).arg == "live"
        assert q.pop_due(10) is None

    def test_pop_due_empty_queue(self):
        assert EventQueue().pop_due(1_000) is None

    def test_pop_due_matches_peek_then_pop(self):
        reference = EventQueue()
        fast = EventQueue()
        script = [(3, 0), (1, 5), (3, -2), (2, 0), (1, 0), (3, 0)]
        for time, priority in script:
            reference.push(time, lambda: None, arg=(time, priority),
                           priority=priority)
            fast.push(time, lambda: None, arg=(time, priority),
                      priority=priority)
        horizon = 2
        expected = []
        while (reference.peek_time() is not None
               and reference.peek_time() <= horizon):
            expected.append(reference.pop().arg)
        got = []
        while True:
            handle = fast.pop_due(horizon)
            if handle is None:
                break
            got.append(handle.arg)
        assert got == expected
