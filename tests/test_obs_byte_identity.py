"""Lossless capture: binlog replay must equal live observation, byte for byte.

The binlog's whole contract is that recording to disk loses nothing: the
Chrome trace JSON and schedstat text produced by *replaying* a binlog
must be identical to what the in-memory collectors produced *live* on
the same run.  Checked on the Figure-5 workload and on the depth-8
perfkit hierarchy, plus the committed golden binlog fixture.
"""

import io

from repro.cpu.machine import Machine
from repro.experiments import figure5
from repro.obs import events as ev
from repro.obs.binlog import BinaryTraceReader, BinaryTraceWriter, replay
from repro.obs.chrometrace import ChromeTraceBuilder, validate_chrome_trace
from repro.obs.schedstat import SchedStat, render_schedstat_paths
from repro.perfkit.scenarios import _deep_tree
from repro.core.hierarchy import HierarchicalScheduler
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.threads.thread import SimThread
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.interactive import InteractiveWorkload

from tests import goldens


def capture_live(run):
    """Run ``run`` once with binlog + live collectors on the bus."""
    goldens._reset_global_counters()
    buffer = io.BytesIO()
    writer = BinaryTraceWriter(buffer)
    stats = SchedStat()
    builder = ChromeTraceBuilder()
    with ev.BUS.subscription(writer), ev.BUS.subscription(stats), \
            ev.BUS.subscription(builder):
        run()
    writer.close()
    return buffer.getvalue(), builder, stats


def replay_collectors(raw):
    stats = SchedStat()
    builder = ChromeTraceBuilder()
    replay(io.BytesIO(raw), builder, stats)
    return builder, stats


def run_figure5():
    figure5.run(duration=1 * SECOND)


def run_deep_hierarchy():
    """The perfkit deep_hierarchy scenario's depth-8 tree, shortened."""
    structure, leaves = _deep_tree()
    engine = Simulator()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=100_000_000, default_quantum=2 * MS)
    for index, leaf in enumerate(leaves[:16]):
        rng = make_rng(17, "churn/%d" % index)
        thread = SimThread(
            "churn-%d" % index,
            InteractiveWorkload(burst_work=150_000, think_time=8 * MS,
                                rng=rng))
        leaf.attach_thread(thread)
        machine.spawn(thread)
        if index % 8 == 0:
            hog = SimThread("hog-%d" % index, DhrystoneWorkload(300, 5_000))
            leaf.attach_thread(hog)
            machine.spawn(hog)
    machine.run_until(300 * MS)


WORKLOADS = {"figure5": run_figure5, "deep_hierarchy": run_deep_hierarchy}


class TestByteIdentity:
    def check(self, run):
        raw, live_builder, live_stats = capture_live(run)
        replayed_builder, replayed_stats = replay_collectors(raw)
        assert live_builder.event_count > 100
        # Chrome trace: identical JSON at both indents
        assert replayed_builder.to_json() == live_builder.to_json()
        assert replayed_builder.to_json(indent=1) == \
            live_builder.to_json(indent=1)
        assert validate_chrome_trace(replayed_builder.to_dict()) > 0
        # schedstat: identical offline rendering
        assert render_schedstat_paths(replayed_stats) == \
            render_schedstat_paths(live_stats)

    def test_figure5(self):
        self.check(run_figure5)

    def test_deep_hierarchy(self):
        self.check(run_deep_hierarchy)


class TestGoldenBinlog:
    """The committed binlog fixture is the codec's drift detector."""

    def test_current_tree_reproduces_committed_bytes(self):
        with open(goldens.binlog_fixture_path(), "rb") as handle:
            committed = handle.read()
        assert goldens.demo_binlog_bytes() == committed, (
            "binlog capture of the demo workload diverged from "
            "tests/fixtures/golden/obs_demo.binlog; if the format or "
            "scheduling change is intentional, regenerate with "
            "`python -m tests.regen_goldens`")

    def test_committed_fixture_validates_and_decodes(self):
        reader = BinaryTraceReader(goldens.binlog_fixture_path())
        info = reader.info()
        assert info["events"] == len(reader) > 100
        kinds = {event.kind for event in reader}
        assert ev.DISPATCH in kinds and ev.SLICE in kinds

    def test_capture_is_reproducible_in_process(self):
        assert goldens.demo_binlog_bytes() == goldens.demo_binlog_bytes()
