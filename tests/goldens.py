"""Golden-trace scenario builders shared by the determinism tests.

Each builder constructs a fixed workload, subscribes a collector to the
observability bus, runs the simulation, and returns the event stream as a
list of canonical text lines.  The streams are hashed into
``tests/fixtures/golden/*.json`` and the golden test asserts the current
tree reproduces them **byte-identically** — this is the contract that lets
hot-path optimizations (indexed heaps, batched event pops, guard caching)
land without any behavioural drift.

Regenerate fixtures with ``python -m tests.regen_goldens`` — but only when
a change is *supposed* to alter scheduling behaviour; the whole point of
the fixtures is that performance work must not.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from typing import Callable, Dict, List

import repro.core.sfq as sfq_module
import repro.schedulers.fairqueue as fairqueue_module
import repro.threads.thread as thread_module
from repro.core.hierarchy import HierarchicalScheduler
from repro.cpu.flat import FlatScheduler
from repro.cpu.interrupts import PoissonInterruptSource
from repro.cpu.machine import Machine
from repro.experiments.common import figure6_structure
from repro.obs import events as obs
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.smp.machine import SmpMachine
from repro.threads.thread import SimThread
from repro.units import MS, SECOND
from repro.workloads.bursty import BurstyWorkload
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.interactive import InteractiveWorkload

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures", "golden")

#: how many leading event lines each fixture keeps verbatim (for diffing)
HEAD_LINES = 40


def _reset_global_counters() -> None:
    """Pin every process-global sequence so streams ignore test order."""
    thread_module._tid_counter = itertools.count(1)
    sfq_module._arrival_seq = itertools.count()
    fairqueue_module._seq = itertools.count()


def _format_event(event: obs.Event) -> str:
    fields = ",".join(
        "%s=%r" % (key, event.data[key]) for key in sorted(event.data))
    return "%s t=%d %s" % (event.kind, event.time, fields)


def _collect(run: Callable[[], None]) -> List[str]:
    _reset_global_counters()
    lines: List[str] = []
    with obs.BUS.subscription(lambda event: lines.append(_format_event(event))):
        run()
    return lines


# --- the scenarios -----------------------------------------------------------


def figure5_stream(duration: int = 2 * SECOND) -> List[str]:
    """Figure-5 SFQ arm: five equal dhrystones plus two interactive daemons."""

    def run() -> None:
        engine = Simulator()
        machine = Machine(engine, FlatScheduler(SfqScheduler()),
                          capacity_ips=100_000_000, default_quantum=20 * MS)
        for index in range(5):
            machine.spawn(SimThread("dhry-%d" % index,
                                    DhrystoneWorkload(300, 10_000)))
        for index in range(2):
            rng = make_rng(11, "daemon/%d" % index)
            machine.spawn(SimThread(
                "daemon-%d" % index,
                InteractiveWorkload(burst_work=400_000, think_time=120 * MS,
                                    rng=rng)))
        machine.run_until(duration)

    return _collect(run)


def figure8_stream(duration: int = 2 * SECOND) -> List[str]:
    """Figure-8(a) replay: 2:6:1 hierarchy with bursty background load."""

    def run() -> None:
        structure, sfq1, sfq2, svr4 = figure6_structure(
            sfq1_weight=2, sfq2_weight=6, svr4_weight=1)
        engine = Simulator()
        machine = Machine(engine, HierarchicalScheduler(structure),
                          capacity_ips=100_000_000, default_quantum=20 * MS)
        for index in range(2):
            thread = SimThread("sfq1-%d" % index, DhrystoneWorkload(300, 10_000))
            sfq1.attach_thread(thread)
            machine.spawn(thread)
        for index in range(2):
            thread = SimThread("sfq2-%d" % index, DhrystoneWorkload(300, 10_000))
            sfq2.attach_thread(thread)
            machine.spawn(thread)
        for index in range(4):
            rng = make_rng(3, "bg/%d" % index)
            thread = SimThread(
                "bg-%d" % index,
                BurstyWorkload(mean_busy_work=20_000_000,
                               mean_idle_time=400 * MS, rng=rng))
            svr4.attach_thread(thread)
            machine.spawn(thread)
        machine.run_until(duration)

    return _collect(run)


def interrupt_stream(duration: int = 2 * SECOND) -> List[str]:
    """Interrupt-heavy uniprocessor run (pause/resume + deferred dispatch)."""

    def run() -> None:
        engine = Simulator()
        machine = Machine(engine, FlatScheduler(SfqScheduler()),
                          capacity_ips=100_000_000, default_quantum=10 * MS)
        machine.add_interrupt_source(PoissonInterruptSource(
            mean_interarrival=3 * MS, mean_service=200_000,
            rng=make_rng(7, "intr")))
        for index in range(4):
            machine.spawn(SimThread("dhry-%d" % index,
                                    DhrystoneWorkload(300, 5_000),
                                    weight=index + 1))
        machine.run_until(duration)

    return _collect(run)


def smp_stream(duration: int = 2 * SECOND) -> List[str]:
    """Four-CPU SMP run over a hierarchy with blocking interactive load."""

    def run() -> None:
        structure, sfq1, sfq2, svr4 = figure6_structure(
            sfq1_weight=1, sfq2_weight=2, svr4_weight=1)
        engine = Simulator()
        machine = SmpMachine(engine, HierarchicalScheduler(structure),
                             num_cpus=4, capacity_ips=100_000_000,
                             default_quantum=10 * MS)
        for index in range(6):
            thread = SimThread("cpu-%d" % index, DhrystoneWorkload(300, 10_000))
            (sfq1 if index % 2 else sfq2).attach_thread(thread)
            machine.spawn(thread)
        for index in range(4):
            rng = make_rng(5, "inter/%d" % index)
            thread = SimThread(
                "inter-%d" % index,
                InteractiveWorkload(burst_work=600_000, think_time=40 * MS,
                                    rng=rng))
            svr4.attach_thread(thread)
            machine.spawn(thread)
        machine.run_until(duration)

    return _collect(run)


#: fixture name -> stream builder
SCENARIOS: Dict[str, Callable[[], List[str]]] = {
    "figure5": figure5_stream,
    "figure8": figure8_stream,
    "interrupts": interrupt_stream,
    "smp": smp_stream,
}


def demo_binlog_bytes(duration_ms: int = 500) -> bytes:
    """The obs-demo workload captured as a sealed binlog.

    Byte-stable for the same reason the text streams are: global
    counters are pinned, the workload is seeded, and the binlog format
    has no timestamps or host state.  The committed copy
    (``obs_demo.binlog``) is the codec's golden fixture — writer-side
    encoding changes that alter the bytes must be intentional format
    changes, never silent drift.
    """
    import io

    from repro.obs.binlog import BinaryTraceWriter
    from repro.obs.cli import build_demo
    from repro.units import MS

    _reset_global_counters()
    machine, __, ___ = build_demo(duration_ms)
    buffer = io.BytesIO()
    writer = BinaryTraceWriter(buffer)
    with obs.BUS.subscription(writer):
        machine.run_until(duration_ms * MS)
    writer.close()
    return buffer.getvalue()


def binlog_fixture_path() -> str:
    return os.path.join(FIXTURE_DIR, "obs_demo.binlog")


def write_binlog_fixture() -> bytes:
    payload = demo_binlog_bytes()
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    with open(binlog_fixture_path(), "wb") as handle:
        handle.write(payload)
    return payload


def stream_digest(lines: List[str]) -> str:
    """sha256 over the newline-joined canonical event lines."""
    payload = ("\n".join(lines) + "\n").encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def fixture_path(name: str) -> str:
    return os.path.join(FIXTURE_DIR, name + ".json")


def write_fixture(name: str, lines: List[str]) -> Dict[str, object]:
    payload = {
        "scenario": name,
        "events": len(lines),
        "sha256": stream_digest(lines),
        "head": lines[:HEAD_LINES],
    }
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    with open(fixture_path(name), "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload


def load_fixture(name: str) -> Dict[str, object]:
    with open(fixture_path(name), "r", encoding="utf-8") as handle:
        return json.load(handle)
