"""The ticket-currency lottery framework (§6 comparator)."""

import pytest

from repro.currency.lottery import Currency, CurrencyLottery
from repro.errors import SchedulingError
from repro.sim.rng import make_rng
from repro.threads.segments import Compute, SegmentListWorkload, SleepFor
from repro.threads.thread import SimThread
from repro.units import MS, SECOND

from repro.cpu.machine import Machine
from repro.sim.engine import Simulator
from repro.trace.recorder import Recorder

KILO = 1000


def make_thread(name="t", weight=100):
    return SimThread(name, SegmentListWorkload([]), weight=weight)


class TestCurrencyValuation:
    def build(self):
        scheduler = CurrencyLottery(rng=make_rng(1, "c"))
        currency_a = scheduler.create_currency("a", funding=100)
        currency_b = scheduler.create_currency("b", funding=100)
        return scheduler, currency_a, currency_b

    def test_funding_must_be_positive(self):
        scheduler = CurrencyLottery()
        with pytest.raises(SchedulingError):
            scheduler.create_currency("x", funding=0)

    def test_base_ticket_value_is_one(self):
        scheduler, currency_a, __ = self.build()
        thread = make_thread(weight=50)
        scheduler.bind(thread, scheduler.base)
        scheduler.admit(thread)
        scheduler.thread_runnable(thread, 0)
        assert scheduler.base_value(thread) == 50

    def test_active_tickets_split_funding(self):
        scheduler, currency_a, __ = self.build()
        t1, t2 = make_thread("t1", 100), make_thread("t2", 100)
        for t in (t1, t2):
            scheduler.bind(t, currency_a)
            scheduler.admit(t)
            scheduler.thread_runnable(t, 0)
        # 200 active tickets in a currency funded with 100 base tickets
        assert scheduler.base_value(t1) == 50

    def test_blocked_sibling_inflates_value(self):
        """The currency framework's hierarchical property: when a thread
        blocks, its siblings' tickets gain value, preserving the class's
        total allocation."""
        scheduler, currency_a, __ = self.build()
        t1, t2 = make_thread("t1", 100), make_thread("t2", 100)
        for t in (t1, t2):
            scheduler.bind(t, currency_a)
            scheduler.admit(t)
            scheduler.thread_runnable(t, 0)
        assert scheduler.base_value(t1) == 50
        scheduler.thread_blocked(t2, 0)
        assert scheduler.base_value(t1) == 100

    def test_idle_currency_has_zero_value(self):
        scheduler, currency_a, __ = self.build()
        thread = make_thread()
        scheduler.bind(thread, currency_a)
        scheduler.admit(thread)
        assert scheduler.base_value(thread) == 0  # no active tickets

    def test_nested_currencies(self):
        scheduler, currency_a, __ = self.build()
        sub = scheduler.create_currency("sub", parent=currency_a,
                                        funding=100)
        thread = make_thread(weight=100)
        scheduler.bind(thread, sub)
        scheduler.admit(thread)
        scheduler.thread_runnable(thread, 0)
        # sole consumer: inherits the full value of classA's funding
        assert scheduler.base_value(thread) == 100

    def test_unbound_thread_rejected(self):
        scheduler = CurrencyLottery()
        with pytest.raises(SchedulingError):
            scheduler.admit(make_thread())

    def test_revaluation_counter(self):
        scheduler, currency_a, __ = self.build()
        thread = make_thread()
        scheduler.bind(thread, currency_a)
        scheduler.admit(thread)
        scheduler.thread_runnable(thread, 0)
        scheduler.thread_blocked(thread, 0)
        assert scheduler.revaluations == 2


class TestCurrencyOnMachine:
    def test_class_split_holds_long_run(self):
        scheduler = CurrencyLottery(rng=make_rng(2, "c"))
        engine = Simulator()
        machine = Machine(engine, scheduler, capacity_ips=1_000_000,
                          default_quantum=10 * MS, tracer=Recorder())
        currency_a = scheduler.create_currency("a", funding=100)
        currency_b = scheduler.create_currency("b", funding=100)
        from repro.workloads.dhrystone import DhrystoneWorkload
        a1 = SimThread("a1", DhrystoneWorkload(loop_cost=100, batch=10))
        a2 = SimThread("a2", DhrystoneWorkload(loop_cost=100, batch=10))
        b1 = SimThread("b1", DhrystoneWorkload(loop_cost=100, batch=10))
        scheduler.bind(a1, currency_a)
        scheduler.bind(a2, currency_a)
        scheduler.bind(b1, currency_b)
        for t in (a1, a2, b1):
            machine.spawn(t)
        machine.run_until(30 * SECOND)
        class_a = a1.stats.work_done + a2.stats.work_done
        class_b = b1.stats.work_done
        # 50:50 between classes in expectation over a long run
        assert class_a / class_b == pytest.approx(1.0, rel=0.1)

    def test_exit_releases_binding(self):
        scheduler = CurrencyLottery(rng=make_rng(3, "c"))
        engine = Simulator()
        machine = Machine(engine, scheduler, capacity_ips=1_000_000,
                          default_quantum=10 * MS)
        currency = scheduler.create_currency("a", funding=100)
        short = SimThread("short", SegmentListWorkload([Compute(KILO)]))
        scheduler.bind(short, currency)
        machine.spawn(short)
        machine.run_until(SECOND)
        with pytest.raises(SchedulingError):
            scheduler.base_value(short)
