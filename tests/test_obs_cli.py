"""The ``python -m repro.obs`` command-line interface."""

import json

import pytest

from repro.obs.binlog import BinaryTraceReader
from repro.obs.chrometrace import validate_chrome_trace
from repro.obs.cli import build_demo, main

from tests import goldens


class TestDemo:
    def test_demo_prints_the_full_report(self, capsys):
        assert main(["demo", "--duration-ms", "200"]) == 0
        out = capsys.readouterr().out
        assert "schedstat-hsfq version 1" in out
        assert "/soft-rt" in out and "/best-effort/user1" in out
        assert "sched.dispatches" in out
        assert "decoder" in out and "shell" in out
        assert "events emitted:" in out

    def test_demo_writes_a_valid_trace(self, tmp_path, capsys):
        out_file = tmp_path / "demo.json"
        assert main(["demo", "--duration-ms", "200",
                     "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert validate_chrome_trace(payload) > 0
        assert "ui.perfetto.dev" in capsys.readouterr().out

    def test_demo_scenario_shape(self):
        machine, structure, threads = build_demo()
        assert [t.name for t in threads] == ["decoder", "compile",
                                             "render", "shell"]
        assert structure.parse("/soft-rt").is_leaf
        assert not structure.parse("/best-effort").is_leaf
        del machine


class TestReport:
    def write_trace(self, tmp_path, capsys):
        out_file = tmp_path / "demo.json"
        assert main(["demo", "--duration-ms", "200",
                     "--out", str(out_file)]) == 0
        capsys.readouterr()  # drop the demo output
        return out_file

    def test_report_summarizes_a_trace(self, tmp_path, capsys):
        out_file = self.write_trace(tmp_path, capsys)
        assert main(["report", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "valid Trace Event Format" in out
        assert "threads/decoder" in out
        assert "cpus/cpu0" in out

    def test_report_missing_file_fails(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_report_rejects_malformed_payload(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert main(["report", str(bad)]) == 1
        assert "unknown phase" in capsys.readouterr().err


class TestRecord:
    def record(self, tmp_path, capsys, *extra):
        path = tmp_path / "demo.binlog"
        assert main(["record", str(path), "--duration-ms", "200",
                     *extra]) == 0
        return path, capsys.readouterr().out

    def test_record_writes_a_sealed_binlog(self, tmp_path, capsys):
        path, out = self.record(tmp_path, capsys)
        assert "streaming mode" in out
        reader = BinaryTraceReader(str(path))
        assert len(reader) > 100

    def test_record_defer_produces_identical_bytes(self, tmp_path, capsys):
        goldens._reset_global_counters()
        streamed, __ = self.record(tmp_path, capsys)
        streamed_bytes = streamed.read_bytes()
        streamed.unlink()
        goldens._reset_global_counters()
        deferred, out = self.record(tmp_path, capsys, "--defer")
        assert "deferred mode" in out
        assert deferred.read_bytes() == streamed_bytes


class TestConvert:
    @pytest.fixture()
    def binlog(self, tmp_path, capsys):
        path = tmp_path / "demo.binlog"
        assert main(["record", str(path), "--duration-ms", "200"]) == 0
        capsys.readouterr()
        return path

    def test_chrome_output_is_valid(self, binlog, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        assert main(["convert", str(binlog), "--chrome", str(chrome)]) == 0
        assert "replayed" in capsys.readouterr().out
        assert validate_chrome_trace(json.loads(chrome.read_text())) > 0

    def test_chrome_matches_live_demo_export(self, binlog, tmp_path, capsys):
        goldens._reset_global_counters()
        live = tmp_path / "live.json"
        assert main(["demo", "--duration-ms", "200",
                     "--out", str(live)]) == 0
        goldens._reset_global_counters()
        recorded = tmp_path / "rec.binlog"
        assert main(["record", str(recorded), "--duration-ms", "200"]) == 0
        replayed = tmp_path / "replayed.json"
        assert main(["convert", str(recorded),
                     "--chrome", str(replayed)]) == 0
        capsys.readouterr()
        assert replayed.read_bytes() == live.read_bytes()

    def test_schedstat_renders_offline_tree(self, binlog, capsys):
        assert main(["convert", str(binlog), "--schedstat"]) == 0
        out = capsys.readouterr().out
        assert "schedstat-hsfq version 1 (offline)" in out
        assert "/soft-rt" in out and "/best-effort/user1" in out

    def test_depth_gantt_renders(self, binlog, capsys):
        assert main(["convert", str(binlog), "--depth-gantt",
                     "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "irq" in out
        assert "1 /soft-rt" in out
        assert "2 /best-effort/user1" in out

    def test_no_output_selected_exits_2(self, binlog, capsys):
        assert main(["convert", str(binlog)]) == 2
        assert "pick at least one" in capsys.readouterr().err

    def test_corrupt_binlog_exits_1(self, binlog, capsys):
        raw = bytearray(binlog.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        binlog.write_bytes(bytes(raw))
        assert main(["convert", str(binlog), "--schedstat"]) == 1
        assert "error:" in capsys.readouterr().err


class TestInfo:
    @pytest.fixture()
    def binlog(self, tmp_path, capsys):
        path = tmp_path / "demo.binlog"
        assert main(["record", str(path), "--duration-ms", "200"]) == 0
        capsys.readouterr()
        return path

    def test_info_prints_the_summary(self, binlog, capsys):
        assert main(["info", str(binlog)]) == 0
        out = capsys.readouterr().out
        assert "valid repro.binlog/1" in out
        assert "events" in out and "strings" in out
        assert "dispatch" in out

    def test_info_json(self, binlog, capsys):
        assert main(["info", str(binlog), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro.binlog/1"
        assert payload["events"] > 100

    def test_info_truncated_file_exits_1(self, binlog, capsys):
        binlog.write_bytes(binlog.read_bytes()[:-10])
        assert main(["info", str(binlog)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_info_missing_file_exits_1(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope.binlog")]) == 1
        assert "error:" in capsys.readouterr().err


class TestUsage:
    def test_no_subcommand_prints_help(self, capsys):
        assert main([]) == 2
        out = capsys.readouterr().out
        for command in ("demo", "report", "record", "convert", "info"):
            assert command in out
