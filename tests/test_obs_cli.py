"""The ``python -m repro.obs`` command-line interface."""

import json

from repro.obs.chrometrace import validate_chrome_trace
from repro.obs.cli import build_demo, main


class TestDemo:
    def test_demo_prints_the_full_report(self, capsys):
        assert main(["demo", "--duration-ms", "200"]) == 0
        out = capsys.readouterr().out
        assert "schedstat-hsfq version 1" in out
        assert "/soft-rt" in out and "/best-effort/user1" in out
        assert "sched.dispatches" in out
        assert "decoder" in out and "shell" in out
        assert "events emitted:" in out

    def test_demo_writes_a_valid_trace(self, tmp_path, capsys):
        out_file = tmp_path / "demo.json"
        assert main(["demo", "--duration-ms", "200",
                     "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert validate_chrome_trace(payload) > 0
        assert "ui.perfetto.dev" in capsys.readouterr().out

    def test_demo_scenario_shape(self):
        machine, structure, threads = build_demo()
        assert [t.name for t in threads] == ["decoder", "compile",
                                             "render", "shell"]
        assert structure.parse("/soft-rt").is_leaf
        assert not structure.parse("/best-effort").is_leaf
        del machine


class TestReport:
    def write_trace(self, tmp_path, capsys):
        out_file = tmp_path / "demo.json"
        assert main(["demo", "--duration-ms", "200",
                     "--out", str(out_file)]) == 0
        capsys.readouterr()  # drop the demo output
        return out_file

    def test_report_summarizes_a_trace(self, tmp_path, capsys):
        out_file = self.write_trace(tmp_path, capsys)
        assert main(["report", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "valid Trace Event Format" in out
        assert "threads/decoder" in out
        assert "cpus/cpu0" in out

    def test_report_missing_file_fails(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_report_rejects_malformed_payload(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert main(["report", str(bad)]) == 1
        assert "unknown phase" in capsys.readouterr().err


class TestUsage:
    def test_no_subcommand_prints_help(self, capsys):
        assert main([]) == 2
        assert "demo" in capsys.readouterr().out
