"""Property-based tests of trace metrics and workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.recorder import ThreadTrace
from repro.units import MS, SECOND
from repro.workloads.mpeg import MpegVbrModel
from repro.workloads.periodic import PeriodicWorkload


def build_trace(gaps_and_lengths):
    """Construct a ThreadTrace from (gap, length, work) slice specs."""
    trace = ThreadTrace(None)
    t = 0
    for gap, length, work in gaps_and_lengths:
        t += gap
        trace.add_slice(t, t + length, work)
        t += length
    return trace, t


slice_specs = st.lists(
    st.tuples(st.integers(0, 1000), st.integers(1, 1000),
              st.integers(1, 10_000)),
    min_size=1, max_size=60)


class TestServiceCurveProperties:
    @given(slice_specs)
    @settings(max_examples=150, deadline=None)
    def test_service_curve_monotone(self, specs):
        trace, horizon = build_trace(specs)
        last = -1.0
        for t in range(0, horizon + 2, max(1, horizon // 200)):
            value = trace.service_at(t)
            assert value >= last
            last = value

    @given(slice_specs)
    @settings(max_examples=150, deadline=None)
    def test_total_equals_curve_limit(self, specs):
        trace, horizon = build_trace(specs)
        assert trace.service_at(horizon + 10) == trace.total_work

    @given(slice_specs, st.integers(0, 5000), st.integers(0, 5000))
    @settings(max_examples=150, deadline=None)
    def test_work_in_additive(self, specs, a, b):
        trace, horizon = build_trace(specs)
        t1, t2 = sorted((a % (horizon + 1), b % (horizon + 1)))
        mid = (t1 + t2) // 2
        left = trace.work_in(t1, mid)
        right = trace.work_in(mid, t2)
        assert left + right == pytest.approx(trace.work_in(t1, t2),
                                             abs=1e-6)

    @given(slice_specs)
    @settings(max_examples=100, deadline=None)
    def test_work_in_never_negative(self, specs):
        trace, horizon = build_trace(specs)
        step = max(1, horizon // 50)
        for t in range(0, horizon, step):
            assert trace.work_in(t, min(horizon, t + step)) >= -1e-9


class TestPeriodicProperties:
    @given(st.integers(1, 100), st.integers(1, 1000), st.integers(0, 500))
    @settings(max_examples=150, deadline=None)
    def test_release_and_deadline_arithmetic(self, period_ms, cost, offset_ms):
        period = period_ms * MS
        offset = offset_ms * MS
        workload = PeriodicWorkload(period=period, cost=cost, offset=offset)
        for k in range(5):
            assert workload.release_time(k) == offset + k * period
            assert workload.deadline(k) == workload.release_time(k + 1)


class TestMpegModelProperties:
    @given(st.integers(0, 10_000), st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_costs_positive_and_deterministic(self, seed, count):
        a = MpegVbrModel(seed=seed).frame_costs(count)
        b = MpegVbrModel(seed=seed).frame_costs(count)
        assert a == b
        assert all(cost >= 1 for cost in a)

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_gop_cycle(self, seed):
        model = MpegVbrModel(seed=seed)
        assert model.frame_type(0) == "I"
        assert model.frame_type(len(model.gop)) == "I"

