"""Shape tests for every paper-figure experiment (reduced scale).

Each test runs the corresponding harness at a size small enough for CI and
asserts the *shape* the paper reports — who wins, by what rough factor,
where the bounds hold.  Full-scale runs live in benchmarks/.
"""

import pytest

from repro.experiments import (
    ablation_bounds,
    ablation_currency,
    ablation_delay,
    ablation_fairness,
    ablation_fluctuation,
    ablation_lottery,
    ablation_overload,
    ablation_reserves,
    ablation_tagmath,
    figure1,
    figure3,
    figure5,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
)
from repro.units import MS, SECOND


class TestFigure1:
    def test_two_timescale_variability(self):
        result = figure1.run(frames=900)
        cov = dict(zip(result.column("group"), result.column("CoV")))
        assert cov["all frames"] > 0.3
        assert cov["per-second means"] > 0.05

    def test_frame_type_ordering(self):
        result = figure1.run(frames=900)
        means = dict(zip(result.column("group"), result.column("mean ms")))
        assert means["I frames"] > means["P frames"] > means["B frames"]


class TestFigure3:
    def test_tag_table_matches_paper(self):
        result = figure3.run()
        # (time, thread, v) triples of the first six quanta (paper Fig. 3)
        head = [(row[0], row[1], row[2]) for row in result.rows[:6]]
        assert head == [
            (10, "A", 0.0), (20, "B", 0.0), (30, "B", 5.0),
            (40, "A", 10.0), (50, "B", 10.0), (60, "B", 15.0),
        ]

    def test_total_service_equal_by_90ms(self):
        result = figure3.run()
        # by t=90 both have finish tag 50/20 and A ran 50, B ran 40
        by_time = {row[0]: row for row in result.rows}
        assert by_time[90][4] == 50.0  # F_A
        assert by_time[60][6] == 20.0  # F_B


class TestFigure5:
    def test_sfq_more_predictable_than_ts(self):
        result = figure5.run(duration=8 * SECOND)
        rows = {row[0]: row for row in result.rows}
        ts_cov, sfq_cov = rows["CoV (windowed)"][1], rows["CoV (windowed)"][2]
        assert ts_cov > 2 * sfq_cov
        assert rows["CoV (final loops)"][1] >= rows["CoV (final loops)"][2]


class TestFigure7:
    def test_overhead_within_one_percent(self):
        result = figure7.run_thread_sweep(max_threads=4,
                                          duration=2 * SECOND)
        assert min(result.series["ratio"]) > 0.99

    def test_depth_cost_small_and_monotone(self):
        result = figure7.run_depth_sweep(max_depth=20, step=10,
                                         duration=2 * SECOND)
        ratios = result.series["ratio"]
        assert ratios[0] == 1.0
        assert ratios == sorted(ratios, reverse=True)
        assert min(ratios) > 0.995


class TestFigure8:
    def test_one_to_three_split(self):
        result = figure8.run_partitioning(duration=6 * SECOND)
        for ratio in result.series["ratio"]:
            assert ratio == pytest.approx(3.0, rel=0.25)

    def test_isolation_equal_split(self):
        result = figure8.run_isolation(duration=4 * SECOND)
        for ratio in result.series["ratio"]:
            assert ratio == pytest.approx(1.0, rel=0.05)


class TestFigure9:
    def test_all_deadlines_met(self):
        result = figure9.run(duration=6 * SECOND)
        assert min(result.series["slack_ms"]) > 0

    def test_latency_bounded_by_two_quanta(self):
        result = figure9.run(duration=6 * SECOND)
        assert max(result.series["latency_ms"]) <= 50.0

    def test_decoder_makes_progress(self):
        result = figure9.run(duration=6 * SECOND)
        frames_note = [n for n in result.notes if "frames" in n][0]
        assert int(frames_note.split()[3]) > 50


class TestFigure10:
    def test_two_to_one_frame_ratio(self):
        result = figure10.run(duration=8 * SECOND)
        for ratio in result.series["ratio"]:
            assert ratio == pytest.approx(2.0, rel=0.15)


class TestFigure11:
    def test_ratio_tracks_weight_script(self):
        result = figure11.run(time_scale=500 * MS)
        for row in result.rows:
            expected, measured = row[3], row[4]
            if expected == 0:
                assert measured < 0.2
            else:
                assert measured == pytest.approx(expected, rel=0.15)


class TestAblations:
    def test_sfq_within_bound_wfq_drifts(self):
        result = ablation_fluctuation.run(duration=8 * SECOND)
        gaps = dict(zip(result.column("algorithm"),
                        result.column("gap / SFQ bound")))
        assert gaps["SFQ"] <= 1.0
        assert gaps["WFQ"] > gaps["SFQ"]
        assert gaps["FQS"] > gaps["SFQ"]

    def test_delay_bound_never_violated(self):
        result = ablation_bounds.run(duration=8 * SECOND)
        violations_note = [n for n in result.notes if "violations" in n][0]
        assert violations_note.endswith("violations: 0")

    def test_fairness_theorem_holds(self):
        result = ablation_fairness.run(duration=8 * SECOND)
        for ratio in result.column("ratio"):
            assert ratio <= 1.0 + 1e-9

    def test_tagmath_modes_agree_on_total_work(self):
        result = ablation_tagmath.run(duration=3 * SECOND)
        rows = {row[0]: row for row in result.rows}
        names = ("work w1", "work w3", "work w7")
        exact_total = sum(rows[name][1] for name in names)
        float_total = sum(rows[name][2] for name in names)
        # per-thread allocations may diverge via float tie-flips (the
        # ablation's finding); total machine work must not
        assert float_total == pytest.approx(exact_total, rel=0.05)

    def test_overload_degrades_proportionally_under_sfq(self):
        result = ablation_overload.run(duration=8 * SECOND)
        cov_row = result.rows[-1]
        sfq_cov, edf_cov = cov_row[3], cov_row[4]
        assert sfq_cov < 0.01
        assert edf_cov > 5 * sfq_cov
        for row in result.rows[:-1]:
            assert row[3] == pytest.approx(1 / 1.3, rel=0.05)

    def test_currency_lottery_noisier_than_hierarchy(self):
        result = ablation_currency.run(duration=10 * SECOND)
        errors = {(row[0], row[1]): row[2] for row in result.rows}
        assert errors[("hierarchical SFQ", "0.1 s")] <= 0.01
        assert errors[("ticket currencies", "0.1 s")] > \
            errors[("hierarchical SFQ", "0.1 s")]

    def test_reserves_jitter_more_than_sfq_on_vbr(self):
        result = ablation_reserves.run(duration=12 * SECOND)
        covs = {row[0]: row[4] for row in result.rows}
        assert covs["reserves"] > covs["SFQ"]

    def test_sfq_lowest_interactive_delay(self):
        result = ablation_delay.run(duration=10 * SECOND)
        means = {row[0]: row[2] for row in result.rows}
        assert means["SFQ"] < means["WFQ"]
        assert means["SFQ"] < means["SCFQ"]

    def test_lottery_least_fair_at_small_windows(self):
        result = ablation_lottery.run(duration=10 * SECOND)
        first = result.rows[0]  # smallest window
        lottery_err, stride_err, sfq_err = first[1], first[2], first[3]
        assert lottery_err > 2 * stride_err
        assert lottery_err > 2 * sfq_err

    def test_lottery_error_shrinks_with_window(self):
        result = ablation_lottery.run(duration=10 * SECOND)
        lottery = [row[1] for row in result.rows]
        assert lottery[-1] < lottery[0]


class TestResultRendering:
    def test_render_and_column(self):
        result = figure1.run(frames=300)
        text = result.render()
        assert "Figure 1" in text
        assert "note:" in text
        assert len(result.column("group")) == len(result.rows)
        with pytest.raises(ValueError):
            result.column("missing")
