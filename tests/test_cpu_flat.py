"""The flat-machine adapter (the 'unmodified kernel' baseline)."""

import pytest

from repro.cpu.flat import FlatScheduler
from repro.errors import SchedulingError
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.segments import Compute, SegmentListWorkload
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.units import MS, SECOND

from tests.conftest import FlatHarness

KILO = 1000


class TestFlatScheduler:
    def test_admit_registers_with_leaf(self):
        leaf = FifoScheduler()
        flat = FlatScheduler(leaf)
        thread = SimThread("t", SegmentListWorkload([]))
        flat.admit(thread)
        flat.thread_runnable(thread, 0)
        assert flat.has_runnable()
        assert flat.pick_next(0) is thread

    def test_double_admit_rejected(self):
        flat = FlatScheduler(FifoScheduler())
        thread = SimThread("t", SegmentListWorkload([]))
        flat.admit(thread)
        with pytest.raises(SchedulingError):
            flat.admit(thread)

    def test_retire_removes(self):
        flat = FlatScheduler(FifoScheduler())
        thread = SimThread("t", SegmentListWorkload([]))
        flat.admit(thread)
        flat.thread_runnable(thread, 0)
        flat.retire(thread, 0)
        assert not flat.has_runnable()

    def test_decision_depth_is_one(self):
        flat = FlatScheduler(FifoScheduler())
        assert flat.decision_depth == 1

    def test_quantum_passthrough(self):
        flat = FlatScheduler(SfqScheduler(quantum=7 * MS))
        thread = SimThread("t", SegmentListWorkload([]))
        flat.admit(thread)
        assert flat.quantum_for(thread) == 7 * MS

    def test_flat_and_hierarchical_sfq_agree(self):
        """A flat SFQ machine and a one-leaf hierarchy produce identical
        allocations (the hierarchy adds no behaviour for a single class)."""
        from tests.conftest import Harness
        flat = FlatHarness(SfqScheduler())
        fa = flat.spawn_dhrystone("a", weight=1)
        fb = flat.spawn_dhrystone("b", weight=3)
        flat.machine.run_until(SECOND)

        hier = Harness()
        ha = hier.spawn_dhrystone("a", weight=1)
        hb = hier.spawn_dhrystone("b", weight=3)
        hier.machine.run_until(SECOND)

        assert fa.stats.work_done == ha.stats.work_done
        assert fb.stats.work_done == hb.stats.work_done


class TestExperimentBuilders:
    def test_figure6_structure_layout(self):
        from repro.experiments.common import figure6_structure
        structure, sfq1, sfq2, svr4 = figure6_structure(2, 6, 1)
        assert sfq1.path == "/SFQ-1"
        assert sfq2.path == "/SFQ-2"
        assert svr4.path == "/SVR4"
        assert sfq1.weight == 2
        assert sfq2.weight == 6
        assert svr4.weight == 1
        assert {c for c in structure.root.children} == \
            {"SFQ-1", "SFQ-2", "SVR4"}

    def test_figure6_interposed_depth(self):
        from repro.experiments.common import figure6_structure
        structure, sfq1, __, ___ = figure6_structure(interposed_depth=3)
        assert sfq1.depth == 4  # 3 interposed levels + leaf
        # the chain's top node carries SFQ-1's weight at the root
        top = structure.parse("/level0")
        assert top.weight == 2

    def test_experiment_result_render_and_column(self):
        from repro.experiments.common import ExperimentResult
        result = ExperimentResult("T", ["a", "b"], [[1, 2], [3, 4]],
                                  notes=["hello"])
        text = result.render()
        assert "T" in text and "hello" in text
        assert result.column("b") == [2, 4]

    def test_runner_main_selection(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["--quick", "figure3"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "Figure 3" in out

    def test_runner_rejects_unknown(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["figure99"]) == 2


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        """The whole stack is deterministic: same seeds, same trace."""
        from repro.trace.export import trace_to_json

        def one_run():
            harness = FlatHarness(SfqScheduler())
            a = harness.spawn_dhrystone("a", weight=2)
            b = harness.spawn_segments("b", [Compute(30 * KILO)])
            from repro.cpu.interrupts import PoissonInterruptSource
            from repro.sim.rng import make_rng
            harness.machine.add_interrupt_source(PoissonInterruptSource(
                mean_interarrival=5 * MS, mean_service=500_000,
                rng=make_rng(9, "det")))
            harness.machine.run_until(SECOND)
            payload = trace_to_json(harness.recorder, [a, b])
            # strip volatile tids
            import re
            return re.sub(r'"tid": \d+', '"tid": 0', payload)

        assert one_run() == one_run()
