"""Property-based tests of the SMP machine (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.smp.machine import SmpMachine
from repro.threads.segments import Compute, SegmentListWorkload, SleepFor
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.units import MS, SECOND

CAPACITY = 1_000_000
KILO = 1000

scripts = st.lists(
    st.lists(st.tuples(st.integers(1, 30), st.integers(0, 25)),
             min_size=1, max_size=4),
    min_size=2, max_size=6)


def run_smp(num_cpus, thread_scripts):
    structure = SchedulingStructure()
    leaf = structure.mknod("/apps", 1, scheduler=SfqScheduler())
    engine = Simulator()
    recorder = Recorder()
    machine = SmpMachine(engine, HierarchicalScheduler(structure),
                         num_cpus=num_cpus, capacity_ips=CAPACITY,
                         default_quantum=10 * MS, tracer=recorder)
    threads = []
    expected = {}
    for index, script in enumerate(thread_scripts):
        segments = []
        total = 0
        for work_kilo, sleep_ms in script:
            segments.append(Compute(work_kilo * KILO))
            total += work_kilo * KILO
            if sleep_ms:
                segments.append(SleepFor(sleep_ms * MS))
        thread = SimThread("t%d" % index, SegmentListWorkload(segments),
                           weight=1 + index % 3)
        leaf.attach_thread(thread)
        machine.spawn(thread)
        threads.append(thread)
        expected[thread.tid] = total
    machine.run_until(60 * SECOND)
    return machine, recorder, threads, expected


class TestSmpProperties:
    @given(st.integers(1, 4), scripts)
    @settings(max_examples=50, deadline=None)
    def test_all_work_completes(self, num_cpus, thread_scripts):
        machine, recorder, threads, expected = run_smp(num_cpus,
                                                       thread_scripts)
        for thread in threads:
            assert thread.state is ThreadState.EXITED
            assert thread.stats.work_done == expected[thread.tid]

    @given(st.integers(1, 4), scripts)
    @settings(max_examples=50, deadline=None)
    def test_concurrency_never_exceeds_cpus(self, num_cpus, thread_scripts):
        machine, recorder, threads, expected = run_smp(num_cpus,
                                                       thread_scripts)
        events = []
        for thread in threads:
            for t0, t1, __ in recorder.trace_of(thread).slices:
                events.append((t0, 0, 1))
                events.append((t1, -1, -1))  # ends sort before same-time starts
        events.sort()
        depth = 0
        for __, ___, delta in events:
            depth += delta
            assert 0 <= depth <= num_cpus

    @given(st.integers(1, 4), scripts)
    @settings(max_examples=50, deadline=None)
    def test_busy_time_matches_work(self, num_cpus, thread_scripts):
        machine, recorder, threads, expected = run_smp(num_cpus,
                                                       thread_scripts)
        total_work = sum(expected.values())
        # 1 instruction per microsecond per CPU
        slack = machine.dispatches * 1000 + 1000
        assert abs(machine.busy_time - total_work * 1000) <= slack
