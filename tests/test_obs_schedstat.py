"""Hierarchical schedstats: attribution, rendering, SCHEDSAN integration."""

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.devtools.schedsan import SchedsanScheduler
from repro.obs import events as ev
from repro.obs.metrics import SchedulerMetrics
from repro.obs.schedstat import (
    NodeStats,
    SchedStat,
    ancestor_paths,
    render_schedstat,
)
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.thread import SimThread
from repro.units import MS
from repro.workloads.dhrystone import DhrystoneWorkload
from tests.conftest import Harness


class TestAncestorPaths:
    def test_root(self):
        assert ancestor_paths("/") == ["/"]

    def test_nested(self):
        assert ancestor_paths("/a/b") == ["/", "/a", "/a/b"]

    def test_non_path_labels_stand_alone(self):
        assert ancestor_paths("fq:wfq") == ["fq:wfq"]


class TestNodeStats:
    def test_as_dict_covers_every_slot(self):
        stats = NodeStats()
        stats.dispatches = 3
        snap = stats.as_dict()
        assert snap["dispatches"] == 3
        assert set(snap) == set(NodeStats.__slots__)


class TestAttribution:
    def test_charges_roll_up_to_ancestors(self):
        stats = SchedStat()
        stats(ev.Event(ev.CHARGE, 10, {"node": "/a/b", "work": 500}))
        stats(ev.Event(ev.CHARGE, 20, {"node": "/a/c", "work": 300}))
        assert stats.nodes["/a/b"].service_work == 500
        assert stats.nodes["/a/c"].service_work == 300
        assert stats.nodes["/a"].service_work == 800
        assert stats.nodes["/"].service_work == 800

    def test_tag_updates_stay_on_the_named_node(self):
        stats = SchedStat()
        stats(ev.Event(ev.TAG_UPDATE, 0,
                       {"node": "/a/b", "start": 2.0, "finish": 5.0}))
        stats(ev.Event(ev.TAG_UPDATE, 1,
                       {"node": "/a/b", "start": 1.0, "finish": 9.0}))
        record = stats.nodes["/a/b"]
        assert record.tag_updates == 2
        assert record.min_start == 1.0
        assert record.max_finish == 9.0
        assert "/a" not in stats.nodes or stats.nodes["/a"].tag_updates == 0

    def test_interrupts_are_machine_level(self):
        stats = SchedStat()
        stats(ev.Event(ev.INTERRUPT, 0, {"cpu": 0, "service": 900}))
        assert stats.interrupts == 1
        assert stats.interrupt_ns == 900


class TestLiveRun:
    def run(self):
        harness = Harness()
        stats = SchedStat()
        # Subscribe before spawning: the first dispatch fires at spawn time.
        with ev.BUS.subscription(stats):
            a = harness.spawn_dhrystone("a", weight=2)
            b = harness.spawn_dhrystone("b", weight=1)
            harness.machine.run_until(60 * MS)
        return harness, stats, (a, b)

    def test_leaf_counters_match_thread_stats(self):
        __, stats, threads = self.run()
        leaf = stats.nodes["/apps"]
        assert leaf.dispatches == sum(t.stats.dispatches for t in threads)
        assert leaf.service_work == sum(t.stats.work_done for t in threads)

    def test_root_aggregates_the_leaf(self):
        __, stats, __ = self.run()
        assert stats.nodes["/"].service_work == \
            stats.nodes["/apps"].service_work

    def test_render_with_stats(self):
        harness, stats, __ = self.run()
        text = render_schedstat(harness.structure, stats)
        assert text.startswith("schedstat-hsfq version 1")
        assert "/apps weight=1 leaf" in text
        assert "sched=sfq threads=2" in text
        assert "dispatches=" in text and "tags: S_min=" in text
        assert text.strip().splitlines()[-1].startswith("interrupts=")

    def test_render_without_stats_shows_live_state_only(self):
        harness, __, __ = self.run()
        text = render_schedstat(harness.structure)
        assert "/apps weight=1 leaf" in text
        assert "dispatches=" not in text


class TestSchedsanIntegration:
    def make_violation_scenario(self):
        """A charge with no matching pick_next: a protocol violation."""
        structure = SchedulingStructure()
        leaf = structure.mknod("/apps", 1, scheduler=SfqScheduler())
        scheduler = SchedsanScheduler(HierarchicalScheduler(structure),
                                      mode="collect")
        thread = SimThread("rogue", DhrystoneWorkload())
        leaf.attach_thread(thread)
        scheduler.admit(thread)
        return scheduler, thread

    def test_collect_mode_violations_reach_the_bus(self):
        scheduler, thread = self.make_violation_scenario()
        stats = SchedStat()
        metrics = SchedulerMetrics()
        with ev.BUS.subscription(stats), ev.BUS.subscription(metrics):
            scheduler.charge(thread, 1_000, now=7)
        assert scheduler.violations, "sanity: SCHEDSAN collected it"
        assert stats.nodes["/apps"].violations == 1
        assert metrics.registry.snapshot()["sched.violations"] == 1

    def test_violation_event_carries_rule_and_node(self):
        scheduler, thread = self.make_violation_scenario()
        seen = []
        with ev.BUS.subscription(seen.append):
            scheduler.charge(thread, 1_000, now=7)
        violations = [e for e in seen if e.kind == ev.VIOLATION]
        assert len(violations) == 1
        event = violations[0]
        assert event.time == 7
        assert event.get("rule") == "charge-without-dispatch"
        assert event.get("node") == "/apps"
        assert "without a matching pick_next" in event.get("message")
