"""Gantt rendering and trace-file workloads."""

import pytest

from repro.errors import WorkloadError
from repro.threads.segments import Compute
from repro.units import MS, SECOND
from repro.viz.gantt import gantt_chart
from repro.workloads.tracefile import (
    load_frame_trace,
    save_frame_trace,
    workload_from_trace,
)

KILO = 1000


class TestGantt:
    def test_alternating_threads_render(self, harness):
        a = harness.spawn_segments("aa", [Compute(20 * KILO)])
        b = harness.spawn_segments("bb", [Compute(20 * KILO)])
        harness.machine.run_until(SECOND)
        chart = gantt_chart(harness.recorder, [a, b], start=0,
                            end=40 * MS, width=40, title="cpu")
        lines = chart.splitlines()
        assert lines[0] == "cpu"
        row_a = lines[1]
        row_b = lines[2]
        assert row_a.startswith("aa |")
        # a runs the 1st and 3rd quarter; b the 2nd and 4th
        strip_a = row_a.split("|")[1]
        strip_b = row_b.split("|")[1]
        assert strip_a[:10].count("#") == 10
        assert strip_b[:10].count(".") == 10
        assert strip_b[10:20].count("#") == 10

    def test_default_end_covers_timeline(self, harness):
        a = harness.spawn_segments("a", [Compute(5 * KILO)])
        harness.machine.run_until(SECOND)
        chart = gantt_chart(harness.recorder, [a])
        assert "#" in chart


class TestTraceFile:
    def test_plain_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        save_frame_trace(path, [100, 200, 300], header_comment="test clip")
        assert load_frame_trace(path) == [100, 200, 300]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        with open(path, "w") as handle:
            handle.write("# header\n100\n\n200  # inline\n")
        assert load_frame_trace(path) == [100, 200]

    def test_csv_column(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        with open(path, "w") as handle:
            handle.write("frame,cost\n0,1000\n1,2000\n")
        assert load_frame_trace(path, column="cost") == [1000, 2000]

    def test_missing_csv_column(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        with open(path, "w") as handle:
            handle.write("frame,cost\n0,1000\n")
        with pytest.raises(WorkloadError):
            load_frame_trace(path, column="cycles")

    def test_scale(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        save_frame_trace(path, [100])
        assert load_frame_trace(path, scale=2.5) == [250]

    def test_bad_values_rejected(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        with open(path, "w") as handle:
            handle.write("abc\n")
        with pytest.raises(WorkloadError):
            load_frame_trace(path)
        with open(path, "w") as handle:
            handle.write("0\n")
        with pytest.raises(WorkloadError):
            load_frame_trace(path)

    def test_empty_rejected(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        with open(path, "w") as handle:
            handle.write("# nothing\n")
        with pytest.raises(WorkloadError):
            load_frame_trace(path)

    def test_workload_from_trace_runs_on_machine(self, tmp_path, harness):
        path = str(tmp_path / "trace.txt")
        save_frame_trace(path, [KILO, 2 * KILO])
        workload = workload_from_trace(path, loop=3)
        from repro.threads.thread import SimThread
        thread = SimThread("player", workload)
        harness.leaf.attach_thread(thread)
        harness.machine.spawn(thread)
        harness.machine.run_until(SECOND)
        assert thread.stats.markers["frames"] == 6
        assert thread.stats.work_done == 3 * (KILO + 2 * KILO)
