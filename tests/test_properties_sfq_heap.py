"""Property tests for the indexed-heap SFQ dispatch (hypothesis).

The queue dispatches from a lazy-deletion heap keyed by
``(start, arrival_seq)``.  These properties pin the heap to the definition
it optimizes: every pick must return exactly the entity a naive linear
scan over the runnable records would select, under arbitrary interleaved
runnable/blocked/serve scripts and in both tag-math modes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sfq import SfqQueue
from repro.core.tags import TagMath


class Entity:
    """A minimal weighted schedulable for driving the queue directly."""

    def __init__(self, index: int, weight: int) -> None:
        self.index = index
        self.weight = weight

    def __repr__(self) -> str:
        return "E%d(w=%d)" % (self.index, self.weight)


def linear_scan_winner(queue):
    """The dispatch winner by definition: min (start, arrival_seq) scan."""
    arena = queue.arena
    best = None
    for slot in arena.live_slots():
        if not arena.run[slot]:
            continue
        key = (arena.start[slot], arena.seq[slot])
        if best is None or key < best[0]:
            best = (key, arena.ent[slot])
    return None if best is None else best[1]


#: an action script: (op, entity_index, charge_length)
scripts = st.lists(
    st.tuples(st.sampled_from(["run", "block", "serve"]),
              st.integers(0, 3), st.integers(1, 64)),
    min_size=1, max_size=150)
weight_lists = st.lists(st.integers(1, 9), min_size=4, max_size=4)
tag_modes = st.sampled_from([True, False])


@settings(max_examples=60, deadline=None)
@given(script=scripts, weights=weight_lists, exact=tag_modes)
def test_heap_pick_matches_linear_scan(script, weights, exact):
    queue = SfqQueue(TagMath(exact=exact))
    entities = [Entity(index, weight) for index, weight in enumerate(weights)]
    for entity in entities:
        queue.add(entity)
    for op, index, length in script:
        entity = entities[index]
        if op == "run":
            queue.set_runnable(entity)
        elif op == "block":
            queue.set_blocked(entity)
        else:
            expected = linear_scan_winner(queue)
            picked = queue.pick()
            assert picked is expected, (
                "heap picked %r but the linear scan selects %r"
                % (picked, expected))
            if picked is not None:
                queue.charge(picked, length)
    # Drain: with everything runnable, repeated serve must keep agreeing.
    for entity in entities:
        queue.set_runnable(entity)
    for length in range(1, 12):
        expected = linear_scan_winner(queue)
        picked = queue.pick()
        assert picked is expected
        queue.charge(picked, length)


@settings(max_examples=40, deadline=None)
@given(script=scripts, weights=weight_lists, exact=tag_modes)
def test_runnable_count_matches_records(script, weights, exact):
    queue = SfqQueue(TagMath(exact=exact))
    entities = [Entity(index, weight) for index, weight in enumerate(weights)]
    for entity in entities:
        queue.add(entity)
    for op, index, length in script:
        entity = entities[index]
        if op == "run":
            queue.set_runnable(entity)
        elif op == "block":
            queue.set_blocked(entity)
        else:
            picked = queue.pick()
            if picked is not None:
                queue.charge(picked, length)
        live = sum(1 for slot in queue.arena.live_slots()
                   if queue.arena.run[slot])
        assert queue.runnable_count == live
        assert queue.has_runnable() == (live > 0)


@settings(max_examples=40, deadline=None)
@given(script=scripts, weights=weight_lists)
def test_exact_and_float_modes_agree_on_dispatch_order(script, weights):
    """With small integer lengths/weights the two modes order identically.

    Floats are exact for values of the form ``n / w`` with ``w <= 9`` only
    up to rounding, so this property uses power-of-two weights where float
    arithmetic is lossless — the dispatch sequences must then be equal.
    """
    pow2_weights = [1 << (weight % 4) for weight in weights]
    queues = [SfqQueue(TagMath(exact=True)), SfqQueue(TagMath(exact=False))]
    entity_sets = []
    for queue in queues:
        entities = [Entity(index, weight)
                    for index, weight in enumerate(pow2_weights)]
        for entity in entities:
            queue.add(entity)
        entity_sets.append(entities)
    picks = ([], [])
    for op, index, length in script:
        for side, queue in enumerate(queues):
            entity = entity_sets[side][index]
            if op == "run":
                queue.set_runnable(entity)
            elif op == "block":
                queue.set_blocked(entity)
            else:
                picked = queue.pick()
                picks[side].append(None if picked is None else picked.index)
                if picked is not None:
                    queue.charge(picked, length)
    assert picks[0] == picks[1]
