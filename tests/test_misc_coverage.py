"""Coverage for small corners: tags, errors, node traversal, costs,
interface defaults."""

from fractions import Fraction

import pytest

from repro.core.node import InternalNode, LeafNode, require_leaf
from repro.core.structure import SchedulingStructure
from repro.core.tags import EXACT, FLOAT, TagMath
from repro.cpu.costs import LinearCostModel, SchedulingCostModel
from repro.cpu.interface import TopScheduler
from repro.errors import (
    AdmissionError,
    NodeBusyError,
    NodeExistsError,
    NodeNotFoundError,
    NotALeafError,
    ReproError,
    SchedulingError,
    SimulationError,
    StructureError,
    WorkloadError,
)
from repro.schedulers.base import LeafScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.units import US


class TestTagMath:
    def test_exact_mode(self):
        math = TagMath(exact=True)
        assert math.zero() == Fraction(0)
        assert math.ratio(10, 3) == Fraction(10, 3)
        assert math.advance(Fraction(1), 10, 3) == Fraction(13, 3)

    def test_float_mode(self):
        math = TagMath(exact=False)
        assert math.zero() == 0.0
        assert isinstance(math.ratio(10, 3), float)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            EXACT.ratio(10, 0)
        with pytest.raises(ValueError):
            FLOAT.ratio(10, -1)

    def test_shared_instances(self):
        assert EXACT.exact is True
        assert FLOAT.exact is False
        assert "exact=True" in repr(EXACT)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        SimulationError, SchedulingError, StructureError, AdmissionError,
        WorkloadError, NodeExistsError, NodeNotFoundError, NodeBusyError,
        NotALeafError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_structure_errors_nest(self):
        assert issubclass(NodeExistsError, StructureError)
        assert issubclass(NodeBusyError, StructureError)
        assert issubclass(NotALeafError, StructureError)


class TestNodeHelpers:
    def test_require_leaf(self):
        structure = SchedulingStructure()
        internal = structure.mknod("/a", 1)
        leaf = structure.mknod("/b", 1, scheduler=SfqScheduler())
        assert require_leaf(leaf) is leaf
        with pytest.raises(NotALeafError):
            require_leaf(internal)

    def test_iter_subtree_mixed(self):
        structure = SchedulingStructure()
        a = structure.mknod("/a", 1)
        structure.mknod("/a/x", 1, scheduler=SfqScheduler())
        structure.mknod("/a/y", 1)
        paths = [n.path for n in a.iter_subtree()]
        assert paths == ["/a", "/a/x", "/a/y"]

    def test_node_repr(self):
        structure = SchedulingStructure()
        leaf = structure.mknod("/l", 2, scheduler=SfqScheduler())
        assert "leaf" in repr(leaf)
        assert "/l" in repr(leaf)

    def test_root_path(self):
        assert SchedulingStructure().root.path == "/"

    def test_remove_child_validates(self):
        structure = SchedulingStructure()
        a = structure.mknod("/a", 1)
        foreign = InternalNode("x", 1, None)
        with pytest.raises(StructureError):
            structure.root.remove_child(foreign)
        del a


class TestCostModels:
    def test_base_model_is_free(self):
        assert SchedulingCostModel().dispatch_cost(10, True) == 0

    def test_linear_model_formula(self):
        model = LinearCostModel(base_ns=2 * US, per_level_ns=1 * US,
                                context_switch_ns=10 * US)
        assert model.dispatch_cost(3, False) == 5 * US
        assert model.dispatch_cost(3, True) == 15 * US


class TestTopSchedulerDefaults:
    def test_abstract_methods_raise(self):
        scheduler = TopScheduler()
        with pytest.raises(NotImplementedError):
            scheduler.pick_next(0)
        with pytest.raises(NotImplementedError):
            scheduler.has_runnable()
        assert scheduler.decision_depth == 1
        assert scheduler.should_preempt(None, None, 0) is False

    def test_leaf_scheduler_defaults(self):
        scheduler = LeafScheduler()
        assert scheduler.quantum_for(None) is None
        assert scheduler.should_preempt(None, None, 0) is False
        with pytest.raises(NotImplementedError):
            scheduler.pick_next(0)


class TestLeafNodeState:
    def test_leaf_holds_thread_set(self):
        structure = SchedulingStructure()
        leaf = structure.mknod("/l", 1, scheduler=SfqScheduler())
        from repro.threads.segments import SegmentListWorkload
        from repro.threads.thread import SimThread
        thread = SimThread("t", SegmentListWorkload([]))
        leaf.attach_thread(thread)
        assert thread in leaf.threads
        leaf.detach_thread(thread)
        assert thread.leaf is None
        assert not leaf.threads

    def test_weight_validation_on_node(self):
        structure = SchedulingStructure()
        node = structure.mknod("/n", 1)
        with pytest.raises(StructureError):
            node.set_weight(0)
