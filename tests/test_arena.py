"""Tests for the columnar SFQ arena (``repro.core.arena``).

The arena is the tentpole of the engine refactor: all per-entity SFQ
state lives in flat parallel columns indexed by a dense slot id, with a
free list recycling slots on removal.  These tests pin the two
invariants that make recycling safe — version monotonicity and
generation hygiene (no tag/weight leakage across occupants) — both at
the arena level and through the public ``mknod``/``rmnod`` churn path,
including a SCHEDSAN-sanitized run over a churned tree.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arena import SfqArena
from repro.core.sfq import SfqQueue
from repro.core.structure import SchedulingStructure
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.units import MS

from tests.conftest import Harness, compute


class Entity:
    def __init__(self, index: int, weight: int = 1) -> None:
        self.index = index
        self.weight = weight

    def __repr__(self) -> str:
        return "E%d(w=%d)" % (self.index, self.weight)


class TestArenaBasics:
    def test_alloc_grows_columns_in_step(self):
        arena = SfqArena()
        slots = [arena.alloc(Entity(i), 0, i) for i in range(5)]
        assert slots == [0, 1, 2, 3, 4]
        assert len(arena) == 5
        assert arena.capacity == 5
        for column in (arena.ent, arena.start, arena.fin, arena.run,
                       arena.ver, arena.seq):
            assert len(column) == 5

    def test_release_recycles_lifo(self):
        arena = SfqArena()
        for i in range(4):
            arena.alloc(Entity(i), 0, i)
        arena.release(1)
        arena.release(3)
        assert arena.alloc(Entity(10), 0, 10) == 3
        assert arena.alloc(Entity(11), 0, 11) == 1
        assert arena.capacity == 4  # no growth while the free list serves

    def test_version_is_monotonic_across_reuse(self):
        arena = SfqArena()
        slot = arena.alloc(Entity(0), 0, 0)
        assert arena.ver[slot] == 0
        for generation in range(1, 4):
            arena.release(slot)
            reused = arena.alloc(Entity(generation), 0, generation)
            assert reused == slot
            assert arena.ver[slot] == generation  # never resets

    def test_alloc_resets_tags_and_seq(self):
        arena = SfqArena()
        slot = arena.alloc(Entity(0), 0, 7)
        arena.start[slot] = 123
        arena.fin[slot] = 456
        arena.run[slot] = 1
        arena.release(slot)
        assert arena.ent[slot] is None
        assert arena.run[slot] == 0
        newcomer = Entity(1)
        assert arena.alloc(newcomer, 0, 42) == slot
        assert arena.start[slot] == 0
        assert arena.fin[slot] == 0
        assert arena.run[slot] == 0
        assert arena.seq[slot] == 42
        assert arena.ent[slot] is newcomer

    def test_live_slots_skips_freed(self):
        arena = SfqArena()
        for i in range(4):
            arena.alloc(Entity(i), 0, i)
        arena.release(2)
        assert list(arena.live_slots()) == [0, 1, 3]
        assert len(arena) == 3
        assert "live=3" in repr(arena) and "capacity=4" in repr(arena)


class TestQueueChurn:
    """add/remove churn through the SfqQueue facade must not leak state."""

    def test_reused_slot_starts_clean(self):
        queue = SfqQueue()
        old, stay = Entity(0, weight=2), Entity(1, weight=3)
        queue.add(old)
        queue.add(stay)
        queue.set_runnable(old)
        queue.set_runnable(stay)
        assert queue.pick() is old
        queue.charge(old, 600)  # F(old) = 300 = its new start tag
        queue.set_blocked(old)
        queue.remove(old)
        assert queue.pick() is stay
        queue.charge(stay, 900)  # F(stay) = 300
        assert queue.pick() is stay  # v jumps to stay's start tag: 300
        fresh = Entity(2, weight=5)
        queue.add(fresh)
        # generation hygiene: the newcomer's tags are the zero tag —
        # nothing of the previous occupant's S=F=300 survives slot reuse
        assert queue.start_tag(fresh) == queue.tags.zero()
        assert queue.finish_tag(fresh) == queue.tags.zero()
        assert not queue.is_runnable(fresh)
        # Rule 1 on first eligibility: S = max(v, 0) = v, so the late
        # joiner gets no catch-up credit — and no inherited tags either
        queue.set_runnable(fresh)
        assert queue.start_tag(fresh) == queue.virtual_time
        assert queue.virtual_time == 300

    def test_stale_heap_entry_never_elects_new_occupant(self):
        queue = SfqQueue()
        a, b = Entity(0), Entity(1)
        queue.add(a)
        queue.add(b)
        queue.set_runnable(a)
        queue.set_runnable(b)
        # a's heap entry is now live; block+remove a, then reuse its slot
        queue.set_blocked(a)
        queue.remove(a)
        c = Entity(2)
        queue.add(c)
        # the stale entry for a must not surface c before it is runnable
        assert queue.pick() is b
        queue.set_runnable(c)
        queue.charge(b, 100)
        assert queue.pick() in (b, c)  # sane election, no crash


#: churn script: op in {add, remove, run, block, serve}; index selects an
#: entity id deterministically; weight seeds new entities
churn_ops = st.lists(
    st.tuples(st.sampled_from(["add", "remove", "run", "block", "serve"]),
              st.integers(0, 5), st.integers(1, 9)),
    min_size=1, max_size=80)


class TestChurnProperties:
    @settings(max_examples=60, deadline=None)
    @given(script=churn_ops)
    def test_churned_queue_matches_churn_free_oracle(self, script):
        """Random add/remove/serve churn: live-entity observables must be
        derivable from the script alone — nothing the previous slot
        occupant did may show through, whatever slot reuse happened."""
        queue = SfqQueue()
        live = {}
        expected_tags = {}
        next_id = 0
        for op, pick_index, weight in script:
            if op == "add":
                entity = Entity(next_id, weight)
                next_id += 1
                queue.add(entity)
                live[entity.index] = entity
                # add() stamps S = F = 0; Rule 1 catches the tags up to v
                # at first set_runnable, never at admission
                zero = queue.tags.zero()
                expected_tags[entity.index] = (zero, zero)
                continue
            if not live:
                continue
            key = sorted(live)[pick_index % len(live)]
            entity = live[key]
            if op == "remove":
                if queue.is_runnable(entity):
                    queue.set_blocked(entity)
                queue.remove(entity)
                del live[key]
                del expected_tags[key]
            elif op == "run":
                if not queue.is_runnable(entity):
                    # Rule 1: S = max(v, F); the finish tag is untouched
                    start = max(queue.virtual_time,
                                expected_tags[key][1])
                    queue.set_runnable(entity)
                    expected_tags[key] = (start, expected_tags[key][1])
            elif op == "block":
                if queue.is_runnable(entity):
                    queue.set_blocked(entity)
            elif op == "serve":
                if queue.is_runnable(entity):
                    length = 60 * weight
                    start = queue.start_tag(entity)
                    queue.charge(entity, length)
                    expected_tags[key] = (
                        queue.start_tag(entity), queue.finish_tag(entity))
                    assert queue.finish_tag(entity) == \
                        start + Fraction(length, entity.weight)
        for key, entity in live.items():
            start, fin = expected_tags[key]
            assert queue.start_tag(entity) == start
            assert queue.finish_tag(entity) == fin
        assert len(queue) == len(live)

    @settings(max_examples=40, deadline=None)
    @given(rounds=st.lists(st.integers(1, 6), min_size=1, max_size=12))
    def test_slot_population_is_stable_under_churn(self, rounds):
        """Repeated add-all/remove-all waves reuse slots instead of
        growing the columns without bound."""
        queue = SfqQueue()
        arena = queue.arena
        high_water = 0
        for count in rounds:
            batch = [Entity(i) for i in range(count)]
            for entity in batch:
                queue.add(entity)
            high_water = max(high_water, count)
            assert arena.capacity <= high_water
            for entity in batch:
                queue.remove(entity)
            assert len(queue) == 0
        assert arena.capacity == high_water
        assert len(arena.free) == high_water


class TestStructureChurnSanitized:
    """mknod/rmnod churn on a live machine, under SCHEDSAN."""

    def _churn(self):
        h = Harness()
        for generation in range(6):
            name = "/gen%d" % (generation % 2)
            leaf = h.structure.mknod(name, 1 + generation % 3,
                                     scheduler=SfqScheduler())
            thread = h.spawn_segments(
                "churn-%d" % generation, [compute(40_000)], leaf=leaf)
            h.machine.run_until(h.machine.engine.now + 100 * MS)
            assert thread.stats.exited_at is not None
            # the leaf is idle again: remove it, recycling its arena slot
            h.structure.rmnod(leaf)
        h.spawn_dhrystone("tail")
        h.machine.run_until(h.machine.engine.now + 20 * MS)
        return h

    def test_rmnod_churn_recycles_root_slots(self):
        h = self._churn()
        root_queue = h.structure.root.queue
        # 2 generations alternating on 2 names + the permanent leaf: the
        # arena must have recycled rather than grown a row per generation
        assert root_queue.arena.capacity <= 4

    def test_rmnod_churn_is_schedsan_clean(self, monkeypatch):
        from repro.devtools import schedsan

        monkeypatch.setenv(schedsan.ENV_ENABLE, "1")
        monkeypatch.delenv(schedsan.ENV_MODE, raising=False)
        h = self._churn()
        assert h.machine.scheduler.violations == []

    def test_weight_does_not_leak_across_generations(self):
        h = Harness()
        heavy = h.structure.mknod("/churn", 9, scheduler=SfqScheduler())
        thread = h.spawn_segments("heavy", [compute(40_000)], leaf=heavy)
        h.machine.run_until(100 * MS)
        assert thread.stats.exited_at is not None
        h.structure.rmnod(heavy)
        light = h.structure.mknod("/churn", 2, scheduler=SfqScheduler())
        root_queue = h.structure.root.queue
        slot = root_queue.slot_of(light)
        # weights are read live from the node: the slot sees 2, not 9
        assert root_queue.arena.ent[slot] is light
        assert light.weight == 2
        start = root_queue.start_tag(light)
        h.spawn_segments("light", [compute(40_000)], leaf=light)
        h.machine.run_until(h.machine.engine.now + 20 * MS)
        # F - S = length/weight with the *new* weight
        assert root_queue.finish_tag(light) > start
