"""Trace export to JSON and CSV."""

import json

import pytest

from repro.threads.segments import Compute, SleepFor
from repro.trace.export import (
    SCHEMA_VERSION,
    load_trace_dict,
    slices_to_csv,
    trace_to_dict,
    trace_to_json,
)
from repro.units import MS, SECOND

KILO = 1000


@pytest.fixture
def run(harness):
    a = harness.spawn_segments("a", [Compute(5 * KILO), SleepFor(2 * MS),
                                     Compute(5 * KILO)])
    b = harness.spawn_dhrystone("b")
    harness.machine.run_until(100 * MS)
    return harness, a, b


class TestJsonExport:
    def test_schema_and_threads(self, run):
        harness, a, b = run
        payload = trace_to_dict(harness.recorder, [a, b])
        assert payload["schema"] == SCHEMA_VERSION
        assert [t["name"] for t in payload["threads"]] == ["a", "b"]

    def test_totals_match_stats(self, run):
        harness, a, b = run
        payload = trace_to_dict(harness.recorder, [a, b])
        for entry, thread in zip(payload["threads"], [a, b]):
            assert entry["total_work"] == thread.stats.work_done
            assert entry["tid"] == thread.tid

    def test_json_round_trip(self, run):
        harness, a, b = run
        text = trace_to_json(harness.recorder, [a, b], indent=2)
        payload = load_trace_dict(json.loads(text))
        assert payload["threads"][0]["slices"]

    def test_lifecycle_events_present(self, run):
        harness, a, b = run
        payload = trace_to_dict(harness.recorder, [a])
        entry = payload["threads"][0]
        assert entry["blocks"] and entry["wakes"]
        assert entry["exited_at"] is not None

    def test_schema_validation(self):
        with pytest.raises(ValueError):
            load_trace_dict({"schema": 999})
        with pytest.raises(ValueError):
            load_trace_dict({"schema": SCHEMA_VERSION})


class TestCsvExport:
    def test_header_and_time_order(self, run):
        harness, a, b = run
        text = slices_to_csv(harness.recorder, [a, b])
        lines = text.strip().splitlines()
        assert lines[0] == ("thread,tid,t_start_ns,t_end_ns,"
                            "work_instructions")
        starts = [int(line.split(",")[2]) for line in lines[1:]]
        assert starts == sorted(starts)

    def test_work_column_sums(self, run):
        harness, a, b = run
        text = slices_to_csv(harness.recorder, [a, b])
        total = sum(int(line.split(",")[4])
                    for line in text.strip().splitlines()[1:])
        assert total == a.stats.work_done + b.stats.work_done
