"""Trace export to JSON and CSV."""

import json

import pytest

from repro.threads.segments import Compute, SleepFor
from repro.trace.export import (
    SCHEMA_VERSION,
    load_trace_dict,
    slices_to_csv,
    trace_to_dict,
    trace_to_json,
)
from repro.units import MS, SECOND

KILO = 1000


@pytest.fixture
def run(harness):
    a = harness.spawn_segments("a", [Compute(5 * KILO), SleepFor(2 * MS),
                                     Compute(5 * KILO)])
    b = harness.spawn_dhrystone("b")
    harness.machine.run_until(100 * MS)
    return harness, a, b


class TestJsonExport:
    def test_schema_and_threads(self, run):
        harness, a, b = run
        payload = trace_to_dict(harness.recorder, [a, b])
        assert payload["schema"] == SCHEMA_VERSION
        assert [t["name"] for t in payload["threads"]] == ["a", "b"]

    def test_totals_match_stats(self, run):
        harness, a, b = run
        payload = trace_to_dict(harness.recorder, [a, b])
        for entry, thread in zip(payload["threads"], [a, b]):
            assert entry["total_work"] == thread.stats.work_done
            assert entry["tid"] == thread.tid

    def test_json_round_trip(self, run):
        harness, a, b = run
        text = trace_to_json(harness.recorder, [a, b], indent=2)
        payload = load_trace_dict(json.loads(text))
        assert payload["threads"][0]["slices"]

    def test_lifecycle_events_present(self, run):
        harness, a, b = run
        payload = trace_to_dict(harness.recorder, [a])
        entry = payload["threads"][0]
        assert entry["blocks"] and entry["wakes"]
        assert entry["exited_at"] is not None

    def test_schema_validation(self):
        with pytest.raises(ValueError):
            load_trace_dict({"schema": 999})
        with pytest.raises(ValueError):
            load_trace_dict({"schema": SCHEMA_VERSION})


class TestDeepValidation:
    def make_payload(self, run):
        harness, a, b = run
        return trace_to_dict(harness.recorder, [a, b])

    def test_full_export_validates(self, run):
        payload = self.make_payload(run)
        assert load_trace_dict(payload) is payload

    def test_json_round_trip_validates(self, run):
        harness, a, b = run
        text = trace_to_json(harness.recorder, [a, b])
        restored = load_trace_dict(json.loads(text))
        original = trace_to_dict(harness.recorder, [a, b])
        # JSON turns slice/interrupt tuples into lists; compare normalised.
        assert restored == json.loads(json.dumps(original))

    def test_missing_thread_key_rejected(self, run):
        payload = self.make_payload(run)
        del payload["threads"][0]["wakes"]
        with pytest.raises(ValueError, match="missing key 'wakes'"):
            load_trace_dict(payload)

    def test_non_integer_tid_rejected(self, run):
        payload = self.make_payload(run)
        payload["threads"][0]["tid"] = "zero"
        with pytest.raises(ValueError, match="'tid'"):
            load_trace_dict(payload)

    def test_backwards_slice_rejected(self, run):
        payload = self.make_payload(run)
        payload["threads"][0]["slices"][0] = [10, 5, 100]
        with pytest.raises(ValueError, match="ends before it starts"):
            load_trace_dict(payload)

    def test_negative_slice_work_rejected(self, run):
        payload = self.make_payload(run)
        t0, t1, __ = payload["threads"][0]["slices"][0]
        payload["threads"][0]["slices"][0] = [t0, t1, -1]
        with pytest.raises(ValueError, match="negative work"):
            load_trace_dict(payload)

    def test_unsorted_slices_rejected(self, run):
        payload = self.make_payload(run)
        slices = payload["threads"][1]["slices"]
        assert len(slices) >= 2
        slices[0], slices[1] = slices[1], slices[0]
        with pytest.raises(ValueError, match="before the previous slice"):
            load_trace_dict(payload)

    def test_slice_work_exceeding_total_rejected(self, run):
        payload = self.make_payload(run)
        payload["threads"][0]["total_work"] = 0
        with pytest.raises(ValueError, match="exceeds total_work"):
            load_trace_dict(payload)

    def test_backwards_event_list_rejected(self, run):
        payload = self.make_payload(run)
        dispatches = payload["threads"][1]["dispatches"]
        assert len(dispatches) >= 2
        payload["threads"][1]["dispatches"] = list(reversed(dispatches))
        with pytest.raises(ValueError, match="go backwards"):
            load_trace_dict(payload)

    def test_malformed_interrupt_pair_rejected(self, run):
        payload = self.make_payload(run)
        payload["interrupts"] = [[100, 50, 7]]
        with pytest.raises(ValueError, match="interrupts"):
            load_trace_dict(payload)

    def test_threads_must_be_list(self):
        with pytest.raises(ValueError, match="'threads' must be a list"):
            load_trace_dict({"schema": SCHEMA_VERSION, "threads": {}})


class TestCsvExport:
    def test_header_and_time_order(self, run):
        harness, a, b = run
        text = slices_to_csv(harness.recorder, [a, b])
        lines = text.strip().splitlines()
        assert lines[0] == ("thread,tid,t_start_ns,t_end_ns,"
                            "work_instructions")
        starts = [int(line.split(",")[2]) for line in lines[1:]]
        assert starts == sorted(starts)

    def test_work_column_sums(self, run):
        harness, a, b = run
        text = slices_to_csv(harness.recorder, [a, b])
        total = sum(int(line.split(",")[4])
                    for line in text.strip().splitlines()[1:])
        assert total == a.stats.work_done + b.stats.work_done
