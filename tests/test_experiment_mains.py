"""Smoke tests: every experiment module's main() prints its figure."""

import pytest

from repro.experiments import (
    ablation_bounds,
    ablation_currency,
    ablation_delay,
    ablation_fairness,
    ablation_fluctuation,
    ablation_lottery,
    ablation_overload,
    ablation_reserves,
    ablation_tagmath,
    figure1,
    figure3,
    figure9,
    figure11,
)

# The heavyweight mains (figure5/7/8/10 at paper scale) are exercised by
# benchmarks/; here we cover the cheap ones plus every ablation's main,
# monkeypatching durations down where the module exposes them.


@pytest.mark.parametrize("module,needle", [
    (figure1, "Figure 1"),
    (figure3, "Figure 3"),
    (figure11, "Figure 11"),
])
def test_figure_mains(module, needle, capsys):
    module.main()
    assert needle in capsys.readouterr().out


def test_figure9_main(capsys):
    figure9.main()
    out = capsys.readouterr().out
    assert "Figure 9" in out
    assert "latency" in out


@pytest.mark.parametrize("module,needle", [
    (ablation_fluctuation, "AB1"),
    (ablation_bounds, "AB2"),
    (ablation_fairness, "AB3"),
    (ablation_tagmath, "AB4"),
    (ablation_lottery, "AB5"),
    (ablation_overload, "AB6"),
    (ablation_currency, "AB7"),
    (ablation_reserves, "AB8"),
    (ablation_delay, "AB9"),
])
def test_ablation_mains(module, needle, capsys, monkeypatch):
    # shrink the default duration so mains stay fast in CI
    original_run = module.run

    def quick_run(*args, **kwargs):
        from repro.units import SECOND
        kwargs.setdefault("duration", 6 * SECOND)
        return original_run(*args, **kwargs)

    monkeypatch.setattr(module, "run", quick_run)
    module.main()
    assert needle in capsys.readouterr().out
