"""Tree rendering and the Figure 6 descriptor experiment."""

from repro.core.structure import SchedulingStructure
from repro.experiments import figure6
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.schedulers.svr4 import Svr4TimeSharing
from repro.threads.segments import SegmentListWorkload
from repro.threads.thread import SimThread
from repro.viz.tree import render_structure


class TestRenderStructure:
    def build(self):
        structure = SchedulingStructure()
        structure.mknod("/rt", 1, scheduler=SfqScheduler())
        best = structure.mknod("/best", 6)
        structure.mknod("u1", 1, parent=best, scheduler=SfqScheduler())
        structure.mknod("u2", 1, parent=best, scheduler=Svr4TimeSharing())
        return structure

    def test_one_line_per_node(self):
        structure = self.build()
        lines = render_structure(structure).splitlines()
        assert len(lines) == 5  # root + 4 nodes

    def test_shows_weights_and_algorithms(self):
        text = render_structure(self.build())
        assert "w=6" in text
        assert "[sfq]" in text
        assert "[svr4-ts]" in text

    def test_nesting_markers(self):
        text = render_structure(self.build())
        assert "├── " in text
        assert "└── " in text
        assert "│   " in text or "    └── " in text

    def test_threads_listed(self):
        structure = self.build()
        leaf = structure.parse("/rt")
        leaf.attach_thread(SimThread("audio", SegmentListWorkload([])))
        text = render_structure(structure)
        assert "{audio}" in text

    def test_runnable_marker(self):
        structure = self.build()
        leaf = structure.parse("/rt")
        leaf.runnable = True
        assert "[sfq] *" in render_structure(structure)


class TestFigure6Experiment:
    def test_lists_paper_nodes(self):
        result = figure6.run()
        paths = result.column("node")
        assert paths == ["/SFQ-1", "/SFQ-2", "/SVR4"]
        assert result.column("weight") == [2, 6, 1]

    def test_render_included(self):
        result = figure6.run()
        assert any("└── SVR4" in note for note in result.notes)
