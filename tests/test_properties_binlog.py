"""Property-based round-trip and rejection tests for the binlog codec."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.binlog import (
    BinaryTraceReader,
    BinlogError,
    decode_zigzag,
    encode_varint,
    encode_zigzag,
    read_events,
    write_events,
)
from repro.obs.events import Event


def decode_varint(raw):
    """Reference LEB128 decoder; returns (value, bytes_consumed)."""
    result = 0
    shift = 0
    for index, byte in enumerate(raw):
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, index + 1
        shift += 7
    raise ValueError("unterminated varint")


# unbounded on purpose: Python ints have no 64-bit ceiling and neither
# does the wire format
unsigned_ints = st.integers(min_value=0)
signed_ints = st.integers()

field_names = st.text(
    st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=12)

values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),  # NaN != NaN breaks dict equality, not us
    st.text(st.characters(blacklist_categories=("Cs",)), max_size=24),
)

events = st.builds(
    Event,
    kind=st.text(st.characters(blacklist_categories=("Cs",)),
                 min_size=1, max_size=16),
    time=st.integers(min_value=0, max_value=1 << 70),
    data=st.dictionaries(field_names, values, max_size=8),
)

streams = st.lists(events, max_size=40)


@given(unsigned_ints)
def test_varint_roundtrip(value):
    decoded, consumed = decode_varint(encode_varint(value))
    assert decoded == value
    assert consumed == len(encode_varint(value))


@given(signed_ints)
def test_zigzag_roundtrip(value):
    decoded, __ = decode_varint(encode_zigzag(value))
    assert decode_zigzag(decoded) == value


@given(st.integers(min_value=0))
def test_zigzag_mapping_is_a_bijection_near_zero(magnitude):
    positive = decode_varint(encode_zigzag(magnitude))[0]
    negative = decode_varint(encode_zigzag(-magnitude))[0]
    if magnitude:
        assert positive != negative
    assert decode_zigzag(positive) == magnitude
    assert decode_zigzag(negative) == -magnitude


@settings(max_examples=60, deadline=None)
@given(streams)
def test_arbitrary_stream_roundtrips_identically(stream):
    buffer = io.BytesIO()
    assert write_events(stream, buffer) == len(stream)
    decoded = list(read_events(io.BytesIO(buffer.getvalue())))
    assert len(decoded) == len(stream)
    for original, copy in zip(stream, decoded):
        assert copy.kind == original.kind
        assert copy.time == original.time
        assert copy.data == original.data
        for key in original.data:
            assert type(copy.data[key]) is type(original.data[key])


@settings(max_examples=40, deadline=None)
@given(streams, st.data())
def test_any_truncation_prefix_is_rejected(stream, data):
    buffer = io.BytesIO()
    write_events(stream, buffer)
    raw = buffer.getvalue()
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    with pytest.raises(BinlogError):
        BinaryTraceReader(io.BytesIO(raw[:cut]))


@settings(max_examples=40, deadline=None)
@given(streams, st.data())
def test_any_single_byte_corruption_is_rejected(stream, data):
    buffer = io.BytesIO()
    write_events(stream, buffer)
    raw = bytearray(buffer.getvalue())
    index = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    raw[index] ^= flip
    with pytest.raises(BinlogError):
        BinaryTraceReader(io.BytesIO(bytes(raw)))
