"""Smoke tests: every example script runs end-to-end and tells its story."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, capsys):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "Weighted shares" in out
        assert "33.3%" in out or "33.4%" in out

    def test_video_server(self, capsys):
        out = run_example("video_server", capsys)
        assert "admitted" in out
        assert "REJECTED" in out  # admission control actually rejected some

    def test_multimedia_workstation(self, capsys):
        out = run_example("multimedia_workstation", capsys)
        assert "0 deadline misses" in out
        assert "fork bomb" in out

    def test_fairness_lab(self, capsys):
        out = run_example("fairness_lab", capsys)
        assert "SFQ" in out and "WFQ" in out and "lottery" in out

    def test_priority_inversion(self, capsys):
        out = run_example("priority_inversion", capsys)
        assert "weight donation" in out

    def test_decode_pipeline(self, capsys):
        out = run_example("decode_pipeline", capsys)
        assert "renderer" in out
        assert "30.0" in out  # held the display rate

    def test_smp_video_wall(self, capsys):
        out = run_example("smp_video_wall", capsys)
        assert "premium" in out and "economy" in out
        assert "4 CPUs" in out

    def test_trace_analysis(self, capsys):
        out = run_example("trace_analysis", capsys)
        assert "CPU occupancy" in out
        assert "JSON" in out

    def test_observability(self, capsys):
        out = run_example("observability", capsys)
        assert "schedstat-hsfq version 1" in out
        assert "sched.dispatch_latency_ns" in out
        assert "ui.perfetto.dev" in out
