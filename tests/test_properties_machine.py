"""Property-based tests of machine-level invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.cpu.machine import Machine
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.threads.segments import Compute, SegmentListWorkload, SleepFor
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.units import MS, SECOND

CAPACITY = 1_000_000
KILO = 1000

# random workloads: alternate compute/sleep segments
segment_scripts = st.lists(
    st.lists(st.tuples(st.integers(1, 40), st.integers(0, 30)),
             min_size=1, max_size=6),
    min_size=1, max_size=4)
weight_values = st.lists(st.integers(1, 8), min_size=4, max_size=4)


def build_machine(scripts, weights):
    structure = SchedulingStructure()
    leaf = structure.mknod("/apps", 1, scheduler=SfqScheduler())
    engine = Simulator()
    recorder = Recorder()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=CAPACITY, default_quantum=10 * MS,
                      tracer=recorder)
    threads = []
    for index, script in enumerate(scripts):
        segments = []
        for compute_kilo, sleep_ms in script:
            segments.append(Compute(compute_kilo * KILO))
            if sleep_ms:
                segments.append(SleepFor(sleep_ms * MS))
        thread = SimThread("t%d" % index, SegmentListWorkload(segments),
                           weight=weights[index % len(weights)])
        leaf.attach_thread(thread)
        machine.spawn(thread)
        threads.append(thread)
    return machine, engine, recorder, threads


class TestMachineInvariants:
    @given(segment_scripts, weight_values)
    @settings(max_examples=60, deadline=None)
    def test_all_work_eventually_done(self, scripts, weights):
        machine, engine, recorder, threads = build_machine(scripts, weights)
        machine.run_until(60 * SECOND)
        for thread, script in zip(threads, scripts):
            expected = sum(k * KILO for k, __ in script)
            assert thread.state is ThreadState.EXITED
            assert thread.stats.work_done == expected

    @given(segment_scripts, weight_values)
    @settings(max_examples=60, deadline=None)
    def test_time_accounting_partitions_elapsed(self, scripts, weights):
        machine, engine, recorder, threads = build_machine(scripts, weights)
        machine.run_until(60 * SECOND)
        stats = machine.stats
        assert stats.busy_time >= 0
        assert stats.idle_time(engine.now) >= 0
        assert (stats.busy_time + stats.interrupt_time + stats.overhead_time
                + stats.idle_time(engine.now)) == engine.now

    @given(segment_scripts, weight_values)
    @settings(max_examples=40, deadline=None)
    def test_busy_time_matches_work(self, scripts, weights):
        machine, engine, recorder, threads = build_machine(scripts, weights)
        machine.run_until(60 * SECOND)
        total_work = sum(t.stats.work_done for t in threads)
        # capacity 1e6: 1 instruction per microsecond; rounding at slice
        # boundaries allows ~1 us per dispatch
        slack = machine.stats.dispatches * 1000 + 1000
        assert abs(machine.stats.busy_time - total_work * 1000) <= slack

    @given(segment_scripts, weight_values)
    @settings(max_examples=40, deadline=None)
    def test_trace_slices_are_disjoint_and_ordered(self, scripts, weights):
        machine, engine, recorder, threads = build_machine(scripts, weights)
        machine.run_until(60 * SECOND)
        all_slices = []
        for thread in threads:
            trace = recorder.trace_of(thread)
            for t0, t1, work in trace.slices:
                assert 0 <= t0 <= t1
                assert work > 0
                all_slices.append((t0, t1))
        all_slices.sort()
        for (a0, a1), (b0, b1) in zip(all_slices, all_slices[1:]):
            assert a1 <= b0  # one CPU: no overlapping execution

    @given(segment_scripts, weight_values)
    @settings(max_examples=40, deadline=None)
    def test_service_curves_match_stats(self, scripts, weights):
        machine, engine, recorder, threads = build_machine(scripts, weights)
        machine.run_until(60 * SECOND)
        for thread in threads:
            trace = recorder.trace_of(thread)
            assert trace.total_work == thread.stats.work_done
