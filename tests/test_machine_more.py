"""Additional machine and hierarchy edge cases."""

import pytest

from repro.core.structure import ADMIN_SET_WEIGHT
from repro.cpu.interrupts import PeriodicInterruptSource, PoissonInterruptSource
from repro.errors import NodeBusyError
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.rng import make_rng
from repro.threads.segments import Compute, SleepFor
from repro.threads.states import ThreadState
from repro.units import MS, SECOND

from tests.conftest import Harness

KILO = 1000


class TestRunHelpers:
    def test_run_for_advances_relative(self, harness):
        harness.spawn_dhrystone("t")
        harness.machine.run_for(100 * MS)
        assert harness.engine.now == 100 * MS
        harness.machine.run_for(50 * MS)
        assert harness.engine.now == 150 * MS

    def test_spawn_at_past_time_runs_now(self, harness):
        harness.machine.run_until(100 * MS)
        thread = harness.spawn_segments("late", [Compute(KILO)])
        harness.machine.run_until(200 * MS)
        assert thread.stats.created_at == 100 * MS


class TestDeepHierarchy:
    def test_six_level_tree_allocates_correctly(self):
        harness = Harness()
        structure = harness.structure
        # /apps already exists; build /d1/d2/d3/d4/leaf with weight 1 at
        # the top: the deep leaf competes 1:1 with /apps.
        parent = structure.root
        for level in range(4):
            parent = structure.mknod("d%d" % level, 1, parent=parent)
        deep_leaf = structure.mknod("deep", 1, parent=parent,
                                    scheduler=SfqScheduler())
        shallow = harness.spawn_dhrystone("shallow")
        deep = harness.spawn_dhrystone("deep", leaf=deep_leaf)
        harness.machine.run_until(2 * SECOND)
        assert deep.stats.work_done == pytest.approx(
            shallow.stats.work_done, rel=0.01)

    def test_nested_weights_multiply(self):
        harness = Harness()
        structure = harness.structure
        # /apps (weight 1) vs /cls (weight 3) -> {x: 1, y: 2}
        cls = structure.mknod("/cls", 3)
        leaf_x = structure.mknod("x", 1, parent=cls,
                                 scheduler=SfqScheduler())
        leaf_y = structure.mknod("y", 2, parent=cls,
                                 scheduler=SfqScheduler())
        base = harness.spawn_dhrystone("base")
        tx = harness.spawn_dhrystone("tx", leaf=leaf_x)
        ty = harness.spawn_dhrystone("ty", leaf=leaf_y)
        harness.machine.run_until(4 * SECOND)
        total = base.stats.work_done + tx.stats.work_done + ty.stats.work_done
        # shares: base 1/4; x 3/4 * 1/3 = 1/4; y 3/4 * 2/3 = 1/2
        assert base.stats.work_done / total == pytest.approx(0.25, abs=0.01)
        assert tx.stats.work_done / total == pytest.approx(0.25, abs=0.01)
        assert ty.stats.work_done / total == pytest.approx(0.50, abs=0.01)


class TestRuntimeReconfiguration:
    def test_move_thread_mid_run_via_event(self, harness):
        fast = harness.structure.mknod("/fast", 9,
                                       scheduler=SfqScheduler())
        mover = harness.spawn_dhrystone("mover")
        anchor = harness.spawn_dhrystone("anchor")

        def migrate():
            # mover is RUNNABLE or RUNNING; retry at quantum boundaries
            if mover.state is ThreadState.RUNNING:
                harness.engine.after(1 * MS, migrate)
                return
            harness.structure.move(mover, "/fast")

        harness.engine.at(SECOND, migrate)
        harness.machine.run_until(3 * SECOND)
        assert mover.leaf.path == "/fast"
        # after the move, mover gets 9/10 of the CPU
        from repro.trace.metrics import throughput_series
        late = throughput_series(harness.recorder, mover, SECOND,
                                 3 * SECOND)[-1]
        assert late == pytest.approx(0.9 * SECOND / 1000, rel=0.05)

    def test_rmnod_runnable_leaf_rejected(self, harness):
        harness.spawn_dhrystone("t")
        with pytest.raises(NodeBusyError):
            harness.structure.rmnod("/apps")

    def test_rmnod_after_threads_exit(self, harness):
        extra = harness.structure.mknod("/tmp", 1, scheduler=SfqScheduler())
        thread = harness.spawn_segments("t", [Compute(KILO)], leaf=extra)
        harness.machine.run_until(SECOND)
        assert thread.state is ThreadState.EXITED
        harness.structure.rmnod("/tmp")  # now empty and idle

    def test_weight_change_during_idle_class(self, harness):
        other = harness.structure.mknod("/other", 1,
                                        scheduler=SfqScheduler())
        steady = harness.spawn_dhrystone("steady")
        sleeper = harness.spawn_segments(
            "sleeper", [SleepFor(SECOND), Compute(500 * KILO)], leaf=other)
        harness.engine.at(500 * MS, lambda: harness.structure.admin(
            "/other", ADMIN_SET_WEIGHT, 3))
        harness.machine.run_until(2 * SECOND)
        # after waking at 1 s with weight 3, sleeper gets 75%
        from repro.trace.metrics import throughput_series
        sleeper_rate = throughput_series(harness.recorder, sleeper,
                                         500 * MS, 2 * SECOND)[2]
        assert sleeper_rate == pytest.approx(0.75 * 500 * KILO, rel=0.05)


class TestInterruptsMore:
    def test_poisson_source_statistics(self, harness):
        harness.spawn_dhrystone("t")
        harness.machine.add_interrupt_source(PoissonInterruptSource(
            mean_interarrival=10 * MS, mean_service=1 * MS,
            rng=make_rng(5, "p")))
        harness.machine.run_until(10 * SECOND)
        # ~1000 interrupts stealing ~1 s total
        assert harness.machine.stats.interrupts == pytest.approx(1000,
                                                                 rel=0.15)
        assert harness.machine.stats.interrupt_time == pytest.approx(
            SECOND, rel=0.15)

    def test_two_sources_compose(self, harness):
        thread = harness.spawn_dhrystone("t")
        harness.machine.add_interrupt_source(
            PeriodicInterruptSource(period=10 * MS, service=1 * MS))
        harness.machine.add_interrupt_source(
            PeriodicInterruptSource(period=20 * MS, service=2 * MS,
                                    phase=5 * MS))
        harness.machine.run_until(2 * SECOND)
        # 10% + 10% stolen
        assert thread.stats.work_done == pytest.approx(1600 * KILO,
                                                       rel=0.03)

    def test_interrupt_exactly_at_burst_end(self, harness):
        thread = harness.spawn_segments("t", [Compute(10 * KILO)])
        # interrupt fires at the exact instant the segment would complete;
        # interrupts win the tie (lower priority value)
        harness.engine.at(10 * MS, lambda: harness.machine.interrupt(3 * MS),
                          priority=harness.machine.PRIORITY_INTERRUPT)
        harness.machine.run_until(SECOND)
        assert thread.stats.work_done == 10 * KILO
        assert thread.stats.exited_at == 13 * MS


class TestRecorderUnderSync:
    def test_mutex_block_recorded_as_block(self, harness):
        from repro.sync.mutex import Acquire, Release, SimMutex
        mutex = SimMutex("m")
        harness.spawn_segments("holder", [Acquire(mutex),
                                          Compute(10 * KILO),
                                          Release(mutex)])
        waiter = harness.spawn_segments("waiter", [Acquire(mutex),
                                                   Compute(KILO),
                                                   Release(mutex)])
        harness.machine.run_until(SECOND)
        trace = harness.recorder.trace_of(waiter)
        assert trace.blocks  # the mutex wait shows up as a block
        assert trace.wakes   # and the grant as a wake
        intervals = trace.runnable_intervals(SECOND)
        # the waiter blocked at spawn (holder won the mutex at t=0), so its
        # only runnable interval starts at the grant (10 ms)
        assert intervals == [(10 * MS, 11 * MS)]
