"""The report generator, wait-time metric, and QoS EDF option."""

import os

import pytest

from repro.errors import AdmissionError
from repro.experiments.report import generate_report, main as report_main
from repro.qos.manager import QosManager
from repro.qos.spec import HARD_RT, QosRequest
from repro.threads.segments import Compute, SleepFor
from repro.trace.metrics import wait_times
from repro.units import MS, SECOND
from repro.workloads.periodic import PeriodicWorkload

KILO = 1000


class TestReport:
    def test_generate_selected(self):
        text = generate_report(["figure3"], quick=True)
        assert "# Experiment report" in text
        assert "Figure 3" in text
        assert "| t ms |" in text

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            generate_report(["figure99"])

    def test_main_writes_file(self, tmp_path, capsys):
        out = str(tmp_path / "report.md")
        assert report_main([out, "--quick", "figure3", "ab6"]) == 0
        assert os.path.exists(out)
        with open(out) as handle:
            content = handle.read()
        assert "figure3" in content and "ab6" in content

    def test_main_usage(self, capsys):
        assert report_main(["--quick"]) == 2


class TestWaitTimes:
    def test_waits_measured_from_runnable_to_dispatch(self, harness):
        hog = harness.spawn_segments("hog", [Compute(100 * KILO)])
        late = harness.spawn_segments(
            "late", [SleepFor(5 * MS), Compute(KILO)])
        harness.machine.run_until(SECOND)
        waits = wait_times(harness.recorder, late)
        # spawned at 0 (dispatched immediately: wait 0 from the spawn
        # runnable)... late actually sleeps first, so its only runnable
        # transition is at 5 ms; the hog owns the CPU until its quantum
        # ends at 10 ms
        assert waits == [5 * MS]

    def test_unblocked_machine_waits_zero(self, harness):
        solo = harness.spawn_segments("solo", [Compute(KILO)])
        harness.machine.run_until(SECOND)
        assert wait_times(harness.recorder, solo) == [0]


class TestQosEdfOption:
    def build(self, rt_scheduler):
        from repro.core.hierarchy import HierarchicalScheduler
        from repro.core.structure import SchedulingStructure
        from repro.cpu.machine import Machine
        from repro.sim.engine import Simulator
        from repro.trace.recorder import Recorder
        structure = SchedulingStructure()
        machine = Machine(Simulator(), HierarchicalScheduler(structure),
                          capacity_ips=1_000_000, default_quantum=10 * MS,
                          tracer=Recorder())
        return QosManager(machine, structure, class_weights=(5, 1, 4),
                          rt_quantum=10 * MS, rt_scheduler=rt_scheduler)

    def test_edf_admits_beyond_rma_bound(self):
        # Three tasks at U = 0.40 of a 0.5 share: above the RMA bound
        # for n=3 (0.78 * 0.5 = 0.39) but within EDF's 0.5.
        tasks = [(100 * MS, int(13.4 * MS)) for __ in range(3)]

        def submit_all(manager):
            for index, (period, wcet) in enumerate(tasks):
                manager.submit(
                    QosRequest("rt%d" % index, HARD_RT, period=period,
                               wcet=wcet),
                    PeriodicWorkload(period=period,
                                     cost=wcet // 1000))

        edf_manager = self.build("edf")
        submit_all(edf_manager)  # all three admitted

        rma_manager = self.build("rma")
        with pytest.raises(AdmissionError):
            submit_all(rma_manager)

    def test_invalid_rt_scheduler(self):
        with pytest.raises(AdmissionError):
            self.build("fifo")
