"""Property-based tests of the scheduling structure and event queue."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.structure import SchedulingStructure
from repro.errors import StructureError
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.events import EventQueue

names = st.text(alphabet="abcdef", min_size=1, max_size=4)


class TestStructureProperties:
    @given(st.lists(st.tuples(names, st.booleans(), st.integers(1, 9)),
                    min_size=1, max_size=25))
    @settings(max_examples=80, deadline=None)
    def test_random_tree_construction_invariants(self, spec):
        """Randomly grown trees keep path/parent/resolve consistency."""
        structure = SchedulingStructure()
        internals = [structure.root]
        for name, as_leaf, weight in spec:
            parent = internals[weight % len(internals)]
            try:
                scheduler = SfqScheduler() if as_leaf else None
                node = structure.mknod(name, weight, parent=parent,
                                       scheduler=scheduler)
            except StructureError:
                continue  # duplicate name under that parent: fine
            if not as_leaf:
                internals.append(node)
        for node in structure.iter_nodes():
            # resolve by id and by path both give the node back
            assert structure.resolve(node.node_id) is node
            assert structure.parse(node.path) is node
            # child/parent pointers are mutually consistent
            if node.parent is not None:
                assert node.parent.children[node.name] is node

    @given(st.lists(st.tuples(names, st.integers(1, 9)),
                    min_size=1, max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_rmnod_undoes_mknod(self, spec):
        structure = SchedulingStructure()
        created = []
        for name, weight in spec:
            try:
                created.append(structure.mknod("/" + name, weight))
            except StructureError:
                pass
        for node in reversed(created):
            structure.rmnod(node)
        assert list(structure.iter_nodes()) == [structure.root]


class TestEventQueueProperties:
    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(-5, 5)),
                    min_size=1, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_pop_order_matches_sorted(self, events):
        queue = EventQueue()
        expected = []
        for seq, (time, priority) in enumerate(events):
            queue.push(time, lambda: None, priority=priority)
            heapq.heappush(expected, (time, priority, seq))
        popped = []
        while True:
            handle = queue.pop()
            if handle is None:
                break
            popped.append((handle.time, handle.priority, handle.seq))
        assert popped == [heapq.heappop(expected)
                          for __ in range(len(expected))]

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=100),
           st.sets(st.integers(0, 99)))
    @settings(max_examples=80, deadline=None)
    def test_cancellation_removes_exactly_those(self, times, cancel_indices):
        queue = EventQueue()
        handles = [queue.push(t, lambda: None) for t in times]
        for index in cancel_indices:
            if index < len(handles):
                queue.discard(handles[index])
        popped = []
        while True:
            handle = queue.pop()
            if handle is None:
                break
            popped.append(handle)
        surviving = [h for i, h in enumerate(handles)
                     if i not in cancel_indices]
        assert sorted(h.seq for h in popped) == \
            sorted(h.seq for h in surviving)
