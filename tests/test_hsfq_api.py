"""The paper's hsfq_* system-call facade."""

import pytest

from repro.core.structure import SchedulingStructure
from repro.errors import NodeNotFoundError, StructureError
from repro.hsfq import (
    HSFQ_ADMIN_GETWEIGHT,
    HSFQ_ADMIN_INFO,
    HSFQ_ADMIN_SETWEIGHT,
    HSFQ_INTERNAL,
    HSFQ_LEAF,
    SCHED_EDF,
    SCHED_SFQ,
    SCHED_SVR4,
    hsfq_admin,
    hsfq_mknod,
    hsfq_move,
    hsfq_parse,
    hsfq_rmnod,
)
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.schedulers.svr4 import Svr4TimeSharing
from repro.threads.segments import SegmentListWorkload
from repro.threads.thread import SimThread


@pytest.fixture
def structure():
    return SchedulingStructure()


class TestHsfqCalls:
    def test_paper_example_structure(self, structure):
        """Build Figure 2 via ids, exactly as the syscalls would."""
        root = structure.root.node_id
        hard = hsfq_mknod(structure, "hard-rt", root, 1, HSFQ_LEAF,
                          SCHED_EDF)
        soft = hsfq_mknod(structure, "soft-rt", root, 3, HSFQ_LEAF,
                          SCHED_SFQ)
        best = hsfq_mknod(structure, "best-effort", root, 6, HSFQ_INTERNAL)
        user1 = hsfq_mknod(structure, "user1", best, 1, HSFQ_LEAF,
                           SCHED_SFQ)
        user2 = hsfq_mknod(structure, "user2", best, 1, HSFQ_LEAF,
                           SCHED_SVR4)
        assert structure.resolve(hard).is_leaf
        assert isinstance(structure.resolve(hard).scheduler, EdfScheduler)
        assert isinstance(structure.resolve(soft).scheduler, SfqScheduler)
        assert isinstance(structure.resolve(user2).scheduler,
                          Svr4TimeSharing)
        # name resolution as in the paper: "/best-effort/user1"
        assert hsfq_parse(structure, "/best-effort/user1") == user1

    def test_parse_relative_with_hint(self, structure):
        root = structure.root.node_id
        best = hsfq_mknod(structure, "best-effort", root, 6)
        user1 = hsfq_mknod(structure, "user1", best, 1, HSFQ_LEAF)
        assert hsfq_parse(structure, "user1", hint=best) == user1

    def test_admin_weight(self, structure):
        node = hsfq_mknod(structure, "x", structure.root.node_id, 2)
        assert hsfq_admin(structure, node, HSFQ_ADMIN_GETWEIGHT) == 2
        hsfq_admin(structure, node, HSFQ_ADMIN_SETWEIGHT, 7)
        assert hsfq_admin(structure, node, HSFQ_ADMIN_INFO)["weight"] == 7

    def test_rmnod(self, structure):
        node = hsfq_mknod(structure, "x", structure.root.node_id, 2)
        hsfq_rmnod(structure, node)
        with pytest.raises(NodeNotFoundError):
            structure.resolve(node)

    def test_move(self, structure):
        a = hsfq_mknod(structure, "a", structure.root.node_id, 1, HSFQ_LEAF)
        b = hsfq_mknod(structure, "b", structure.root.node_id, 1, HSFQ_LEAF)
        thread = SimThread("t", SegmentListWorkload([]))
        hsfq_move(structure, thread, a)
        assert thread.leaf.node_id == a
        hsfq_move(structure, thread, b)
        assert thread.leaf.node_id == b

    def test_unknown_scheduler_id(self, structure):
        with pytest.raises(StructureError):
            hsfq_mknod(structure, "x", structure.root.node_id, 1,
                       HSFQ_LEAF, sid=999)

    def test_unknown_flag(self, structure):
        with pytest.raises(StructureError):
            hsfq_mknod(structure, "x", structure.root.node_id, 1, flag=42)
