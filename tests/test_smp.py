"""The multiprocessor machine extension."""

import pytest

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.cpu.flat import FlatScheduler
from repro.errors import SimulationError
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.smp.machine import SmpMachine
from repro.sync.mutex import Acquire, Release, SimMutex
from repro.threads.segments import Compute, SegmentListWorkload, SleepFor
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload

CAPACITY = 1_000_000  # per CPU
KILO = 1000


class SmpHarness:
    def __init__(self, num_cpus=2):
        self.structure = SchedulingStructure()
        self.leaf = self.structure.mknod("/apps", 1,
                                         scheduler=SfqScheduler())
        self.engine = Simulator()
        self.recorder = Recorder()
        self.machine = SmpMachine(self.engine,
                                  HierarchicalScheduler(self.structure),
                                  num_cpus=num_cpus, capacity_ips=CAPACITY,
                                  default_quantum=10 * MS,
                                  tracer=self.recorder)

    def spawn_dhrystone(self, name, weight=1):
        thread = SimThread(name, DhrystoneWorkload(loop_cost=100, batch=10),
                           weight=weight)
        self.leaf.attach_thread(thread)
        self.machine.spawn(thread)
        return thread

    def spawn_segments(self, name, segments, weight=1):
        thread = SimThread(name, SegmentListWorkload(segments),
                           weight=weight)
        self.leaf.attach_thread(thread)
        self.machine.spawn(thread)
        return thread


class TestBasics:
    def test_invalid_config(self):
        engine = Simulator()
        scheduler = FlatScheduler(SfqScheduler())
        with pytest.raises(SimulationError):
            SmpMachine(engine, scheduler, num_cpus=0)
        with pytest.raises(SimulationError):
            SmpMachine(engine, scheduler, capacity_ips=0)

    def test_single_thread_uses_one_cpu(self):
        harness = SmpHarness(num_cpus=2)
        thread = harness.spawn_dhrystone("solo")
        harness.machine.run_until(SECOND)
        # one sequential thread cannot exceed one CPU of work
        assert thread.stats.work_done == 1000 * KILO
        assert harness.machine.utilization() == pytest.approx(0.5,
                                                              abs=0.01)

    def test_two_threads_run_in_parallel(self):
        harness = SmpHarness(num_cpus=2)
        a = harness.spawn_segments("a", [Compute(100 * KILO)])
        b = harness.spawn_segments("b", [Compute(100 * KILO)])
        harness.machine.run_until(SECOND)
        # both finish at 100 ms: true parallelism
        assert a.stats.exited_at == 100 * MS
        assert b.stats.exited_at == 100 * MS

    def test_slices_overlap_at_most_num_cpus(self):
        harness = SmpHarness(num_cpus=2)
        threads = [harness.spawn_dhrystone("t%d" % i) for i in range(5)]
        harness.machine.run_until(SECOND)
        events = []
        for thread in threads:
            for t0, t1, __ in harness.recorder.trace_of(thread).slices:
                events.append((t0, 1))
                events.append((t1, -1))
        events.sort()
        depth = 0
        for __, delta in events:
            depth += delta
            assert depth <= 2

    def test_total_throughput_is_num_cpus(self):
        harness = SmpHarness(num_cpus=3)
        threads = [harness.spawn_dhrystone("t%d" % i) for i in range(6)]
        harness.machine.run_until(SECOND)
        total = sum(t.stats.work_done for t in threads)
        assert total == pytest.approx(3000 * KILO, rel=0.001)

    def test_flush_at_horizon(self):
        harness = SmpHarness(num_cpus=2)
        a = harness.spawn_dhrystone("a")
        harness.machine.run_until(123456789)
        assert a.stats.work_done == pytest.approx(123456, abs=2)


class TestFairness:
    def test_feasible_weights_divide_capacity(self):
        harness = SmpHarness(num_cpus=2)
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=2)
        c = harness.spawn_dhrystone("c", weight=1)
        harness.machine.run_until(4 * SECOND)
        total = sum(t.stats.work_done for t in (a, b, c))
        assert b.stats.work_done / total == pytest.approx(0.5, abs=0.02)
        assert a.stats.work_done / total == pytest.approx(0.25, abs=0.02)

    def test_infeasible_weight_saturates_one_cpu(self):
        harness = SmpHarness(num_cpus=2)
        heavy = harness.spawn_dhrystone("heavy", weight=100)
        light1 = harness.spawn_dhrystone("l1", weight=1)
        light2 = harness.spawn_dhrystone("l2", weight=1)
        harness.machine.run_until(4 * SECOND)
        # heavy cannot exceed one CPU; the lights split the other
        assert heavy.stats.work_done == pytest.approx(4000 * KILO,
                                                      rel=0.01)
        assert light1.stats.work_done == pytest.approx(2000 * KILO,
                                                       rel=0.05)

    def test_sleeping_thread_gets_no_credit(self):
        harness = SmpHarness(num_cpus=2)
        a = harness.spawn_dhrystone("a")
        b = harness.spawn_dhrystone("b")
        late = harness.spawn_segments(
            "late", [SleepFor(SECOND), Compute(5000 * KILO)])
        harness.machine.run_until(2 * SECOND)
        # after waking, late shares fairly; it gets no catch-up burst
        # (in [1 s, 2 s] three threads share 2 CPUs: 2/3 CPU each)
        assert late.stats.work_done == pytest.approx(667 * KILO, rel=0.05)


class TestSmpSync:
    def test_mutex_serializes_across_cpus(self):
        harness = SmpHarness(num_cpus=2)
        mutex = SimMutex("m")
        a = harness.spawn_segments("a", [Acquire(mutex), Compute(50 * KILO),
                                         Release(mutex)])
        b = harness.spawn_segments("b", [Acquire(mutex), Compute(50 * KILO),
                                         Release(mutex)])
        harness.machine.run_until(SECOND)
        # despite two CPUs, the critical sections serialize: 100 ms total
        assert max(a.stats.exited_at, b.stats.exited_at) == 100 * MS
        # and the slices never overlap
        slices = []
        for thread in (a, b):
            slices.extend((t0, t1) for t0, t1, __ in
                          harness.recorder.trace_of(thread).slices)
        slices.sort()
        for (a0, a1), (b0, b1) in zip(slices, slices[1:]):
            assert a1 <= b0

    def test_exit_states_clean(self):
        harness = SmpHarness(num_cpus=2)
        threads = [
            harness.spawn_segments("t%d" % i, [Compute(10 * KILO),
                                               SleepFor(5 * MS),
                                               Compute(10 * KILO)])
            for i in range(4)
        ]
        harness.machine.run_until(SECOND)
        assert all(t.state is ThreadState.EXITED for t in threads)
        assert all(t.stats.work_done == 20 * KILO for t in threads)
