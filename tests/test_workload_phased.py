"""The deterministic phased workload."""

import pytest

from repro.errors import WorkloadError
from repro.threads.segments import Compute, SleepUntil
from repro.threads.thread import SimThread
from repro.units import MS, SECOND
from repro.workloads.phased import PhasedWorkload

from tests.conftest import Harness

KILO = 1000


def dummy(workload):
    return SimThread("t", workload)


class TestPhasedWorkload:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            PhasedWorkload(on=0, cycle=SECOND, batch=1)
        with pytest.raises(WorkloadError):
            PhasedWorkload(on=2 * SECOND, cycle=SECOND, batch=1)
        with pytest.raises(WorkloadError):
            PhasedWorkload(on=SECOND, cycle=SECOND, batch=0)

    def test_computes_during_on_phase(self):
        wl = PhasedWorkload(on=700 * MS, cycle=SECOND, batch=KILO)
        thread = dummy(wl)
        assert isinstance(wl.next_segment(0, thread), Compute)
        assert isinstance(wl.next_segment(699 * MS, thread), Compute)

    def test_sleeps_to_next_cycle(self):
        wl = PhasedWorkload(on=700 * MS, cycle=SECOND, batch=KILO)
        thread = dummy(wl)
        segment = wl.next_segment(800 * MS, thread)
        assert isinstance(segment, SleepUntil)
        assert segment.wakeup == SECOND

    def test_always_on(self):
        wl = PhasedWorkload(on=SECOND, cycle=SECOND, batch=KILO)
        thread = dummy(wl)
        for t in (0, 500 * MS, 999 * MS):
            assert isinstance(wl.next_segment(t, thread), Compute)

    def test_phase_offset(self):
        wl = PhasedWorkload(on=500 * MS, cycle=SECOND, batch=KILO,
                            phase=500 * MS)
        thread = dummy(wl)
        # with a half-cycle offset, t=0 is already in the off window
        assert isinstance(wl.next_segment(0, thread), SleepUntil)
        assert isinstance(wl.next_segment(600 * MS, thread), Compute)

    def test_is_on_and_window_fully_on(self):
        wl = PhasedWorkload(on=700 * MS, cycle=SECOND, batch=KILO)
        assert wl.is_on(0)
        assert wl.is_on(699 * MS)
        assert not wl.is_on(700 * MS)
        assert wl.window_fully_on(100 * MS, 600 * MS)
        assert not wl.window_fully_on(600 * MS, 800 * MS)
        assert wl.window_fully_on(SECOND, SECOND + 100 * MS)

    def test_demand_on_machine(self, harness):
        wl = PhasedWorkload(on=300 * MS, cycle=SECOND, batch=KILO)
        thread = SimThread("phased", wl)
        harness.leaf.attach_thread(thread)
        harness.machine.spawn(thread)
        harness.machine.run_until(5 * SECOND)
        # alone on the machine: exactly 30% duty cycle
        assert thread.stats.work_done == pytest.approx(1500 * KILO,
                                                       rel=0.01)
