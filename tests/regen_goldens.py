"""Regenerate the golden-trace fixtures: ``python -m tests.regen_goldens``.

Only regenerate when a change is *intended* to alter scheduling behaviour
(new tie-break rule, different stamping semantics).  Performance work must
reproduce the existing fixtures byte-for-byte.
"""

from __future__ import annotations

from tests import goldens


def main() -> None:
    for name, builder in goldens.SCENARIOS.items():
        payload = goldens.write_fixture(name, builder())
        print("%-12s %7d events  sha256=%s" % (
            name, payload["events"], payload["sha256"]))
    raw = goldens.write_binlog_fixture()
    print("%-12s %7d bytes  (binary trace fixture)"
          % ("obs_demo", len(raw)))


if __name__ == "__main__":
    main()
