"""Conformance suite: every leaf scheduler obeys the machine contract.

One parameterized scenario drives each of the thirteen leaf schedulers
through the same randomized mixed workload (compute bursts, sleeps,
exits, late spawns) on a flat machine and checks the properties any
correct scheduler must have:

* work conservation — the CPU is never idle while a thread is runnable;
* every thread eventually completes its finite workload;
* execution slices never overlap;
* accounting identities hold (trace totals == thread stats; time
  partition exact).
"""

import pytest

from repro.schedulers.edf import EdfScheduler
from repro.schedulers.eevdf import EevdfScheduler
from repro.schedulers.fairqueue import FqsScheduler, ScfqScheduler, WfqScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.lottery import LotteryScheduler
from repro.schedulers.reserves import ReservesScheduler
from repro.schedulers.rma import RmaScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.schedulers.stride import StrideScheduler
from repro.schedulers.svr4 import Svr4TimeSharing
from repro.sim.rng import make_rng
from repro.threads.segments import Compute, SegmentListWorkload, SleepFor
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.units import MS, SECOND

from tests.conftest import FlatHarness

CAPACITY = 1_000_000
KILO = 1000
QW = 10 * KILO  # one 10 ms quantum of work

SCHEDULERS = {
    "sfq": SfqScheduler,
    "fifo": FifoScheduler,
    "round-robin": RoundRobinScheduler,
    "svr4": Svr4TimeSharing,
    "edf": EdfScheduler,
    "rma": RmaScheduler,
    "lottery": lambda: LotteryScheduler(rng=make_rng(1, "conf")),
    "stride": StrideScheduler,
    "wfq": lambda: WfqScheduler(QW, CAPACITY),
    "fqs": lambda: FqsScheduler(QW, CAPACITY),
    "scfq": lambda: ScfqScheduler(QW),
    "eevdf": lambda: EevdfScheduler(QW),
    "reserves": lambda: ReservesScheduler(CAPACITY,
                                          background_quantum=10 * MS),
}

#: schedulers that require real-time parameters on every thread
NEEDS_PERIOD = {"edf", "rma"}


def build_scenario(name, harness):
    rng = make_rng(7, "scenario")
    threads = []
    expected_work = {}
    for index in range(6):
        segments = []
        total = 0
        for __ in range(rng.randint(1, 4)):
            work = rng.randint(1, 30) * KILO
            segments.append(Compute(work))
            total += work
            if rng.random() < 0.5:
                segments.append(SleepFor(rng.randint(1, 40) * MS))
        params = {}
        if name in NEEDS_PERIOD:
            params["period"] = rng.randint(2, 10) * 100 * MS
        if name == "reserves" and index % 2 == 0:
            params["period"] = 100 * MS
            params["reserve"] = 20 * MS
        thread = SimThread("t%d" % index, SegmentListWorkload(segments),
                           weight=rng.randint(1, 5), params=params)
        harness.machine.spawn(thread, at=rng.randint(0, 50) * MS)
        threads.append(thread)
        expected_work[thread.tid] = total
    return threads, expected_work


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
class TestConformance:
    def run_scenario(self, name):
        harness = FlatHarness(SCHEDULERS[name](), capacity_ips=CAPACITY,
                              default_quantum=10 * MS)
        threads, expected = build_scenario(name, harness)
        harness.machine.run_until(30 * SECOND)
        return harness, threads, expected

    def test_all_threads_complete(self, name):
        harness, threads, expected = self.run_scenario(name)
        for thread in threads:
            assert thread.state is ThreadState.EXITED, thread
            assert thread.stats.work_done == expected[thread.tid]

    def test_time_partition_exact(self, name):
        harness, threads, expected = self.run_scenario(name)
        stats = harness.machine.stats
        now = harness.engine.now
        assert (stats.busy_time + stats.interrupt_time
                + stats.overhead_time + stats.idle_time(now)) == now

    def test_slices_never_overlap(self, name):
        harness, threads, expected = self.run_scenario(name)
        slices = []
        for thread in threads:
            trace = harness.recorder.trace_of(thread)
            slices.extend((t0, t1) for t0, t1, __ in trace.slices)
        slices.sort()
        for (a0, a1), (b0, b1) in zip(slices, slices[1:]):
            assert a1 <= b0

    def test_work_conserving(self, name):
        """Idle time equals total time minus demand (the workloads' sleeps
        overlap with other threads' compute, so busy == total work)."""
        harness, threads, expected = self.run_scenario(name)
        total_work = sum(expected.values())
        # busy time corresponds to executed work exactly (1 inst = 1 us),
        # modulo per-dispatch rounding
        slack = harness.machine.stats.dispatches * 1000 + 1000
        assert abs(harness.machine.stats.busy_time
                   - total_work * 1000) <= slack
