"""Property-based tests of the hierarchical scheduler's tree bookkeeping."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.node import InternalNode, LeafNode
from repro.core.structure import SchedulingStructure
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.segments import SegmentListWorkload
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread


def build_random_tree(shape_seed: int):
    """A deterministic random tree with 4 leaves and up to 3 levels."""
    import random
    rng = random.Random(shape_seed)
    structure = SchedulingStructure()
    internals = [structure.root]
    leaves = []
    for index in range(4):
        parent = rng.choice(internals)
        if rng.random() < 0.4 and len(internals) < 4:
            parent = structure.mknod("i%d" % index, rng.randint(1, 5),
                                     parent=parent)
            internals.append(parent)
        leaf = structure.mknod("leaf%d" % index, rng.randint(1, 5),
                               parent=parent, scheduler=SfqScheduler())
        leaves.append(leaf)
    return structure, leaves


def check_tree_invariants(structure):
    """The runnable flags must exactly mirror the queues' contents."""
    for node in structure.iter_nodes():
        if isinstance(node, InternalNode):
            # an internal node is runnable iff its queue has runnable kids
            assert node.runnable == node.queue.has_runnable()
            for child in node.children.values():
                assert child.runnable == node.queue.is_runnable(child)
        elif isinstance(node, LeafNode):
            assert node.runnable == node.scheduler.has_runnable()


ops = st.lists(
    st.tuples(st.sampled_from(["wake", "block", "serve"]),
              st.integers(0, 7), st.integers(1, 40)),
    min_size=1, max_size=150)


class TestHierarchyProperties:
    @given(st.integers(0, 50), ops)
    @settings(max_examples=100, deadline=None)
    def test_runnable_flags_mirror_queues(self, shape_seed, script):
        structure, leaves = build_random_tree(shape_seed)
        scheduler = HierarchicalScheduler(structure)
        threads = []
        for index in range(8):
            thread = SimThread("t%d" % index, SegmentListWorkload([]),
                               weight=1 + index % 3)
            leaves[index % len(leaves)].attach_thread(thread)
            threads.append(thread)
        for op, index, amount in script:
            thread = threads[index]
            if op == "wake":
                if thread.state is ThreadState.NEW:
                    thread.transition(ThreadState.RUNNABLE)
                    scheduler.thread_runnable(thread, 0)
                elif thread.state is ThreadState.SLEEPING:
                    thread.transition(ThreadState.RUNNABLE)
                    scheduler.thread_runnable(thread, 0)
            elif op == "block":
                if thread.state is ThreadState.RUNNABLE:
                    thread.transition(ThreadState.RUNNING)
                    thread.transition(ThreadState.SLEEPING)
                    scheduler.thread_blocked(thread, 0)
            else:
                if scheduler.has_runnable():
                    picked = scheduler.pick_next(0)
                    assert picked is not None
                    assert picked.state is ThreadState.RUNNABLE
                    scheduler.charge(picked, amount, 0)
            check_tree_invariants(structure)

    @given(st.integers(0, 50), ops)
    @settings(max_examples=60, deadline=None)
    def test_service_only_to_runnable_threads(self, shape_seed, script):
        structure, leaves = build_random_tree(shape_seed)
        scheduler = HierarchicalScheduler(structure)
        threads = []
        for index in range(8):
            thread = SimThread("t%d" % index, SegmentListWorkload([]))
            leaves[index % len(leaves)].attach_thread(thread)
            threads.append(thread)
        runnable = set()
        for op, index, amount in script:
            thread = threads[index]
            if op == "wake" and thread.state in (ThreadState.NEW,
                                                 ThreadState.SLEEPING):
                thread.transition(ThreadState.RUNNABLE)
                scheduler.thread_runnable(thread, 0)
                runnable.add(thread)
            elif op == "block" and thread.state is ThreadState.RUNNABLE:
                thread.transition(ThreadState.RUNNING)
                thread.transition(ThreadState.SLEEPING)
                scheduler.thread_blocked(thread, 0)
                runnable.discard(thread)
            elif op == "serve":
                assert scheduler.has_runnable() == bool(runnable)
                if runnable:
                    picked = scheduler.pick_next(0)
                    assert picked in runnable
                    scheduler.charge(picked, amount, 0)
