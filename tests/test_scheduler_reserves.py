"""Processor capacity reserves (§6 related work [13])."""

import pytest

from repro.errors import SchedulingError
from repro.schedulers.reserves import ReservesScheduler
from repro.threads.segments import SegmentListWorkload
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.units import MS, SECOND

from tests.conftest import FlatHarness

CAPACITY = 1_000_000
KILO = 1000


def reserved_thread(name, period, reserve):
    return SimThread(name, SegmentListWorkload([]),
                     params={"period": period, "reserve": reserve})


def background_thread(name="bg"):
    return SimThread(name, SegmentListWorkload([]))


class TestReservesUnit:
    def test_invalid_capacity(self):
        with pytest.raises(SchedulingError):
            ReservesScheduler(0)

    def test_reserve_without_period_rejected(self):
        sched = ReservesScheduler(CAPACITY)
        thread = SimThread("t", SegmentListWorkload([]),
                           params={"reserve": MS})
        with pytest.raises(SchedulingError):
            sched.add_thread(thread)

    def test_overcommitted_reserve_rejected(self):
        sched = ReservesScheduler(CAPACITY)
        with pytest.raises(SchedulingError):
            sched.add_thread(reserved_thread("t", 10 * MS, 20 * MS))

    def test_reserved_beats_background(self):
        sched = ReservesScheduler(CAPACITY)
        bg = background_thread()
        rt = reserved_thread("rt", 100 * MS, 10 * MS)
        for t in (bg, rt):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        assert sched.pick_next(0) is rt

    def test_budget_depletion_demotes(self):
        sched = ReservesScheduler(CAPACITY)
        bg = background_thread()
        rt = reserved_thread("rt", 100 * MS, 10 * MS)
        rt.transition(ThreadState.RUNNABLE)
        bg.transition(ThreadState.RUNNABLE)
        for t in (bg, rt):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        sched.pick_next(0)
        sched.charge(rt, 10 * KILO, 0)  # full 10 ms budget consumed
        assert sched.budget_of(rt, 0) == 0
        assert sched.pick_next(0) is bg  # demoted behind background RR

    def test_budget_replenishes_each_period(self):
        sched = ReservesScheduler(CAPACITY)
        rt = reserved_thread("rt", 100 * MS, 10 * MS)
        rt.transition(ThreadState.RUNNABLE)
        sched.add_thread(rt)
        sched.on_runnable(rt, 0)
        sched.pick_next(0)
        sched.charge(rt, 10 * KILO, 0)
        assert sched.budget_of(rt, 50 * MS) == 0
        assert sched.budget_of(rt, 100 * MS) == 10 * KILO

    def test_quantum_capped_at_budget(self):
        sched = ReservesScheduler(CAPACITY, background_quantum=20 * MS)
        rt = reserved_thread("rt", 100 * MS, 10 * MS)
        sched.add_thread(rt)
        assert sched.quantum_for(rt) == 10 * MS
        rt.transition(ThreadState.RUNNABLE)
        sched.on_runnable(rt, 0)
        sched.pick_next(0)
        sched.charge(rt, 10 * KILO, 0)
        assert sched.quantum_for(rt) == 20 * MS  # background quantum

    def test_replenishment_promotes_queued_thread(self):
        sched = ReservesScheduler(CAPACITY)
        bg = background_thread()
        rt = reserved_thread("rt", 100 * MS, 10 * MS)
        rt.transition(ThreadState.RUNNABLE)
        bg.transition(ThreadState.RUNNABLE)
        for t in (bg, rt):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        sched.pick_next(0)
        sched.charge(rt, 10 * KILO, 0)
        assert sched.pick_next(50 * MS) is bg
        # next period: rt is promoted back to the reserved band
        assert sched.pick_next(150 * MS) is rt


class TestReservesOnMachine:
    def test_reserved_rate_guaranteed_under_load(self):
        harness = FlatHarness(
            ReservesScheduler(CAPACITY, background_quantum=10 * MS),
            capacity_ips=CAPACITY, default_quantum=10 * MS)
        # periodic job: needs 10 ms per 50 ms, fully reserved
        from repro.workloads.periodic import PeriodicWorkload
        workload = PeriodicWorkload(period=50 * MS, cost=10 * KILO)
        rt = SimThread("rt", workload,
                       params={"period": 50 * MS, "reserve": 10 * MS})
        harness.machine.spawn(rt)
        for index in range(3):
            harness.spawn_dhrystone("hog%d" % index)
        harness.machine.run_until(5 * SECOND)
        from repro.trace.metrics import latency_slack
        results = latency_slack(harness.recorder, rt, workload)
        assert results
        assert all(slack > 0 for __, __, slack in results)

    def test_overrunning_thread_capped_at_reserve_plus_background(self):
        harness = FlatHarness(
            ReservesScheduler(CAPACITY, background_quantum=10 * MS),
            capacity_ips=CAPACITY, default_quantum=10 * MS)
        greedy = SimThread(
            "greedy",
            __import__("repro.workloads.dhrystone",
                       fromlist=["DhrystoneWorkload"]).DhrystoneWorkload(
                           loop_cost=100, batch=10),
            params={"period": 100 * MS, "reserve": 20 * MS})
        harness.machine.spawn(greedy)
        fair_bg = harness.spawn_dhrystone("bg")
        harness.machine.run_until(4 * SECOND)
        # greedy gets its 20% reserve plus a ~50% split of the background
        # band; it cannot monopolize
        share = greedy.stats.work_done / (
            greedy.stats.work_done + fair_bg.stats.work_done)
        assert 0.5 < share < 0.75
