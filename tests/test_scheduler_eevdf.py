"""The EEVDF baseline scheduler (paper §6 related work)."""

from fractions import Fraction

import pytest

from repro.errors import SchedulingError
from repro.schedulers.eevdf import EevdfScheduler
from repro.threads.segments import SegmentListWorkload
from repro.threads.thread import SimThread
from repro.units import SECOND

from tests.conftest import FlatHarness

KILO = 1000
REQUEST = 10 * KILO


def make_thread(name="t", weight=1):
    return SimThread(name, SegmentListWorkload([]), weight=weight)


class TestEevdfUnit:
    def test_request_work_validated(self):
        with pytest.raises(SchedulingError):
            EevdfScheduler(0)

    def test_initial_deadlines_by_weight(self):
        sched = EevdfScheduler(REQUEST)
        light = make_thread("light", 1)
        heavy = make_thread("heavy", 10)
        for t in (light, heavy):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        # both eligible at v=0; heavy has the earlier virtual deadline
        assert sched.pick_next(0) is heavy
        assert sched.deadline_of(heavy) < sched.deadline_of(light)

    def test_virtual_time_advances_with_service(self):
        sched = EevdfScheduler(REQUEST)
        a = make_thread("a", 1)
        b = make_thread("b", 1)
        for t in (a, b):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        picked = sched.pick_next(0)
        sched.charge(picked, REQUEST, 0)
        assert sched.virtual_time == Fraction(REQUEST, 2)

    def test_deadline_advances_after_full_request(self):
        sched = EevdfScheduler(REQUEST)
        t = make_thread("t", 2)
        sched.add_thread(t)
        sched.on_runnable(t, 0)
        vd0 = sched.deadline_of(t)
        sched.pick_next(0)
        sched.charge(t, REQUEST, 0)
        assert sched.deadline_of(t) == vd0 + Fraction(REQUEST, 2)

    def test_partial_charge_keeps_deadline(self):
        sched = EevdfScheduler(REQUEST)
        t = make_thread("t", 1)
        sched.add_thread(t)
        sched.on_runnable(t, 0)
        vd0 = sched.deadline_of(t)
        sched.pick_next(0)
        sched.charge(t, REQUEST // 2, 0)
        assert sched.deadline_of(t) == vd0

    def test_rejoin_gets_no_credit(self):
        sched = EevdfScheduler(REQUEST)
        a, b = make_thread("a"), make_thread("b")
        for t in (a, b):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        sched.on_block(b, 0)
        for __ in range(10):
            sched.pick_next(0)
            sched.charge(a, REQUEST, 0)
        sched.on_runnable(b, 0)
        # b's eligible time jumped to the current v: no stored credit
        assert sched._record(b).ve == sched.virtual_time

    def test_remove_runnable(self):
        sched = EevdfScheduler(REQUEST)
        t = make_thread()
        sched.add_thread(t)
        sched.on_runnable(t, 0)
        sched.remove_thread(t)
        assert not sched.has_runnable()


class TestEevdfOnMachine:
    def test_proportional_share(self):
        harness = FlatHarness(EevdfScheduler(REQUEST))
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=3)
        harness.machine.run_until(5 * SECOND)
        assert b.stats.work_done / a.stats.work_done == pytest.approx(
            3.0, rel=0.03)

    def test_work_conserving_with_blocking(self):
        from repro.threads.segments import Compute, SleepFor
        from repro.units import MS
        harness = FlatHarness(EevdfScheduler(REQUEST))
        steady = harness.spawn_dhrystone("steady", weight=1)
        blinker = harness.spawn_segments(
            "blinker",
            [seg for __ in range(10)
             for seg in (Compute(5 * KILO), SleepFor(50 * MS))],
            weight=1)
        harness.machine.run_until(SECOND)
        total = steady.stats.work_done + blinker.stats.work_done
        assert total == pytest.approx(1000 * KILO, rel=0.01)
