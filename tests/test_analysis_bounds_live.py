"""Live verification of the paper's eq. 6 throughput guarantee and EBF
tail behaviour against simulated machines (not just formula checks)."""

import pytest

from repro.analysis.fc_server import (
    ebf_tail,
    fc_params_for_periodic_interrupts,
    fit_fc_params,
    sfq_throughput_params,
)
from repro.cpu.interrupts import PeriodicInterruptSource, PoissonInterruptSource
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.rng import make_rng
from repro.units import MS, SECOND

from tests.conftest import FlatHarness

CAPACITY = 1_000_000
KILO = 1000
QUANTUM = 10 * MS
QUANTUM_WORK = 10 * KILO


def service_points(recorder, thread, until, step=10 * MS):
    trace = recorder.trace_of(thread)
    return [(t, trace.service_at(t)) for t in range(0, until + 1, step)]


class TestEq6ThroughputGuarantee:
    """Run SFQ on an FC CPU; each thread's service must be FC with the
    parameters eq. 6 predicts (rate = weight-share, bounded burstiness)."""

    def run_machine(self, weights, duration):
        harness = FlatHarness(SfqScheduler(), capacity_ips=CAPACITY,
                              default_quantum=QUANTUM)
        threads = [harness.spawn_dhrystone("w%d" % w, weight=w)
                   for w in weights]
        harness.machine.add_interrupt_source(
            PeriodicInterruptSource(period=20 * MS, service=2 * MS))
        harness.machine.run_until(duration)
        return harness, threads

    @pytest.mark.parametrize("weights", [(1, 1), (1, 2, 3), (2, 5)])
    def test_per_thread_service_is_fc_within_predicted_burstiness(self, weights):
        duration = 4 * SECOND
        harness, threads = self.run_machine(weights, duration)
        cpu = fc_params_for_periodic_interrupts(CAPACITY, 20 * MS, 2 * MS)
        total_weight = sum(weights)
        for thread in threads:
            # eq. 6 with weights as rates: scale weights to the FC rate
            rate = cpu.rate_ips * thread.weight / total_weight
            others = [QUANTUM_WORK] * (len(threads) - 1)
            predicted = sfq_throughput_params(
                cpu, weight=round(rate), all_weights=others,
                max_quanta=others, own_max_quantum=QUANTUM_WORK)
            points = service_points(harness.recorder, thread, duration)
            fitted = fit_fc_params(points, rate)
            # measured burstiness within the analytical bound (plus one
            # quantum of sampling slack)
            assert fitted.burstiness <= predicted.burstiness + QUANTUM_WORK

    def test_long_run_rate_matches_share(self):
        duration = 4 * SECOND
        harness, threads = self.run_machine((1, 3), duration)
        total = sum(t.stats.work_done for t in threads)
        assert threads[1].stats.work_done / total == pytest.approx(0.75,
                                                                   abs=0.01)


class TestEbfTailLive:
    """Poisson interrupts make the CPU an EBF server: the service-deficit
    tail must decay as gamma grows."""

    def test_tail_decays(self):
        harness = FlatHarness(SfqScheduler(), capacity_ips=CAPACITY,
                              default_quantum=QUANTUM)
        thread = harness.spawn_dhrystone("t")
        harness.machine.add_interrupt_source(PoissonInterruptSource(
            mean_interarrival=10 * MS, mean_service=1 * MS,
            rng=make_rng(77, "ebf"), exponential_service=True))
        duration = 20 * SECOND
        harness.machine.run_until(duration)
        points = service_points(harness.recorder, thread, duration,
                                step=50 * MS)
        # mean effective rate ~0.9 C; measure deficits against it
        gammas = [0.0, 1000.0, 3000.0, 6000.0]
        tail = ebf_tail(points, 0.9 * CAPACITY, gammas)
        fractions = [fraction for __, fraction in tail]
        # decreasing tail, eventually (near-)vanishing
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[0] > fractions[-1]
        assert fractions[-1] < 0.05
