"""End-to-end QoS loop: manager + monitor + rebalancer on one machine."""

import pytest

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.cpu.machine import Machine
from repro.errors import AdmissionError
from repro.qos.manager import DemandDrivenRebalancer, QosManager
from repro.qos.monitor import ClassMonitor
from repro.qos.spec import BEST_EFFORT, HARD_RT, SOFT_RT, QosRequest
from repro.sim.engine import Simulator
from repro.trace.metrics import latency_slack
from repro.trace.recorder import Recorder
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.mpeg import MpegDecodeWorkload, MpegVbrModel
from repro.workloads.periodic import PeriodicWorkload

CAPACITY = 100_000_000
KILO = 1000


class Workstation:
    """A full appliance: manager, monitor, rebalancer, mixed tenants."""

    def __init__(self):
        self.structure = SchedulingStructure()
        self.engine = Simulator()
        self.recorder = Recorder()
        self.machine = Machine(self.engine,
                               HierarchicalScheduler(self.structure),
                               capacity_ips=CAPACITY,
                               default_quantum=10 * MS,
                               tracer=self.recorder)
        self.manager = QosManager(self.machine, self.structure,
                                  class_weights=(2, 3, 5),
                                  rt_quantum=10 * MS)
        self.rebalancer = DemandDrivenRebalancer(self.manager,
                                                 period=2 * SECOND)
        self.monitor = ClassMonitor(
            self.machine,
            [self.manager.hard_leaf, self.manager.soft_leaf,
             self.manager.best_parent],
            window=SECOND)


class TestClosedLoop:
    def test_full_appliance_run(self):
        ws = Workstation()
        audio_wl = PeriodicWorkload(period=50 * MS,
                                    cost=CAPACITY // 1000 * 2)  # 2 ms
        audio = ws.manager.submit(
            QosRequest("audio", HARD_RT, period=50 * MS, wcet=2 * MS),
            audio_wl)
        videos = []
        for index in range(2):
            model = MpegVbrModel(seed=60 + index, mean_cost=300_000)
            videos.append(ws.manager.submit(
                QosRequest("video-%d" % index, SOFT_RT,
                           mean_demand=10_000_000, std_demand=2_000_000),
                MpegDecodeWorkload(model, paced=True)))
        ws.manager.submit(QosRequest("compile", BEST_EFFORT, user="dev"),
                          DhrystoneWorkload())
        ws.rebalancer.start()
        ws.monitor.start()
        ws.machine.run_until(12 * SECOND)

        # hard RT: all deadlines met
        results = latency_slack(ws.recorder, audio, audio_wl)
        assert len(results) > 200
        assert all(slack > 0 for __, __, slack in results)
        # soft RT: both videos hold the display rate
        for video in videos:
            fps = video.stats.markers.get("frames", 0) / 12
            assert fps == pytest.approx(30, abs=1.5)
        # monitor saw no violations of any backlogged class
        assert ws.monitor.violations() == []
        # rebalancer ran and kept all class weights sane
        assert ws.rebalancer.rebalances >= 5
        for node in (ws.manager.hard_leaf, ws.manager.soft_leaf,
                     ws.manager.best_parent):
            assert node.weight >= 1

    def test_rebalancer_grows_soft_class_for_new_streams(self):
        ws = Workstation()
        # generous headroom so the grown share can host a second stream
        ws.rebalancer = DemandDrivenRebalancer(ws.manager,
                                               period=2 * SECOND,
                                               headroom=2.5)
        # fill the soft class close to its initial 30% share
        ws.manager.submit(
            QosRequest("v0", SOFT_RT, mean_demand=25_000_000,
                       std_demand=1_000_000),
            DhrystoneWorkload())
        # a second identical stream does not fit the *initial* share
        with pytest.raises(AdmissionError):
            ws.manager.submit(
                QosRequest("v1", SOFT_RT, mean_demand=25_000_000,
                           std_demand=1_000_000),
                DhrystoneWorkload())
        # after a rebalance the class share grows to cover admitted
        # demand + headroom, making room for the second stream
        ws.rebalancer.rebalance()
        ws.manager.submit(
            QosRequest("v1", SOFT_RT, mean_demand=25_000_000,
                       std_demand=1_000_000),
            DhrystoneWorkload())
        assert ws.manager.admitted_soft_demand() == 50_000_000

    def test_monitor_shares_track_rebalanced_weights(self):
        ws = Workstation()
        ws.manager.submit(QosRequest("hog1", BEST_EFFORT, user="a"),
                          DhrystoneWorkload())
        ws.manager.submit(
            QosRequest("v", SOFT_RT, mean_demand=25_000_000,
                       std_demand=1_000_000),
            DhrystoneWorkload())  # CPU-bound soft tenant (worst case)
        ws.monitor.start()
        ws.machine.run_until(6 * SECOND)
        soft_share = ws.monitor.mean_received_share(ws.manager.soft_leaf)
        best_share = ws.monitor.mean_received_share(ws.manager.best_parent)
        # hard class is idle: soft and best effort split 3:5
        assert soft_share == pytest.approx(3 / 8, abs=0.02)
        assert best_share == pytest.approx(5 / 8, abs=0.02)
