"""Property tests for schedflow's unit lattice (hypothesis).

``unitlattice`` promises that ``join``/``meet`` form a bounded lattice
over BOTTOM, TOP, and the flat antichain of concrete exponent vectors.
Every algebraic law the dataflow solver leans on is checked here over
arbitrary dimension vectors, not just the named constants — the solver's
termination argument (facts only climb) is exactly join's semilattice
laws plus TOP's absorption.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools.schedflow import unitlattice as U
from repro.devtools.schedflow.unitlattice import Unit

NAMED = (U.BOTTOM, U.TOP, U.DIMENSIONLESS, U.TIME, U.INSTR, U.WEIGHT,
         U.VIRTUAL, U.RATE, U.FREQUENCY)

exponents = st.integers(min_value=-3, max_value=3)
dims = st.builds(lambda t, i, w: Unit("dim", (t, i, w)),
                 exponents, exponents, exponents)
units = st.one_of(st.sampled_from(NAMED), dims)


class TestLatticeLaws:
    @given(units)
    def test_idempotence(self, a):
        assert a.join(a) == a
        assert a.meet(a) == a

    @given(units, units)
    def test_commutativity(self, a, b):
        assert a.join(b) == b.join(a)
        assert a.meet(b) == b.meet(a)

    @settings(max_examples=300)
    @given(units, units, units)
    def test_associativity(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))
        assert a.meet(b).meet(c) == a.meet(b.meet(c))

    @given(units, units)
    def test_absorption(self, a, b):
        assert a.join(a.meet(b)) == a
        assert a.meet(a.join(b)) == a

    @given(units)
    def test_bounds(self, a):
        assert a.join(U.BOTTOM) == a
        assert a.meet(U.TOP) == a
        assert a.join(U.TOP) == U.TOP
        assert a.meet(U.BOTTOM) == U.BOTTOM

    @given(units, units)
    def test_join_meet_consistency(self, a, b):
        """a ⊑ b (i.e. join is b) iff meet is a — the two operations
        induce the same partial order."""
        assert (a.join(b) == b) == (a.meet(b) == a)


class TestAbstractArithmetic:
    @given(units, units)
    def test_mul_commutes(self, a, b):
        assert a.mul(b) == b.mul(a)

    @settings(max_examples=300)
    @given(units, units, units)
    def test_mul_associates(self, a, b, c):
        assert a.mul(b).mul(c) == a.mul(b.mul(c))

    @given(units)
    def test_bottom_is_mul_identity_and_top_absorbs(self, a):
        assert U.BOTTOM.mul(a) == a
        assert a.mul(U.BOTTOM) == a
        assert U.TOP.mul(a) == U.TOP

    @given(dims, dims)
    def test_div_inverts_mul_on_dims(self, a, b):
        assert a.mul(b).div(b) == a

    @given(units)
    def test_additive_never_convicts_bottom(self, a):
        """BOTTOM is polymorphic: literals must not trigger SF201."""
        assert U.BOTTOM.additive(a) == a
        assert a.additive(U.BOTTOM) == a

    @given(dims, dims)
    def test_additive_convicts_exactly_unequal_dims(self, a, b):
        result = a.additive(b)
        if a == b:
            assert result == a
        else:
            assert result is None

    @given(units, units)
    def test_additive_symmetric(self, a, b):
        assert a.additive(b) == b.additive(a)

    def test_named_vectors_match_the_doctrine(self):
        """TIME * RATE = INSTR; INSTR / WEIGHT = VIRTUAL — the algebra
        the SF2xx rules are built on."""
        assert U.TIME.mul(U.RATE) == U.INSTR
        assert U.INSTR.div(U.WEIGHT) == U.VIRTUAL
        assert U.INSTR.div(U.TIME) == U.RATE
        assert U.DIMENSIONLESS.div(U.TIME) == U.FREQUENCY
        assert U.TIME.div(U.TIME) == U.DIMENSIONLESS
