"""Golden-trace determinism: traced runs must match the committed fixtures.

These tests are the safety net for hot-path optimization work: the
scheduler/engine fast paths must produce *byte-identical* observability
event streams to the recorded fixtures in ``tests/fixtures/golden/``.
Regenerate fixtures only for intentional behaviour changes — see
``tests/regen_goldens.py``.
"""

import pytest

from tests import goldens


@pytest.mark.parametrize("name", sorted(goldens.SCENARIOS))
def test_stream_matches_committed_fixture(name):
    fixture = goldens.load_fixture(name)
    lines = goldens.SCENARIOS[name]()
    assert len(lines) == fixture["events"], (
        "golden scenario %r fired %d events, fixture records %d — "
        "scheduling behaviour changed" % (name, len(lines), fixture["events"]))
    assert goldens.stream_digest(lines) == fixture["sha256"], (
        "golden scenario %r event stream diverged from the committed "
        "fixture; if the change is intentional, regenerate with "
        "`python -m tests.regen_goldens`" % (name,))


@pytest.mark.parametrize("name", sorted(goldens.SCENARIOS))
def test_stream_is_reproducible_in_process(name):
    first = goldens.SCENARIOS[name]()
    second = goldens.SCENARIOS[name]()
    assert first == second, (
        "golden scenario %r is not deterministic run-to-run" % (name,))


def test_fixture_metadata_is_consistent():
    for name in goldens.SCENARIOS:
        fixture = goldens.load_fixture(name)
        assert fixture["events"] > 0
        assert len(fixture["sha256"]) == 64
        assert fixture["scenario"] == name
