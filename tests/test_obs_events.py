"""The observability event bus: mechanics, emit sites, and zero-cost off."""

import pytest

from repro.obs import events as ev
from repro.units import MS


def collect_run(harness_factory, subscriber):
    """Run a fresh scenario, optionally with ``subscriber`` attached.

    Returns (thread results, final time).  Results are (name, work,
    dispatches, blocks, slices) tuples — never tids, which depend on global
    spawn order across the test session.
    """
    harness, threads = harness_factory()
    if subscriber is not None:
        with ev.BUS.subscription(subscriber):
            harness.machine.run_until(80 * MS)
    else:
        harness.machine.run_until(80 * MS)
    results = [
        (t.name, t.stats.work_done, t.stats.dispatches, t.stats.blocks,
         tuple(harness.recorder.trace_of(t).slices))
        for t in threads
    ]
    return results, harness.engine.now


class TestBusMechanics:
    def test_inactive_by_default(self):
        bus = ev.EventBus()
        assert not bus.active

    def test_subscribe_activates_and_unsubscribe_deactivates(self):
        bus = ev.EventBus()
        seen = []
        bus.subscribe(seen.append)
        assert bus.active
        bus.unsubscribe(seen.append)
        assert not bus.active

    def test_emit_without_subscribers_is_noop(self):
        bus = ev.EventBus()
        bus.emit(ev.DISPATCH, 5, tid=1)  # must not raise or allocate events

    def test_emit_delivers_event_fields(self):
        bus = ev.EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(ev.DISPATCH, 42, tid=7, node="/apps")
        assert len(seen) == 1
        event = seen[0]
        assert event.kind == ev.DISPATCH
        assert event.time == 42
        assert event.data == {"tid": 7, "node": "/apps"}
        assert event.get("tid") == 7
        assert event.get("missing", "d") == "d"

    def test_subscribers_called_in_subscription_order(self):
        bus = ev.EventBus()
        order = []
        bus.subscribe(lambda e: order.append("first"))
        bus.subscribe(lambda e: order.append("second"))
        bus.emit(ev.WAKE, 0, tid=1)
        assert order == ["first", "second"]

    def test_subscription_context_manager_always_cleans_up(self):
        bus = ev.EventBus()
        probe = []
        with pytest.raises(RuntimeError):
            with bus.subscription(probe.append):
                assert bus.active
                raise RuntimeError("boom")
        assert not bus.active

    def test_non_callable_subscriber_rejected(self):
        bus = ev.EventBus()
        with pytest.raises(TypeError):
            bus.subscribe("not callable")

    def test_unsubscribe_unknown_is_ignored(self):
        ev.EventBus().unsubscribe(lambda e: None)

    def test_clear_detaches_everyone(self):
        bus = ev.EventBus()
        bus.subscribe(lambda e: None)
        bus.subscribe(lambda e: None)
        bus.clear()
        assert not bus.active

    def test_kind_catalogue_is_unique(self):
        assert len(ev.KINDS) == len(set(ev.KINDS))
        for kind in (ev.DISPATCH, ev.SLICE, ev.TAG_UPDATE,
                     ev.VTIME_ADVANCE, ev.VIOLATION):
            assert kind in ev.KINDS


class TestInstrumentedRun:
    def build(self):
        from tests.conftest import Harness
        harness = Harness()
        a = harness.spawn_dhrystone("a", weight=2)
        b = harness.spawn_dhrystone("b", weight=1)
        return harness, [a, b]

    def test_emit_sites_cover_the_lifecycle(self):
        kinds = set()
        # Subscribe before building: spawn events fire at spawn() time.
        with ev.BUS.subscription(lambda e: kinds.add(e.kind)):
            harness, __ = self.build()
            harness.machine.run_until(50 * MS)
        for expected in (ev.SPAWN, ev.RUNNABLE, ev.DISPATCH, ev.SLICE,
                         ev.CHARGE, ev.TAG_UPDATE, ev.VTIME_ADVANCE):
            assert expected in kinds, "no %s event emitted" % expected

    def test_timestamps_are_monotonic_per_emit_order(self):
        harness, __ = self.build()
        times = []
        with ev.BUS.subscription(lambda e: times.append(e.time)):
            harness.machine.run_until(50 * MS)
        assert times == sorted(times)

    def test_events_carry_node_paths(self):
        harness, __ = self.build()
        nodes = set()
        with ev.BUS.subscription(
                lambda e: nodes.add(e.get("node"))):
            harness.machine.run_until(50 * MS)
        assert "/apps" in nodes


class TestTracedOffDeterminism:
    """With and without subscribers, simulation results are identical."""

    def build(self):
        from tests.conftest import Harness
        from repro.threads.segments import Compute, SleepFor
        harness = Harness()
        threads = [
            harness.spawn_dhrystone("cpu-bound", weight=2),
            harness.spawn_segments("sleeper", [Compute(3_000),
                                               SleepFor(5 * MS),
                                               Compute(3_000)]),
        ]
        return harness, threads

    def test_subscriber_does_not_change_the_run(self):
        baseline, end_a = collect_run(self.build, None)
        sink = []
        traced, end_b = collect_run(self.build, sink.append)
        assert sink, "the traced run must actually have produced events"
        assert end_a == end_b
        assert baseline == traced

    def test_two_traced_runs_are_identical(self):
        first, __ = collect_run(self.build, lambda e: None)
        second, __ = collect_run(self.build, lambda e: None)
        assert first == second
