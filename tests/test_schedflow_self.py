"""Tests for schedflow, the interprocedural dataflow checker.

Fixture convention (tests/fixtures/schedflow/), mirroring schedlint's:

* ``sfNNN_bad*.py`` must trigger SFNNN — and *only* SFNNN, so every
  fixture stays a precise probe of one rule — when analyzed as a
  standalone one-file project;
* ``*_ok.py`` must analyze completely clean.

The suite also gates the repository itself: ``src/repro`` must be
schedflow-clean, which is what lets ``make lint`` run with an empty
baseline.
"""

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.schedlint import Finding
from repro.devtools.schedflow import RULES, analyze_paths
from repro.devtools.schedflow.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
)
from repro.devtools.schedflow.cfg import build_cfg
from repro.devtools.schedflow.project import ProjectIndex

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "schedflow"
SRC = REPO_ROOT / "src"

BAD_FIXTURES = sorted(FIXTURES.glob("sf*_bad*.py"))
OK_FIXTURES = sorted(FIXTURES.glob("*_ok*.py"))


def _expected_code(path):
    match = re.match(r"(sf\d+)_bad", path.stem)
    assert match, f"bad fixture {path.name} does not follow sfNNN_bad*.py"
    return match.group(1).upper()


def _run_cli(*args):
    """Run ``python -m repro.devtools.schedflow`` as a subprocess."""
    return subprocess.run(
        [sys.executable, "-m", "repro.devtools.schedflow", *args],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


class TestFixtures:
    def test_fixture_inventory(self):
        """Every rule in the catalogue has a bad and an ok fixture."""
        bad = {_expected_code(p) for p in BAD_FIXTURES}
        ok = {m.group(1).upper()
              for p in OK_FIXTURES
              for m in [re.match(r"(sf\d+)_ok", p.stem)] if m}
        # SF5xx seam rules need paired C + Python fixtures, which live
        # in seam/ and are inventoried by tests/test_seamcheck.py.
        expected = {code for code in RULES if not code.startswith("SF5")}
        assert bad == expected
        assert ok == expected

    @pytest.mark.parametrize("path", BAD_FIXTURES, ids=lambda p: p.stem)
    def test_bad_fixture_triggers_exactly_its_rule(self, path):
        findings = analyze_paths([str(path)])
        codes = {f.code for f in findings}
        assert codes == {_expected_code(path)}, [str(f) for f in findings]

    @pytest.mark.parametrize("path", OK_FIXTURES, ids=lambda p: p.stem)
    def test_ok_fixture_is_clean(self, path):
        findings = analyze_paths([str(path)])
        assert findings == [], [str(f) for f in findings]

    def test_branch_removal_is_may_not_must(self):
        """sf302_bad's second function removes only on one branch; the
        join must still poison the later use (exactly 2 sites total)."""
        path = FIXTURES / "sf302_bad_use_after_rmnod.py"
        findings = analyze_paths([str(path)])
        assert len(findings) == 2
        assert {f.line for f in findings} == {10, 17}

    def test_suppression_fixture_fires_without_its_comments(self):
        """suppressed_ok.py is only clean *because* of its suppression
        comments — stripping them must surface SF204 and SF205."""
        source = (FIXTURES / "suppressed_ok.py").read_text()
        stripped = re.sub(r"#\s*schedflow:[^\n]*", "", source)
        index = ProjectIndex()
        index.add_source(stripped, "stripped_example.py")
        from repro.devtools.schedflow import analyze_project
        codes = {f.code for f in analyze_project(index)}
        assert codes == {"SF204", "SF205"}


class TestRepositoryIsClean:
    def test_src_repro_has_no_findings(self):
        """The whole point: the codebase obeys its own dataflow rules."""
        findings = analyze_paths([str(SRC / "repro")])
        assert findings == [], "\n".join(str(f) for f in findings)


class TestCli:
    def test_no_paths_is_usage_error(self):
        result = _run_cli()
        assert result.returncode == 2

    def test_list_rules(self):
        result = _run_cli("--list-rules")
        assert result.returncode == 0
        for code in RULES:
            assert code in result.stdout

    def test_clean_fixture_exits_zero(self):
        result = _run_cli(str(FIXTURES / "sf201_ok_conversions.py"))
        assert result.returncode == 0
        assert "schedflow: clean" in result.stdout

    def test_bad_fixture_exits_one_with_finding(self):
        result = _run_cli(str(FIXTURES / "sf204_bad_weight_store.py"))
        assert result.returncode == 1
        assert "SF204" in result.stdout

    def test_select_narrows_reporting(self):
        result = _run_cli("--select", "SF205",
                          str(FIXTURES / "sf204_bad_weight_store.py"))
        assert result.returncode == 0

    def test_unknown_select_code_is_usage_error(self):
        result = _run_cli("--select", "SF999",
                          str(FIXTURES / "sf204_bad_weight_store.py"))
        assert result.returncode == 2
        assert "SF999" in result.stderr

    def test_quiet_drops_summary_line(self):
        result = _run_cli("-q", str(FIXTURES / "sf201_ok_conversions.py"))
        assert result.returncode == 0
        assert result.stdout == ""

    def test_jobs_output_is_byte_identical_to_serial(self):
        serial = _run_cli(str(FIXTURES))
        pooled = _run_cli("--jobs", "4", str(FIXTURES))
        assert pooled.returncode == serial.returncode == 1
        assert pooled.stdout == serial.stdout

    def test_jobs_clean_run_exits_zero(self):
        result = _run_cli("--select", "SF4", "--jobs", "2",
                          str(FIXTURES / "sf403_ok_derived_seed.py"),
                          str(FIXTURES / "sf406_ok_spec_config.py"))
        assert result.returncode == 0
        assert "schedflow: clean" in result.stdout

    def test_select_prefix_matches_a_family(self):
        result = _run_cli("--select", "SF4",
                          str(FIXTURES / "sf204_bad_weight_store.py"))
        assert result.returncode == 0

    def test_sarif_output_is_valid(self, tmp_path):
        sarif_path = tmp_path / "out.sarif"
        result = _run_cli("--sarif", str(sarif_path),
                          str(FIXTURES / "sf301_bad_foreign_store.py"))
        assert result.returncode == 1
        document = json.loads(sarif_path.read_text())
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "schedflow"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rule_ids == set(RULES)
        results = run["results"]
        assert len(results) == 2
        assert all(r["ruleId"] == "SF301" for r in results)
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1

    def test_baseline_round_trip(self, tmp_path):
        """--write-baseline then --baseline silences existing findings."""
        baseline = tmp_path / "baseline.json"
        bad = str(FIXTURES / "sf302_bad_use_after_rmnod.py")
        wrote = _run_cli("--write-baseline", str(baseline), bad)
        assert wrote.returncode == 0
        assert "2 fingerprints" in wrote.stdout
        replay = _run_cli("--baseline", str(baseline), bad)
        assert replay.returncode == 0
        assert "schedflow: clean" in replay.stdout

    def test_malformed_baseline_is_an_error(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"fingerprints": "oops"}')
        result = _run_cli("--baseline", str(baseline),
                          str(FIXTURES / "sf201_ok_conversions.py"))
        assert result.returncode == 2

    def test_committed_baseline_is_loadable_and_empty(self):
        """The baseline make lint runs with: valid, and empty because
        the repository is clean."""
        path = REPO_ROOT / "devtools" / "schedflow-baseline.json"
        assert load_baseline(str(path)) == []


class TestBaselineFingerprints:
    def _one_finding(self, source):
        index = ProjectIndex()
        index.add_source(source, "fp_example.py")
        from repro.devtools.schedflow import analyze_project
        findings = analyze_project(index)
        assert len(findings) == 1
        return findings[0], {"fp_example.py": source.splitlines()}

    BAD = ("# schedlint-fixture-module: repro/qos/example.py\n"
           "def boost(node):\n"
           "    node.weight = 5\n")

    def test_fingerprint_survives_line_shift(self):
        """Fingerprints anchor on content, not line numbers, so adding
        code above a known finding does not invalidate the baseline."""
        finding, sources = self._one_finding(self.BAD)
        shifted = self.BAD.replace("def boost", "\n\ndef boost")
        moved, moved_sources = self._one_finding(shifted)
        assert moved.line != finding.line
        assert fingerprint(moved, moved_sources) == \
            fingerprint(finding, sources)

    def test_apply_baseline_filters_exactly_matches(self):
        finding, sources = self._one_finding(self.BAD)
        known = [fingerprint(finding, sources)]
        assert apply_baseline([finding], known, sources) == []
        assert apply_baseline([finding], [], sources) == [finding]


class TestCfg:
    """The CFG shapes the SF302 pass leans on."""

    def _cfg(self, body):
        import ast
        tree = ast.parse("def f(x):\n" + body)
        return build_cfg(tree.body[0])

    def test_if_has_two_successors(self):
        cfg = self._cfg("    if x:\n        a = 1\n    return x\n")
        kinds = [type(node).__name__ for node in cfg.nodes]
        assert kinds == ["If", "Assign", "Return"]
        assert sorted(cfg.succs[0]) == [1, 2]

    def test_while_has_back_edge(self):
        cfg = self._cfg("    while x:\n        x = x - 1\n    return x\n")
        assert 0 in cfg.succs[1]  # loop body flows back to the header

    def test_return_ends_flow(self):
        cfg = self._cfg("    return x\n    a = 1\n")
        assert cfg.succs[0] == []
