"""Admission control when the capacity behind it drops mid-run.

faultlab's capacity faults shrink what the CPU can actually deliver; the
QoS manager's admission tests only see the *configured* share.  These
tests pin down the contract at that seam: decisions flip exactly when
the share (weight) or machine capacity passed to the tests changes,
revocation (``remove``) frees budget for later submissions, and already
admitted work is never retroactively revoked by a weight change.
"""

import pytest

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.cpu.machine import Machine
from repro.errors import AdmissionError
from repro.qos.admission import (
    edf_admissible,
    rma_admissible,
    rma_utilization_bound,
    statistical_admissible,
)
from repro.qos.manager import QosManager
from repro.qos.spec import HARD_RT, SOFT_RT, QosRequest
from repro.sim.engine import Simulator
from repro.trace.recorder import Recorder
from repro.units import MS
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.periodic import PeriodicWorkload

CAPACITY = 1_000_000
KILO = 1000


class Harness:
    def __init__(self, class_weights=(2, 3, 5)):
        self.structure = SchedulingStructure()
        self.engine = Simulator()
        self.machine = Machine(self.engine,
                               HierarchicalScheduler(self.structure),
                               capacity_ips=CAPACITY,
                               default_quantum=10 * MS,
                               tracer=Recorder())
        self.manager = QosManager(self.machine, self.structure,
                                  class_weights=class_weights,
                                  rt_quantum=10 * MS)

    def hard(self, name, period, wcet):
        return self.manager.submit(
            QosRequest(name, HARD_RT, period=period, wcet=wcet),
            PeriodicWorkload(period=period, cost=10 * KILO))

    def soft(self, name, mean, std=0.0):
        return self.manager.submit(
            QosRequest(name, SOFT_RT, mean_demand=mean, std_demand=std),
            DhrystoneWorkload())


class TestStatisticalCapacityDrop:
    """Direct edges of the statistical test as capacity shrinks."""

    def test_exact_boundary_is_admitted(self):
        # sum(means) + k * sqrt(sum(vars)) == capacity: admit (<=).
        assert statistical_admissible([600.0, 300.0], [30.0, 40.0],
                                      capacity_ips=1000.0,
                                      overbooking_sigmas=2.0)

    def test_one_below_boundary_is_denied(self):
        assert not statistical_admissible([600.0, 300.0], [30.0, 40.0],
                                          capacity_ips=999.0,
                                          overbooking_sigmas=2.0)

    def test_capacity_drop_flips_admitted_set(self):
        means, stds = [400.0, 300.0], [50.0, 0.0]
        assert statistical_admissible(means, stds, 1000.0)
        # A 40% collapse leaves 600 ips: the same set no longer fits.
        assert not statistical_admissible(means, stds, 600.0)

    def test_variance_matters_only_through_sigmas(self):
        means, stds = [500.0], [100.0]
        assert statistical_admissible(means, stds, 700.0,
                                      overbooking_sigmas=2.0)
        assert not statistical_admissible(means, stds, 700.0,
                                          overbooking_sigmas=3.0)

    def test_capacity_must_stay_positive(self):
        # A total collapse is a caller bug, not a denial.
        with pytest.raises(ValueError):
            statistical_admissible([1.0], [0.0], 0.0)
        with pytest.raises(ValueError):
            statistical_admissible([1.0], [0.0], -100.0)


class TestDeterministicShareDrop:
    """RMA/EDF decisions as the class's CPU share shrinks."""

    def test_rma_share_drop_flips_decision(self):
        tasks = [(100, 20), (200, 30)]  # U = 0.35
        assert rma_admissible(tasks, capacity_fraction=0.5)
        assert not rma_admissible(tasks, capacity_fraction=0.4)

    def test_rma_boundary_tracks_liu_layland(self):
        bound = rma_utilization_bound(2)
        tasks = [(100, 25), (100, 25)]  # U = 0.5
        assert rma_admissible(tasks, 0.5 / bound + 1e-9)
        assert not rma_admissible(tasks, 0.5 / bound - 1e-9)

    def test_edf_outlives_rma_under_the_same_drop(self):
        # EDF admits up to the full share; RMA gives up at the LL bound.
        tasks = [(100, 20), (150, 30), (300, 60)]  # U = 0.6
        fraction = 0.65
        assert edf_admissible(tasks, fraction)
        assert not rma_admissible(tasks, fraction)

    def test_share_must_stay_in_unit_interval(self):
        with pytest.raises(ValueError):
            rma_admissible([(100, 10)], 0.0)
        with pytest.raises(ValueError):
            edf_admissible([(100, 10)], 1.5)


class TestManagerMidRunShrink:
    """Weight changes mid-run re-shape future admission decisions."""

    def test_hard_share_shrink_rejects_next_submit(self):
        h = Harness(class_weights=(2, 3, 5))  # hard share = 0.2
        h.hard("rt1", period=100 * MS, wcet=10 * MS)
        probe = QosRequest("rt2", HARD_RT, period=100 * MS, wcet=5 * MS)
        # Sanity: under the original share the probe would be admitted.
        assert rma_admissible([(100 * MS, 10 * MS), (100 * MS, 5 * MS)], 0.2)
        h.manager.hard_leaf.set_weight(1)  # share drops to 1/9
        with pytest.raises(AdmissionError):
            h.manager.submit(probe,
                             PeriodicWorkload(period=100 * MS, cost=5 * KILO))

    def test_soft_share_shrink_rejects_next_submit(self):
        h = Harness(class_weights=(2, 3, 5))  # soft share = 0.3 -> 300k ips
        h.soft("v1", mean=200_000.0)
        h.manager.soft_leaf.set_weight(1)  # share drops to 1/8 -> 125k ips
        with pytest.raises(AdmissionError):
            h.soft("v2", mean=50_000.0)

    def test_admitted_work_is_not_revoked_by_shrink(self):
        h = Harness(class_weights=(2, 3, 5))
        t1 = h.hard("rt1", period=100 * MS, wcet=10 * MS)
        h.manager.hard_leaf.set_weight(1)
        # The reservation book still carries rt1; only *new* work is vetted.
        assert h.manager.admitted_hard_utilization() == pytest.approx(0.1)
        assert t1.leaf is h.manager.hard_leaf

    def test_shrink_then_restore_readmits(self):
        h = Harness(class_weights=(2, 3, 5))
        h.manager.hard_leaf.set_weight(1)
        probe = QosRequest("rt1", HARD_RT, period=100 * MS, wcet=15 * MS)
        with pytest.raises(AdmissionError):
            h.manager.submit(probe,
                             PeriodicWorkload(period=100 * MS, cost=15 * KILO))
        h.manager.hard_leaf.set_weight(2)
        h.manager.submit(probe,
                         PeriodicWorkload(period=100 * MS, cost=15 * KILO))
        assert h.manager.admitted_hard_utilization() == pytest.approx(0.15)


class TestRevocationFreesBudget:
    def test_remove_hard_frees_budget(self):
        h = Harness(class_weights=(2, 3, 5))  # hard share = 0.2
        t1 = h.hard("rt1", period=100 * MS, wcet=15 * MS)
        denied = QosRequest("rt2", HARD_RT, period=100 * MS, wcet=15 * MS)
        with pytest.raises(AdmissionError):
            h.manager.submit(denied,
                             PeriodicWorkload(period=100 * MS, cost=15 * KILO))
        h.manager.remove(t1)
        assert h.manager.admitted_hard_utilization() == 0.0
        h.manager.submit(denied,
                         PeriodicWorkload(period=100 * MS, cost=15 * KILO))
        assert h.manager.admitted_hard_utilization() == pytest.approx(0.15)

    def test_remove_soft_frees_budget(self):
        h = Harness(class_weights=(2, 3, 5))  # soft budget = 300k ips
        t1 = h.soft("v1", mean=250_000.0)
        with pytest.raises(AdmissionError):
            h.soft("v2", mean=100_000.0)
        h.manager.remove(t1)
        h.soft("v2", mean=100_000.0)
        assert h.manager.admitted_soft_demand() == pytest.approx(100_000.0)

    def test_remove_is_idempotent(self):
        h = Harness()
        t1 = h.hard("rt1", period=100 * MS, wcet=10 * MS)
        h.manager.remove(t1)
        h.manager.remove(t1)  # second removal is a no-op
        assert h.manager.admitted_hard_utilization() == 0.0


class TestAdmissionLogReplay:
    """The faultlab admission oracle's core move: decisions re-derive.

    A logged (inputs, decision) pair must replay to the same decision
    from the pure admission functions — even when the share recorded at
    submit time no longer matches the current weights.
    """

    def test_logged_decisions_rederive(self):
        h = Harness(class_weights=(2, 3, 5))
        log = []

        def submit_logged(name, period, wcet):
            tasks = [(r.period, r.wcet) for r in h.manager._hard_tasks]
            tasks.append((period, wcet))
            share = h.manager._class_fraction(h.manager.hard_leaf)
            try:
                h.hard(name, period=period, wcet=wcet)
                admitted = True
            except AdmissionError:
                admitted = False
            log.append((tuple(tasks), share, admitted))

        submit_logged("rt1", 100 * MS, 10 * MS)
        h.manager.hard_leaf.set_weight(1)  # capacity drops between submits
        submit_logged("rt2", 100 * MS, 8 * MS)
        h.manager.hard_leaf.set_weight(4)
        submit_logged("rt3", 100 * MS, 8 * MS)

        assert [entry[2] for entry in log] == [True, False, True]
        for tasks, share, admitted in log:
            assert rma_admissible(list(tasks), share) == admitted

    def test_statistical_log_rederives_after_capacity_drop(self):
        means, stds, capacity = [300_000.0], [20_000.0], 600_000.0
        first = statistical_admissible(means, stds, capacity)
        collapsed = capacity * 0.4
        second = statistical_admissible(means + [100_000.0], stds + [0.0],
                                        collapsed)
        assert (first, second) == (True, False)
        # Replay: same inputs, same verdicts, no hidden state.
        assert statistical_admissible(means, stds, capacity) is first
        assert statistical_admissible(means + [100_000.0], stds + [0.0],
                                      collapsed) is second
