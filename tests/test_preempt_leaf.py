"""The PREEMPT_LEAF extension: intra-leaf preemption through the hierarchy."""

import pytest

from repro.core.hierarchy import PREEMPT_LEAF, HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.cpu.machine import Machine
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.threads.segments import Compute, SegmentListWorkload, SleepFor
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.periodic import PeriodicWorkload

CAPACITY = 1_000_000
KILO = 1000


def build(preempt_policy="none"):
    structure = SchedulingStructure()
    rt = structure.mknod("/rt", 1, scheduler=EdfScheduler(quantum=50 * MS))
    best = structure.mknod("/best", 1, scheduler=SfqScheduler())
    engine = Simulator()
    recorder = Recorder()
    machine = Machine(engine, HierarchicalScheduler(structure,
                                                    preempt_policy),
                      capacity_ips=CAPACITY, default_quantum=50 * MS,
                      tracer=recorder)
    return structure, rt, best, machine, recorder


class TestPreemptLeaf:
    def test_urgent_job_preempts_within_its_leaf(self):
        structure, rt, best, machine, recorder = build(PREEMPT_LEAF)
        long_job = SimThread(
            "long", SegmentListWorkload([Compute(40 * KILO)]),
            params={"period": SECOND})
        urgent = SimThread(
            "urgent", SegmentListWorkload([SleepFor(5 * MS),
                                           Compute(KILO)]),
            params={"period": 20 * MS})
        rt.attach_thread(long_job)
        rt.attach_thread(urgent)
        machine.spawn(long_job)
        machine.spawn(urgent)
        machine.run_until(SECOND)
        # urgent (shorter deadline) preempted long mid-quantum at 5 ms
        assert urgent.stats.exited_at == 6 * MS
        assert long_job.stats.preemptions == 1

    def test_no_preemption_in_default_mode(self):
        structure, rt, best, machine, recorder = build("none")
        long_job = SimThread(
            "long", SegmentListWorkload([Compute(40 * KILO)]),
            params={"period": SECOND})
        urgent = SimThread(
            "urgent", SegmentListWorkload([SleepFor(5 * MS),
                                           Compute(KILO)]),
            params={"period": 20 * MS})
        rt.attach_thread(long_job)
        rt.attach_thread(urgent)
        machine.spawn(long_job)
        machine.spawn(urgent)
        machine.run_until(SECOND)
        # urgent had to wait for long's entire 40 ms run (one quantum)
        assert urgent.stats.exited_at == 41 * MS
        assert long_job.stats.preemptions == 0

    def test_cross_leaf_wakeup_never_preempts(self):
        structure, rt, best, machine, recorder = build(PREEMPT_LEAF)
        # one long segment so the 50 ms quantum is the only boundary
        hog = SimThread("hog", SegmentListWorkload([Compute(200 * KILO)]))
        best.attach_thread(hog)
        machine.spawn(hog)
        urgent = SimThread(
            "urgent", SegmentListWorkload([SleepFor(5 * MS),
                                           Compute(KILO)]),
            params={"period": 20 * MS})
        rt.attach_thread(urgent)
        machine.spawn(urgent)
        machine.run_until(SECOND)
        # hog is in a different leaf: its quantum completes first (50 ms)
        assert hog.stats.preemptions == 0
        assert urgent.stats.exited_at == 51 * MS

    def test_periodic_deadlines_tighten_with_preemption(self):
        """With intra-leaf preemption the short-period task's worst
        latency drops below the long task's quantum length."""
        from repro.trace.metrics import latency_slack

        def run_policy(policy):
            structure, rt, best, machine, recorder = build(policy)
            fast_wl = PeriodicWorkload(period=50 * MS, cost=2 * KILO)
            slow_wl = PeriodicWorkload(period=400 * MS, cost=100 * KILO)
            fast = SimThread("fast", fast_wl, params={"period": 50 * MS})
            slow = SimThread("slow", slow_wl, params={"period": 400 * MS})
            rt.attach_thread(fast)
            rt.attach_thread(slow)
            machine.spawn(fast)
            machine.spawn(slow)
            machine.run_until(4 * SECOND)
            results = latency_slack(recorder, fast, fast_wl)
            return max(latency for __, latency, __ in results)

        preemptive = run_policy(PREEMPT_LEAF)
        cooperative = run_policy("none")
        assert preemptive < cooperative
        assert preemptive <= 1 * MS  # immediate within the leaf
