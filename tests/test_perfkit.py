"""The perfkit benchmark harness: schema, comparison logic, CLI.

These tests run the *real* harness with one tiny scenario (quick mode,
one repeat) so the end-to-end pipeline — run, validate, dump, load,
compare — is exercised without minutes of benchmarking.  Comparison
semantics (threshold, min-speedup, mode guard) are tested on synthetic
reports so they are timing-independent.
"""

import copy
import json

import pytest

from repro.perfkit.compare import (
    DEFAULT_THRESHOLD,
    compare_reports,
    parse_min_speedup,
)
from repro.perfkit.harness import run_suite
from repro.perfkit.cli import main
from repro.perfkit.scenarios import SCENARIOS
from repro.perfkit.schema import (
    SCHEMA,
    SchemaError,
    dump_report,
    load_report,
    validate_report,
)

#: the cheapest scenario, used wherever a real measurement is required
FAST_SCENARIO = "figure5_replay"


@pytest.fixture(scope="module")
def quick_report():
    """One real quick-mode measurement, shared by the module's tests."""
    return run_suite(quick=True, repeats=1, scenario_names=[FAST_SCENARIO])


def _synthetic_report(mode, **medians):
    """A minimal report dict for compare tests (not schema-complete)."""
    scenarios = {}
    for name, median in medians.items():
        scenarios[name] = {"stats": {"run_s": {"median": median}}}
    return {"schema": SCHEMA, "mode": mode, "scenarios": scenarios}


class TestHarness:
    def test_quick_report_is_schema_valid(self, quick_report):
        assert validate_report(quick_report) is quick_report
        assert quick_report["schema"] == SCHEMA
        assert quick_report["mode"] == "quick"
        entry = quick_report["scenarios"][FAST_SCENARIO]
        assert entry["stats"]["events"] > 0
        assert entry["stats"]["dispatches"] > 0
        assert entry["stats"]["run_s"]["median"] > 0
        assert entry["stats"]["events_per_sec"] > 0

    def test_scenario_registry_is_consistent(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_suite(quick=True, repeats=1, scenario_names=["nope"])

    def test_trace_dir_records_a_valid_binlog(self, tmp_path, capsys):
        from repro.obs.binlog import BinaryTraceReader

        run_suite(quick=True, repeats=1, scenario_names=[FAST_SCENARIO],
                  echo=print, trace_dir=str(tmp_path))
        assert "traced" in capsys.readouterr().out
        reader = BinaryTraceReader(str(tmp_path / (FAST_SCENARIO + ".binlog")))
        assert len(reader) > 1000

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_suite(quick=True, repeats=0)

    def test_dump_and_load_roundtrip(self, quick_report, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        dump_report(quick_report, path)
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(quick_report))

    def test_load_rejects_wrong_schema(self, quick_report, tmp_path):
        bad = copy.deepcopy(quick_report)
        bad["schema"] = "repro.perfkit/999"
        path = str(tmp_path / "bad.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bad, handle)
        with pytest.raises(SchemaError):
            load_report(path)


class TestCompare:
    def test_no_change_is_ok(self):
        baseline = _synthetic_report("quick", deep=1.0, smp=2.0)
        current = _synthetic_report("quick", deep=1.0, smp=2.0)
        result = compare_reports(current, baseline)
        assert result.ok
        assert "OK" in result.render()

    def test_double_slowdown_fails(self):
        baseline = _synthetic_report("quick", deep=1.0)
        current = _synthetic_report("quick", deep=2.0)
        result = compare_reports(current, baseline)
        assert not result.ok
        assert result.deltas[0].regressed
        assert "REGRESSION" in result.render()

    def test_slowdown_within_threshold_is_ok(self):
        baseline = _synthetic_report("quick", deep=1.0)
        current = _synthetic_report("quick", deep=1.0 + DEFAULT_THRESHOLD - 0.01)
        assert compare_reports(current, baseline).ok

    def test_min_speedup_enforced(self):
        baseline = _synthetic_report("quick", deep=1.5)
        current = _synthetic_report("quick", deep=1.2)  # only 1.25x
        result = compare_reports(current, baseline,
                                 min_speedups={"deep": 1.5})
        assert not result.ok
        assert not result.deltas[0].met_required
        met = compare_reports(current, baseline, min_speedups={"deep": 1.2})
        assert met.ok

    def test_min_speedup_for_unknown_scenario_rejected(self):
        baseline = _synthetic_report("quick", deep=1.0)
        current = _synthetic_report("quick", deep=1.0)
        with pytest.raises(ValueError, match="absent"):
            compare_reports(current, baseline, min_speedups={"ghost": 2.0})

    def test_mode_mismatch_rejected(self):
        baseline = _synthetic_report("full", deep=1.0)
        current = _synthetic_report("quick", deep=1.0)
        with pytest.raises(ValueError, match="mode"):
            compare_reports(current, baseline)

    def test_scenarios_in_one_report_only_never_fail(self):
        baseline = _synthetic_report("quick", deep=1.0, old_only=1.0)
        current = _synthetic_report("quick", deep=1.0, new_only=1.0)
        result = compare_reports(current, baseline)
        assert result.ok
        assert result.only_baseline == ["old_only"]
        assert result.only_current == ["new_only"]

    def test_negative_threshold_rejected(self):
        report = _synthetic_report("quick", deep=1.0)
        with pytest.raises(ValueError, match="threshold"):
            compare_reports(report, report, threshold=-0.1)

    def test_parse_min_speedup(self):
        assert parse_min_speedup(["a:1.5", "b:2"]) == {"a": 1.5, "b": 2.0}
        with pytest.raises(ValueError):
            parse_min_speedup(["no-colon"])
        with pytest.raises(ValueError):
            parse_min_speedup(["a:not-a-number"])
        with pytest.raises(ValueError):
            parse_min_speedup(["a:-1"])


class TestCli:
    def test_run_then_compare_ok(self, quick_report, tmp_path, capsys):
        baseline_path = str(tmp_path / "baseline.json")
        current_path = str(tmp_path / "current.json")
        dump_report(quick_report, baseline_path)
        dump_report(quick_report, current_path)
        assert main(["compare", current_path, baseline_path]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_compare_fails_on_injected_slowdown(self, quick_report,
                                                tmp_path, capsys):
        baseline_path = str(tmp_path / "baseline.json")
        dump_report(quick_report, baseline_path)
        slowed = copy.deepcopy(quick_report)
        stats = slowed["scenarios"][FAST_SCENARIO]["stats"]["run_s"]
        for key in ("min", "median", "mean"):
            stats[key] *= 2.0
        slowed_path = str(tmp_path / "slowed.json")
        dump_report(slowed, slowed_path)
        assert main(["compare", slowed_path, baseline_path]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_missing_file_exits_2(self, quick_report, tmp_path,
                                          capsys):
        baseline_path = str(tmp_path / "baseline.json")
        dump_report(quick_report, baseline_path)
        assert main(["compare", str(tmp_path / "absent.json"),
                     baseline_path]) == 2
        assert "perfkit compare" in capsys.readouterr().err

    def test_cli_run_writes_valid_report(self, tmp_path, capsys):
        out = str(tmp_path / "bench" / "BENCH_cli.json")
        code = main(["run", "--quick", "--repeats", "1",
                     "--scenario", FAST_SCENARIO, "--out", out])
        assert code == 0
        report = load_report(out)
        assert report["mode"] == "quick"
        assert FAST_SCENARIO in report["scenarios"]
        assert "wrote" in capsys.readouterr().out
