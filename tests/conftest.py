"""Shared test fixtures and builders."""

from __future__ import annotations

import os

import pytest

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.cpu.flat import FlatScheduler
from repro.cpu.machine import Machine
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.threads.segments import Compute, SegmentListWorkload
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.units import MS
from repro.workloads.dhrystone import DhrystoneWorkload


class Harness:
    """A hierarchical machine with one SFQ leaf, ready for thread spawns."""

    def __init__(self, capacity_ips: int = 1_000_000,
                 default_quantum: int = 10 * MS) -> None:
        self.structure = SchedulingStructure()
        self.leaf = self.structure.mknod("/apps", 1, scheduler=SfqScheduler())
        self.engine = Simulator()
        self.recorder = Recorder()
        self.scheduler = HierarchicalScheduler(self.structure)
        self.machine = Machine(self.engine, self.scheduler,
                               capacity_ips=capacity_ips,
                               default_quantum=default_quantum,
                               tracer=self.recorder)

    def spawn_dhrystone(self, name: str, weight: int = 1,
                        leaf=None) -> SimThread:
        thread = SimThread(name, DhrystoneWorkload(loop_cost=100, batch=10),
                           weight=weight)
        (leaf or self.leaf).attach_thread(thread)
        self.machine.spawn(thread)
        return thread

    def spawn_segments(self, name: str, segments, weight: int = 1,
                       leaf=None, params=None) -> SimThread:
        thread = SimThread(name, SegmentListWorkload(segments), weight=weight,
                           params=params)
        (leaf or self.leaf).attach_thread(thread)
        self.machine.spawn(thread)
        return thread


class FlatHarness:
    """A flat machine around a given leaf scheduler."""

    def __init__(self, leaf_scheduler, capacity_ips: int = 1_000_000,
                 default_quantum: int = 10 * MS) -> None:
        self.engine = Simulator()
        self.recorder = Recorder()
        self.leaf_scheduler = leaf_scheduler
        self.machine = Machine(self.engine, FlatScheduler(leaf_scheduler),
                               capacity_ips=capacity_ips,
                               default_quantum=default_quantum,
                               tracer=self.recorder)

    def spawn_segments(self, name: str, segments, weight: int = 1,
                       params=None) -> SimThread:
        thread = SimThread(name, SegmentListWorkload(segments), weight=weight,
                           params=params)
        self.machine.spawn(thread)
        return thread

    def spawn_dhrystone(self, name: str, weight: int = 1,
                        params=None) -> SimThread:
        thread = SimThread(name, DhrystoneWorkload(loop_cost=100, batch=10),
                           weight=weight, params=params)
        self.machine.spawn(thread)
        return thread


@pytest.fixture(autouse=True, scope="session")
def obs_bus_subscriber():
    """With ``REPRO_OBS=1``, keep a counting subscriber on the event bus for
    the whole session, so every emit site actually runs (and every result
    the suite asserts on is produced with instrumentation active — the
    observability analogue of the SCHEDSAN suite run)."""
    if os.environ.get("REPRO_OBS", "") in ("", "0"):
        yield None
        return
    from repro.obs import events as ev

    counts: dict = {}

    def count(event: ev.Event) -> None:
        counts[event.kind] = counts.get(event.kind, 0) + 1

    ev.BUS.subscribe(count)
    try:
        yield counts
    finally:
        ev.BUS.unsubscribe(count)
    assert counts, "REPRO_OBS=1 run saw no events at all"


@pytest.fixture
def harness() -> Harness:
    return Harness()


@pytest.fixture
def engine() -> Simulator:
    return Simulator()


def compute(work: int) -> Compute:
    return Compute(work)
