"""Machine edge cases: horizon interactions, float-tag hierarchies,
repeated run_until, interrupts straddling windows."""

import pytest

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.core.tags import FLOAT, TagMath
from repro.cpu.machine import Machine
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.threads.segments import Compute, SegmentListWorkload, SleepFor
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload

KILO = 1000


class TestFloatTagHierarchy:
    """The whole structure can run in float mode end to end."""

    def build(self):
        structure = SchedulingStructure(tag_math=FLOAT)
        leaf_a = structure.mknod("/a", 1,
                                 scheduler=SfqScheduler(tag_math=FLOAT))
        leaf_b = structure.mknod("/b", 3,
                                 scheduler=SfqScheduler(tag_math=FLOAT))
        engine = Simulator()
        machine = Machine(engine, HierarchicalScheduler(structure),
                          capacity_ips=1_000_000, default_quantum=10 * MS,
                          tracer=Recorder())
        return structure, leaf_a, leaf_b, machine

    def test_weighted_split_in_float_mode(self):
        structure, leaf_a, leaf_b, machine = self.build()
        ta = SimThread("a", DhrystoneWorkload(loop_cost=100, batch=10))
        tb = SimThread("b", DhrystoneWorkload(loop_cost=100, batch=10))
        leaf_a.attach_thread(ta)
        leaf_b.attach_thread(tb)
        machine.spawn(ta)
        machine.spawn(tb)
        machine.run_until(2 * SECOND)
        assert tb.stats.work_done == pytest.approx(3 * ta.stats.work_done,
                                                   rel=0.01)

    def test_internal_queue_uses_float_tags(self):
        structure, leaf_a, leaf_b, machine = self.build()
        ta = SimThread("a", DhrystoneWorkload(loop_cost=100, batch=10))
        leaf_a.attach_thread(ta)
        machine.spawn(ta)
        machine.run_until(100 * MS)
        assert isinstance(structure.root.queue.finish_tag(leaf_a), float)


class TestHorizonInteractions:
    def test_repeated_run_until_consistent(self, harness):
        thread = harness.spawn_dhrystone("t")
        totals = []
        for stop_ms in (137, 450, 451, 999, 2000):
            harness.machine.run_until(stop_ms * MS)
            totals.append(thread.stats.work_done)
        # monotone and exact at every horizon (1 instruction rounding)
        assert totals == sorted(totals)
        for stop_ms, total in zip((137, 450, 451, 999, 2000), totals):
            assert abs(total - stop_ms * KILO) <= len(totals)

    def test_wakeup_exactly_at_horizon(self, harness):
        thread = harness.spawn_segments(
            "t", [Compute(KILO), SleepFor(99 * MS), Compute(KILO)])
        harness.machine.run_until(100 * MS)
        # the wake at t=100ms fires (events at the horizon run)
        assert thread.state in (ThreadState.RUNNABLE, ThreadState.RUNNING)
        harness.machine.run_until(SECOND)
        assert thread.state is ThreadState.EXITED

    def test_flush_while_paused_by_interrupt(self, harness):
        thread = harness.spawn_segments("t", [Compute(50 * KILO)])
        harness.engine.at(5 * MS, lambda: harness.machine.interrupt(20 * MS))
        # horizon lands inside the interrupt-service window
        harness.machine.run_until(10 * MS)
        assert thread.stats.work_done == 5 * KILO
        harness.machine.run_until(SECOND)
        assert thread.stats.work_done == 50 * KILO
        assert thread.stats.exited_at == 70 * MS

    def test_interrupt_spanning_many_quanta(self, harness):
        a = harness.spawn_dhrystone("a")
        b = harness.spawn_dhrystone("b")
        # one huge 200 ms interrupt: everything freezes, fairness resumes
        harness.engine.at(50 * MS, lambda: harness.machine.interrupt(200 * MS))
        harness.machine.run_until(SECOND)
        assert a.stats.work_done + b.stats.work_done == 800 * KILO
        assert abs(a.stats.work_done - b.stats.work_done) <= 10 * KILO


class TestThreadListBookkeeping:
    def test_machine_thread_registry(self, harness):
        threads = [harness.spawn_dhrystone("t%d" % i) for i in range(3)]
        assert harness.machine.threads == threads

    def test_now_property(self, harness):
        assert harness.machine.now == 0
        harness.machine.run_until(123 * MS)
        assert harness.machine.now == 123 * MS
