"""EDF and RMA real-time schedulers."""

import pytest

from repro.errors import SchedulingError
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.rma import RmaScheduler
from repro.threads.segments import SegmentListWorkload
from repro.threads.thread import SimThread
from repro.trace.metrics import latency_slack
from repro.units import MS, SECOND
from repro.workloads.periodic import PeriodicWorkload

from tests.conftest import FlatHarness

KILO = 1000


def rt_thread(name, period, deadline=None):
    params = {"period": period}
    if deadline is not None:
        params["deadline"] = deadline
    return SimThread(name, SegmentListWorkload([]), params=params)


class TestEdfUnit:
    def test_requires_period_or_deadline(self):
        sched = EdfScheduler()
        with pytest.raises(SchedulingError):
            sched.add_thread(SimThread("x", SegmentListWorkload([])))

    def test_earliest_deadline_first(self):
        sched = EdfScheduler()
        slow = rt_thread("slow", 100 * MS)
        fast = rt_thread("fast", 10 * MS)
        for t in (slow, fast):
            sched.add_thread(t)
        sched.on_runnable(slow, 0)
        sched.on_runnable(fast, 0)
        assert sched.pick_next(0) is fast

    def test_deadline_set_at_release(self):
        sched = EdfScheduler()
        t = rt_thread("t", 100 * MS)
        sched.add_thread(t)
        sched.on_runnable(t, 50 * MS)
        assert sched.deadline_of(t) == 150 * MS

    def test_explicit_deadline_overrides_period(self):
        sched = EdfScheduler()
        t = rt_thread("t", 100 * MS, deadline=30 * MS)
        sched.add_thread(t)
        sched.on_runnable(t, 0)
        assert sched.deadline_of(t) == 30 * MS

    def test_release_order_beats_arrival_order(self):
        sched = EdfScheduler()
        a = rt_thread("a", 100 * MS)
        b = rt_thread("b", 100 * MS)
        for t in (a, b):
            sched.add_thread(t)
        sched.on_runnable(a, 10 * MS)  # deadline 110
        sched.on_runnable(b, 0)        # deadline 100
        assert sched.pick_next(10 * MS) is b

    def test_should_preempt_by_deadline(self):
        sched = EdfScheduler()
        a, b = rt_thread("a", 100 * MS), rt_thread("b", 10 * MS)
        for t in (a, b):
            sched.add_thread(t)
        sched.on_runnable(a, 0)
        sched.on_runnable(b, 0)
        assert sched.should_preempt(a, b, 0)
        assert not sched.should_preempt(b, a, 0)

    def test_block_removes_from_heap(self):
        sched = EdfScheduler()
        t = rt_thread("t", 10 * MS)
        sched.add_thread(t)
        sched.on_runnable(t, 0)
        sched.on_block(t, 5 * MS)
        assert sched.pick_next(5 * MS) is None
        assert not sched.has_runnable()


class TestRmaUnit:
    def test_requires_period(self):
        sched = RmaScheduler()
        with pytest.raises(SchedulingError):
            sched.add_thread(SimThread("x", SegmentListWorkload([])))

    def test_shorter_period_wins(self):
        sched = RmaScheduler()
        slow = rt_thread("slow", 960 * MS)
        fast = rt_thread("fast", 60 * MS)
        for t in (slow, fast):
            sched.add_thread(t)
        sched.on_runnable(slow, 0)
        sched.on_runnable(fast, 0)
        assert sched.pick_next(0) is fast

    def test_priority_is_static(self):
        sched = RmaScheduler()
        fast = rt_thread("fast", 10 * MS)
        slow = rt_thread("slow", 100 * MS)
        for t in (fast, slow):
            sched.add_thread(t)
        # regardless of release times, period decides
        sched.on_runnable(slow, 0)
        sched.on_runnable(fast, 90 * MS)
        assert sched.pick_next(90 * MS) is fast

    def test_per_thread_quantum_param(self):
        sched = RmaScheduler(quantum=25 * MS)
        t = rt_thread("t", 60 * MS)
        t.params["quantum"] = 5 * MS
        sched.add_thread(t)
        assert sched.quantum_for(t) == 5 * MS

    def test_scheduler_quantum_default(self):
        sched = RmaScheduler(quantum=25 * MS)
        t = rt_thread("t", 60 * MS)
        sched.add_thread(t)
        assert sched.quantum_for(t) == 25 * MS


class TestPeriodicOnMachine:
    def _run(self, scheduler_cls):
        harness = FlatHarness(scheduler_cls(quantum=25 * MS),
                              capacity_ips=1_000_000,
                              default_quantum=25 * MS)
        wl1 = PeriodicWorkload(period=60 * MS, cost=10 * KILO)   # 10 ms/60 ms
        wl2 = PeriodicWorkload(period=960 * MS, cost=150 * KILO)  # 150/960
        t1 = SimThread("t1", wl1, params={"period": 60 * MS})
        t2 = SimThread("t2", wl2, params={"period": 960 * MS})
        harness.machine.spawn(t1)
        harness.machine.spawn(t2)
        harness.machine.run_until(5 * SECOND)
        return harness, t1, wl1, t2, wl2

    @pytest.mark.parametrize("scheduler_cls", [EdfScheduler, RmaScheduler])
    def test_all_deadlines_met(self, scheduler_cls):
        harness, t1, wl1, t2, wl2 = self._run(scheduler_cls)
        for thread, workload in [(t1, wl1), (t2, wl2)]:
            results = latency_slack(harness.recorder, thread, workload)
            assert results, "no completed rounds for %s" % thread.name
            assert all(slack > 0 for __, __, slack in results)

    @pytest.mark.parametrize("scheduler_cls", [EdfScheduler, RmaScheduler])
    def test_short_period_latency_bounded_by_quantum(self, scheduler_cls):
        harness, t1, wl1, __, ___ = self._run(scheduler_cls)
        results = latency_slack(harness.recorder, t1, wl1)
        # non-preemptive quanta: waits at most one 25 ms quantum
        assert max(latency for __, latency, __ in results) <= 25 * MS
