"""The SF4xx parallel-safety pass: MHP-relation laws and pass internals.

The may-happen-in-parallel core is pure graph code, so its algebraic
laws (symmetry, monotonicity in both the edge set and the entrypoint
set) are checked with hypothesis over random call graphs; the
source-level behaviors (pool-site detection, ``functools.partial``
unwrapping, cross-file global writes, ``--jobs`` determinism) are
checked on small synthetic projects.
"""

from pathlib import Path

from hypothesis import given
from hypothesis import strategies as st

from repro.devtools.schedflow import analyze_paths, analyze_project
from repro.devtools.schedflow.parallel import (
    MhpRelation,
    module_mutable_globals,
    reachable,
)
from repro.devtools.schedflow.parjobs import analyze_paths_jobs, bucketize
from repro.devtools.schedflow.project import ProjectIndex

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "schedflow"

NAMES = ["f%d" % i for i in range(6)]

names = st.sampled_from(NAMES)
root_sets = st.frozensets(names, max_size=3)
edge_maps = st.dictionaries(names, st.frozensets(names, max_size=4),
                            max_size=6)


def _merge(edges_a, edges_b):
    """Union of two adjacency maps."""
    merged = {}
    for edges in (edges_a, edges_b):
        for node, succs in edges.items():
            merged[node] = merged.get(node, frozenset()) | succs
    return merged


class TestReachableLaws:
    @given(roots=root_sets, edges=edge_maps)
    def test_contains_roots(self, roots, edges):
        assert roots <= reachable(roots, edges)

    @given(roots=root_sets, edges=edge_maps)
    def test_idempotent(self, roots, edges):
        once = reachable(roots, edges)
        assert reachable(once, edges) == once

    @given(roots_a=root_sets, roots_b=root_sets, edges=edge_maps)
    def test_monotone_in_roots(self, roots_a, roots_b, edges):
        assert reachable(roots_a, edges) <= reachable(roots_a | roots_b,
                                                      edges)

    @given(roots=root_sets, edges_a=edge_maps, edges_b=edge_maps)
    def test_monotone_in_edges(self, roots, edges_a, edges_b):
        """Adding call edges can only grow the reachable set."""
        assert reachable(roots, edges_a) <= \
            reachable(roots, _merge(edges_a, edges_b))

    @given(roots=root_sets, edges=edge_maps)
    def test_closed_under_edges(self, roots, edges):
        closure = reachable(roots, edges)
        for node in closure:
            assert edges.get(node, frozenset()) <= closure


class TestMhpRelationLaws:
    @given(entry=root_sets, edges=edge_maps, a=names, b=names)
    def test_symmetry(self, entry, edges, a, b):
        mhp = MhpRelation.from_graph(entry, edges)
        assert mhp.in_parallel(a, b) == mhp.in_parallel(b, a)

    @given(entry=root_sets, edges=edge_maps, a=names)
    def test_self_parallelism(self, entry, edges, a):
        """A pool runs the same entrypoint concurrently with itself."""
        mhp = MhpRelation.from_graph(entry, edges)
        assert mhp.in_parallel(a, a) == (a in mhp)

    @given(entry_a=root_sets, entry_b=root_sets, edges=edge_maps)
    def test_monotone_in_entrypoints(self, entry_a, entry_b, edges):
        """A new pool site can only add may-happen-in-parallel pairs."""
        small = MhpRelation.from_graph(entry_a, edges)
        large = MhpRelation.from_graph(entry_a | entry_b, edges)
        assert small.workers <= large.workers

    @given(entry=root_sets, edges_a=edge_maps, edges_b=edge_maps)
    def test_monotone_in_call_graph(self, entry, edges_a, edges_b):
        """A new call edge can only add may-happen-in-parallel pairs."""
        small = MhpRelation.from_graph(entry, edges_a)
        large = MhpRelation.from_graph(entry, _merge(edges_a, edges_b))
        assert small.workers <= large.workers


def _project(*sources):
    index = ProjectIndex()
    for position, source in enumerate(sources):
        index.add_source(source, "mod%d.py" % position)
    return index


class TestPassInternals:
    def test_module_mutable_globals_table(self):
        index = _project(
            "# schedlint-fixture-module: repro/faultlab/example.py\n"
            "CACHE = {}\n"
            "NAMES = ('a', 'b')\n"
            "SEEN = set()\n"
            "LIMIT = 3\n")
        table = module_mutable_globals(index.entries[0])
        assert set(table) == {"CACHE", "SEEN"}

    def test_cross_file_registry_write_is_flagged(self):
        """A worker writing another module's registry is still SF401."""
        registry = (
            "# schedlint-fixture-module: repro/faultlab/registry.py\n"
            "TOTALS = {}\n")
        worker = (
            "# schedlint-fixture-module: repro/faultlab/worker.py\n"
            "from repro.faultlab.registry import TOTALS\n"
            "\n"
            "def work(cell):\n"
            "    TOTALS[cell] = cell\n"
            "    return cell\n"
            "\n"
            "def launch(cells):\n"
            "    import multiprocessing\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return pool.map(work, cells)\n")
        index = _project(registry, worker)
        findings = analyze_project(index)
        assert [f.code for f in findings] == ["SF401"]
        assert "registry.py:TOTALS" in findings[0].message

    def test_partial_unwraps_to_the_entrypoint(self):
        """SF406 sees through functools.partial to the real entrypoint."""
        source = (
            "# schedlint-fixture-module: repro/faultlab/example.py\n"
            "import functools\n"
            "import os\n"
            "\n"
            "def work(limit, cell):\n"
            "    return cell if os.getenv('X') else limit\n"
            "\n"
            "def launch(cells):\n"
            "    import multiprocessing\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return pool.map(functools.partial(work, 3), cells)\n")
        findings = analyze_project(_project(source))
        assert [f.code for f in findings] == ["SF406"]

    def test_executor_submit_is_a_pool_site(self):
        source = (
            "# schedlint-fixture-module: repro/faultlab/example.py\n"
            "import concurrent.futures\n"
            "import random\n"
            "\n"
            "def work(cell):\n"
            "    return cell + random.random()\n"
            "\n"
            "def launch(cells):\n"
            "    with concurrent.futures.ProcessPoolExecutor() as executor:\n"
            "        return [executor.submit(work, c) for c in cells]\n")
        findings = analyze_project(_project(source))
        assert [f.code for f in findings] == ["SF403"]

    def test_local_shadow_is_not_a_global_write(self):
        source = (
            "# schedlint-fixture-module: repro/faultlab/example.py\n"
            "CACHE = {}\n"
            "\n"
            "def work(cell):\n"
            "    CACHE = {}\n"
            "    CACHE[cell] = cell\n"
            "    return CACHE\n"
            "\n"
            "def launch(cells):\n"
            "    import multiprocessing\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return pool.map(work, cells)\n")
        assert analyze_project(_project(source)) == []

    def test_global_declaration_rebind_is_flagged(self):
        source = (
            "# schedlint-fixture-module: repro/faultlab/example.py\n"
            "CACHE = {}\n"
            "\n"
            "def work(cell):\n"
            "    global CACHE\n"
            "    CACHE = {cell: cell}\n"
            "    return cell\n"
            "\n"
            "def launch(cells):\n"
            "    import multiprocessing\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return pool.map(work, cells)\n")
        findings = analyze_project(_project(source))
        assert [f.code for f in findings] == ["SF401"]


class TestJobsSharding:
    def test_bucketize_is_order_insensitive_and_total(self):
        files = ["b.py", "a.py", "c.py", "d.py", "e.py"]
        buckets = bucketize(files, 2)
        again = bucketize(list(reversed(files)), 2)
        assert buckets == again
        flat = sorted(path for bucket in buckets for path in bucket)
        assert flat == sorted(files)

    def test_bucketize_drops_empty_buckets(self):
        assert bucketize(["a.py"], 4) == [["a.py"]]

    def test_jobs_findings_match_serial(self):
        paths = [str(FIXTURES)]
        serial = analyze_paths(paths)
        pooled, source_lines = analyze_paths_jobs(paths, 3)
        assert [str(f) for f in pooled] == [str(f) for f in serial]
        assert serial  # the fixture corpus is not accidentally empty
        assert {f.path for f in pooled} <= set(source_lines)

    def test_single_bucket_runs_serially(self):
        path = str(FIXTURES / "sf401_bad_worker_registry.py")
        pooled, __ = analyze_paths_jobs([path], 4)
        serial = analyze_paths([path])
        assert [str(f) for f in pooled] == [str(f) for f in serial]
