"""faultlab: deterministic fault-injection campaigns.

Covers the acceptance criteria end to end: grids derive per-cell seeds
from the campaign seed, cells digest identically across runs (and across
serial vs. pooled execution), fault-free baselines satisfy every oracle,
and a deliberately broken injector is caught by the oracles, shrunk to a
minimal schedule, and written as a reproducer that replays the failure.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faultlab import campaign
from repro.faultlab.campaign import (
    CellSpec,
    default_fault_kinds,
    default_grid,
    render_report,
    replay_spec,
    run_campaign,
    run_cell,
)
from repro.faultlab.faults import FAULTS, build_fault, ensure_registered
from repro.faultlab.shrink import reproducer_name, shrink_spec, write_reproducer
from repro.faultlab.workloads import (
    PERFKIT_MIRRORS,
    STRUCTURED_CELLS,
    WORKLOADS,
    validate_mirrors,
)
from repro.sim.rng import derive_seed

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _spec(workload="flat_mix", faults=(), seed=1, cell_id="test-cell"):
    return CellSpec(workload, list(faults), seed, True, cell_id).to_dict()


def _selftest_spec(seed=1):
    ensure_registered("selftest-double-charge")
    return _spec(faults=[{"kind": "selftest-double-charge", "params": {}}],
                 seed=seed, cell_id="flat_mix+selftest-double-charge")


class TestGrid:
    def test_default_grid_shape(self):
        specs = default_grid(0, quick=True)
        ids = [s.cell_id for s in specs]
        assert len(ids) == len(set(ids))
        # baseline + per-fault (node-churn only on structured cells)
        # + composite, for every workload
        kinds = default_fault_kinds()
        expected = 0
        for workload in WORKLOADS:
            per_fault = len(kinds) - (0 if workload in STRUCTURED_CELLS else 1)
            expected += 1 + per_fault + 1
        assert len(specs) == expected
        for workload in WORKLOADS:
            assert "%s+none" % workload in ids
            assert "%s+composite" % workload in ids

    def test_selftest_kinds_excluded_from_grid(self):
        ensure_registered("selftest-double-charge")
        assert "selftest-double-charge" in FAULTS
        assert not any(k.startswith("selftest-")
                       for k in default_fault_kinds())

    def test_cell_seeds_derive_from_campaign_seed(self):
        specs = default_grid(42, quick=True, workloads=["flat_mix"])
        for spec in specs:
            assert spec.seed == derive_seed(42, spec.cell_id)
        assert len({s.seed for s in specs}) == len(specs)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            default_grid(0, workloads=["warp_mix"])

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            default_grid(0, workloads=["flat_mix"], fault_kinds=["gremlin"])

    def test_spec_round_trips_through_json(self):
        spec = default_grid(7, quick=True, workloads=["qos_mix"])[3]
        wire = json.loads(json.dumps(spec.to_dict()))
        again = CellSpec.from_dict(wire)
        assert again.to_dict() == spec.to_dict()


class TestDeterminism:
    def test_same_spec_same_result(self):
        spec = _spec(faults=[{"kind": "straggler", "params": {}}])
        ensure_registered("straggler")
        first = run_cell(spec)
        second = run_cell(spec)
        assert first == second
        assert first["digest"] == second["digest"]

    def test_different_seeds_diverge(self):
        ensure_registered("thread-crash")
        faults = [{"kind": "thread-crash", "params": {}}]
        a = run_cell(_spec(faults=faults, seed=1))
        b = run_cell(_spec(faults=faults, seed=2))
        assert a["digest"] != b["digest"]

    def test_campaign_report_is_byte_stable(self):
        specs = default_grid(3, quick=True, workloads=["flat_mix"],
                             fault_kinds=["thread-crash"])
        first = render_report(run_campaign(specs, seed=3, quick=True))
        second = render_report(run_campaign(specs, seed=3, quick=True))
        assert first == second

    def test_pooled_run_matches_serial(self):
        specs = default_grid(5, quick=True, workloads=["flat_mix"],
                             fault_kinds=["clock-jitter"])
        serial = render_report(run_campaign(specs, workers=0, seed=5,
                                            quick=True))
        pooled = render_report(run_campaign(specs, workers=2, seed=5,
                                            quick=True))
        assert serial == pooled

    def test_adding_a_cell_does_not_perturb_others(self):
        # Seeds hang off cell ids, so a bigger grid reproduces the
        # smaller grid's results exactly.
        small = default_grid(9, quick=True, workloads=["flat_mix"],
                             fault_kinds=["timer-loss"])
        large = default_grid(9, quick=True, workloads=["flat_mix"],
                             fault_kinds=["timer-loss", "thread-hang"])
        small_results = {r["id"]: r for r in
                         run_campaign(small, seed=9, quick=True)["cells"]}
        large_results = {r["id"]: r for r in
                         run_campaign(large, seed=9, quick=True)["cells"]}
        for cell_id, result in small_results.items():
            assert large_results[cell_id] == result


class TestBaselines:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_fault_free_baseline_passes_oracles(self, workload):
        result = run_cell(_spec(workload=workload, seed=0,
                                cell_id="%s+none" % workload))
        assert result["ok"], result["failures"]
        assert result["counters"]["injections"] == 0
        assert result["counters"]["violations"] == 0


class TestInjectors:
    def test_every_grid_fault_arms_and_records(self):
        for kind in default_fault_kinds():
            ensure_registered(kind)
            workload = ("hierarchy_mix" if kind == "node-churn"
                        else "flat_mix")
            result = run_cell(_spec(workload=workload,
                                    faults=[{"kind": kind, "params": {}}],
                                    seed=4, cell_id="%s+%s" % (workload, kind)))
            assert result["ok"], (kind, result["failures"])
            assert result["counters"]["injections"] > 0, kind

    def test_build_fault_applies_param_overrides(self):
        ensure_registered("straggler")
        fault = build_fault({"kind": "straggler",
                             "params": {"factor": 9}})
        assert fault.params["factor"] == 9
        # untouched params keep their defaults
        defaults = FAULTS["straggler"].DEFAULTS
        for name, value in defaults.items():
            if name != "factor":
                assert fault.params[name] == value

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_fault({"kind": "gremlin", "params": {}})


class TestSelfValidation:
    """Deliberately broken injector -> oracle -> shrinker -> reproducer."""

    def test_oracles_catch_double_charge(self):
        result = run_cell(_selftest_spec())
        assert not result["ok"]
        assert any("schedsan" == f["oracle"] for f in result["failures"])

    def test_shrinker_minimizes_the_schedule(self):
        shrunk, attempts = shrink_spec(_selftest_spec(), max_attempts=64)
        assert attempts <= 64
        assert len(shrunk["faults"]) == 1
        work = shrunk["faults"][0]["params"]["work"]
        floor = FAULTS["selftest-double-charge"].SHRINKABLE["work"]
        assert work == floor
        assert not run_cell(shrunk)["ok"]  # still fails after shrinking

    def test_shrink_refuses_passing_spec(self):
        with pytest.raises(ValueError):
            shrink_spec(_spec(), max_attempts=8)

    def test_reproducer_replays_the_failure(self, tmp_path):
        spec = _selftest_spec()
        script = Path(write_reproducer(spec, str(tmp_path)))
        assert script.name == reproducer_name(spec)
        companion = script.with_suffix(".json")
        stored = json.loads(companion.read_text())
        assert stored == spec
        replay = replay_spec(stored)
        assert not replay["ok"]
        assert replay["digest"] == run_cell(spec)["digest"]

    def test_reproducer_script_runs_standalone(self, tmp_path):
        script = write_reproducer(_selftest_spec(), str(tmp_path))
        proc = subprocess.run([sys.executable, script], capture_output=True,
                              text=True, env={"PYTHONPATH": SRC},
                              check=False)
        assert proc.returncode == 0, proc.stderr  # 0 = failure reproduced

    def test_failing_cell_records_a_valid_binlog(self, tmp_path):
        from repro.faultlab.shrink import record_cell_binlog
        from repro.obs.binlog import BinaryTraceReader

        spec = _selftest_spec()
        path = Path(record_cell_binlog(spec, str(tmp_path)))
        assert path.name == reproducer_name(spec)[:-3] + ".binlog"
        reader = BinaryTraceReader(str(path))
        assert len(reader) > 0  # sealed and decodable even on failure


class TestCli:
    def test_list_names_every_kind_and_cell(self, capsys):
        from repro.faultlab.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for kind in default_fault_kinds():
            assert kind in out
        for workload in WORKLOADS:
            assert workload in out

    def test_run_writes_report_and_passes(self, capsys, tmp_path):
        from repro.faultlab.cli import main
        out = tmp_path / "report.json"
        code = main(["run", "--quick", "--seed", "6",
                     "--workload", "flat_mix", "--fault", "thread-crash",
                     "--out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["failure_count"] == 0
        assert {c["id"] for c in report["cells"]} == {
            "flat_mix+none", "flat_mix+thread-crash", "flat_mix+composite"}
        assert "3/3 cells passed" in capsys.readouterr().out

    def test_replay_exits_zero_when_reproduced(self, capsys, tmp_path):
        from repro.faultlab.cli import main
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(_selftest_spec()))
        assert main(["replay", str(spec_path)]) == 0

    def test_replay_exits_two_when_vanished(self, capsys, tmp_path):
        from repro.faultlab.cli import main
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(_spec()))
        assert main(["replay", str(spec_path)]) == 2


class TestPerfkitMirrors:
    def test_mirrors_validate(self):
        validate_mirrors()

    def test_every_workload_declares_a_mirror(self):
        assert set(PERFKIT_MIRRORS) == set(WORKLOADS)
