"""The SFQ queue: the three rules of the paper's Section 3."""

from fractions import Fraction

import pytest

from repro.core.sfq import SfqQueue
from repro.core.tags import TagMath
from repro.errors import SchedulingError


class Entity:
    """Minimal weighted entity."""

    def __init__(self, name: str, weight: int = 1) -> None:
        self.name = name
        self.weight = weight

    def __repr__(self) -> str:
        return "Entity(%s)" % self.name


@pytest.fixture
def queue() -> SfqQueue:
    return SfqQueue()


class TestMembership:
    def test_add_and_contains(self, queue):
        e = Entity("a")
        queue.add(e)
        assert e in queue
        assert len(queue) == 1

    def test_double_add_rejected(self, queue):
        e = Entity("a")
        queue.add(e)
        with pytest.raises(SchedulingError):
            queue.add(e)

    def test_remove(self, queue):
        e = Entity("a")
        queue.add(e)
        queue.remove(e)
        assert e not in queue

    def test_remove_runnable_rejected(self, queue):
        e = Entity("a")
        queue.add(e)
        queue.set_runnable(e)
        with pytest.raises(SchedulingError):
            queue.remove(e)

    def test_unknown_entity_rejected(self, queue):
        with pytest.raises(SchedulingError):
            queue.set_runnable(Entity("ghost"))

    def test_initial_tags_zero(self, queue):
        e = Entity("a")
        queue.add(e)
        assert queue.start_tag(e) == 0
        assert queue.finish_tag(e) == 0


class TestRule1Stamping:
    def test_new_entity_stamped_with_virtual_time(self, queue):
        a, b = Entity("a"), Entity("b")
        queue.add(a)
        queue.set_runnable(a)
        queue.pick()
        queue.charge(a, 10)
        queue.pick()
        # a's start tag (and v) is now 10
        queue.add(b)
        queue.set_runnable(b)
        assert queue.start_tag(b) == 10

    def test_waking_entity_keeps_finish_tag_if_larger(self, queue):
        a, b = Entity("a"), Entity("b")
        for e in (a, b):
            queue.add(e)
        queue.set_runnable(a)
        queue.pick()
        queue.charge(a, 100)  # F_a = 100, then restamped S_a = 100
        queue.set_blocked(a)
        # queue idle: v jumps to max finish = 100
        queue.set_runnable(b)
        assert queue.start_tag(b) == 100  # max(v=100, F_b=0)
        queue.set_runnable(a)
        assert queue.start_tag(a) == 100  # max(v=100, F_a=100)

    def test_double_set_runnable_is_noop(self, queue):
        a = Entity("a")
        queue.add(a)
        queue.set_runnable(a)
        start = queue.start_tag(a)
        queue.set_runnable(a)
        assert queue.start_tag(a) == start
        assert queue.runnable_count == 1


class TestRule2Charging:
    def test_finish_advances_by_length_over_weight(self, queue):
        a = Entity("a", weight=4)
        queue.add(a)
        queue.set_runnable(a)
        queue.pick()
        queue.charge(a, 10)
        assert queue.finish_tag(a) == Fraction(10, 4)

    def test_runnable_entity_restamped_to_finish(self, queue):
        a = Entity("a", weight=2)
        queue.add(a)
        queue.set_runnable(a)
        queue.pick()
        queue.charge(a, 10)
        assert queue.start_tag(a) == Fraction(5)

    def test_charge_uses_current_weight(self, queue):
        a = Entity("a", weight=1)
        queue.add(a)
        queue.set_runnable(a)
        queue.pick()
        a.weight = 5  # dynamic weight change (Figure 11)
        queue.charge(a, 10)
        assert queue.finish_tag(a) == Fraction(2)

    def test_explicit_weight_overrides(self, queue):
        a = Entity("a", weight=1)
        queue.add(a)
        queue.set_runnable(a)
        queue.pick()
        queue.charge(a, 10, weight=10)
        assert queue.finish_tag(a) == Fraction(1)

    def test_negative_charge_rejected(self, queue):
        a = Entity("a")
        queue.add(a)
        queue.set_runnable(a)
        with pytest.raises(SchedulingError):
            queue.charge(a, -1)

    def test_zero_charge_keeps_position(self, queue):
        a = Entity("a")
        queue.add(a)
        queue.set_runnable(a)
        queue.pick()
        queue.charge(a, 0)
        assert queue.finish_tag(a) == 0
        assert queue.pick() is a


class TestRule3Dispatch:
    def test_picks_min_start_tag(self, queue):
        a, b = Entity("a", 1), Entity("b", 1)
        queue.add(a)
        queue.add(b)
        queue.set_runnable(a)
        queue.set_runnable(b)
        assert queue.pick() is a  # tie broken by arrival order
        queue.charge(a, 10)       # S_a = 10 > S_b = 0
        assert queue.pick() is b

    def test_empty_pick_returns_none(self, queue):
        assert queue.pick() is None

    def test_blocked_entity_never_picked(self, queue):
        a, b = Entity("a"), Entity("b")
        queue.add(a)
        queue.add(b)
        queue.set_runnable(a)
        queue.set_runnable(b)
        queue.set_blocked(a)
        assert queue.pick() is b

    def test_proportional_share_two_to_one(self, queue):
        a, b = Entity("a", 1), Entity("b", 2)
        queue.add(a)
        queue.add(b)
        queue.set_runnable(a)
        queue.set_runnable(b)
        picks = {a: 0, b: 0}
        for __ in range(300):
            e = queue.pick()
            picks[e] += 1
            queue.charge(e, 10)
        assert picks[b] == pytest.approx(2 * picks[a], abs=2)

    def test_variable_quantum_lengths_stay_fair(self, queue):
        # a is charged twice the length per quantum; service stays 1:1
        # per unit weight because tags reflect actual lengths.
        a, b = Entity("a", 1), Entity("b", 1)
        queue.add(a)
        queue.add(b)
        queue.set_runnable(a)
        queue.set_runnable(b)
        work = {a: 0, b: 0}
        for __ in range(300):
            e = queue.pick()
            length = 20 if e is a else 10
            work[e] += length
            queue.charge(e, length)
        assert work[a] == pytest.approx(work[b], rel=0.02)


class TestVirtualTime:
    def test_virtual_time_tracks_in_service_start(self, queue):
        a, b = Entity("a"), Entity("b")
        queue.add(a)
        queue.add(b)
        queue.set_runnable(a)
        queue.set_runnable(b)
        queue.pick()
        assert queue.virtual_time == 0
        queue.charge(a, 10)
        queue.pick()  # b with start 0
        assert queue.virtual_time == 0
        queue.charge(b, 10)
        queue.pick()
        assert queue.virtual_time == 10

    def test_idle_jumps_to_max_finish(self, queue):
        a = Entity("a")
        queue.add(a)
        queue.set_runnable(a)
        queue.pick()
        queue.charge(a, 42)
        queue.set_blocked(a)
        assert queue.virtual_time == 42

    def test_virtual_time_monotone(self, queue):
        import random
        rng = random.Random(5)
        entities = [Entity("e%d" % i, rng.randint(1, 5)) for i in range(4)]
        for e in entities:
            queue.add(e)
        last_v = queue.virtual_time
        for __ in range(500):
            action = rng.random()
            e = rng.choice(entities)
            if action < 0.3:
                queue.set_runnable(e)
            elif action < 0.4:
                if queue.is_runnable(e):
                    queue.set_blocked(e)
            else:
                picked = queue.pick()
                if picked is not None:
                    queue.charge(picked, rng.randint(1, 30))
            assert queue.virtual_time >= last_v
            last_v = queue.virtual_time


class TestFloatMode:
    def test_float_tags(self):
        queue = SfqQueue(TagMath(exact=False))
        a = Entity("a", 3)
        queue.add(a)
        queue.set_runnable(a)
        queue.pick()
        queue.charge(a, 10)
        assert isinstance(queue.finish_tag(a), float)
        assert queue.finish_tag(a) == pytest.approx(10 / 3)


class TestPaperExample:
    """The worked example of §3 at queue level (Figure 3)."""

    def test_tag_sequence(self):
        queue = SfqQueue()
        a, b = Entity("A", 1), Entity("B", 2)
        queue.add(a)
        queue.add(b)
        queue.set_runnable(a)
        queue.set_runnable(b)
        order = []
        # 0-60 ms: A, B, B, A, B, B (each quantum length 10)
        for __ in range(6):
            e = queue.pick()
            order.append(e.name)
            queue.charge(e, 10)
        assert order == ["A", "B", "B", "A", "B", "B"]
        assert queue.finish_tag(a) == 20
        assert queue.finish_tag(b) == 20
        # B blocks; A runs alone three more quanta then blocks.
        queue.set_blocked(b)
        for __ in range(3):
            assert queue.pick() is a
            queue.charge(a, 10)
        assert queue.finish_tag(a) == 50
        queue.set_blocked(a)
        # idle: v jumps to the max finish tag
        assert queue.virtual_time == 50
        # A returns first, then B: both stamped 50
        queue.set_runnable(a)
        assert queue.start_tag(a) == 50
        assert queue.pick() is a
        queue.set_runnable(b)
        assert queue.start_tag(b) == 50
