"""Lottery, stride, and the WFQ/SCFQ/FQS fair-queuing baselines."""

import pytest

from repro.schedulers.fairqueue import FqsScheduler, ScfqScheduler, WfqScheduler
from repro.schedulers.lottery import LotteryScheduler
from repro.schedulers.stride import STRIDE1, StrideScheduler
from repro.sim.rng import make_rng
from repro.threads.segments import SegmentListWorkload
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.units import MS, SECOND

from tests.conftest import FlatHarness

KILO = 1000


def make_thread(name="t", weight=1):
    return SimThread(name, SegmentListWorkload([]), weight=weight)


class TestLotteryUnit:
    def test_winner_stable_until_charge(self):
        sched = LotteryScheduler(rng=make_rng(1, "l"))
        a, b = make_thread("a"), make_thread("b")
        for t in (a, b):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        winner = sched.pick_next(0)
        assert sched.pick_next(0) is winner
        sched.charge(winner, 10, 0)
        # a fresh lottery may or may not pick the same thread; both legal

    def test_blocked_winner_replaced(self):
        sched = LotteryScheduler(rng=make_rng(1, "l"))
        a, b = make_thread("a"), make_thread("b")
        for t in (a, b):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        winner = sched.pick_next(0)
        sched.on_block(winner, 0)
        other = a if winner is b else b
        assert sched.pick_next(0) is other

    def test_ticket_proportional_wins(self):
        sched = LotteryScheduler(rng=make_rng(2, "l"))
        a, b = make_thread("a", 1), make_thread("b", 3)
        for t in (a, b):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        wins = {a: 0, b: 0}
        for __ in range(4000):
            winner = sched.pick_next(0)
            wins[winner] += 1
            sched.charge(winner, 1, 0)
        assert wins[b] / wins[a] == pytest.approx(3.0, rel=0.15)

    def test_proportional_on_machine(self):
        harness = FlatHarness(LotteryScheduler(rng=make_rng(3, "l")))
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=2)
        harness.machine.run_until(20 * SECOND)
        assert b.stats.work_done / a.stats.work_done == pytest.approx(
            2.0, rel=0.2)


class TestStrideUnit:
    def test_min_pass_picked(self):
        sched = StrideScheduler()
        a, b = make_thread("a", 1), make_thread("b", 1)
        for t in (a, b):
            t.transition(ThreadState.RUNNABLE)
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        first = sched.pick_next(0)
        sched.charge(first, 100, 0)
        second = sched.pick_next(0)
        assert second is not first

    def test_pass_advances_by_work_over_tickets(self):
        sched = StrideScheduler()
        t = make_thread("t", 4)
        t.transition(ThreadState.RUNNABLE)
        sched.add_thread(t)
        sched.on_runnable(t, 0)
        sched.pick_next(0)
        sched.charge(t, 8, 0)
        assert sched.pass_of(t) == 8 * STRIDE1 // 4

    def test_waker_resumes_at_global_pass(self):
        sched = StrideScheduler()
        a, b = make_thread("a"), make_thread("b")
        for t in (a, b):
            t.transition(ThreadState.RUNNABLE)
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        sched.on_block(b, 0)
        for __ in range(10):
            sched.pick_next(0)
            sched.charge(a, 100, 0)
        sched.on_runnable(b, 0)
        # b resumes at the global pass, not at 0 (no monopolizing catch-up)
        assert sched.pass_of(b) == sched.pass_of(a) - 100 * STRIDE1

    def test_exact_proportionality_on_machine(self):
        harness = FlatHarness(StrideScheduler())
        a = harness.spawn_dhrystone("a", weight=2)
        b = harness.spawn_dhrystone("b", weight=5)
        harness.machine.run_until(5 * SECOND)
        assert b.stats.work_done / a.stats.work_done == pytest.approx(
            2.5, rel=0.02)


QW = 10 * KILO  # assumed quantum work for the fair-queue baselines


class TestFairQueueBaselines:
    @pytest.mark.parametrize("factory", [
        lambda: WfqScheduler(QW, 1_000_000),
        lambda: FqsScheduler(QW, 1_000_000),
        lambda: ScfqScheduler(QW),
    ])
    def test_proportional_when_backlogged(self, factory):
        harness = FlatHarness(factory())
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=2)
        harness.machine.run_until(5 * SECOND)
        assert b.stats.work_done / a.stats.work_done == pytest.approx(
            2.0, rel=0.05)

    def test_wfq_orders_by_finish_tag(self):
        sched = WfqScheduler(QW, 1_000_000)
        light = make_thread("light", 10)
        heavy = make_thread("heavy", 1)
        for t in (light, heavy):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        # both start at 0; finish = QW/weight: light finishes earlier
        assert sched.pick_next(0) is light

    def test_fqs_orders_by_start_tag(self):
        sched = FqsScheduler(QW, 1_000_000)
        a = make_thread("a", 1)
        b = make_thread("b", 10)
        sched.add_thread(a)
        sched.add_thread(b)
        sched.on_runnable(a, 0)
        sched.on_runnable(b, 0)
        # equal start tags: arrival order decides (a first), despite b's
        # earlier finish tag
        assert sched.pick_next(0) is a

    def test_scfq_virtual_time_follows_service(self):
        sched = ScfqScheduler(QW)
        a = make_thread("a", 1)
        sched.add_thread(a)
        sched.on_runnable(a, 0)
        picked = sched.pick_next(0)
        assert picked is a
        assert sched._v == QW  # v = finish tag of quantum in service

    def test_new_busy_period_resets_tags(self):
        sched = WfqScheduler(QW, 1_000_000)
        a = make_thread("a", 1)
        sched.add_thread(a)
        a.transition(ThreadState.RUNNABLE)
        sched.on_runnable(a, 0)
        sched.pick_next(0)
        sched.charge(a, QW, 10 * MS)
        sched.on_block(a, 10 * MS)
        # new busy period much later: tags restart from v = 0
        sched.on_runnable(a, SECOND)
        rec = sched._record(a)
        assert rec.start == 0.0

    def test_bad_params_rejected(self):
        from repro.errors import SchedulingError
        with pytest.raises(SchedulingError):
            WfqScheduler(0, 1_000_000)
        with pytest.raises(SchedulingError):
            WfqScheduler(QW, 0)
