"""Chrome-trace export: Trace Event Format schema and summaries."""

import json

import pytest

from repro.obs import events as ev
from repro.obs.chrometrace import (
    PID_CPUS,
    PID_THREADS,
    PID_VTIME,
    ChromeTraceBuilder,
    summarize_chrome_trace,
    validate_chrome_trace,
)
from repro.units import MS
from tests.conftest import Harness


def build_trace():
    harness = Harness()
    harness.spawn_dhrystone("alpha", weight=2)
    harness.spawn_dhrystone("beta", weight=1)
    builder = ChromeTraceBuilder()
    with ev.BUS.subscription(builder):
        harness.machine.run_until(60 * MS)
    return builder


class TestSchema:
    def test_payload_validates(self):
        payload = build_trace().to_dict()
        assert validate_chrome_trace(payload) == len(payload["traceEvents"])
        assert payload["displayTimeUnit"] == "ms"

    def test_every_event_has_required_fields(self):
        payload = build_trace().to_dict()
        for event in payload["traceEvents"]:
            assert event["ph"] in ("X", "i", "C", "M")
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert isinstance(event["dur"], (int, float))
                assert event["dur"] >= 0

    def test_slices_appear_on_thread_and_cpu_tracks(self):
        payload = build_trace().to_dict()
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert complete
        pids = {e["pid"] for e in complete}
        assert pids == {PID_CPUS, PID_THREADS}
        # Mirrored geometry: thread-track and cpu-track slices pair up.
        thread_spans = sorted((e["ts"], e["dur"]) for e in complete
                              if e["pid"] == PID_THREADS)
        cpu_spans = sorted((e["ts"], e["dur"]) for e in complete
                           if e["pid"] == PID_CPUS)
        assert thread_spans == cpu_spans

    def test_metadata_names_threads_and_processes(self):
        payload = build_trace().to_dict()
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert {"cpus", "threads", "virtual-time"} <= process_names
        assert {"alpha", "beta", "cpu0"} <= thread_names

    def test_vtime_counter_track_present(self):
        payload = build_trace().to_dict()
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert all(e["pid"] == PID_VTIME for e in counters)
        assert all("v" in e["args"] for e in counters)

    def test_json_round_trip(self):
        builder = build_trace()
        payload = json.loads(builder.to_json())
        assert validate_chrome_trace(payload) > 0

    def test_write_to_file(self, tmp_path):
        builder = build_trace()
        out = tmp_path / "trace.json"
        builder.write(str(out), indent=1)
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) > 0


class TestValidation:
    def test_rejects_non_object_payload(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "Z", "ts": 0, "pid": 0, "tid": 0}]})

    def test_rejects_non_numeric_timestamp(self):
        with pytest.raises(ValueError, match="'ts'"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "i", "ts": "soon", "pid": 0, "tid": 0}]})

    def test_rejects_complete_event_without_duration(self):
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "ts": 0, "pid": 0, "tid": 0}]})

    def test_rejects_metadata_without_name(self):
        with pytest.raises(ValueError, match="args.name"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "M", "ts": 0, "pid": 0, "tid": 0, "args": {}}]})


class TestSummary:
    def test_summary_from_synthetic_events(self):
        builder = ChromeTraceBuilder()
        builder(ev.Event(ev.SLICE, 2_000,
                         {"tid": 5, "name": "worker", "node": "/apps",
                          "cpu": 0, "start": 0, "work": 100}))
        builder(ev.Event(ev.WAKE, 3_000, {"tid": 5, "node": "/apps"}))
        builder(ev.Event(ev.VTIME_ADVANCE, 3_500, {"node": "/", "v": 1.5}))
        summary = summarize_chrome_trace(builder.to_dict())
        assert summary["instants"] == {"wake": 1}
        assert summary["counters"] == {"vtime /": 1}
        busy = {row["track"]: row["busy_us"] for row in summary["tracks"]}
        assert busy["threads/worker"] == pytest.approx(2.0)
        assert busy["cpus/cpu0"] == pytest.approx(2.0)

    def test_violation_becomes_a_named_instant(self):
        builder = ChromeTraceBuilder()
        builder(ev.Event(ev.VIOLATION, 10,
                         {"rule": "finish-tag-rule", "node": "/apps",
                          "message": "boom"}))
        summary = summarize_chrome_trace(builder.to_dict())
        assert summary["instants"] == {"SCHEDSAN finish-tag-rule": 1}
