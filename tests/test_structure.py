"""The scheduling structure: mknod / parse / rmnod / move / admin."""

import pytest

from repro.core.node import InternalNode, LeafNode
from repro.core.structure import (
    ADMIN_GET_WEIGHT,
    ADMIN_INFO,
    ADMIN_SET_WEIGHT,
    SchedulingStructure,
)
from repro.errors import (
    NodeBusyError,
    NodeExistsError,
    NodeNotFoundError,
    NotALeafError,
    StructureError,
)
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.segments import SegmentListWorkload
from repro.threads.thread import SimThread


@pytest.fixture
def structure() -> SchedulingStructure:
    return SchedulingStructure()


def make_thread(name: str = "t") -> SimThread:
    return SimThread(name, SegmentListWorkload([]))


class TestMknod:
    def test_absolute_path(self, structure):
        node = structure.mknod("/best-effort", 6)
        assert node.path == "/best-effort"
        assert isinstance(node, InternalNode)

    def test_nested_absolute_path(self, structure):
        structure.mknod("/best-effort", 6)
        leaf = structure.mknod("/best-effort/user1", 1,
                               scheduler=SfqScheduler())
        assert leaf.path == "/best-effort/user1"
        assert isinstance(leaf, LeafNode)

    def test_relative_to_parent(self, structure):
        parent = structure.mknod("/apps", 1)
        child = structure.mknod("web", 2, parent=parent)
        assert child.path == "/apps/web"

    def test_parent_by_id(self, structure):
        parent = structure.mknod("/apps", 1)
        child = structure.mknod("db", 2, parent=parent.node_id)
        assert child.parent is parent

    def test_duplicate_name_rejected(self, structure):
        structure.mknod("/apps", 1)
        with pytest.raises(NodeExistsError):
            structure.mknod("/apps", 2)

    def test_child_of_leaf_rejected(self, structure):
        structure.mknod("/leaf", 1, scheduler=SfqScheduler())
        with pytest.raises(StructureError):
            structure.mknod("/leaf/sub", 1)

    def test_missing_intermediate_rejected(self, structure):
        with pytest.raises(NodeNotFoundError):
            structure.mknod("/a/b/c", 1)

    def test_zero_weight_rejected(self, structure):
        with pytest.raises(StructureError):
            structure.mknod("/apps", 0)

    def test_root_creation_rejected(self, structure):
        with pytest.raises(StructureError):
            structure.mknod("/", 1)

    def test_conflicting_parent_rejected(self, structure):
        a = structure.mknod("/a", 1)
        structure.mknod("/b", 1)
        with pytest.raises(StructureError):
            structure.mknod("/b/x", 1, parent=a)

    def test_ids_unique_and_resolvable(self, structure):
        a = structure.mknod("/a", 1)
        b = structure.mknod("/b", 1)
        assert a.node_id != b.node_id
        assert structure.resolve(a.node_id) is a
        assert structure.resolve(b.node_id) is b


class TestParse:
    def test_absolute(self, structure):
        node = structure.mknod("/x", 1)
        assert structure.parse("/x") is node

    def test_relative_with_hint(self, structure):
        parent = structure.mknod("/x", 1)
        child = structure.mknod("y", 1, parent=parent)
        assert structure.parse("y", hint=parent) is child

    def test_dotdot(self, structure):
        parent = structure.mknod("/x", 1)
        child = structure.mknod("y", 1, parent=parent)
        assert structure.parse("..", hint=child) is parent
        assert structure.parse("../y", hint=child) is child

    def test_dot_and_empty_segments(self, structure):
        node = structure.mknod("/x", 1)
        assert structure.parse("/./x/.") is node
        assert structure.parse("//x") is node

    def test_root(self, structure):
        assert structure.parse("/") is structure.root

    def test_dotdot_at_root_stays(self, structure):
        assert structure.parse("/..") is structure.root

    def test_missing_raises(self, structure):
        with pytest.raises(NodeNotFoundError):
            structure.parse("/ghost")

    def test_resolve_rejects_foreign_node(self, structure):
        other = SchedulingStructure()
        node = other.mknod("/x", 1)
        with pytest.raises(NodeNotFoundError):
            structure.resolve(node)

    def test_resolve_type_check(self, structure):
        with pytest.raises(TypeError):
            structure.resolve(3.14)


class TestRmnod:
    def test_removes_leafless_node(self, structure):
        structure.mknod("/x", 1)
        structure.rmnod("/x")
        with pytest.raises(NodeNotFoundError):
            structure.parse("/x")

    def test_node_with_children_rejected(self, structure):
        structure.mknod("/x", 1)
        structure.mknod("/x/y", 1)
        with pytest.raises(NodeBusyError):
            structure.rmnod("/x")

    def test_leaf_with_threads_rejected(self, structure):
        leaf = structure.mknod("/leaf", 1, scheduler=SfqScheduler())
        leaf.attach_thread(make_thread())
        with pytest.raises(NodeBusyError):
            structure.rmnod("/leaf")

    def test_root_removal_rejected(self, structure):
        with pytest.raises(StructureError):
            structure.rmnod(structure.root)

    def test_remove_then_recreate(self, structure):
        structure.mknod("/x", 1)
        structure.rmnod("/x")
        node = structure.mknod("/x", 2)
        assert node.weight == 2


class TestMove:
    def test_move_detached_thread(self, structure):
        structure.mknod("/a", 1, scheduler=SfqScheduler())
        b = structure.mknod("/b", 1, scheduler=SfqScheduler())
        thread = make_thread()
        structure.move(thread, "/a")
        assert thread.leaf.path == "/a"
        structure.move(thread, b)
        assert thread.leaf is b

    def test_move_to_internal_rejected(self, structure):
        structure.mknod("/a", 1)
        with pytest.raises(NotALeafError):
            structure.move(make_thread(), "/a")


class TestAdmin:
    def test_get_set_weight(self, structure):
        structure.mknod("/x", 3)
        assert structure.admin("/x", ADMIN_GET_WEIGHT) == 3
        assert structure.admin("/x", ADMIN_SET_WEIGHT, 7) == 7
        assert structure.parse("/x").weight == 7

    def test_set_invalid_weight(self, structure):
        structure.mknod("/x", 3)
        with pytest.raises(StructureError):
            structure.admin("/x", ADMIN_SET_WEIGHT, 0)

    def test_info_internal(self, structure):
        structure.mknod("/x", 3)
        structure.mknod("/x/y", 1)
        info = structure.admin("/x", ADMIN_INFO)
        assert info["path"] == "/x"
        assert info["children"] == ["y"]
        assert info["leaf"] is False

    def test_info_leaf(self, structure):
        leaf = structure.mknod("/l", 1, scheduler=SfqScheduler())
        leaf.attach_thread(make_thread("worker"))
        info = structure.admin("/l", ADMIN_INFO)
        assert info["leaf"] is True
        assert info["threads"] == ["worker"]

    def test_unknown_command(self, structure):
        with pytest.raises(StructureError):
            structure.admin("/", "frobnicate")


class TestTraversal:
    def test_iter_nodes_preorder(self, structure):
        structure.mknod("/a", 1)
        structure.mknod("/a/b", 1)
        structure.mknod("/c", 1, scheduler=SfqScheduler())
        paths = [n.path for n in structure.iter_nodes()]
        assert paths == ["/", "/a", "/a/b", "/c"]

    def test_iter_leaves(self, structure):
        structure.mknod("/a", 1)
        structure.mknod("/a/l1", 1, scheduler=SfqScheduler())
        structure.mknod("/l2", 1, scheduler=SfqScheduler())
        assert sorted(l.path for l in structure.iter_leaves()) == ["/a/l1", "/l2"]

    def test_depth(self, structure):
        structure.mknod("/a", 1)
        node = structure.mknod("/a/b", 1)
        assert structure.root.depth == 0
        assert node.depth == 2


class TestNodeBehaviour:
    def test_thread_double_attach_rejected(self, structure):
        leaf_a = structure.mknod("/a", 1, scheduler=SfqScheduler())
        structure.mknod("/b", 1, scheduler=SfqScheduler())
        thread = make_thread()
        leaf_a.attach_thread(thread)
        with pytest.raises(StructureError):
            leaf_a.attach_thread(thread)

    def test_detach_unattached_rejected(self, structure):
        leaf = structure.mknod("/a", 1, scheduler=SfqScheduler())
        with pytest.raises(StructureError):
            leaf.detach_thread(make_thread())

    def test_node_name_validation(self, structure):
        with pytest.raises(StructureError):
            InternalNode("bad/name", 1, structure.root)
