"""The CPU machine: dispatch, quanta, blocking, interrupts, accounting."""

import pytest

from repro.cpu.costs import LinearCostModel
from repro.cpu.interrupts import PeriodicInterruptSource
from repro.errors import SimulationError, WorkloadError
from repro.threads.segments import Compute, SleepFor, SleepUntil, Workload
from repro.threads.states import ThreadState
from repro.units import MS, SECOND

from tests.conftest import FlatHarness, Harness

# capacity 1_000_000 inst/s: 1 ms == 1000 instructions
KILO = 1000


class TestBasicExecution:
    def test_single_compute_runs_to_exit(self, harness):
        thread = harness.spawn_segments("t", [Compute(5 * KILO)])
        harness.machine.run_until(SECOND)
        assert thread.state is ThreadState.EXITED
        assert thread.stats.work_done == 5 * KILO
        assert thread.stats.exited_at == 5 * MS

    def test_immediate_exit(self, harness):
        thread = harness.spawn_segments("t", [])
        assert thread.state is ThreadState.EXITED
        assert thread.stats.work_done == 0

    def test_sleep_then_compute(self, harness):
        thread = harness.spawn_segments("t", [SleepFor(10 * MS),
                                              Compute(KILO)])
        harness.machine.run_until(SECOND)
        assert thread.stats.exited_at == 11 * MS

    def test_sleep_until(self, harness):
        thread = harness.spawn_segments("t", [SleepUntil(50 * MS),
                                              Compute(KILO)])
        harness.machine.run_until(SECOND)
        assert thread.stats.exited_at == 51 * MS

    def test_sleep_until_past_runs_immediately(self, harness):
        thread = harness.spawn_segments("t", [SleepUntil(0), Compute(KILO)])
        harness.machine.run_until(SECOND)
        assert thread.stats.exited_at == 1 * MS

    def test_zero_sleep_skipped(self, harness):
        thread = harness.spawn_segments("t", [SleepFor(0), Compute(KILO)])
        harness.machine.run_until(SECOND)
        assert thread.stats.exited_at == 1 * MS

    def test_deferred_spawn(self, harness):
        from repro.threads.segments import SegmentListWorkload
        from repro.threads.thread import SimThread
        late = SimThread("late", SegmentListWorkload([Compute(KILO)]))
        harness.leaf.attach_thread(late)
        harness.machine.spawn(late, at=100 * MS)
        harness.machine.run_until(50 * MS)
        assert late.state is ThreadState.NEW
        harness.machine.run_until(SECOND)
        assert late.stats.created_at == 100 * MS
        assert late.stats.exited_at == 101 * MS


class TestQuantumBehaviour:
    def test_quantum_slices_execution(self, harness):
        # quantum 10 ms = 10 KILO work; 25 KILO split as 10/10/5
        thread = harness.spawn_segments("t", [Compute(25 * KILO)])
        harness.machine.run_until(SECOND)
        trace = harness.recorder.trace_of(thread)
        assert [w for (_, _, w) in trace.slices] == [10 * KILO, 10 * KILO,
                                                     5 * KILO]

    def test_two_threads_alternate_by_quantum(self, harness):
        a = harness.spawn_segments("a", [Compute(20 * KILO)])
        b = harness.spawn_segments("b", [Compute(20 * KILO)])
        harness.machine.run_until(SECOND)
        # SFQ with equal weights alternates 10 ms quanta: a b a b
        from repro.trace.timeline import execution_order
        assert execution_order(harness.recorder, [a, b]) == ["a", "b",
                                                             "a", "b"]

    def test_charge_counts_actual_not_quantum(self, harness):
        # a 3 KILO segment blocks before its quantum expires
        thread = harness.spawn_segments(
            "t", [Compute(3 * KILO), SleepFor(MS), Compute(KILO)])
        harness.machine.run_until(SECOND)
        trace = harness.recorder.trace_of(thread)
        assert trace.charges[0] == (3 * MS, 3 * KILO)

    def test_zero_quantum_config_rejected(self):
        with pytest.raises(SimulationError):
            Harness(capacity_ips=1_000_000, default_quantum=0)

    def test_sub_instruction_quantum_rejected(self):
        harness = Harness(capacity_ips=10, default_quantum=1)  # 1 ns @ 10 ips
        with pytest.raises(SimulationError):
            # dispatch happens at spawn: the degenerate quantum is detected
            harness.spawn_segments("t", [Compute(5)])


class TestAccounting:
    def test_work_conservation_busy_machine(self, harness):
        a = harness.spawn_dhrystone("a")
        b = harness.spawn_dhrystone("b", weight=3)
        harness.machine.run_until(2 * SECOND)
        total = a.stats.work_done + b.stats.work_done
        # never idle: total work == capacity * elapsed
        assert total == 2_000_000
        assert harness.machine.stats.idle_time(harness.engine.now) == 0

    def test_idle_time_accounted(self, harness):
        harness.spawn_segments("t", [Compute(100 * KILO)])  # 100 ms of work
        harness.machine.run_until(SECOND)
        assert harness.machine.stats.busy_time == 100 * MS
        assert harness.machine.stats.idle_time(SECOND) == 900 * MS

    def test_run_until_flushes_partial_burst(self, harness):
        thread = harness.spawn_dhrystone("t")
        harness.machine.run_until(500 * MS + 1234567)
        # work booked exactly at the horizon (1 instruction tolerance
        # for the flush's floor rounding)
        expected = (500 * MS + 1234567) // KILO
        assert abs(thread.stats.work_done - expected) <= 1

    def test_utilization(self, harness):
        harness.spawn_segments("t", [Compute(500 * KILO)])
        harness.machine.run_until(SECOND)
        assert harness.machine.utilization() == pytest.approx(0.5, abs=0.01)

    def test_dispatch_and_block_counters(self, harness):
        thread = harness.spawn_segments(
            "t", [Compute(KILO), SleepFor(MS), Compute(KILO)])
        harness.machine.run_until(SECOND)
        assert thread.stats.dispatches == 2
        assert thread.stats.blocks == 1
        assert thread.stats.wakeups == 1
        assert thread.stats.segments_completed == 2


class TestInterrupts:
    def test_interrupt_pauses_thread(self):
        harness = Harness()
        thread = harness.spawn_segments("t", [Compute(10 * KILO)])
        # steal 2 ms at t = 5 ms
        harness.engine.at(5 * MS, lambda: harness.machine.interrupt(2 * MS))
        harness.machine.run_until(SECOND)
        # 10 ms of work stretched by the 2 ms interrupt
        assert thread.stats.exited_at == 12 * MS
        assert thread.stats.work_done == 10 * KILO

    def test_interrupt_time_not_charged_to_thread(self):
        harness = Harness()
        thread = harness.spawn_segments("t", [Compute(10 * KILO)])
        harness.engine.at(5 * MS, lambda: harness.machine.interrupt(2 * MS))
        harness.machine.run_until(SECOND)
        assert thread.stats.cpu_time == 10 * MS

    def test_periodic_source_steals_share(self):
        harness = Harness()
        thread = harness.spawn_dhrystone("t")
        harness.machine.add_interrupt_source(
            PeriodicInterruptSource(period=10 * MS, service=2 * MS))
        harness.machine.run_until(SECOND)
        # 20% stolen: ~800 KILO of work in 1 s
        assert thread.stats.work_done == pytest.approx(800 * KILO,
                                                       rel=0.02)
        assert harness.machine.stats.interrupt_time == pytest.approx(
            200 * MS, rel=0.02)

    def test_nested_interrupts_extend_service(self):
        harness = Harness()
        thread = harness.spawn_segments("t", [Compute(10 * KILO)])
        harness.engine.at(5 * MS, lambda: harness.machine.interrupt(2 * MS))
        harness.engine.at(6 * MS, lambda: harness.machine.interrupt(3 * MS))
        harness.machine.run_until(SECOND)
        # service queue: busy until 5+2+3 = 10 ms, then 5 ms of work left
        assert thread.stats.exited_at == 15 * MS

    def test_interrupt_while_idle_delays_dispatch(self):
        harness = Harness()
        harness.engine.at(0, lambda: harness.machine.interrupt(5 * MS))
        thread = harness.spawn_segments("t", [SleepFor(1 * MS),
                                              Compute(KILO)])
        harness.machine.run_until(SECOND)
        # thread woke at 1 ms but the CPU was serving interrupts until 5 ms
        assert thread.stats.exited_at == 6 * MS

    def test_source_stop(self):
        harness = Harness()
        source = PeriodicInterruptSource(period=10 * MS, service=1 * MS)
        harness.machine.add_interrupt_source(source)
        harness.spawn_dhrystone("t")
        harness.machine.run_until(100 * MS)
        count = harness.machine.stats.interrupts
        source.stop()
        harness.machine.run_until(200 * MS)
        assert harness.machine.stats.interrupts == count

    def test_invalid_source_params(self):
        with pytest.raises(SimulationError):
            PeriodicInterruptSource(period=0, service=0)
        with pytest.raises(SimulationError):
            PeriodicInterruptSource(period=10, service=10)


class TestCostModel:
    def test_overhead_reduces_throughput(self):
        plain = Harness()
        t_plain = plain.spawn_dhrystone("t")
        plain.machine.run_until(SECOND)

        costly = Harness.__new__(Harness)
        Harness.__init__(costly)
        costly.machine.cost_model = LinearCostModel(
            base_ns=100_000, per_level_ns=0, context_switch_ns=0)
        t_costly = costly.spawn_dhrystone("t")
        costly.machine.run_until(SECOND)
        assert t_costly.stats.work_done < t_plain.stats.work_done
        assert costly.machine.stats.overhead_time > 0

    def test_context_switch_counted_once_per_switch(self, harness):
        a = harness.spawn_segments("a", [Compute(20 * KILO)])
        harness.spawn_segments("b", [Compute(20 * KILO)])
        harness.machine.run_until(SECOND)
        # a b a b: 4 dispatches, every one a switch, plus nothing else
        assert harness.machine.stats.dispatches == 4
        assert harness.machine.stats.context_switches == 4
        del a

    def test_negative_cost_model_rejected(self):
        with pytest.raises(ValueError):
            LinearCostModel(base_ns=-1)


class TestPreemption:
    def test_wakeup_preempts_when_policy_allows(self):
        from repro.schedulers.edf import EdfScheduler
        harness = FlatHarness(EdfScheduler())
        harness.machine.scheduler.leaf_scheduler = harness.leaf_scheduler

        long_thread = harness.spawn_segments(
            "long", [Compute(50 * KILO)], params={"period": SECOND})
        urgent = harness.spawn_segments(
            "urgent", [SleepFor(5 * MS), Compute(KILO)],
            params={"period": 20 * MS})
        harness.machine.run_until(SECOND)
        # flat scheduler consults the leaf's should_preempt directly
        assert urgent.stats.exited_at == 6 * MS
        assert long_thread.stats.preemptions == 1

    def test_no_preemption_by_default(self, harness):
        long_thread = harness.spawn_segments("long", [Compute(10 * KILO)])
        urgent = harness.spawn_segments(
            "urgent", [SleepFor(2 * MS), Compute(KILO)])
        harness.machine.run_until(SECOND)
        assert long_thread.stats.preemptions == 0
        assert urgent.stats.exited_at == 11 * MS


class TestWorkloadErrors:
    def test_infinite_zero_sleep_detected(self, harness):
        class Spinner(Workload):
            def next_segment(self, now, thread):
                return SleepFor(0)

        from repro.threads.thread import SimThread
        thread = SimThread("spin", Spinner())
        harness.leaf.attach_thread(thread)
        with pytest.raises(WorkloadError):
            harness.machine.spawn(thread)

    def test_unknown_segment_detected(self, harness):
        class Weird(Workload):
            def next_segment(self, now, thread):
                return "garbage"

        from repro.threads.thread import SimThread
        thread = SimThread("weird", Weird())
        harness.leaf.attach_thread(thread)
        with pytest.raises(WorkloadError):
            harness.machine.spawn(thread)
