"""Property-based tests of the SFQ queue invariants (hypothesis)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sfq import SfqQueue


class Entity:
    def __init__(self, index: int, weight: int) -> None:
        self.index = index
        self.weight = weight

    def __repr__(self) -> str:
        return "E%d(w=%d)" % (self.index, self.weight)


#: an action script: (op, entity_index, amount)
actions = st.lists(
    st.tuples(st.sampled_from(["run", "block", "serve"]),
              st.integers(0, 3), st.integers(1, 50)),
    min_size=1, max_size=120)
weight_lists = st.lists(st.integers(1, 9), min_size=4, max_size=4)


def apply_script(queue, entities, script):
    """Drive the queue through a script; returns per-entity service log.

    The log records, for each completed quantum, (entity, length) plus the
    virtual time snapshot — the raw material for invariant checks.
    """
    log = []
    for op, index, amount in script:
        entity = entities[index]
        if op == "run":
            queue.set_runnable(entity)
        elif op == "block":
            if queue.is_runnable(entity):
                # never block the in-service entity mid-quantum: the
                # machine always charges first, so emulate that
                queue.set_blocked(entity)
        else:
            picked = queue.pick()
            if picked is not None:
                queue.charge(picked, amount)
                log.append((picked, amount, queue.virtual_time))
    return log


class TestQueueInvariants:
    @given(weight_lists, actions)
    @settings(max_examples=120, deadline=None)
    def test_virtual_time_never_decreases(self, weights, script):
        queue = SfqQueue()
        entities = [Entity(i, w) for i, w in enumerate(weights)]
        for e in entities:
            queue.add(e)
        last = queue.virtual_time
        for op, index, amount in script:
            entity = entities[index]
            if op == "run":
                queue.set_runnable(entity)
            elif op == "block":
                if queue.is_runnable(entity):
                    queue.set_blocked(entity)
            else:
                picked = queue.pick()
                if picked is not None:
                    queue.charge(picked, amount)
            assert queue.virtual_time >= last
            last = queue.virtual_time

    @given(weight_lists, actions)
    @settings(max_examples=120, deadline=None)
    def test_finish_tags_never_decrease(self, weights, script):
        queue = SfqQueue()
        entities = [Entity(i, w) for i, w in enumerate(weights)]
        for e in entities:
            queue.add(e)
        finishes = {id(e): Fraction(0) for e in entities}
        for op, index, amount in script:
            entity = entities[index]
            if op == "run":
                queue.set_runnable(entity)
            elif op == "block":
                if queue.is_runnable(entity):
                    queue.set_blocked(entity)
            else:
                picked = queue.pick()
                if picked is not None:
                    queue.charge(picked, amount)
                    assert queue.finish_tag(picked) >= finishes[id(picked)]
                    finishes[id(picked)] = queue.finish_tag(picked)

    @given(weight_lists, actions)
    @settings(max_examples=120, deadline=None)
    def test_start_tag_at_least_stamp_time_virtual_time(self, weights, script):
        # S = max(v, F) implies S >= v at stamping; since v is monotone,
        # every runnable entity's start tag is >= the v at its stamping.
        queue = SfqQueue()
        entities = [Entity(i, w) for i, w in enumerate(weights)]
        for e in entities:
            queue.add(e)
        for op, index, amount in script:
            entity = entities[index]
            if op == "run":
                v_before = queue.virtual_time
                queue.set_runnable(entity)
                assert queue.start_tag(entity) >= v_before
            elif op == "block":
                if queue.is_runnable(entity):
                    queue.set_blocked(entity)
            else:
                picked = queue.pick()
                if picked is not None:
                    queue.charge(picked, amount)

    @given(weight_lists, actions)
    @settings(max_examples=100, deadline=None)
    def test_picked_entity_has_minimal_start_tag(self, weights, script):
        queue = SfqQueue()
        entities = [Entity(i, w) for i, w in enumerate(weights)]
        for e in entities:
            queue.add(e)
        for op, index, amount in script:
            entity = entities[index]
            if op == "run":
                queue.set_runnable(entity)
            elif op == "block":
                if queue.is_runnable(entity):
                    queue.set_blocked(entity)
            else:
                picked = queue.pick()
                if picked is not None:
                    runnable_tags = [queue.start_tag(e) for e in entities
                                     if queue.is_runnable(e)]
                    assert queue.start_tag(picked) == min(runnable_tags)
                    queue.charge(picked, amount)

    @given(weight_lists, st.integers(1, 40), st.integers(10, 200))
    @settings(max_examples=60, deadline=None)
    def test_continuously_backlogged_fairness_theorem(self, weights,
                                                      quantum, rounds):
        """|W_f/w_f - W_m/w_m| <= l/w_f + l/w_m for backlogged entities."""
        queue = SfqQueue()
        entities = [Entity(i, w) for i, w in enumerate(weights)]
        work = {id(e): 0 for e in entities}
        for e in entities:
            queue.add(e)
            queue.set_runnable(e)
        for __ in range(rounds):
            picked = queue.pick()
            queue.charge(picked, quantum)
            work[id(picked)] += quantum
            for f in entities:
                for m in entities:
                    if f is m:
                        continue
                    gap = abs(Fraction(work[id(f)], f.weight)
                              - Fraction(work[id(m)], m.weight))
                    bound = Fraction(quantum, f.weight) + Fraction(
                        quantum, m.weight)
                    assert gap <= bound

    @given(weight_lists, actions, st.integers(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_work_conserving(self, weights, script, quantum):
        """pick() never returns None while some entity is runnable."""
        queue = SfqQueue()
        entities = [Entity(i, w) for i, w in enumerate(weights)]
        for e in entities:
            queue.add(e)
        for op, index, __ in script:
            entity = entities[index]
            if op == "run":
                queue.set_runnable(entity)
            elif op == "block":
                if queue.is_runnable(entity):
                    queue.set_blocked(entity)
            else:
                picked = queue.pick()
                if queue.has_runnable():
                    assert picked is not None
                else:
                    assert picked is None
                if picked is not None:
                    queue.charge(picked, quantum)
