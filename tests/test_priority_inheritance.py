"""Priority inheritance for RMA leaves (paper §4's second remedy)."""

import pytest

from repro.core.hierarchy import PREEMPT_LEAF, HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.cpu.machine import Machine
from repro.schedulers.rma import RmaScheduler
from repro.sim.engine import Simulator
from repro.sync.inheritance import PriorityInheritanceMutex
from repro.sync.mutex import Acquire, Release, SimMutex
from repro.threads.segments import Compute, SegmentListWorkload, SleepFor
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.units import MS, SECOND

CAPACITY = 1_000_000
KILO = 1000


def rma_thread(name, period):
    return SimThread(name, SegmentListWorkload([]),
                     params={"period": period})


class TestInheritanceUnit:
    def test_holder_inherits_shortest_waiter_period(self):
        sched = RmaScheduler()
        low = rma_thread("low", 1000 * MS)
        high = rma_thread("high", 10 * MS)
        for t in (low, high):
            sched.add_thread(t)
        mutex = PriorityInheritanceMutex("m", sched)
        assert mutex.try_acquire(low)
        mutex.enqueue_waiter(high)
        assert sched.effective_period_of(low) == 10 * MS

    def test_inheritance_removed_on_release(self):
        sched = RmaScheduler()
        low = rma_thread("low", 1000 * MS)
        high = rma_thread("high", 10 * MS)
        for t in (low, high):
            sched.add_thread(t)
        mutex = PriorityInheritanceMutex("m", sched)
        mutex.try_acquire(low)
        mutex.enqueue_waiter(high)
        mutex.release(low)
        assert sched.effective_period_of(low) == 1000 * MS

    def test_transitive_to_new_holder(self):
        sched = RmaScheduler()
        low = rma_thread("low", 1000 * MS)
        mid = rma_thread("mid", 100 * MS)
        high = rma_thread("high", 10 * MS)
        for t in (low, mid, high):
            sched.add_thread(t)
        mutex = PriorityInheritanceMutex("m", sched)
        mutex.try_acquire(low)
        mutex.enqueue_waiter(mid)
        mutex.enqueue_waiter(high)
        assert sched.effective_period_of(low) == 10 * MS
        granted = mutex.release(low)
        assert granted is mid
        # mid now inherits high's period while high still waits
        assert sched.effective_period_of(mid) == 10 * MS

    def test_drop_waiter_revises_inheritance(self):
        sched = RmaScheduler()
        low = rma_thread("low", 1000 * MS)
        high = rma_thread("high", 10 * MS)
        for t in (low, high):
            sched.add_thread(t)
        mutex = PriorityInheritanceMutex("m", sched)
        mutex.try_acquire(low)
        mutex.enqueue_waiter(high)
        mutex.drop_waiter(high)
        assert sched.effective_period_of(low) == 1000 * MS

    def test_foreign_waiter_tolerated(self):
        sched = RmaScheduler()
        low = rma_thread("low", 1000 * MS)
        sched.add_thread(low)
        outsider = SimThread("outsider", SegmentListWorkload([]))
        mutex = PriorityInheritanceMutex("m", sched)
        mutex.try_acquire(low)
        mutex.enqueue_waiter(outsider)  # not in this RMA leaf: ignored
        assert sched.effective_period_of(low) == 1000 * MS

    def test_heap_rekeyed_while_runnable(self):
        sched = RmaScheduler()
        low = rma_thread("low", 1000 * MS)
        mid = rma_thread("mid", 100 * MS)
        high = rma_thread("high", 10 * MS)
        for t in (low, mid, high):
            sched.add_thread(t)
        sched.on_runnable(low, 0)
        sched.on_runnable(mid, 0)
        assert sched.pick_next(0) is mid
        # low inherits high's priority: overtakes mid in the ready heap
        mutex = PriorityInheritanceMutex("m", sched)
        mutex.try_acquire(low)
        mutex.enqueue_waiter(high)
        assert sched.pick_next(0) is low


class TestInheritanceOnMachine:
    def _run(self, mutex_factory):
        """The Mars-Pathfinder shape inside one RMA leaf.

        low takes the lock; mid (CPU-bound, no locks) preempts low; high
        wakes and needs the lock.  Without inheritance, mid starves low,
        so high waits for mid's entire run; with inheritance, low runs at
        high's priority and releases quickly.
        """
        structure = SchedulingStructure()
        sched = RmaScheduler(quantum=5 * MS)
        leaf = structure.mknod("/rt", 1, scheduler=sched)
        engine = Simulator()
        machine = Machine(engine,
                          HierarchicalScheduler(structure, PREEMPT_LEAF),
                          capacity_ips=CAPACITY, default_quantum=5 * MS,
                          tracer=Recorder())
        lock = mutex_factory(sched)
        low = SimThread("low", SegmentListWorkload(
            [Acquire(lock), Compute(20 * KILO), Release(lock)]),
            params={"period": 1000 * MS})
        mid = SimThread("mid", SegmentListWorkload(
            [SleepFor(1 * MS), Compute(300 * KILO)]),
            params={"period": 100 * MS})
        high = SimThread("high", SegmentListWorkload(
            [SleepFor(2 * MS), Acquire(lock), Compute(KILO),
             Release(lock)]),
            params={"period": 10 * MS})
        for thread in (low, mid, high):
            leaf.attach_thread(thread)
            machine.spawn(thread)
        machine.run_until(2 * SECOND)
        return low, mid, high

    def test_without_inheritance_high_is_inverted(self):
        low, mid, high = self._run(
            lambda sched: SimMutex("plain"))
        # mid's 300 ms of higher-priority work blocks low, hence high
        assert high.stats.exited_at > 250 * MS

    def test_with_inheritance_inversion_collapses(self):
        low, mid, high = self._run(
            lambda sched: PriorityInheritanceMutex("pi", sched))
        # low inherits high's 10 ms priority, preempts mid, and releases
        # within ~its critical section (20 ms) + small scheduling noise
        assert high.stats.exited_at < 40 * MS
        # inheritance fully unwound afterwards
        assert low.params["period"] == 1000 * MS
