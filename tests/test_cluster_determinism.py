"""Property tests for cluster shard determinism and merge validation.

The contract under test is ISSUE 10's headline guarantee: a cluster run
is a pure function of ``(spec, seed)`` — the shard count, the worker
scheduling, and the host registration order can never change a byte of
the merged trace, the placement log, the merged schedstat, or the host
summaries.  The seeded-skew test pins the enforcement side: the k-way
merge *detects* ordering bugs rather than papering over them with a
sort.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.cluster.churn import build_churn
from repro.cluster.messages import merge_outboxes, message
from repro.cluster.runner import run_cluster
from repro.cluster.spec import ClusterSpec, HostSpec
from repro.errors import ClusterError
from repro.units import MS


def build_spec(cpu_hosts, smp_hosts, tenants, epochs, policy, churn,
               order_seed=None):
    """A small cluster spec; ``order_seed`` shuffles host registration."""
    hosts = [HostSpec("n%02d" % index) for index in range(cpu_hosts)]
    hosts.extend(HostSpec("n%02d" % (cpu_hosts + index), kind="smp", cpus=2)
                 for index in range(smp_hosts))
    if order_seed is not None:
        random.Random(order_seed).shuffle(hosts)
    faults = [{"kind": "host-churn", "params": {"downs": 1}}] if churn else []
    return ClusterSpec(
        name="prop",
        hosts=hosts,
        tenants=tenants,
        epoch_ns=10 * MS,
        epochs=epochs,
        arrival_window_epochs=3,
        policy=policy,
        tenant_total_work=30_000,
        tenant_burst_work=15_000,
        tenant_sleep_ns=2 * MS,
        tenant_groups=4,
        faults=faults,
        rebalance_threshold=6 if policy == "affinity" else 0,
    )


spec_params = st.tuples(
    st.integers(min_value=1, max_value=3),   # cpu hosts
    st.integers(min_value=1, max_value=2),   # smp hosts
    st.integers(min_value=4, max_value=14),  # tenants
    st.integers(min_value=6, max_value=8),   # epochs
    st.sampled_from(["least-loaded", "affinity"]),
    st.booleans(),                           # host churn on/off
)


class TestShardByteIdentity:
    @settings(max_examples=6, deadline=None)
    @given(params=spec_params, seed=st.integers(min_value=0, max_value=2**32))
    def test_digests_invariant_across_shard_counts(self, params, seed):
        """--shards 1, 2, and 4 produce byte-identical artifacts."""
        serial = run_cluster(build_spec(*params), seed, shards=1).digests()
        for shards in (2, 4):
            sharded = run_cluster(build_spec(*params), seed,
                                  shards=shards).digests()
            assert sharded == serial

    @settings(max_examples=15, deadline=None)
    @given(params=spec_params, seed=st.integers(min_value=0, max_value=2**32),
           order_seed=st.integers(min_value=0, max_value=2**16))
    def test_host_registration_order_is_irrelevant(self, params, seed,
                                                   order_seed):
        """Shuffling the host list at spec build time changes nothing."""
        canonical = build_spec(*params)
        shuffled = build_spec(*params, order_seed=order_seed)
        assert shuffled.host_names() == canonical.host_names()
        assert (run_cluster(shuffled, seed).digests()
                == run_cluster(canonical, seed).digests())


class TestSeededSkew:
    """The merge must *catch* unsorted outboxes, never silently resort."""

    @settings(max_examples=60, deadline=None)
    @given(times=st.lists(st.integers(min_value=0, max_value=10**6),
                          min_size=2, max_size=12),
           swap_seed=st.integers(min_value=0, max_value=2**16))
    def test_swapped_outbox_raises(self, times, swap_seed):
        outbox = [message(0, time, "h0", seq, "host-load", load=0, alive=0)
                  for seq, time in enumerate(sorted(times))]
        rng = random.Random(swap_seed)
        i = rng.randrange(len(outbox) - 1)
        j = rng.randrange(i + 1, len(outbox))
        outbox[i], outbox[j] = outbox[j], outbox[i]
        with pytest.raises(ClusterError, match="out-of-order"):
            merge_outboxes([outbox])

    @settings(max_examples=40, deadline=None)
    @given(times=st.lists(st.integers(min_value=0, max_value=10**6),
                          min_size=1, max_size=8, unique=True))
    def test_sorted_outboxes_always_merge(self, times):
        left = [message(0, time, "a", seq, "x")
                for seq, time in enumerate(sorted(times))]
        right = [message(0, time, "b", seq, "x")
                 for seq, time in enumerate(sorted(times))]
        merged = merge_outboxes([left, right])
        assert len(merged) == len(left) + len(right)
        # equal (epoch, time) pairs resolve by src: "a" before "b"
        for time in sorted(times):
            pair = [m["src"] for m in merged if m["time"] == time]
            assert pair == ["a", "b"]


class TestChurnSchedule:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32),
           downs=st.integers(min_value=1, max_value=3),
           epochs=st.integers(min_value=6, max_value=12))
    def test_schedule_is_pure_and_bounded(self, seed, downs, epochs):
        """Churn is a pure function of (spec, seed) and never drains
        the whole fleet or schedules past the safe window."""
        spec = build_spec(2, 2, 0, epochs, "least-loaded", False)
        spec.faults = [{"kind": "host-churn", "params": {"downs": downs}}]
        first = build_churn(spec, seed)
        assert first.churn == build_churn(spec, seed).churn
        downed = {host for __, action, host in first.churn
                  if action == "down"}
        assert len(downed) <= len(spec.hosts) - 1
        for epoch, action, host in first.churn:
            assert host in spec.host_names()
            if action == "down":
                assert 0 <= epoch <= epochs - 3
            else:
                assert epoch < epochs
