"""Documentation consistency: the docs reference things that exist."""

import importlib
import os
import re

import pytest

ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


def read(name):
    with open(os.path.join(ROOT, name)) as handle:
        return handle.read()


class TestDesignDoc:
    def test_every_bench_target_exists(self):
        text = read("DESIGN.md")
        for target in set(re.findall(r"`(benchmarks/bench_\w+\.py)`", text)):
            assert os.path.exists(os.path.join(ROOT, target)), target

    def test_every_experiment_module_exists(self):
        text = read("DESIGN.md")
        for module in set(re.findall(r"`experiments\.(\w+)`", text)):
            importlib.import_module("repro.experiments." + module)

    def test_every_named_package_imports(self):
        text = read("DESIGN.md")
        for package in set(re.findall(r"`repro\.(\w+)`", text)):
            importlib.import_module("repro." + package)

    def test_paper_identity_check_present(self):
        assert "Goyal" in read("DESIGN.md")


class TestExperimentsDoc:
    def test_covers_every_figure(self):
        text = read("EXPERIMENTS.md")
        for figure in ("Figure 1", "Figure 3", "Figure 5", "Figure 7(a)",
                       "Figure 7(b)", "Figure 8(a)", "Figure 8(b)",
                       "Figure 9", "Figure 10", "Figure 11"):
            assert figure in text, figure

    def test_covers_every_ablation(self):
        text = read("EXPERIMENTS.md")
        for ab in ("AB1", "AB2", "AB3", "AB4", "AB5", "AB6", "AB7", "AB8",
                   "AB9"):
            assert "| %s |" % ab in text, ab


class TestReadme:
    def test_quickstart_code_runs(self):
        """Execute the README's quickstart block verbatim."""
        text = read("README.md")
        match = re.search(r"```python\n(.*?)```", text, re.S)
        assert match, "README has no python quickstart block"
        namespace = {}
        exec(match.group(1), namespace)  # noqa: S102 - our own docs
        worker = namespace["worker"]
        assert worker.stats.work_done > 0

    def test_referenced_files_exist(self):
        text = read("README.md")
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert name in text
            assert os.path.exists(os.path.join(ROOT, name))

    def test_examples_table_matches_directory(self):
        text = read("README.md")
        for script in re.findall(r"`(\w+\.py)`", text):
            if script in ("setup.py",):
                continue
            assert os.path.exists(os.path.join(ROOT, "examples", script)), \
                script


class TestRunnerCoverage:
    def test_runner_registry_covers_design_index(self):
        """Every EXP id in DESIGN.md has a runner registration."""
        from repro.experiments.__main__ import EXPERIMENTS
        text = read("DESIGN.md")
        ids = set(re.findall(r"EXP-(F\d+[AB]?|AB\d+)", text))
        for exp_id in ids:
            exp_id = exp_id.lower()
            if exp_id.startswith("f"):
                name = "figure" + exp_id[1:]
            else:
                name = exp_id
            assert name in EXPERIMENTS, name
