"""Unit conversions."""

import pytest

from repro.units import (
    MS,
    SECOND,
    US,
    ms_from_ns,
    ns_from_ms,
    ns_from_s,
    ns_from_us,
    s_from_ns,
    time_from_work,
    work_from_time,
)


class TestConstants:
    def test_second_is_1e9_ns(self):
        assert SECOND == 1_000_000_000

    def test_ms_us_ordering(self):
        assert US * 1000 == MS
        assert MS * 1000 == SECOND


class TestConversions:
    def test_ns_from_ms(self):
        assert ns_from_ms(20) == 20 * MS

    def test_ns_from_ms_fractional(self):
        assert ns_from_ms(0.5) == 500 * US

    def test_ns_from_us(self):
        assert ns_from_us(3) == 3 * US

    def test_ns_from_s(self):
        assert ns_from_s(2.5) == 2 * SECOND + 500 * MS

    def test_roundtrip_seconds(self):
        assert s_from_ns(ns_from_s(1.25)) == pytest.approx(1.25)

    def test_ms_from_ns(self):
        assert ms_from_ns(1500000) == 1.5


class TestWorkTimeConversion:
    def test_work_from_time_exact(self):
        # 1 second at 100 inst/s = 100 instructions
        assert work_from_time(SECOND, 100) == 100

    def test_work_from_time_rounds_down(self):
        # half an instruction is not completed work
        assert work_from_time(SECOND // 2, 1) == 0

    def test_time_from_work_rounds_up(self):
        # 1 instruction at 3 inst/s needs ceil(1e9/3) ns
        assert time_from_work(1, 3) == (SECOND + 2) // 3

    def test_roundtrip_never_loses_work(self):
        for work in [1, 7, 99, 12345]:
            for capacity in [3, 1000, 999_937]:
                t = time_from_work(work, capacity)
                assert work_from_time(t, capacity) >= work

    def test_zero_work_zero_time(self):
        assert time_from_work(0, 1000) == 0
        assert work_from_time(0, 1000) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            work_from_time(-1, 100)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            time_from_work(-1, 100)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            time_from_work(10, 0)
