"""The QoS class monitor."""

import pytest

from repro.errors import SchedulingError
from repro.qos.monitor import ClassMonitor
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.segments import Compute, SleepFor
from repro.units import MS, SECOND

from tests.conftest import Harness

KILO = 1000


def build(harness):
    other = harness.structure.mknod("/other", 1, scheduler=SfqScheduler())
    apps = harness.structure.parse("/apps")
    return apps, other


class TestClassMonitor:
    def test_requires_recorder(self):
        from repro.core.hierarchy import HierarchicalScheduler
        from repro.core.structure import SchedulingStructure
        from repro.cpu.machine import Machine
        from repro.sim.engine import Simulator
        structure = SchedulingStructure()
        machine = Machine(Simulator(), HierarchicalScheduler(structure))
        with pytest.raises(SchedulingError):
            ClassMonitor(machine, [], window=SECOND)

    def test_invalid_window(self, harness):
        with pytest.raises(SchedulingError):
            ClassMonitor(harness.machine, [], window=0)

    def test_fair_machine_has_no_violations(self, harness):
        apps, other = build(harness)
        harness.spawn_dhrystone("a")
        harness.spawn_dhrystone("b", leaf=other)
        monitor = ClassMonitor(harness.machine, [apps, other],
                               window=500 * MS)
        monitor.start()
        harness.machine.run_until(5 * SECOND)
        assert monitor.violations() == []
        assert monitor.mean_received_share(apps) == pytest.approx(0.5,
                                                                  abs=0.02)

    def test_idle_class_not_a_violation(self, harness):
        apps, other = build(harness)
        harness.spawn_dhrystone("a")
        # /other stays empty: it gets nothing but is never backlogged
        monitor = ClassMonitor(harness.machine, [apps, other],
                               window=500 * MS)
        monitor.start()
        harness.machine.run_until(3 * SECOND)
        assert monitor.violations() == []
        assert monitor.mean_received_share(other) == 0.0

    def test_saturated_class_receives_full_share(self, harness):
        """Regression: the window's work budget is
        ``(t2 - t1) * capacity_ips / SECOND``; a lone busy class must
        therefore sample at share 1.0, any mis-normalization shows up
        as a constant factor here."""
        apps, __ = build(harness)
        harness.spawn_dhrystone("a")
        monitor = ClassMonitor(harness.machine, [apps], window=500 * MS)
        monitor.start()
        harness.machine.run_until(2 * SECOND)
        assert monitor.mean_received_share(apps) == pytest.approx(1.0,
                                                                  abs=0.02)

    def test_detects_engineered_shortfall(self, harness):
        """A class whose threads we secretly stall shows up as violated."""
        apps, other = build(harness)
        harness.spawn_dhrystone("a")
        victim = harness.spawn_dhrystone("v", leaf=other)
        monitor = ClassMonitor(harness.machine, [apps, other],
                               window=500 * MS, tolerance=0.05)
        monitor.start()

        # Simulate an unfair scheduler by lying to the monitor: mark the
        # class backlogged while its thread actually sleeps.
        def stall():
            # replace victim's workload with long sleeps mid-run
            from repro.threads.segments import SegmentListWorkload
            victim.workload = SegmentListWorkload(
                [SleepFor(2 * SECOND), Compute(KILO)])

        harness.engine.at(1 * SECOND, stall)
        harness.machine.run_until(4 * SECOND)
        # while asleep the class is not backlogged -> not a violation;
        # this documents that honest idleness never alarms
        assert all(s.backlogged is False or s.received > 0
                   for s in monitor.samples[other.path])

    def test_stop_halts_sampling(self, harness):
        apps, other = build(harness)
        harness.spawn_dhrystone("a")
        monitor = ClassMonitor(harness.machine, [apps], window=500 * MS)
        monitor.start()
        harness.machine.run_until(2 * SECOND)
        count = len(monitor.samples[apps.path])
        monitor.stop()
        harness.machine.run_until(4 * SECOND)
        assert len(monitor.samples[apps.path]) == count

    def test_weighted_promise(self, harness):
        apps, other = build(harness)
        harness.structure.admin("/other", "set_weight", 3)
        harness.spawn_dhrystone("a")
        harness.spawn_dhrystone("b", leaf=other)
        monitor = ClassMonitor(harness.machine, [apps, other],
                               window=500 * MS)
        monitor.start()
        harness.machine.run_until(4 * SECOND)
        assert monitor.mean_received_share(other) == pytest.approx(
            0.75, abs=0.02)
        samples = monitor.samples[other.path]
        assert all(s.promised == pytest.approx(0.75)
                   for s in samples if s.backlogged)
