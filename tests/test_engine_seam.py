"""Tests for the ``REPRO_ENGINE`` seam (``repro.core.engine``).

Engine selection happens at import time, so cross-engine behaviour is
exercised through subprocesses; the in-process tests cover the cache
keying, the hard-failure contract, and the enginediff probe machinery.
"""

import os
import subprocess
import sys

import pytest

from repro.core import engine as engine_mod
from repro.devtools import enginediff

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")


def _run(code, env_engine, **extra_env):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_ENGINE"] = env_engine
    env.update(extra_env)
    return subprocess.run([sys.executable, "-c", code], env=env,
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE)


class TestSelection:
    def test_active_engine_matches_ops(self):
        assert engine_mod.active_engine() == engine_mod.ENGINE
        if engine_mod.OPS is None:
            assert engine_mod.ENGINE == "pure"
        else:
            assert engine_mod.ENGINE == "compiled"

    def test_pure_subprocess_reports_pure(self):
        result = _run("from repro.core.engine import ENGINE; print(ENGINE)",
                      "pure")
        assert result.returncode == 0
        assert result.stdout.strip() == b"pure"

    def test_compiled_subprocess_reports_compiled(self):
        result = _run("from repro.core.engine import ENGINE; print(ENGINE)",
                      "compiled")
        assert result.returncode == 0, result.stderr.decode()
        assert result.stdout.strip() == b"compiled"

    def test_unknown_engine_hard_fails(self):
        result = _run("import repro.core.engine", "turbo-encabulator")
        assert result.returncode != 0
        assert b"EngineError" in result.stderr
        assert b"turbo-encabulator" in result.stderr

    def test_compiled_is_a_hard_request(self, tmp_path):
        """A broken build must fail the import, never fall back to pure."""
        bad_source = tmp_path / "_sfqc.c"
        bad_source.write_text("this is not C\n")
        code = ("import repro.core.engine as e;"
                "e._C_SOURCE = %r;"
                "e.load_compiled_module()" % str(bad_source))
        result = _run(code, "pure",
                      REPRO_ENGINE_CACHE=str(tmp_path / "cache"))
        assert result.returncode != 0
        assert b"EngineError" in result.stderr


class TestBuildCache:
    def test_build_key_is_stable_and_short(self):
        key = engine_mod.build_key()
        assert key == engine_mod.build_key()
        assert len(key) == 20
        int(key, 16)  # hex digest prefix

    def test_build_key_tracks_source(self, tmp_path, monkeypatch):
        original = engine_mod.build_key()
        copy = tmp_path / "_sfqc.c"
        copy.write_bytes(
            open(engine_mod._C_SOURCE, "rb").read() + b"\n/* tweak */\n")
        monkeypatch.setattr(engine_mod, "_C_SOURCE", str(copy))
        assert engine_mod.build_key() != original

    def test_artifact_lands_in_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ENGINE_CACHE", str(tmp_path))
        assert engine_mod._artifact_path().startswith(str(tmp_path))

    def test_compiled_module_exports_all_ops(self):
        if engine_mod.OPS is None:
            pytest.skip("pure engine selected; ops exported only compiled")
        for name in engine_mod._OP_NAMES:
            assert callable(getattr(engine_mod.OPS, name))


class TestEnginediffProbes:
    def test_emit_is_deterministic_in_process(self):
        first = enginediff.emit("figure5", "schedstat")
        second = enginediff.emit("figure5", "schedstat")
        assert first == second
        assert first.startswith("engine events_fired=")

    def test_emit_rejects_unknown_probe(self):
        with pytest.raises(ValueError):
            enginediff.emit("figure5", "heisenstat")

    def test_scenario_registry(self):
        assert set(enginediff.SCENARIOS) == {"figure5", "depth8"}
        assert enginediff.PROBES == ("trace", "schedstat")

    def test_trace_probe_collects_events(self):
        text = enginediff.emit("figure5", "trace")
        assert "spawn t=" in text or "SPAWN" in text or "dispatch" in text
        assert len(text.splitlines()) > 100
