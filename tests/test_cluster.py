"""Unit tests for the repro.cluster subsystem (specs through CLI)."""

import json
import os

import pytest

from repro.cluster.churn import ClusterFaultContext, build_churn
from repro.cluster.control import CTL_SRC, ControlTier
from repro.cluster.host import HostSim
from repro.cluster.messages import (
    check_sorted,
    log_digest,
    merge_outboxes,
    message,
    render_lines,
)
from repro.cluster.placement import (
    PLACEMENTS,
    HostView,
    PlacementView,
    build_placement,
)
from repro.cluster.runner import run_cluster
from repro.cluster.scenario import (
    CLUSTER_SCENARIOS,
    cluster_scenarios,
    mini_spec,
)
from repro.cluster.shards import partition_hosts
from repro.cluster.spec import (
    ClusterSpec,
    HostSpec,
    TenantSpec,
    TenantWorkload,
    tenant_leaf,
)
from repro.errors import ClusterError
from repro.faultlab.campaign import default_fault_kinds
from repro.faultlab.faults import FAULTS, FaultContext
from repro.obs.schedstat import SchedStat, merge_schedstats
from repro.sim.rng import Stream
from repro.threads.segments import Compute, Exit, SleepFor
from repro.units import MS


def small_spec(**overrides):
    """A tiny 3-host cluster that runs in well under a second."""
    params = dict(
        name="unit",
        hosts=[HostSpec("b", kind="smp", cpus=2), HostSpec("a"),
               HostSpec("c")],
        tenants=8,
        epoch_ns=10 * MS,
        epochs=6,
        arrival_window_epochs=3,
        tenant_total_work=30_000,
        tenant_burst_work=15_000,
        tenant_sleep_ns=2 * MS,
        tenant_groups=4,
    )
    params.update(overrides)
    return ClusterSpec(**params)


# --- specs -------------------------------------------------------------------


class TestSpecs:
    def test_hosts_are_name_sorted_regardless_of_registration(self):
        spec = small_spec()
        assert spec.host_names() == ["a", "b", "c"]

    def test_duplicate_host_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate host names"):
            small_spec(hosts=[HostSpec("a"), HostSpec("a")])

    def test_cpu_host_must_be_uniprocessor(self):
        with pytest.raises(ValueError, match="exactly one CPU"):
            HostSpec("x", kind="cpu", cpus=4)

    def test_unknown_host_kind_rejected(self):
        with pytest.raises(ValueError, match="must be 'cpu' or 'smp'"):
            HostSpec("x", kind="gpu")

    def test_thread_name_carries_attempt(self):
        spec = TenantSpec("t1", 2, 100, 50, 0, "g", 0)
        assert spec.thread_name == "t1"
        retry = TenantSpec("t1", 2, 100, 50, 0, "g", 0, attempt=2)
        assert retry.thread_name == "t1+2"

    def test_tenant_fields_roundtrip(self):
        spec = TenantSpec("t9", 3, 1000, 400, 5 * MS, "g007", 123, attempt=1)
        again = TenantSpec.from_fields(spec.to_fields())
        for slot in TenantSpec.__slots__:
            assert getattr(again, slot) == getattr(spec, slot)

    def test_tenant_workload_segment_stream(self):
        workload = TenantWorkload(total_work=30_000, burst_work=20_000,
                                  sleep_ns=1 * MS)
        first = workload.next_segment(0, None)
        assert isinstance(first, Compute) and first.work == 20_000
        second = workload.next_segment(0, None)
        assert isinstance(second, SleepFor)
        third = workload.next_segment(0, None)
        assert isinstance(third, Compute) and third.work == 10_000
        assert isinstance(workload.next_segment(0, None), Exit)

    def test_tenant_leaf_is_group_stable_across_hosts(self):
        host_a = HostSpec("a", groups=2, leaves=4)
        host_b = HostSpec("b", groups=2, leaves=4)
        assert tenant_leaf(host_a, "g1") == tenant_leaf(host_b, "g1")
        assert tenant_leaf(host_a, "g1") in host_a.leaf_paths()

    def test_arrivals_deterministic_and_windowed(self):
        spec = small_spec()
        first = list(spec.arrivals(7))
        second = list(spec.arrivals(7))
        assert [t.to_fields() for t in first] == [
            t.to_fields() for t in second]
        window = spec.arrival_window_epochs * spec.epoch_ns
        assert all(t.arrival_ns < window for t in first)


# --- placement ---------------------------------------------------------------


class TestPlacement:
    def view(self, loads, caps=None, groups=None):
        caps = caps or [1] * len(loads)
        groups = groups or [{} for __ in loads]
        return PlacementView([
            HostView("h%d" % index, caps[index], loads[index], groups[index])
            for index in range(len(loads))])

    def test_least_loaded_is_capacity_weighted(self):
        # load 3 over capacity 4 (0.75) beats load 1 over capacity 1 (1.0)
        view = self.view([1, 3], caps=[1, 4])
        assert build_placement("least-loaded").choose("g", 1, view) == "h1"

    def test_least_loaded_ties_break_by_name(self):
        view = self.view([2, 2, 2])
        assert build_placement("least-loaded").choose("g", 1, view) == "h0"

    def test_affinity_consolidates_on_group_peers(self):
        # preferred load 5 vs coldest 3: within 2x, so no spill
        view = self.view([5, 3], groups=[{"g": 3}, {}])
        assert build_placement("affinity").choose("g", 1, view) == "h0"

    def test_affinity_spills_when_preferred_is_overloaded(self):
        view = self.view([50, 1], groups=[{"g": 3}, {}])
        assert build_placement("affinity").choose("g", 1, view) == "h1"

    def test_affinity_without_peers_goes_least_loaded(self):
        view = self.view([4, 2])
        assert build_placement("affinity").choose("g", 1, view) == "h1"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown placement policy"):
            build_placement("round-robin")

    def test_registry_contains_both_policies(self):
        assert set(PLACEMENTS) >= {"least-loaded", "affinity"}

    def test_empty_view_rejected(self):
        with pytest.raises(ValueError, match="no live hosts"):
            PlacementView([]).least_loaded()


# --- messages ----------------------------------------------------------------


class TestMessages:
    def test_payload_cannot_shadow_routing_fields(self):
        with pytest.raises((TypeError, ValueError)):
            message(0, 0, "h", 0, "kind", **{"src": "evil", "x": 1})

    def test_check_sorted_rejects_disorder(self):
        msgs = [message(0, 5, "h", 1, "a"), message(0, 4, "h", 2, "a")]
        with pytest.raises(ClusterError, match="out-of-order"):
            check_sorted(msgs, "test")

    def test_check_sorted_rejects_duplicates(self):
        msg = message(0, 5, "h", 1, "a")
        with pytest.raises(ClusterError, match="out-of-order"):
            check_sorted([msg, dict(msg)], "test")

    def test_merge_interleaves_by_sort_key(self):
        left = [message(0, 1, "a", 0, "x"), message(0, 9, "a", 1, "x")]
        right = [message(0, 5, "b", 0, "x")]
        merged = merge_outboxes([left, right])
        assert [m["time"] for m in merged] == [1, 5, 9]

    def test_merge_validates_inputs(self):
        bad = [message(0, 9, "a", 1, "x"), message(0, 1, "a", 2, "x")]
        with pytest.raises(ClusterError, match="shard 0 outbox"):
            merge_outboxes([bad])

    def test_render_and_digest_are_stable(self):
        msgs = [message(0, 1, "a", 0, "x", value=3)]
        assert render_lines(msgs) == (
            '{"epoch":0,"kind":"x","seq":0,"src":"a","time":1,"value":3}\n')
        assert log_digest(msgs) == log_digest(list(msgs))


# --- shards ------------------------------------------------------------------


class TestPartition:
    def test_round_robin_over_sorted_names(self):
        assert partition_hosts(["c", "a", "b", "d"], 2) == [
            ["a", "c"], ["b", "d"]]

    def test_single_shard_is_sorted_fleet(self):
        assert partition_hosts(["c", "a"], 1) == [["a", "c"]]

    def test_excess_shards_drop_empty_buckets(self):
        assert partition_hosts(["a"], 4) == [["a"]]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="shard count"):
            partition_hosts(["a"], 0)


# --- host simulation ---------------------------------------------------------


def spawn_directive(spec, tenant, host_key, spawn_ns):
    fields = tenant.to_fields()
    fields.update(kind="spawn", host=host_key, spawn_ns=spawn_ns)
    return fields


class TestHostSim:
    def test_spawn_run_exit_reports(self):
        host = HostSim(HostSpec("h"))
        tenant = TenantSpec("t0", 1, 20_000, 20_000, 0, "g0", 0)
        host.apply([spawn_directive(None, tenant, "h", 0)])
        host.advance(10 * MS)
        out = host.barrier_report(0, 10 * MS)
        kinds = [m["kind"] for m in out]
        assert kinds == ["tenant-exit", "host-load"]
        assert out[0]["remaining"] == 0
        assert out[1]["load"] == 0
        check_sorted(out, "host outbox")

    def test_migrate_reports_remaining_work(self):
        host = HostSim(HostSpec("h"))
        tenant = TenantSpec("t0", 2, 100_000, 10_000, 5 * MS, "g0", 0)
        host.apply([spawn_directive(None, tenant, "h", 0)])
        host.advance(10 * MS)
        host.apply([{"kind": "migrate", "thread": "t0"}])
        host.advance(20 * MS)
        out = host.barrier_report(1, 20 * MS)
        migrate = [m for m in out if m["kind"] == "migrate-out"]
        assert len(migrate) == 1
        assert 0 < migrate[0]["remaining"] < 100_000
        assert migrate[0]["work_done"] + migrate[0]["remaining"] == 100_000

    def test_prepare_down_drains_and_freezes(self):
        host = HostSim(HostSpec("h"))
        tenant = TenantSpec("t0", 1, 500_000, 10_000, 5 * MS, "g0", 0)
        host.apply([spawn_directive(None, tenant, "h", 0)])
        host.advance(10 * MS)
        host.barrier_report(0, 10 * MS)
        host.apply([{"kind": "prepare-down"}])
        host.advance(20 * MS)  # must be a no-op while draining
        out = host.barrier_report(1, 20 * MS)
        assert [m["kind"] for m in out] == ["tenant-drain", "host-down"]
        assert host.frozen
        assert host.barrier_report(2, 30 * MS) == []
        assert host.engine.now == 10 * MS

    def test_incarnation_key_and_clock_alignment(self):
        host = HostSim(HostSpec("h"), incarnation=2, start_ns=40 * MS)
        assert host.key == "h+2"
        assert host.engine.now == 40 * MS

    def test_unknown_directive_rejected(self):
        host = HostSim(HostSpec("h"))
        with pytest.raises(ClusterError, match="unknown directive"):
            host.apply([{"kind": "explode"}])

    def test_duplicate_tenant_rejected(self):
        host = HostSim(HostSpec("h"))
        tenant = TenantSpec("t0", 1, 10_000, 10_000, 0, "g0", 0)
        host.apply([spawn_directive(None, tenant, "h", 0)])
        with pytest.raises(ClusterError, match="duplicate tenant"):
            host.apply([spawn_directive(None, tenant, "h", 0)])


# --- control tier ------------------------------------------------------------


class TestControlTier:
    def test_audit_catches_forged_load_report(self):
        spec = small_spec(tenants=0)
        control = ControlTier(spec, seed=1)
        inbox = [message(0, spec.epoch_ns, name, index, "host-load",
                         load=0, alive=0)
                 for index, name in enumerate(spec.host_names())]
        inbox[0]["load"] = 7  # a tenant the control tier never placed
        with pytest.raises(ClusterError, match="disagrees"):
            control.barrier(0, inbox)

    def test_audit_catches_missing_report(self):
        spec = small_spec(tenants=0)
        control = ControlTier(spec, seed=1)
        with pytest.raises(ClusterError, match="no load report"):
            control.barrier(0, [])

    def test_placements_update_model_and_emit_ctl_messages(self):
        spec = small_spec(tenants=4)
        control = ControlTier(spec, seed=1)
        inbox = [message(0, spec.epoch_ns, name, index, "host-load",
                         load=0, alive=0)
                 for index, name in enumerate(spec.host_names())]
        out = control.barrier(0, inbox)
        places = [m for m in out if m["kind"] == "place"]
        assert places and all(m["src"] == CTL_SRC for m in places)
        assert control.counters["placements"] == len(places)
        check_sorted(inbox + out, "epoch log")


# --- host churn injector -----------------------------------------------------


class TestHostChurn:
    def test_registered_but_not_in_default_grid(self):
        assert "host-churn" in FAULTS
        assert "host-churn" not in default_fault_kinds()

    def test_skips_without_cluster_context(self):
        from repro.sim.engine import Simulator
        ctx = FaultContext(machine=None, engine=Simulator(), structure=None,
                           stream=Stream(1, "t"), horizon=0)
        FAULTS["host-churn"]().arm(ctx)
        assert [entry["action"] for entry in ctx.log] == ["skipped"]

    def test_schedule_is_seed_deterministic(self):
        spec = mini_spec(quick=True)
        first = build_churn(spec, 5)
        second = build_churn(spec, 5)
        assert first.churn and first.churn == second.churn
        downs = [h for __, action, h in first.churn if action == "down"]
        assert len(set(downs)) == len(downs) < len(spec.hosts)

    def test_context_record_and_for_fault_share_log(self):
        spec = mini_spec(quick=True)
        ctx = ClusterFaultContext(spec, Stream(1, "x"))
        child = ctx.for_fault(0, "host-churn")
        child.record("host-churn", "test", host="a")
        assert ctx.log[0]["action"] == "test"
        assert child.churn is ctx.churn


# --- schedstat merge ---------------------------------------------------------


class TestSchedstatMerge:
    def collector(self, dispatches):
        stats = SchedStat()
        node = stats.node("/")
        node.dispatches = dispatches
        leaf = stats.node("/g0/l0")
        leaf.dispatches = dispatches
        leaf.vtime = float(dispatches)
        stats.events_seen = dispatches
        return stats

    def test_paths_gain_host_prefix(self):
        merged = merge_schedstats({"h0": self.collector(3),
                                   "h1": self.collector(5)})
        assert merged.nodes["/host/h0/g0/l0"].dispatches == 3
        assert merged.nodes["/host/h1/g0/l0"].dispatches == 5

    def test_roots_roll_up(self):
        merged = merge_schedstats({"h0": self.collector(3),
                                   "h1": self.collector(5)})
        assert merged.nodes["/"].dispatches == 8
        assert merged.nodes["/host"].dispatches == 8
        assert merged.nodes["/host/h0"].dispatches == 3
        assert merged.events_seen == 8

    def test_roundtrip_through_dict(self):
        stats = self.collector(4)
        again = SchedStat.from_dict(stats.to_dict())
        assert again.to_dict() == stats.to_dict()


# --- end-to-end runner + CLI -------------------------------------------------


class TestRunnerEndToEnd:
    def test_mini_run_completes_all_tenants(self):
        result = run_cluster(small_spec(), seed=3)
        counters = result.control["counters"]
        assert counters["admitted"] == 8
        assert counters["completions"] == 8
        assert result.control["live_tenants"] == 0
        assert result.digests() == run_cluster(small_spec(), seed=3).digests()

    def test_seed_changes_every_artifact(self):
        first = run_cluster(small_spec(), seed=3).digests()
        second = run_cluster(small_spec(), seed=4).digests()
        assert first["trace"] != second["trace"]
        assert first["placement"] != second["placement"]

    def test_artifacts_written(self, tmp_path):
        result = run_cluster(small_spec(), seed=3)
        paths = result.write(str(tmp_path))
        for path in paths.values():
            assert os.path.exists(path)
        report = json.loads(
            (tmp_path / "report.json").read_text())
        assert report["digests"] == result.digests()
        lines = (tmp_path / "cluster-trace.jsonl").read_text().splitlines()
        assert len(lines) == len(result.log)

    def test_scenarios_registry(self):
        assert set(cluster_scenarios()) == {
            "cluster_mini", "cluster_storm", "tenant_rebalance"}
        spec = CLUSTER_SCENARIOS["cluster_storm"].build(True)
        assert len(spec.hosts) >= 16 and spec.tenants >= 50_000

    def test_cli_run_and_report(self, tmp_path, capsys):
        from repro.cluster.cli import main
        out = str(tmp_path / "run")
        assert main(["run", "--scenario", "cluster_mini", "--quick",
                     "--seed", "9", "--out", out]) == 0
        assert main(["report", out]) == 0
        captured = capsys.readouterr().out
        assert "cluster cluster_mini" in captured
        assert "merged cluster schedstat" in captured

    def test_cli_report_missing_dir(self, tmp_path, capsys):
        from repro.cluster.cli import main
        assert main(["report", str(tmp_path / "nope")]) == 2

    def test_schedstat_text_has_host_lanes(self):
        result = run_cluster(small_spec(), seed=3)
        assert "/host/a" in result.schedstat_text
        assert "/host/b" in result.schedstat_text
