"""Analysis: stats, fairness, FC server, delay bounds."""

import pytest

from repro.analysis.bounds import (
    expected_arrival_times,
    scfq_delay_penalty,
    sfq_completion_bounds,
    wfq_delay_penalty,
)
from repro.analysis.fairness import (
    max_normalized_service_gap,
    normalized_gap_series,
    sfq_fairness_bound,
    throughput_ratio,
)
from repro.analysis.fc_server import (
    FCParams,
    check_fc,
    ebf_tail,
    fc_params_for_periodic_interrupts,
    fit_fc_params,
    sfq_throughput_params,
)
from repro.analysis.stats import (
    coefficient_of_variation,
    jain_index,
    mean,
    percentile,
    stdev,
)
from repro.units import MS, SECOND

KILO = 1000


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0

    def test_stdev(self):
        assert stdev([2, 2, 2]) == 0
        assert stdev([1]) == 0
        assert stdev([0, 2]) == 1.0

    def test_cov(self):
        assert coefficient_of_variation([2, 2]) == 0
        assert coefficient_of_variation([]) == 0
        assert coefficient_of_variation([0, 2]) == 1.0

    def test_jain_index_bounds(self):
        assert jain_index([5, 5, 5]) == pytest.approx(1.0)
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)
        assert jain_index([]) == 1.0

    def test_percentile(self):
        values = list(range(101))
        assert percentile(values, 50) == 50
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 100
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestFairnessHelpers:
    def test_bound_formula(self):
        assert sfq_fairness_bound(10, 1, 10, 2) == 15.0

    def test_gap_on_simulated_run(self):
        from tests.conftest import Harness
        harness = Harness()
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=2)
        harness.machine.run_until(2 * SECOND)
        gap = max_normalized_service_gap(harness.recorder, a, b, 2 * SECOND)
        # quantum 10 ms = 10 KILO work at the harness capacity
        bound = sfq_fairness_bound(10 * KILO, 1, 10 * KILO, 2)
        assert 0 < gap <= bound

    def test_gap_series_nonempty(self):
        from tests.conftest import Harness
        harness = Harness()
        a = harness.spawn_dhrystone("a")
        b = harness.spawn_dhrystone("b")
        harness.machine.run_until(SECOND)
        series = normalized_gap_series(harness.recorder, a, b, SECOND)
        assert series
        assert series == sorted(series, key=lambda p: p[0])

    def test_throughput_ratio(self):
        from tests.conftest import Harness
        harness = Harness()
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=1)
        harness.machine.run_until(SECOND)
        assert throughput_ratio(harness.recorder, a, b, 0,
                                SECOND) == pytest.approx(1.0, rel=0.03)


class TestFcServer:
    def test_periodic_interrupt_params(self):
        params = fc_params_for_periodic_interrupts(1_000_000, 10 * MS, 2 * MS)
        assert params.rate_ips == pytest.approx(800_000)
        assert params.burstiness == pytest.approx(2000)

    def test_invalid_service(self):
        with pytest.raises(ValueError):
            fc_params_for_periodic_interrupts(1_000_000, 10, 10)

    def test_fit_constant_rate_curve(self):
        # exactly 1000 inst per ms: zero burstiness at rate 1e6
        points = [(t * MS, t * 1000.0) for t in range(100)]
        params = fit_fc_params(points, 1_000_000)
        assert params.burstiness == pytest.approx(0.0, abs=1e-6)

    def test_fit_detects_stall(self):
        # 10 ms stall in an otherwise constant-rate curve
        points = [(t * MS, min(t, 50) * 1000.0 + max(0, t - 60) * 1000.0)
                  for t in range(100)]
        params = fit_fc_params(points, 1_000_000)
        assert params.burstiness == pytest.approx(10_000, rel=0.01)

    def test_fit_empty(self):
        assert fit_fc_params([], 100).burstiness == 0.0

    def test_check_fc(self):
        points = [(t * MS, t * 1000.0) for t in range(100)]
        assert check_fc(points, FCParams(1_000_000, 1.0))
        assert not check_fc(points, FCParams(2_000_000, 1.0))

    def test_throughput_params_formula(self):
        cpu = FCParams(1_000_000, 5000)
        out = sfq_throughput_params(cpu, weight=200_000,
                                    all_weights=[300_000, 500_000],
                                    max_quanta=[10_000, 10_000],
                                    own_max_quantum=10_000)
        assert out.rate_ips == 200_000
        expected = 0.2 * (5000 + 20_000) + 10_000
        assert out.burstiness == pytest.approx(expected)

    def test_throughput_params_validation(self):
        cpu = FCParams(1_000_000, 0)
        with pytest.raises(ValueError):
            sfq_throughput_params(cpu, 0, [], [], 0)
        with pytest.raises(ValueError):
            sfq_throughput_params(cpu, 1, [1], [], 0)

    def test_ebf_tail_fractions(self):
        points = [(0, 0.0), (MS, 1000.0), (2 * MS, 1000.0), (3 * MS, 2000.0)]
        tail = ebf_tail(points, 1_000_000, [500.0])
        # one of three intervals has deficit 1000 > 500
        assert tail == [(500.0, pytest.approx(1 / 3))]


class TestDelayBounds:
    def test_eat_recursion(self):
        # jobs of 100 inst at rate 1000 inst/s: each takes 0.1 s
        arrivals = [0, 0, SECOND]
        lengths = [100, 100, 100]
        eats = expected_arrival_times(arrivals, lengths, 1000)
        assert eats[0] == 0
        assert eats[1] == pytest.approx(0.1 * SECOND)
        assert eats[2] == SECOND  # arrival dominates

    def test_eat_validation(self):
        with pytest.raises(ValueError):
            expected_arrival_times([0], [1, 2], 10)
        with pytest.raises(ValueError):
            expected_arrival_times([0], [1], 0)

    def test_completion_bounds_structure(self):
        bounds = sfq_completion_bounds(
            arrivals=[0, 100 * MS], lengths=[1000, 1000], rate_ips=10_000,
            other_max_quanta=[5000, 5000], capacity_ips=100_000,
            burstiness=1000)
        cross = (10_000 + 1000) * SECOND / 100_000
        own = 1000 * SECOND / 100_000
        assert bounds[0] == pytest.approx(cross + own)
        assert bounds[1] == pytest.approx(100 * MS + cross + own)

    def test_wfq_and_scfq_penalties(self):
        assert wfq_delay_penalty(10, 1000, 1_000_000) == \
            pytest.approx(10 * MS)
        assert scfq_delay_penalty(10, 1000, 1_000_000) == \
            pytest.approx(9 * MS)
        assert scfq_delay_penalty(0, 1000, 1_000_000) == 0
