"""Tests for the schedlint static checker (repro.devtools.schedlint).

Fixture convention (tests/fixtures/schedlint/):

* ``slNNN_bad*.py`` must trigger at least one finding with code SLNNN
  (and the CLI must exit non-zero on it);
* ``*_ok.py`` must lint completely clean.

Fixtures carry a ``# schedlint-fixture-module:`` directive so that the
path-scoped rules (SL003/SL004) treat them as if they lived inside the
``repro`` package.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.schedlint import (
    Finding,
    all_rules,
    check_file,
    check_paths,
    check_source,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "schedlint"
SRC = REPO_ROOT / "src"

BAD_FIXTURES = sorted(FIXTURES.glob("sl*_bad*.py"))
OK_FIXTURES = sorted(FIXTURES.glob("*_ok.py"))


def _expected_code(path):
    """Extract the rule code a bad fixture is expected to trigger."""
    match = re.match(r"(sl\d+)_bad", path.stem)
    assert match, f"bad fixture {path.name} does not follow slNNN_bad*.py"
    return match.group(1).upper()


def _run_cli(*args):
    """Run ``python -m repro.devtools.schedlint`` as a subprocess."""
    return subprocess.run(
        [sys.executable, "-m", "repro.devtools.schedlint", *args],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


class TestFixtures:
    """Each rule has fixtures that trigger it and fixtures that don't."""

    def test_fixture_inventory(self):
        """Every rule code has at least one bad and one ok fixture."""
        codes = {rule.code for rule in all_rules()}
        bad_codes = {_expected_code(p) for p in BAD_FIXTURES}
        assert bad_codes == codes
        ok_stems = {p.stem for p in OK_FIXTURES}
        for code in codes:
            assert f"{code.lower()}_ok" in ok_stems

    @pytest.mark.parametrize("path", BAD_FIXTURES, ids=lambda p: p.name)
    def test_bad_fixture_triggers_its_code(self, path):
        findings = check_file(path)
        codes = {f.code for f in findings}
        expected = _expected_code(path)
        assert expected in codes, f"{path.name} produced {codes or 'nothing'}"
        # Bad fixtures are targeted: they must not trip unrelated rules.
        assert codes == {expected}, f"{path.name} also tripped {codes - {expected}}"

    @pytest.mark.parametrize("path", OK_FIXTURES, ids=lambda p: p.name)
    def test_ok_fixture_is_clean(self, path):
        findings = check_file(path)
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_findings_carry_location_and_message(self):
        findings = check_file(FIXTURES / "sl001_bad.py")
        assert findings
        for finding in findings:
            assert isinstance(finding, Finding)
            assert finding.line > 0
            assert finding.code == "SL001"
            rendered = str(finding)
            assert f":{finding.line}:" in rendered
            assert "SL001" in rendered


class TestScoping:
    """Path-scoped rules only fire inside their declared module scope."""

    def test_sl003_ignores_modules_outside_dispatch_scope(self):
        source = "items = {1, 2}\nfor x in items:\n    print(x)\n"
        in_scope = check_source(source, "x.py", module="repro/schedulers/x.py")
        out_of_scope = check_source(source, "x.py", module="repro/workloads/x.py")
        assert any(f.code == "SL003" for f in in_scope)
        assert not any(f.code == "SL003" for f in out_of_scope)

    def test_sl004_exempts_float_baseline_module(self):
        source = "RATE = 1.5\n"
        in_scope = check_source(source, "x.py", module="repro/core/x.py")
        exempt = check_source(
            source, "x.py", module="repro/schedulers/fairqueue.py"
        )
        assert any(f.code == "SL004" for f in in_scope)
        assert not any(f.code == "SL004" for f in exempt)

    def test_sl002_allowed_inside_rng_home(self):
        source = "import random\nvalue = random.random()\n"
        outside = check_source(source, "x.py", module="repro/workloads/x.py")
        inside = check_source(source, "rng.py", module="repro/sim/rng.py")
        assert any(f.code == "SL002" for f in outside)
        assert not any(f.code == "SL002" for f in inside)


class TestSuppressions:
    def test_inline_disable_silences_one_line(self):
        noisy = "import time\nt = time.time()\n"
        quiet = "import time\nt = time.time()  # schedlint: disable=SL001\n"
        assert any(f.code == "SL001" for f in check_source(noisy, "x.py"))
        assert check_source(quiet, "x.py") == []

    def test_inline_disable_all(self):
        source = "import time\nt = time.time()  # schedlint: disable=all\n"
        assert check_source(source, "x.py") == []

    def test_file_level_disable(self):
        source = (
            "# schedlint: disable-file=SL001\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.monotonic()\n"
        )
        assert check_source(source, "x.py") == []

    def test_disable_only_silences_named_codes(self):
        source = (
            "import time, random\n"
            "t = time.time()  # schedlint: disable=SL002\n"
        )
        codes = {f.code for f in check_source(source, "x.py")}
        assert codes == {"SL001"}

    def test_multiline_statement_suppressed_from_any_line(self):
        """A suppression on the closing line of a multi-line call (where
        editors and formatters put trailing comments) silences findings
        anchored to earlier lines of the same statement."""
        source = (
            "import time\n"
            "t = max(\n"
            "    time.time(),\n"
            "    0.0,\n"
            ")  # schedlint: disable=SL001\n"
        )
        assert check_source(source, "x.py") == []

    def test_backslash_continuation_suppressed(self):
        source = (
            "import time\n"
            "t = 1.0 + \\\n"
            "    time.time()  # schedlint: disable=SL001\n"
        )
        assert check_source(source, "x.py") == []

    def test_suppression_scope_does_not_leak_to_next_statement(self):
        """The statement span ends where the statement does: a disable on
        one statement must not silence the next one."""
        source = (
            "import time\n"
            "a = time.time()  # schedlint: disable=SL001\n"
            "b = time.time()\n"
        )
        findings = check_source(source, "x.py")
        assert [f.line for f in findings] == [3]

    def test_noqa_bare_and_with_codes(self):
        bare = "import time\nt = time.time()  # noqa\n"
        coded = "import time\nt = time.time()  # noqa: SL001\n"
        wrong = "import time\nt = time.time()  # noqa: SL004\n"
        assert check_source(bare, "x.py") == []
        assert check_source(coded, "x.py") == []
        assert any(f.code == "SL001" for f in check_source(wrong, "x.py"))

    def test_schedflow_spelling_accepted(self):
        source = "import time\nt = time.time()  # schedflow: disable=SL001\n"
        assert check_source(source, "x.py") == []


class TestRealTree:
    def test_src_repro_lints_clean(self):
        """The flagship guarantee: the real package has zero findings."""
        findings = check_paths([SRC / "repro"])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_rule_registry_is_stable(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == ["SL001", "SL002", "SL003", "SL004", "SL005",
                         "SL006", "SL007"]
        assert codes == sorted(codes)


class TestCli:
    def test_cli_clean_tree_exits_zero(self):
        result = _run_cli("src/repro/sim")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    @pytest.mark.parametrize("path", BAD_FIXTURES, ids=lambda p: p.name)
    def test_cli_bad_fixture_exits_nonzero(self, path):
        result = _run_cli(str(path.relative_to(REPO_ROOT)))
        assert result.returncode == 1, result.stdout + result.stderr
        assert _expected_code(path) in result.stdout

    def test_cli_select_filters_rules(self):
        path = FIXTURES / "sl001_bad.py"
        result = _run_cli("--select", "SL002", str(path.relative_to(REPO_ROOT)))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_cli_list_rules(self):
        result = _run_cli("--list-rules")
        assert result.returncode == 0
        for code in ("SL001", "SL002", "SL003", "SL004", "SL005", "SL006"):
            assert code in result.stdout

    def test_cli_missing_path_exits_two(self):
        result = _run_cli("no/such/path.py")
        assert result.returncode == 2

    def test_cli_internal_crash_exits_two_not_one(self, monkeypatch, capsys):
        """A crashing rule is an infrastructure failure (2), never to be
        confused with 'the tree has findings' (1)."""
        from repro.devtools.schedlint import cli

        def boom(paths, rules=None):
            raise RuntimeError("rule exploded")

        monkeypatch.setattr(cli, "check_paths", boom)
        status = cli.main(["src/repro/sim"])
        assert status == 2
        assert "internal failure" in capsys.readouterr().err
