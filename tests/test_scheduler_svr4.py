"""The SVR4/Solaris time-sharing scheduler."""

import pytest

from repro.errors import SchedulingError
from repro.schedulers.svr4 import (
    DEFAULT_USER_PRIORITY,
    TS_LEVELS,
    DispatchRow,
    Svr4TimeSharing,
    default_dispatch_table,
)
from repro.threads.segments import Compute, SegmentListWorkload, SleepFor
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.units import MS, SECOND

from tests.conftest import FlatHarness

KILO = 1000


def make_thread(name="t", priority=None):
    params = {} if priority is None else {"priority": priority}
    return SimThread(name, SegmentListWorkload([]), params=params)


class TestDispatchTable:
    def test_sixty_levels(self):
        assert len(default_dispatch_table()) == TS_LEVELS

    def test_quanta_shrink_with_priority(self):
        table = default_dispatch_table()
        assert table[0].quantum == 200 * MS
        assert table[59].quantum == 50 * MS
        assert all(table[i].quantum >= table[i + 9].quantum
                   for i in range(0, 50, 10))

    def test_expiry_demotes(self):
        table = default_dispatch_table()
        assert table[29].tqexp == 19
        assert table[5].tqexp == 0

    def test_sleep_boosts(self):
        table = default_dispatch_table()
        assert table[29].slpret == 54
        assert table[59].slpret == 59

    def test_aging_targets_fifties(self):
        table = default_dispatch_table()
        assert 50 <= table[0].lwait < TS_LEVELS

    def test_wrong_table_size_rejected(self):
        with pytest.raises(SchedulingError):
            Svr4TimeSharing(table=[DispatchRow(MS, 0, 0, 0, 0)])


class TestPriorityMechanics:
    def test_default_user_priority(self):
        sched = Svr4TimeSharing()
        t = make_thread()
        sched.add_thread(t)
        assert sched.priority_of(t) == DEFAULT_USER_PRIORITY

    def test_explicit_priority(self):
        sched = Svr4TimeSharing()
        t = make_thread(priority=55)
        sched.add_thread(t)
        assert sched.priority_of(t) == 55

    def test_invalid_priority_rejected(self):
        sched = Svr4TimeSharing()
        with pytest.raises(SchedulingError):
            sched.add_thread(make_thread(priority=60))

    def test_higher_priority_picked_first(self):
        sched = Svr4TimeSharing()
        lo, hi = make_thread("lo", 10), make_thread("hi", 50)
        for t in (lo, hi):
            sched.add_thread(t)
            sched.on_runnable(t, 0)
        assert sched.pick_next(0) is hi

    def test_quantum_expiry_demotes(self):
        sched = Svr4TimeSharing()
        t = make_thread(priority=29)
        t.transition(ThreadState.RUNNABLE)
        sched.add_thread(t)
        sched.on_runnable(t, 0)
        sched.pick_next(0)
        sched.charge(t, 100, 0)  # still runnable: quantum expired
        assert sched.priority_of(t) == 19

    def test_sleep_return_boosts(self):
        sched = Svr4TimeSharing()
        t = make_thread(priority=29)
        sched.add_thread(t)
        sched.on_runnable(t, 0)
        sched.on_block(t, 0)
        sched.on_runnable(t, 0)
        assert sched.priority_of(t) == 54

    def test_aging_boosts_long_waiters(self):
        sched = Svr4TimeSharing()
        waiter = make_thread("w", 10)
        sched.add_thread(waiter)
        sched.on_runnable(waiter, 0)
        # after > 1 s, the once-per-second scan boosts it
        sched.pick_next(SECOND + 1)
        assert sched.priority_of(waiter) >= 50

    def test_quantum_follows_priority(self):
        sched = Svr4TimeSharing()
        t = make_thread(priority=0)
        sched.add_thread(t)
        assert sched.quantum_for(t) == 200 * MS

    def test_remove_runnable(self):
        sched = Svr4TimeSharing()
        t = make_thread()
        sched.add_thread(t)
        sched.on_runnable(t, 0)
        sched.remove_thread(t)
        assert not sched.has_runnable()


class TestOnMachine:
    def test_interactive_thread_dominates_cpu_hog(self):
        harness = FlatHarness(Svr4TimeSharing())
        hog = harness.spawn_dhrystone("hog", params={"priority": 29})
        inter = harness.spawn_segments(
            "inter", [seg for __ in range(20)
                      for seg in (Compute(KILO), SleepFor(5 * MS))],
            params={"priority": 29})
        harness.machine.run_until(SECOND)
        # the interactive thread's sleep boosts let it run promptly: its
        # response time stays near 1 ms of work per burst
        from repro.trace.metrics import response_times
        times = response_times(harness.recorder, inter)
        assert times
        assert max(times) <= 5 * MS

    def test_cpu_hogs_share_long_run(self):
        harness = FlatHarness(Svr4TimeSharing())
        a = harness.spawn_dhrystone("a")
        b = harness.spawn_dhrystone("b")
        harness.machine.run_until(10 * SECOND)
        ratio = a.stats.work_done / b.stats.work_done
        assert 0.7 < ratio < 1.4  # roughly equal, but not SFQ-exact
