"""Workload generators: Dhrystone, MPEG, periodic, interactive, bursty."""

import pytest

from repro.analysis.stats import coefficient_of_variation, mean
from repro.errors import WorkloadError
from repro.sim.rng import make_rng
from repro.threads.segments import Compute, Exit, SleepFor, SleepUntil
from repro.threads.thread import SimThread
from repro.units import MS, SECOND
from repro.workloads.bursty import BurstyWorkload
from repro.workloads.dhrystone import DhrystoneWorkload, loops_completed
from repro.workloads.interactive import InteractiveWorkload
from repro.workloads.mpeg import MpegDecodeWorkload, MpegVbrModel
from repro.workloads.periodic import PeriodicWorkload

from tests.conftest import FlatHarness
from repro.schedulers.fifo import FifoScheduler

KILO = 1000


def dummy_thread(workload):
    return SimThread("t", workload)


class TestDhrystone:
    def test_emits_compute_batches(self):
        wl = DhrystoneWorkload(loop_cost=300, batch=100)
        thread = dummy_thread(wl)
        seg = wl.next_segment(0, thread)
        assert isinstance(seg, Compute)
        assert seg.work == 30_000

    def test_loops_from_work(self):
        wl = DhrystoneWorkload(loop_cost=300)
        thread = dummy_thread(wl)
        thread.stats.work_done = 3100
        assert loops_completed(thread) == 10

    def test_loops_requires_dhrystone(self):
        thread = dummy_thread(BurstyWorkload(1, 1))
        with pytest.raises(WorkloadError):
            loops_completed(thread)

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            DhrystoneWorkload(loop_cost=0)


class TestMpegModel:
    def test_deterministic_given_seed(self):
        assert MpegVbrModel(seed=4).frame_costs(50) == \
            MpegVbrModel(seed=4).frame_costs(50)

    def test_seeds_differ(self):
        assert MpegVbrModel(seed=4).frame_costs(50) != \
            MpegVbrModel(seed=5).frame_costs(50)

    def test_mean_cost_calibration(self):
        model = MpegVbrModel(seed=1, mean_cost=2_000_000)
        costs = model.frame_costs(5000)
        assert mean(costs) == pytest.approx(2_000_000, rel=0.15)

    def test_frame_type_ordering(self):
        model = MpegVbrModel(seed=2)
        costs = model.frame_costs(2400)
        groups = {"I": [], "P": [], "B": []}
        for index, cost in enumerate(costs):
            groups[model.frame_type(index)].append(cost)
        assert mean(groups["I"]) > mean(groups["P"]) > mean(groups["B"])

    def test_two_timescale_variability(self):
        model = MpegVbrModel(seed=3)
        costs = model.frame_costs(3000)
        frame_cov = coefficient_of_variation(costs)
        per_second = [mean(costs[i:i + 30]) for i in range(0, 2970, 30)]
        scene_cov = coefficient_of_variation(per_second)
        assert frame_cov > 0.3       # frame-to-frame (GOP) variation
        assert scene_cov > 0.05      # scene-to-scene variation
        assert scene_cov < frame_cov

    def test_gop_validation(self):
        with pytest.raises(WorkloadError):
            MpegVbrModel(gop="IXP")

    def test_frame_period(self):
        assert MpegVbrModel(frame_rate=30).frame_period == SECOND // 30


class TestMpegDecodeWorkload:
    def test_unpaced_decodes_back_to_back(self):
        wl = MpegDecodeWorkload([100, 200, 300])
        thread = dummy_thread(wl)
        segs = [wl.next_segment(0, thread) for __ in range(4)]
        assert [s.work for s in segs[:3]] == [100, 200, 300]
        assert isinstance(segs[3], Exit)
        assert wl.frames_decoded == 3
        assert thread.stats.markers["frames"] == 3

    def test_frame_count_limit(self):
        model = MpegVbrModel(seed=1)
        wl = MpegDecodeWorkload(model, frame_count=2)
        thread = dummy_thread(wl)
        assert isinstance(wl.next_segment(0, thread), Compute)
        assert isinstance(wl.next_segment(0, thread), Compute)
        assert isinstance(wl.next_segment(0, thread), Exit)

    def test_frame_count_exceeding_list_rejected(self):
        with pytest.raises(WorkloadError):
            MpegDecodeWorkload([1, 2], frame_count=3)

    def test_paced_sleeps_when_ahead(self):
        wl = MpegDecodeWorkload([100] * 100, paced=True, lookahead=2,
                                frame_period=33 * MS)
        thread = dummy_thread(wl)
        segs = []
        now = 0
        for __ in range(4):
            seg = wl.next_segment(now, thread)
            segs.append(seg)
            now += 1 * MS
        # after decoding 2 frames at t ~ 0, it is lookahead ahead: sleeps
        assert isinstance(segs[0], Compute)
        assert isinstance(segs[1], Compute)
        assert isinstance(segs[2], SleepUntil)

    def test_paced_on_machine_tracks_display_rate(self):
        harness = FlatHarness(FifoScheduler(), capacity_ips=1_000_000)
        model_costs = [1 * KILO] * 400  # 1 ms decode per 33 ms frame
        wl = MpegDecodeWorkload(model_costs, paced=True,
                                frame_period=33 * MS)
        thread = SimThread("player", wl)
        harness.machine.spawn(thread)
        harness.machine.run_until(2 * SECOND)
        # ~30 fps for 2 s plus the lookahead buffer
        assert thread.stats.markers["frames"] == pytest.approx(64, abs=6)

    def test_reset(self):
        wl = MpegDecodeWorkload([100, 200])
        thread = dummy_thread(wl)
        wl.next_segment(0, thread)
        wl.reset()
        assert wl.frames_decoded == 0


class TestPeriodic:
    def test_release_sleep_compute_cycle(self):
        wl = PeriodicWorkload(period=100 * MS, cost=5 * KILO,
                              offset=10 * MS)
        thread = dummy_thread(wl)
        seg = wl.next_segment(0, thread)
        assert isinstance(seg, SleepUntil)
        assert seg.wakeup == 10 * MS
        seg = wl.next_segment(10 * MS, thread)
        assert isinstance(seg, Compute)
        seg = wl.next_segment(15 * MS, thread)
        assert isinstance(seg, SleepUntil)
        assert seg.wakeup == 110 * MS

    def test_releases_recorded(self):
        wl = PeriodicWorkload(period=100 * MS, cost=KILO)
        thread = dummy_thread(wl)
        wl.next_segment(0, thread)  # immediate release at offset 0
        assert wl.releases == [0]

    def test_deadline_is_next_release(self):
        wl = PeriodicWorkload(period=100 * MS, cost=KILO, offset=50 * MS)
        assert wl.deadline(0) == 150 * MS
        assert wl.deadline(3) == 450 * MS

    def test_rounds_limit(self):
        wl = PeriodicWorkload(period=10 * MS, cost=KILO, rounds=2)
        thread = dummy_thread(wl)
        segments = [wl.next_segment(i * 10 * MS, thread) for i in range(6)]
        assert any(isinstance(s, Exit) for s in segments)

    def test_callable_cost(self):
        wl = PeriodicWorkload(period=10 * MS, cost=lambda k: (k + 1) * 100)
        thread = dummy_thread(wl)
        seg = wl.next_segment(0, thread)
        assert seg.work == 100

    def test_overrun_computes_immediately(self):
        wl = PeriodicWorkload(period=10 * MS, cost=KILO)
        thread = dummy_thread(wl)
        wl.next_segment(0, thread)          # round 0 at release 0
        seg = wl.next_segment(25 * MS, thread)  # round 1 released at 10 ms
        assert isinstance(seg, Compute)     # overrun: no sleep

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            PeriodicWorkload(period=0, cost=1)
        with pytest.raises(WorkloadError):
            PeriodicWorkload(period=10, cost=0)


class TestInteractiveAndBursty:
    def test_interactive_alternates(self):
        wl = InteractiveWorkload(burst_work=KILO, think_time=10 * MS,
                                 rng=make_rng(1, "i"))
        thread = dummy_thread(wl)
        assert isinstance(wl.next_segment(0, thread), Compute)
        assert isinstance(wl.next_segment(0, thread), SleepFor)
        assert isinstance(wl.next_segment(0, thread), Compute)

    def test_interactive_limit(self):
        wl = InteractiveWorkload(burst_work=KILO, think_time=MS,
                                 rng=make_rng(1, "i"), interactions=1)
        thread = dummy_thread(wl)
        wl.next_segment(0, thread)
        wl.next_segment(0, thread)
        assert isinstance(wl.next_segment(0, thread), Exit)

    def test_bursty_alternates(self):
        wl = BurstyWorkload(mean_busy_work=KILO, mean_idle_time=MS,
                            rng=make_rng(2, "b"))
        thread = dummy_thread(wl)
        assert isinstance(wl.next_segment(0, thread), Compute)
        assert isinstance(wl.next_segment(0, thread), SleepFor)

    def test_bursty_mean_calibration(self):
        wl = BurstyWorkload(mean_busy_work=10 * KILO, mean_idle_time=MS,
                            rng=make_rng(3, "b"))
        thread = dummy_thread(wl)
        works = []
        for __ in range(600):
            works.append(wl.next_segment(0, thread).work)
            wl.next_segment(0, thread)
        assert mean(works) == pytest.approx(10 * KILO, rel=0.15)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            InteractiveWorkload(0, 1)
        with pytest.raises(WorkloadError):
            BurstyWorkload(1, 0)
