"""Semaphores and wait queues on the machine."""

import pytest

from repro.errors import SchedulingError
from repro.sync.semaphore import (
    Down,
    Notify,
    SimSemaphore,
    Up,
    WaitOn,
    WaitQueue,
)
from repro.threads.segments import Compute, SegmentListWorkload, SleepFor
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.units import MS, SECOND

KILO = 1000


def make_thread(name="t"):
    return SimThread(name, SegmentListWorkload([]))


class TestSemaphoreUnit:
    def test_initial_count(self):
        sem = SimSemaphore("s", initial=2)
        t = make_thread()
        assert sem.try_down(t)
        assert sem.try_down(t)
        assert not sem.try_down(t)

    def test_negative_initial_rejected(self):
        with pytest.raises(SchedulingError):
            SimSemaphore(initial=-1)

    def test_up_grants_to_waiter_directly(self):
        sem = SimSemaphore("s", initial=0)
        waiter = make_thread("w")
        sem.enqueue_waiter(waiter)
        assert sem.up() is waiter
        assert sem.count == 0  # handed over, not banked

    def test_up_banks_without_waiters(self):
        sem = SimSemaphore("s", initial=0)
        assert sem.up() is None
        assert sem.count == 1

    def test_fifo_grant_order(self):
        sem = SimSemaphore("s")
        a, b = make_thread("a"), make_thread("b")
        sem.enqueue_waiter(a)
        sem.enqueue_waiter(b)
        assert sem.up() is a
        assert sem.up() is b

    def test_drop_waiter(self):
        sem = SimSemaphore("s")
        a = make_thread("a")
        sem.enqueue_waiter(a)
        sem.drop_waiter(a)
        assert sem.up() is None


class TestWaitQueueUnit:
    def test_notify_count(self):
        wq = WaitQueue("q")
        threads = [make_thread(str(i)) for i in range(3)]
        for t in threads:
            wq.enqueue_waiter(t)
        assert wq.notify(2) == threads[:2]
        assert wq.notify_all() == threads[2:]

    def test_notify_empty(self):
        assert WaitQueue("q").notify() == []

    def test_notify_segment_validates_count(self):
        with pytest.raises(SchedulingError):
            Notify(WaitQueue("q"), 0)


class TestSemaphoreOnMachine:
    def test_down_blocks_until_up(self, harness):
        sem = SimSemaphore("s", initial=0)
        consumer = harness.spawn_segments(
            "consumer", [Down(sem), Compute(KILO)])
        producer = harness.spawn_segments(
            "producer", [Compute(5 * KILO), Up(sem)])
        harness.machine.run_until(SECOND)
        assert consumer.state is ThreadState.EXITED
        # consumer could only start after the producer's Up at 5 ms
        assert consumer.stats.exited_at == 6 * MS

    def test_banked_units_pass_straight_through(self, harness):
        sem = SimSemaphore("s", initial=3)
        t = harness.spawn_segments(
            "t", [Down(sem), Down(sem), Down(sem), Compute(KILO)])
        harness.machine.run_until(SECOND)
        assert t.stats.exited_at == 1 * MS

    def test_bounded_buffer_pipeline(self, harness):
        """Producer/consumer through a 2-slot bounded buffer."""
        empty = SimSemaphore("empty", initial=2)
        full = SimSemaphore("full", initial=0)
        items = 5
        producer_segments = []
        consumer_segments = []
        for __ in range(items):
            producer_segments += [Down(empty), Compute(2 * KILO), Up(full)]
            consumer_segments += [Down(full), Compute(4 * KILO), Up(empty)]
        producer = harness.spawn_segments("producer", producer_segments)
        consumer = harness.spawn_segments("consumer", consumer_segments)
        harness.machine.run_until(SECOND)
        assert producer.state is ThreadState.EXITED
        assert consumer.state is ThreadState.EXITED
        # one CPU serializes the stages: total work = 5*(2+4) ms, with the
        # semaphores only ordering it (no deadlock, no idle gaps)
        assert consumer.stats.exited_at == 30 * MS
        assert harness.machine.stats.idle_time(harness.engine.now) == \
            harness.engine.now - 30 * MS
        assert empty.count == 2
        assert full.count == 0

    def test_waiton_notify(self, harness):
        wq = WaitQueue("barrier")
        waiter = harness.spawn_segments(
            "waiter", [WaitOn(wq), Compute(KILO)])
        notifier = harness.spawn_segments(
            "notifier", [SleepFor(10 * MS), Notify(wq)])
        harness.machine.run_until(SECOND)
        assert waiter.state is ThreadState.EXITED
        assert waiter.stats.exited_at == 11 * MS

    def test_notify_wakes_multiple(self, harness):
        wq = WaitQueue("barrier")
        waiters = [
            harness.spawn_segments("w%d" % i, [WaitOn(wq), Compute(KILO)])
            for i in range(3)
        ]
        harness.spawn_segments(
            "boss", [SleepFor(5 * MS), Notify(wq, count=3)])
        harness.machine.run_until(SECOND)
        assert all(w.state is ThreadState.EXITED for w in waiters)

    def test_unnotified_waiter_stays_asleep(self, harness):
        wq = WaitQueue("never")
        waiter = harness.spawn_segments("w", [WaitOn(wq), Compute(KILO)])
        harness.machine.run_until(SECOND)
        assert waiter.state is ThreadState.SLEEPING
        assert waiter.stats.work_done == 0
