"""Tests for seamcheck, the SF5xx cross-language engine-coherence rules.

Fixture convention (tests/fixtures/schedflow/seam/):

* ``sfNNN_bad.c`` must trigger SFNNN — and *only* SFNNN — when analyzed
  together with its optional ``sfNNN_py.py`` Python twin;
* ``sfNNN_ok.c`` (with the same twin) must analyze completely clean;
* every line that must be flagged carries an ``EXPECT-SFNNN`` marker
  comment, and the finding set must equal the marker set exactly.

The suite also seeds one-line skews into the *real* ``_sfqc.c`` and
asserts each rule catches its class of seam drift statically.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.schedflow import RULES, analyze_paths, analyze_project
from repro.devtools.schedflow.parjobs import analyze_paths_jobs
from repro.devtools.schedflow.project import ProjectIndex

REPO_ROOT = Path(__file__).resolve().parent.parent
SEAM = REPO_ROOT / "tests" / "fixtures" / "schedflow" / "seam"
SRC = REPO_ROOT / "src"
SFQC = SRC / "repro" / "core" / "_sfqc.c"

SEAM_RULES = sorted(code for code in RULES if code.startswith("SF5"))

_MARKER_RE = re.compile(r"EXPECT-(SF\d+)")


def _pair_paths(code):
    """The analysis input for one fixture pair: the C file + any twin."""
    number = code[2:].lower()
    twin = SEAM / f"sf{number}_py.py"
    extra = [str(twin)] if twin.exists() else []
    return {
        "bad": [str(SEAM / f"sf{number}_bad.c")] + extra,
        "ok": [str(SEAM / f"sf{number}_ok.c")] + extra,
    }


def _markers(paths):
    """(filename, line, code) triples for every EXPECT marker."""
    expected = set()
    for path in paths:
        for lineno, line in enumerate(
                Path(path).read_text().splitlines(), start=1):
            for match in _MARKER_RE.finditer(line):
                expected.add((Path(path).name, lineno, match.group(1)))
    return expected


class TestSeamFixtures:
    def test_fixture_inventory(self):
        """Every SF5xx rule has a bad/ok C fixture pair in seam/."""
        bad = {f"SF{p.stem[2:5]}" for p in SEAM.glob("sf*_bad.c")}
        ok = {f"SF{p.stem[2:5]}" for p in SEAM.glob("sf*_ok.c")}
        assert bad == set(SEAM_RULES)
        assert ok == set(SEAM_RULES)

    @pytest.mark.parametrize("code", SEAM_RULES)
    def test_bad_fixture_triggers_exactly_at_markers(self, code):
        paths = _pair_paths(code)["bad"]
        findings = analyze_paths(paths)
        got = {(Path(f.path).name, f.line, f.code) for f in findings}
        expected = _markers(paths)
        assert expected, f"no EXPECT markers found for {code}"
        assert got == expected, [str(f) for f in findings]
        assert {f.code for f in findings} == {code}

    @pytest.mark.parametrize("code", SEAM_RULES)
    def test_ok_fixture_is_clean(self, code):
        paths = _pair_paths(code)["ok"]
        findings = analyze_paths(paths)
        assert findings == [], [str(f) for f in findings]

    def test_suppressed_fixture_is_clean(self):
        findings = analyze_paths([str(SEAM / "suppressed_ok.c")])
        assert findings == [], [str(f) for f in findings]

    def test_suppression_fixture_fires_without_its_comment(self):
        """suppressed_ok.c is only clean *because* of the in-place
        ``seamcheck: disable`` comment — stripping it surfaces SF504."""
        source = (SEAM / "suppressed_ok.c").read_text()
        stripped = re.sub(
            r"/\* seamcheck:.*?\*/", "", source, flags=re.DOTALL)
        assert stripped != source
        index = ProjectIndex()
        index.add_source(stripped, "stripped_seam.c")
        codes = {f.code for f in analyze_project(index)}
        assert codes == {"SF504"}


class TestRepositorySeamIsClean:
    def test_core_and_cpu_have_no_seam_findings(self):
        """The shipped compiled seam obeys its own coherence rules."""
        findings = analyze_paths(
            [str(SRC / "repro" / "core"), str(SRC / "repro" / "cpu")])
        seam = [f for f in findings if f.code.startswith("SF5")]
        assert seam == [], "\n".join(str(f) for f in seam)


def _analyze_seeded(c_text):
    """Analyze the real Python seam modules against a modified _sfqc.c."""
    index = ProjectIndex()
    for rel in ("core/sfq.py", "core/arena.py", "core/engine.py",
                "cpu/machine.py"):
        path = SRC / "repro" / rel
        index.add_source(path.read_text(), str(path))
    index.add_source(c_text, str(SFQC))
    return [f for f in analyze_project(index)
            if f.code.startswith("SF5")]


def _seed(needle, replacement):
    """Replace ``needle`` once in the real _sfqc.c source."""
    base = SFQC.read_text()
    assert needle in base, f"seed needle drifted: {needle!r}"
    return base.replace(needle, replacement, 1)


class TestSeededSkews:
    """Each rule catches a one-line drift seeded into the real seam."""

    def test_sf501_catches_swapped_cview_members(self):
        text = _seed("CV_START, CV_FIN", "CV_FIN, CV_START")
        findings = _analyze_seeded(text)
        assert findings, "swapped CV members went undetected"
        assert {f.code for f in findings} == {"SF501"}
        assert any("CV_START" in f.message or "CV_FIN" in f.message
                   for f in findings)

    def test_sf502_catches_dropped_column_write(self):
        text = _seed(
            "col_store(run_col, slot, PyLong_FromLong(1)) < 0 ||\n", "")
        findings = _analyze_seeded(text)
        codes = {f.code for f in findings}
        assert "SF502" in codes, [str(f) for f in findings]
        hits = [f for f in findings if f.code == "SF502"]
        assert any(f.path.endswith("sfq.py") and "run" in f.message
                   for f in hits), [str(f) for f in hits]

    def test_sf503_catches_dropped_tracer_gate(self):
        text = _seed(
            "PyObject *tracer = PyObject_GetAttr(machine, str_tracer);",
            "PyObject *tracer = PyObject_GetAttr(machine, str_queue);")
        findings = _analyze_seeded(text)
        hits = [f for f in findings if f.code == "SF503"]
        assert any("tracer" in f.message for f in hits), \
            [str(f) for f in findings]

    def test_sf504_catches_dropped_decref_on_error_path(self):
        text = _seed(
            "                         time, now);\n"
            "        Py_DECREF(now);\n"
            "        return NULL;",
            "                         time, now);\n"
            "        return NULL;")
        findings = _analyze_seeded(text)
        hits = [f for f in findings if f.code == "SF504"]
        assert any("'now'" in f.message and "leaks" in f.message
                   for f in hits), [str(f) for f in findings]

    def test_sf505_catches_narrowed_build_unit(self):
        text = _seed('Py_BuildValue("On", leaf, depth)',
                     'Py_BuildValue("Oi", leaf, depth)')
        findings = _analyze_seeded(text)
        hits = [f for f in findings if f.code == "SF505"]
        assert any("depth" in f.message for f in hits), \
            [str(f) for f in findings]

    def test_unmodified_seam_is_clean(self):
        assert _analyze_seeded(SFQC.read_text()) == []


def _run_cli(*args):
    """Run ``python -m repro.devtools.schedflow`` as a subprocess."""
    return subprocess.run(
        [sys.executable, "-m", "repro.devtools.schedflow", *args],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


class TestCli:
    def test_unparseable_c_is_exit_2(self, tmp_path):
        broken = tmp_path / "broken.c"
        broken.write_text("static PyObject *\nbroken(void)\n{\n    if (\n")
        result = _run_cli(str(broken))
        assert result.returncode == 2, result.stdout + result.stderr

    def test_select_mixes_prefixes_and_exact_ids(self):
        """--select SF5,SF204 runs the whole seam family plus one exact
        rule, and nothing else."""
        fixtures = REPO_ROOT / "tests" / "fixtures" / "schedflow"
        sf204 = next(iter(sorted(fixtures.glob("sf204_bad*.py"))))
        result = _run_cli("--select", "SF5,SF204", str(sf204),
                          str(SEAM / "sf505_bad.c"),
                          str(SEAM / "sf501_bad.c"),
                          str(SEAM / "sf501_py.py"))
        assert result.returncode == 1, result.stdout + result.stderr
        codes = set(re.findall(r"SF\d+", result.stdout))
        assert codes == {"SF204", "SF505", "SF501"}, result.stdout

    def test_select_ignores_blank_tokens(self):
        """A trailing comma must not widen the selection to all rules."""
        fixtures = REPO_ROOT / "tests" / "fixtures" / "schedflow"
        sf204 = next(iter(sorted(fixtures.glob("sf204_bad*.py"))))
        result = _run_cli("--select", "SF204,", str(sf204))
        assert result.returncode == 1
        codes = set(re.findall(r"SF\d+", result.stdout))
        assert codes == {"SF204"}, result.stdout

    def test_select_of_nothing_is_usage_error(self):
        result = _run_cli("--select", ",", str(SEAM / "sf505_bad.c"))
        assert result.returncode == 2


class TestParallelIncludesSeam:
    def test_jobs_matches_serial_over_mixed_sources(self):
        paths = [str(SEAM)]
        serial = analyze_paths(paths)
        jobs, _sources = analyze_paths_jobs(paths, jobs=2)
        assert [str(f) for f in jobs] == [str(f) for f in serial]
        assert any(f.code.startswith("SF5") for f in serial)
