"""QoS: specs, admission control, and the manager."""

import pytest

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.cpu.machine import Machine
from repro.errors import AdmissionError
from repro.qos.admission import (
    edf_admissible,
    rma_admissible,
    rma_utilization_bound,
    statistical_admissible,
)
from repro.qos.manager import DemandDrivenRebalancer, QosManager
from repro.qos.spec import BEST_EFFORT, HARD_RT, SOFT_RT, QosRequest
from repro.sim.engine import Simulator
from repro.trace.metrics import latency_slack
from repro.trace.recorder import Recorder
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.periodic import PeriodicWorkload

CAPACITY = 1_000_000
KILO = 1000


class TestQosRequest:
    def test_hard_rt_requires_period_and_wcet(self):
        with pytest.raises(AdmissionError):
            QosRequest("x", HARD_RT, period=10 * MS)

    def test_hard_rt_wcet_exceeding_period_rejected(self):
        with pytest.raises(AdmissionError):
            QosRequest("x", HARD_RT, period=10 * MS, wcet=20 * MS)

    def test_soft_rt_requires_mean_demand(self):
        with pytest.raises(AdmissionError):
            QosRequest("x", SOFT_RT)

    def test_unknown_class_rejected(self):
        with pytest.raises(AdmissionError):
            QosRequest("x", "bulk")

    def test_utilization(self):
        req = QosRequest("x", HARD_RT, period=100 * MS, wcet=25 * MS)
        assert req.utilization == 0.25
        assert QosRequest("y", BEST_EFFORT).utilization == 0.0


class TestAdmissionTests:
    def test_rma_bound_values(self):
        assert rma_utilization_bound(1) == pytest.approx(1.0)
        assert rma_utilization_bound(2) == pytest.approx(0.828, abs=0.001)
        assert rma_utilization_bound(0) == 1.0

    def test_rma_admits_within_bound(self):
        tasks = [(100, 20), (200, 30)]  # U = 0.35
        assert rma_admissible(tasks, capacity_fraction=0.5)

    def test_rma_rejects_beyond_bound(self):
        tasks = [(100, 45), (200, 80)]  # U = 0.85 > 0.828
        assert not rma_admissible(tasks, capacity_fraction=1.0)

    def test_edf_admits_to_full_share(self):
        tasks = [(100, 45), (200, 80)]  # U = 0.85
        assert edf_admissible(tasks, capacity_fraction=0.9)
        assert not edf_admissible(tasks, capacity_fraction=0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            rma_admissible([(0, 1)], 0.5)
        with pytest.raises(ValueError):
            edf_admissible([(100, 10)], 0.0)

    def test_statistical_overbooking(self):
        # three VBR streams, mean 30k each, std 5k: 90k + 2*8.66k <= 110k
        assert statistical_admissible([30_000] * 3, [5000] * 3, 110_000)
        assert not statistical_admissible([30_000] * 3, [5000] * 3, 95_000)

    def test_statistical_validation(self):
        with pytest.raises(ValueError):
            statistical_admissible([1], [], 100)
        with pytest.raises(ValueError):
            statistical_admissible([1], [0], 0)


class ManagerHarness:
    def __init__(self, class_weights=(2, 3, 5)):
        self.structure = SchedulingStructure()
        self.engine = Simulator()
        self.recorder = Recorder()
        self.machine = Machine(self.engine,
                               HierarchicalScheduler(self.structure),
                               capacity_ips=CAPACITY,
                               default_quantum=10 * MS,
                               tracer=self.recorder)
        self.manager = QosManager(self.machine, self.structure,
                                  class_weights=class_weights,
                                  rt_quantum=10 * MS)


class TestQosManager:
    def test_creates_class_nodes(self):
        h = ManagerHarness()
        assert h.structure.parse("/hard-rt").is_leaf
        assert h.structure.parse("/soft-rt").is_leaf
        assert not h.structure.parse("/best-effort").is_leaf

    def test_best_effort_never_denied_and_user_leaves(self):
        h = ManagerHarness()
        t1 = h.manager.submit(QosRequest("job1", BEST_EFFORT, user="alice"),
                              DhrystoneWorkload())
        t2 = h.manager.submit(QosRequest("job2", BEST_EFFORT, user="bob"),
                              DhrystoneWorkload())
        assert t1.leaf.path == "/best-effort/alice"
        assert t2.leaf.path == "/best-effort/bob"

    def test_hard_rt_admission_enforced(self):
        h = ManagerHarness(class_weights=(2, 3, 5))  # hard share = 0.2
        ok = QosRequest("rt1", HARD_RT, period=100 * MS, wcet=15 * MS)
        h.manager.submit(ok, PeriodicWorkload(period=100 * MS,
                                              cost=15 * KILO))
        too_much = QosRequest("rt2", HARD_RT, period=100 * MS, wcet=50 * MS)
        with pytest.raises(AdmissionError):
            h.manager.submit(too_much,
                             PeriodicWorkload(period=100 * MS,
                                              cost=50 * KILO))

    def test_soft_rt_admission_enforced(self):
        h = ManagerHarness(class_weights=(2, 3, 5))  # soft share = 0.3
        ok = QosRequest("v1", SOFT_RT, mean_demand=200_000, std_demand=10_000)
        h.manager.submit(ok, DhrystoneWorkload())
        too_much = QosRequest("v2", SOFT_RT, mean_demand=200_000)
        with pytest.raises(AdmissionError):
            h.manager.submit(too_much, DhrystoneWorkload())

    def test_remove_releases_reservation(self):
        h = ManagerHarness()
        req = QosRequest("rt", HARD_RT, period=100 * MS, wcet=15 * MS)
        thread = h.manager.submit(req, PeriodicWorkload(period=100 * MS,
                                                        cost=15 * KILO,
                                                        rounds=1))
        h.machine.run_until(SECOND)
        h.manager.remove(thread)
        assert h.manager.admitted_hard_utilization() == 0.0
        # the same reservation is admittable again
        h.manager.submit(QosRequest("rt2", HARD_RT, period=100 * MS,
                                    wcet=15 * MS),
                         PeriodicWorkload(period=100 * MS, cost=15 * KILO))

    def test_admitted_hard_rt_meets_deadlines_under_load(self):
        h = ManagerHarness(class_weights=(3, 3, 4))
        workload = PeriodicWorkload(period=50 * MS, cost=10 * KILO)
        req = QosRequest("rt", HARD_RT, period=50 * MS, wcet=10 * MS)
        thread = h.manager.submit(req, workload)
        # saturate best effort
        h.manager.submit(QosRequest("hog", BEST_EFFORT),
                         DhrystoneWorkload())
        h.machine.run_until(3 * SECOND)
        results = latency_slack(h.recorder, thread, workload)
        assert results
        assert all(slack > 0 for __, __, slack in results)

    def test_soft_rt_overbooking_parameter(self):
        strict = ManagerHarness()
        strict.manager.overbooking_sigmas = 10.0
        req = QosRequest("v", SOFT_RT, mean_demand=250_000, std_demand=20_000)
        with pytest.raises(AdmissionError):
            strict.manager.submit(req, DhrystoneWorkload())


class TestRebalancer:
    def test_rebalance_tracks_demand(self):
        h = ManagerHarness(class_weights=(1, 4, 5))
        rebalancer = DemandDrivenRebalancer(h.manager, period=SECOND)
        h.manager.submit(
            QosRequest("v", SOFT_RT, mean_demand=300_000),
            DhrystoneWorkload())
        rebalancer.rebalance()
        # soft class gets ~30% * headroom of the scale-100 weights
        assert h.manager.soft_leaf.weight == 36
        assert h.manager.hard_leaf.weight == 1  # floor

    def test_periodic_rebalancing_on_engine(self):
        h = ManagerHarness()
        rebalancer = DemandDrivenRebalancer(h.manager, period=500 * MS)
        rebalancer.start()
        h.machine.run_until(2 * SECOND)
        assert rebalancer.rebalances >= 3
        rebalancer.stop()
        count = rebalancer.rebalances
        h.machine.run_until(3 * SECOND)
        assert rebalancer.rebalances == count

    def test_invalid_period(self):
        h = ManagerHarness()
        with pytest.raises(ValueError):
            DemandDrivenRebalancer(h.manager, period=0)
