"""The hierarchy's cached ancestor chains: invalidation and equivalence.

The traced-off fast path charges/wakes/sleeps through per-leaf cached
``(queue, record, node, parent)`` chains (``repro.core.sfq``), invalidated
by ``structure.tree_version`` whenever ``mknod``/``rmnod`` reshape the
tree.  Two guarantees are pinned here:

1. the fast path is behaviourally identical to the per-level method walk
   that runs while the observability bus is active;
2. tree mutations mid-run (grow a subtree, remove a leaf, move threads)
   never leave a stale chain behind.
"""

import pytest

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.errors import StructureError
from repro.obs import events as obs
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.segments import SegmentListWorkload
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread


def make_thread(name="t", weight=1):
    return SimThread(name, SegmentListWorkload([]), weight=weight)


class Driver:
    """A structure plus helpers to drive the same op script twice."""

    def __init__(self):
        self.structure = SchedulingStructure()
        self.scheduler = HierarchicalScheduler(self.structure)
        self.class_a = self.structure.mknod("/classA", 2)
        self.leaf1 = self.structure.mknod("/classA/leaf1", 1,
                                          scheduler=SfqScheduler())
        self.leaf2 = self.structure.mknod("/leaf2", 3,
                                          scheduler=SfqScheduler())
        self.threads = {}

    def spawn(self, name, leaf, weight=1):
        thread = make_thread(name, weight)
        leaf.attach_thread(thread)
        thread.transition(ThreadState.RUNNABLE)
        self.scheduler.thread_runnable(thread, 0)
        self.threads[name] = thread
        return thread

    def serve(self, work, now=0):
        thread = self.scheduler.pick_next(now)
        assert thread is not None
        self.scheduler.charge(thread, work, now)
        return thread.name

    def tag_snapshot(self):
        """All (node path -> start/finish tags at its parent) plus flags."""
        snapshot = {}
        for node in self.structure.iter_nodes():
            parent = node.parent
            entry = {"runnable": node.runnable}
            if parent is not None:
                entry["start"] = parent.queue.start_tag(node)
                entry["finish"] = parent.queue.finish_tag(node)
                entry["v"] = parent.queue.virtual_time
            snapshot[node.path] = entry
        return snapshot


def run_script(driver):
    """A scripted run that reshapes the tree while chains are cached."""
    picks = []
    driver.spawn("a", driver.leaf1)
    driver.spawn("b", driver.leaf2, weight=2)
    picks.append(driver.serve(30))
    picks.append(driver.serve(30))
    # Grow the tree mid-run: the cached chains must be rebuilt.
    leaf3 = driver.structure.mknod("/classA/leaf3", 1,
                                   scheduler=SfqScheduler())
    driver.spawn("c", leaf3)
    for work in (10, 20, 30, 40):
        picks.append(driver.serve(work))
    # Block a thread, remove its (now idle) leaf, keep scheduling.
    thread_a = driver.threads["a"]
    driver.scheduler.thread_blocked(thread_a, 0)
    driver.leaf1.detach_thread(thread_a)
    driver.structure.rmnod("/classA/leaf1")
    for work in (15, 25):
        picks.append(driver.serve(work))
    # Move a thread between leaves (re-keys it under another queue).
    thread_b = driver.threads["b"]
    driver.structure.move(thread_b, "/classA/leaf3")
    picks.append(driver.serve(20))
    return picks


def test_fast_path_matches_traced_walk():
    """Chain-cache scheduling == per-level walk (bus active), op for op."""
    fast = Driver()
    fast_picks = run_script(fast)

    traced = Driver()
    subscriber = obs.BUS.subscribe(lambda event: None)
    try:
        assert obs.BUS.active
        traced_picks = run_script(traced)
    finally:
        obs.BUS.unsubscribe(subscriber)

    assert fast_picks == traced_picks
    fast_tags = fast.tag_snapshot()
    traced_tags = traced.tag_snapshot()
    assert fast_tags == traced_tags


def test_tree_version_bumps_on_mknod_and_rmnod():
    structure = SchedulingStructure()
    version = structure.tree_version
    structure.mknod("/x", 1)
    assert structure.tree_version > version
    version = structure.tree_version
    leaf = structure.mknod("/x/leaf", 1, scheduler=SfqScheduler())
    assert structure.tree_version > version
    version = structure.tree_version
    structure.rmnod(leaf)
    assert structure.tree_version > version


def test_chains_rebuilt_after_mknod():
    if obs.BUS.active:  # REPRO_OBS=1: the traced walk bypasses the cache
        pytest.skip("chain cache is not exercised while the bus is active")
    driver = Driver()
    driver.spawn("a", driver.leaf1)
    driver.serve(10)
    cached = driver.scheduler._charge_chains
    assert cached, "serving should have populated the chain cache"
    driver.structure.mknod("/classB", 1)
    # Next scheduling op must notice the version bump and drop stale chains.
    driver.serve(10)
    assert driver.scheduler._charge_chains_version == \
        driver.structure.tree_version


def test_removed_leaf_chain_not_reused():
    driver = Driver()
    thread = driver.spawn("a", driver.leaf1)
    driver.serve(10)
    driver.scheduler.thread_blocked(thread, 0)
    driver.leaf1.detach_thread(thread)
    driver.structure.rmnod("/classA/leaf1")
    # A new leaf may reuse the freed id(); the rebuilt chain must be fresh.
    leaf_new = driver.structure.mknod("/classA/leafN", 5,
                                      scheduler=SfqScheduler())
    driver.spawn("n", leaf_new)
    assert driver.serve(40) == "n"
    parent = leaf_new.parent
    assert parent.queue.finish_tag(leaf_new) > 0


def test_rmnod_rejects_busy_nodes():
    driver = Driver()
    driver.spawn("a", driver.leaf1)
    with pytest.raises(Exception):
        driver.structure.rmnod("/classA/leaf1")
    with pytest.raises(StructureError):
        driver.structure.rmnod("/")
