"""The simulation engine: clock, scheduling, run loops."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, engine):
        assert engine.now == 0

    def test_at_fires_at_time(self, engine):
        times = []
        engine.at(100, lambda: times.append(engine.now))
        engine.run_until(200)
        assert times == [100]

    def test_after_is_relative(self, engine):
        engine.at(50, lambda: engine.after(25, lambda: seen.append(engine.now)))
        seen = []
        engine.run_until(100)
        assert seen == [75]

    def test_arg_passed_to_callback(self, engine):
        seen = []
        engine.at(10, seen.append, "payload")
        engine.run_until(10)
        assert seen == ["payload"]

    def test_past_scheduling_rejected(self, engine):
        engine.run_until(100)
        with pytest.raises(SimulationError):
            engine.at(50, lambda: None)

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.after(-1, lambda: None)

    def test_cancel_prevents_firing(self, engine):
        seen = []
        handle = engine.at(10, lambda: seen.append(1))
        engine.cancel(handle)
        engine.run_until(20)
        assert seen == []


class TestRunUntil:
    def test_clock_ends_at_horizon(self, engine):
        engine.run_until(500)
        assert engine.now == 500

    def test_events_at_horizon_fire(self, engine):
        seen = []
        engine.at(100, lambda: seen.append(1))
        engine.run_until(100)
        assert seen == [1]

    def test_events_beyond_horizon_deferred(self, engine):
        seen = []
        engine.at(101, lambda: seen.append(1))
        engine.run_until(100)
        assert seen == []
        engine.run_until(101)
        assert seen == [1]

    def test_backwards_run_rejected(self, engine):
        engine.run_until(100)
        with pytest.raises(SimulationError):
            engine.run_until(50)

    def test_callbacks_see_advancing_clock(self, engine):
        times = []
        for t in [30, 10, 20]:
            engine.at(t, lambda: times.append(engine.now))
        engine.run_until(100)
        assert times == [10, 20, 30]

    def test_reentrant_run_rejected(self, engine):
        def reenter():
            engine.run_until(50)
        engine.at(10, reenter)
        with pytest.raises(SimulationError):
            engine.run_until(20)


class TestRunAll:
    def test_returns_event_count(self, engine):
        for t in range(5):
            engine.at(t, lambda: None)
        assert engine.run_all() == 5

    def test_limit_guards_runaway(self, engine):
        def reschedule():
            engine.after(1, reschedule)
        engine.at(0, reschedule)
        with pytest.raises(SimulationError):
            engine.run_all(limit=100)

    def test_pending_events_counter(self, engine):
        engine.at(1, lambda: None)
        engine.at(2, lambda: None)
        assert engine.pending_events == 2
        engine.run_all()
        assert engine.pending_events == 0


class TestStep:
    def test_step_fires_one_event(self, engine):
        seen = []
        engine.at(5, lambda: seen.append(1))
        engine.at(6, lambda: seen.append(2))
        assert engine.step() is True
        assert seen == [1]
        assert engine.now == 5

    def test_step_empty_returns_false(self, engine):
        assert engine.step() is False
