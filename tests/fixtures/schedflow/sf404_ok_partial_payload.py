# schedlint-fixture-module: repro/faultlab/example.py
"""Positive fixture: the worker callable is a top-level function; the
extra argument is bound with ``functools.partial``, which pickles."""

import functools


def scale(factor, cell):
    return factor * cell


def launch(cells, factor):
    import multiprocessing
    with multiprocessing.Pool(2) as pool:
        return pool.map(functools.partial(scale, factor), cells)
