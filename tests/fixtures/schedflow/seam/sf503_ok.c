/* SF503 fixture (clean): the turbo entry re-checks both gates its
 * Python bailout target checks before taking the fast path. */

static PyObject *bus_obj;
static PyObject *str_active;
static PyObject *str_tracer;
static PyObject *str_on_poke;

static struct {
    PyObject **slot;
    const char *name;
} interns[] = {
    { &str_active, "active" },
    { &str_tracer, "tracer" },
    { &str_on_poke, "on_poke" },
};

static PyObject *
sfqc_fast_poke(PyObject *self, PyObject *args)
{
    PyObject *machine = PyTuple_GET_ITEM(args, 0);
    PyObject *hot = PyObject_GetAttr(bus_obj, str_active);
    if (hot == NULL)
        return NULL;
    int bail = PyObject_IsTrue(hot);
    Py_DECREF(hot);
    if (!bail) {
        PyObject *tracer = PyObject_GetAttr(machine, str_tracer);
        if (tracer == NULL)
            return NULL;
        bail = tracer != Py_None;
        Py_DECREF(tracer);
    }
    if (bail)
        return PyObject_CallMethodObjArgs(machine, str_on_poke, NULL);
    Py_RETURN_NONE;
}

static PyMethodDef seam_methods[] = {
    {"fast_poke", (PyCFunction)sfqc_fast_poke, METH_VARARGS, "poke"},
    {NULL, NULL, 0, NULL}
};
