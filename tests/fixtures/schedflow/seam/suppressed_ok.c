/* Suppression fixture: the borrowed-escape below is reviewed and
 * disabled in place, so the file must analyze clean. */

static int
stash(PyObject *items, PyObject *sink, Py_ssize_t at)
{
    PyObject *item = PyList_GET_ITEM(items, at);
    /* seamcheck: disable=SF504 -- sink holds a weak mirror; the owner
     * of `items` outlives it by contract */
    return PyList_SetItem(sink, at, item);
}
