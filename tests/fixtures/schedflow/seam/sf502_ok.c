/* SF502 fixture (clean): the compiled twin mirrors every column write
 * the pure poke_chain in sf502_py.py performs. */

static PyObject *
sfqc_poke_chain(PyObject *self, PyObject *args)
{
    PyObject *start_col = PyTuple_GET_ITEM(args, 0);
    PyObject *ver_col = PyTuple_GET_ITEM(args, 1);
    Py_ssize_t slot = 0;
    PyObject *zero = PyLong_FromLong(0);
    if (zero == NULL)
        return NULL;
    if (PyList_SetItem(start_col, slot, zero) < 0)
        return NULL;
    PyObject *bumped = PyLong_FromLong(1);
    if (bumped == NULL)
        return NULL;
    if (PyList_SetItem(ver_col, slot, bumped) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef seam_methods[] = {
    {"poke_chain", (PyCFunction)sfqc_poke_chain, METH_VARARGS, "poke"},
    {NULL, NULL, 0, NULL}
};
