# schedlint-fixture-module: repro/core/seam_fixture.py
"""Python side of the SF502 seam fixtures: the pure twin."""


def poke_chain(chain):
    """Write the start tag and bump the slot version per level."""
    for (start_col, ver_col, slot) in chain:
        start_col[slot] = 0
        ver_col[slot] = ver_col[slot] + 1  # EXPECT-SF502
