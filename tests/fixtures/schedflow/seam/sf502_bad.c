/* SF502 fixture: the compiled twin of poke_chain (sf502_py.py) writes
 * the start column but skips the version bump the pure path performs. */

static PyObject *
sfqc_poke_chain(PyObject *self, PyObject *args)
{
    PyObject *start_col = PyTuple_GET_ITEM(args, 0);
    Py_ssize_t slot = 0;
    PyObject *zero = PyLong_FromLong(0);
    if (zero == NULL)
        return NULL;
    if (PyList_SetItem(start_col, slot, zero) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef seam_methods[] = {
    {"poke_chain", (PyCFunction)sfqc_poke_chain, METH_VARARGS, "poke"},
    {NULL, NULL, 0, NULL}
};
