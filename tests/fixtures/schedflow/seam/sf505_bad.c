/* SF505 fixture: a format string consuming fewer arguments than are
 * passed, and a build unit narrower than the C variable it reads. */

static PyObject *
pack(PyObject *self, PyObject *args)
{
    PyObject *obj = NULL;
    Py_ssize_t count = 0;
    if (!PyArg_ParseTuple(args, "On", &obj, &count, &count))  /* EXPECT-SF505 */
        return NULL;
    return Py_BuildValue("ni", count, count);  /* EXPECT-SF505 */
}
