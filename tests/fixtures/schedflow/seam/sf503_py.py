"""Python side of the SF503 seam fixtures: the gated bailout target."""

_BUS = None


class PokeMachine:
    """A machine whose slow path is gated on the bus and the tracer."""

    def on_poke(self):
        """Bailout target: observes both runtime gates."""
        if _BUS.active:
            _BUS.emit("poke")
        if self.tracer is not None:
            self.tracer.on_poke(self)
