/* SF501 fixture (clean): layout agrees with sf501_py.py exactly. */

enum {
    QQ_HEAP,
    QQ_STATE,
    QQ_START,
    QQ_FIN,
    QQ_LEN
};

static int
touch(void)
{
    return QQ_HEAP + QQ_STATE + QQ_START + QQ_FIN + QQ_LEN;
}
