/* SF505 fixture (clean): arity and C types agree with the units. */

static PyObject *
pack(PyObject *self, PyObject *args)
{
    PyObject *obj = NULL;
    Py_ssize_t count = 0;
    if (!PyArg_ParseTuple(args, "On", &obj, &count))
        return NULL;
    return Py_BuildValue("nn", count, count);
}
