/* SF503 fixture: the turbo entry bails out to PokeMachine.on_poke
 * (sf503_py.py) which checks BUS.active *and* self.tracer, but the C
 * fast path only re-checks the bus gate. */

static PyObject *bus_obj;
static PyObject *str_active;
static PyObject *str_on_poke;

static struct {
    PyObject **slot;
    const char *name;
} interns[] = {
    { &str_active, "active" },
    { &str_on_poke, "on_poke" },
};

static PyObject *
sfqc_fast_poke(PyObject *self, PyObject *args)  /* EXPECT-SF503 */
{
    PyObject *machine = PyTuple_GET_ITEM(args, 0);
    PyObject *hot = PyObject_GetAttr(bus_obj, str_active);
    if (hot == NULL)
        return NULL;
    int bail = PyObject_IsTrue(hot);
    Py_DECREF(hot);
    if (bail)
        return PyObject_CallMethodObjArgs(machine, str_on_poke, NULL);
    Py_RETURN_NONE;
}

static PyMethodDef seam_methods[] = {
    {"fast_poke", (PyCFunction)sfqc_fast_poke, METH_VARARGS, "poke"},
    {NULL, NULL, 0, NULL}
};
