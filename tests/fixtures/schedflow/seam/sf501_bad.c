/* SF501 fixture: the C layout enum drifted from the Python constants
 * in sf501_py.py (_QQ_FIN/_QQ_START swapped, sentinel off by one). */

enum {
    QQ_HEAP,
    QQ_STATE,
    QQ_FIN,      /* EXPECT-SF501 */
    QQ_START,    /* EXPECT-SF501 */
    QQ_LEN = 5   /* EXPECT-SF501 */
};

static int
touch(void)
{
    return QQ_HEAP + QQ_STATE + QQ_FIN + QQ_START + QQ_LEN;
}
