/* SF504 fixture: a leak on an early-error return, an unchecked NULL
 * from an allocating call, and a borrowed reference escaping into a
 * reference-stealing sink in a *different* container. */

static PyObject *
leaky(PyObject *self, PyObject *args)
{
    PyObject *first = PyLong_FromLong(1);
    if (first == NULL)
        return NULL;
    PyObject *second = PyLong_FromLong(2);
    if (second == NULL) return NULL;  /* EXPECT-SF504 */
    Py_DECREF(first);
    Py_DECREF(second);
    Py_RETURN_NONE;
}

static PyObject *
unchecked(PyObject *self, PyObject *obj)
{
    PyObject *value = PyObject_GetAttrString(obj, "weight");
    PyObject *doubled = PyNumber_Add(value, value);  /* EXPECT-SF504 */
    Py_XDECREF(value);
    return doubled;
}

static int
stash(PyObject *items, PyObject *sink, Py_ssize_t at)
{
    PyObject *item = PyList_GET_ITEM(items, at);
    return PyList_SetItem(sink, at, item);  /* EXPECT-SF504 */
}
