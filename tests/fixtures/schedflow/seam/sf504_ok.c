/* SF504 fixture (clean): balanced error paths, NULL checks before
 * first use, an INCREF before the cross-container steal, and the one
 * sanctioned borrowed idiom — a move within the same container. */

static PyObject *
leaky(PyObject *self, PyObject *args)
{
    PyObject *first = PyLong_FromLong(1);
    if (first == NULL)
        return NULL;
    PyObject *second = PyLong_FromLong(2);
    if (second == NULL) {
        Py_DECREF(first);
        return NULL;
    }
    Py_DECREF(first);
    Py_DECREF(second);
    Py_RETURN_NONE;
}

static PyObject *
unchecked(PyObject *self, PyObject *obj)
{
    PyObject *value = PyObject_GetAttrString(obj, "weight");
    if (value == NULL)
        return NULL;
    PyObject *doubled = PyNumber_Add(value, value);
    Py_DECREF(value);
    return doubled;
}

static int
stash(PyObject *items, PyObject *sink, Py_ssize_t at)
{
    PyObject *item = PyList_GET_ITEM(items, at);
    Py_INCREF(item);
    return PyList_SetItem(sink, at, item);
}

static void
sift(PyObject *heap, Py_ssize_t pos, Py_ssize_t child)
{
    PyObject *a = PyList_GET_ITEM(heap, pos);
    PyObject *b = PyList_GET_ITEM(heap, child);
    PyList_SET_ITEM(heap, pos, b);
    PyList_SET_ITEM(heap, child, a);
}
