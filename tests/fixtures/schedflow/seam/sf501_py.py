"""Python side of the SF501 seam fixtures: the index constants."""

_QQ_HEAP = 0
_QQ_STATE = 1
_QQ_START = 2
_QQ_FIN = 3
