# schedlint-fixture-module: repro/qos/example.py
"""Positive fixture: tags compare against tags (SF202)."""


def caught_up(queue, record):
    return queue.start_tag(record) <= queue.virtual_time()
