# schedlint-fixture-module: repro/obs/example.py
"""Negative fixture: a subscriber mutates state from emit context.

Observers run synchronously inside the simulator's emit sites; writing
the event, a shared global, or the scheduling tree from there turns
observation into interference (SF405)."""

TOTALS = {}


class TotalsProbe:
    """Counts events — into a module global, from emit context."""

    def __call__(self, event):
        TOTALS[event.kind] = 1          # SF405: global write from emit
        event.payload["seen"] = True    # SF405: mutates the event


def attach(bus):
    probe = TotalsProbe()
    bus.subscribe(probe)
