# schedlint-fixture-module: repro/faultlab/example.py
"""Positive fixture: configuration travels through the worker's spec.

The parent resolves every knob before the pool starts; workers see
plain data and nothing else."""


def worker(payload):
    cell, fast = payload
    return cell if fast else cell * 2


def launch(cells, fast):
    import multiprocessing
    with multiprocessing.Pool(2) as pool:
        return pool.map(worker, [(cell, fast) for cell in cells])
