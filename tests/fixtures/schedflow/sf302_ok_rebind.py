# schedlint-fixture-module: repro/experiments/example.py
"""Positive fixture: re-binding the variable from a fresh ``mknod``
revives the node id (SF302)."""

from repro.hsfq import hsfq_admin, hsfq_mknod, hsfq_rmnod


def recreate(structure):
    node_id = hsfq_mknod(structure, "video", 0, 2)
    hsfq_rmnod(structure, node_id)
    node_id = hsfq_mknod(structure, "video", 0, 2)
    return hsfq_admin(structure, node_id, "set_weight", 3)
