# schedlint-fixture-module: repro/experiments/example.py
"""Negative fixture: hsfq calls on node ids already removed on some
path — straight-line and may-removed through a branch (SF302)."""

from repro.hsfq import hsfq_admin, hsfq_parse, hsfq_rmnod


def tear_down(structure, node_id):
    hsfq_rmnod(structure, node_id)
    hsfq_admin(structure, node_id, "set_weight", 1)   # SF302


def maybe_retire(structure, node_id, retire):
    if retire:
        hsfq_rmnod(structure, node_id)
    # may-removed: the branch poisons the join below
    return hsfq_parse(structure, "/video", hint=node_id)   # SF302
