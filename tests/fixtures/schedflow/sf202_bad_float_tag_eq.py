# schedlint-fixture-module: repro/qos/example.py
"""Negative fixture: float equality against a virtual-time tag.

Exact-mode tags are ``Fraction``s; ``== 0.0`` is only ever true by
accident (SF202).
"""


def is_fresh(queue):
    return queue.virtual_time() == 0.0   # SF202
