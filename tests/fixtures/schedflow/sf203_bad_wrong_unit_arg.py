# schedlint-fixture-module: repro/schedulers/example.py
"""Negative fixture: a duration passed where the callee's signature
(declared by naming convention) wants instructions (SF203)."""


def normalized(work, weight):
    """Service normalized by share weight."""
    return work // weight


def account(thread, duration_ns):
    return normalized(duration_ns, thread.weight)   # SF203: time, not work
