# schedlint-fixture-module: repro/cpu/example.py
"""Positive fixture: events are posted at engine-derived times (SF102)."""


class Watchdog:
    def arm(self, engine, delay_ns, callback):
        engine.at(engine.now + delay_ns, callback)
