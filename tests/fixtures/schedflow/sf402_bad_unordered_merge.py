# schedlint-fixture-module: repro/faultlab/example.py
"""Negative fixture: results gathered in worker *completion* order.

``list(imap_unordered(...))`` varies run to run with worker timing, so
two identical campaigns render different reports (SF402)."""


def worker(cell):
    return cell * 2


def launch(cells):
    import multiprocessing
    with multiprocessing.Pool(2) as pool:
        return list(pool.imap_unordered(worker, cells))  # SF402
