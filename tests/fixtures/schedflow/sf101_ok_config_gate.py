# schedlint-fixture-module: repro/sim/example.py
"""Positive fixture: the sanctioned host reads (SF101).

Environment reads may *gate* behaviour (comparisons and ``bool()``
sanitize — a flag is not a timestamp), and ``perf_counter`` is allowed
for measuring how long the experiment took to compute.
"""

import os
import time


class Gate:
    def __init__(self, engine):
        self.engine = engine
        self.enabled = bool(os.environ.get("REPRO_SCHEDSAN"))

    def arm(self, delay_ns):
        if os.environ.get("REPRO_TRACE") == "1":
            self.trace = True
        self.wall_started = time.perf_counter()   # benchmarking, not state
        self.deadline_ns = self.engine.now + delay_ns
