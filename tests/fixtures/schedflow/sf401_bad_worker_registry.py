# schedlint-fixture-module: repro/faultlab/example.py
"""Negative fixture: a pool worker writes a module-level registry.

Each worker process mutates its *own copy* of ``RESULTS``; the parent's
dict stays empty and the campaign silently loses every cell (SF401)."""

RESULTS = {}


def worker(cell):
    RESULTS[cell] = cell * 2   # SF401: worker-context global write
    return cell


def launch(cells):
    import multiprocessing
    with multiprocessing.Pool(2) as pool:
        return pool.map(worker, cells)
