# schedlint-fixture-module: repro/sync/example.py
"""Positive fixture: foreign code drives the queue through the owner's
API and only stores to fields it owns itself (SF301)."""


def wake_all(queue, waiters, now):
    for record in waiters:
        queue.on_runnable(record, now)
    queue.last_drain = now   # not an owned dispatch field
