# schedlint-fixture-module: repro/faultlab/example.py
"""Negative fixture: a pool entrypoint reads the host environment.

Workers inherit whatever environment the parent had at fork time;
an env-var gate inside the entrypoint makes cell results depend on
invisible host state instead of the worker's spec (SF406)."""

import os


def worker(cell):
    if os.environ.get("EXAMPLE_FAST") == "1":   # SF406
        return cell
    return cell * 2


def launch(cells):
    import multiprocessing
    with multiprocessing.Pool(2) as pool:
        return pool.map(worker, cells)
