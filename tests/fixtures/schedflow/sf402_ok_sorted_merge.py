# schedlint-fixture-module: repro/faultlab/example.py
"""Positive fixture: completion-order results are sorted (or folded
order-insensitively) before anything observes their order."""


def worker(cell):
    return cell * 2


def launch(cells):
    import multiprocessing
    with multiprocessing.Pool(2) as pool:
        ordered = sorted(pool.imap_unordered(worker, cells))
        total = sum(pool.imap_unordered(worker, cells))
    return ordered, total
