# schedlint-fixture-module: repro/qos/example.py
# schedflow: disable-file=SF204
"""Positive fixture: schedflow shares schedlint's suppression syntax —
file-level disables and multi-line statement spans (all rules)."""


def boost(node):
    node.weight = 5   # silenced by the disable-file line above


def rate_of(node, elapsed_ns):
    return (
        node.weight
        * 1_000_000_000
        / elapsed_ns
    )   # schedflow: disable=SF205
