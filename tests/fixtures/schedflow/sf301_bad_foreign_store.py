# schedlint-fixture-module: repro/sync/example.py
"""Negative fixture: a foreign module stores to queue-owned dispatch
state — ownership *is* the lockset on the SMP machine (SF301)."""


def hard_reset(queue):
    queue._virtual_time = 0   # SF301: owned by repro/core/sfq.py
    queue._max_finish = 0     # SF301: owned by repro/core/sfq.py
