# schedlint-fixture-module: repro/sync/example.py
"""Negative fixture: a foreign module stores to queue-owned dispatch
state — ownership *is* the lockset on the SMP machine (SF301)."""


def hard_reset(queue):
    queue._state = [0, 0, -1, 0]  # SF301: owned by repro/core/sfq.py
    queue._solo = -1              # SF301: owned by repro/core/sfq.py
