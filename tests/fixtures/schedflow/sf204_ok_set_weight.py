# schedlint-fixture-module: repro/qos/example.py
"""Positive fixture: sanctioned weight mutations (SF204).

``__init__`` may seed its own field; everyone else goes through the
admin/set_weight surface so SCHEDSAN can see the change.
"""


class Governor:
    def __init__(self, weight):
        self.weight = weight

    def promote(self, structure, node):
        structure.admin(node.node_id, "set_weight", self.weight + 2)
