# schedlint-fixture-module: repro/schedulers/example.py
"""Positive fixture: arguments match the callee's declared units (SF203)."""


def normalized(work, weight):
    return work // weight


def account(thread, work):
    return normalized(work, thread.weight)
