# schedlint-fixture-module: repro/trace/example.py
"""Positive fixture: the units constant carries the conversion (SF205)."""

from repro import units


def marker_rate(count, elapsed_ns):
    if elapsed_ns <= 0:
        return 0.0
    return count * units.SECOND / elapsed_ns
