# schedlint-fixture-module: repro/trace/example.py
"""Negative fixture: adds nanoseconds to instructions (SF201)."""


def busy_total(duration_ns, work):
    return duration_ns + work   # SF201: time + instructions
