# schedlint-fixture-module: repro/trace/example.py
"""Positive fixture: same-unit arithmetic and the sanctioned
conversion idiom type-check cleanly (SF201)."""

from repro import units


def deadline(now_ns, duration_ns):
    return now_ns + duration_ns


def work_budget(duration_ns, capacity_ips):
    # time * rate / time-per-second = instructions; the constant is
    # polymorphic so the conversion needs no annotations
    return (duration_ns * capacity_ips) // units.SECOND
