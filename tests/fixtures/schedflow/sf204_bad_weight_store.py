# schedlint-fixture-module: repro/qos/example.py
"""Negative fixture: a direct ``.weight`` store outside the node's own
module bypasses ``set_weight`` — the static twin of SCHEDSAN's
dormant-weight-warp invariant (SF204)."""


def boost(node):
    node.weight = 5   # SF204: bypasses set_weight()
