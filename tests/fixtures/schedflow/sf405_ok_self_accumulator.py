# schedlint-fixture-module: repro/obs/example.py
"""Positive fixture: the subscriber folds into its own accumulator and
treats the emitted event as read-only."""


class CountProbe:
    """Counts events into per-instance state; the event is untouched."""

    def __init__(self):
        self.seen = 0

    def __call__(self, event):
        self.seen += 1


def attach(bus):
    probe = CountProbe()
    bus.subscribe(probe)
    return probe
