# schedlint-fixture-module: repro/faultlab/example.py
"""Positive fixture: worker RNG seeded through the derivation tree.

Each cell's generator is minted from the spec's seed via
``derive_seed``, so draws are reproducible and per-worker disjoint."""

import random

from repro.sim.rng import derive_seed


def worker(payload):
    seed, cell = payload
    rng = random.Random(derive_seed(seed, "cell-%d" % cell))
    return cell + rng.random()


def launch(seed, cells):
    import multiprocessing
    with multiprocessing.Pool(2) as pool:
        return pool.map(worker, [(seed, cell) for cell in cells])
