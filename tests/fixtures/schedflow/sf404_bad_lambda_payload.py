# schedlint-fixture-module: repro/faultlab/example.py
"""Negative fixture: unpicklable callables shipped to a pool.

A lambda and a closure both fail to pickle the moment the pool tries to
ship them; with fork start-method they *appear* to work until the day
the start-method changes (SF404)."""


def launch(cells, factor):
    import multiprocessing

    def scale(cell):
        return factor * cell

    with multiprocessing.Pool(2) as pool:
        doubled = pool.map(lambda cell: cell * 2, cells)   # SF404
        scaled = pool.map(scale, cells)                    # SF404
    return doubled, scaled
