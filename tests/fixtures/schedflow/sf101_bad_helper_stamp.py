# schedlint-fixture-module: repro/sim/example.py
"""Negative fixture: host time reaches simulator state *through a
helper* — only an interprocedural analysis sees this (SF101)."""

import time


def _stamp():
    return time.time()


class EventLog:
    def append(self, event):
        self.started_at = _stamp()   # SF101: host taint via the helper
        self.last_event = event
