# schedlint-fixture-module: repro/cpu/example.py
"""Negative fixture: the host clock handed to the simulator's event
API — simulated time comes from the engine, never the host (SF102)."""

import time


class Watchdog:
    def arm(self, engine, callback):
        engine.at(time.time(), callback)   # SF102: host clock as sim time
