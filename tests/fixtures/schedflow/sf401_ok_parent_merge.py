# schedlint-fixture-module: repro/faultlab/example.py
"""Positive fixture: workers return values; only the parent — outside
worker context — folds them into the registry, in sorted order."""

RESULTS = {}


def worker(cell):
    return cell, cell * 2


def launch(cells):
    import multiprocessing
    with multiprocessing.Pool(2) as pool:
        pairs = pool.map(worker, cells)
    for key, value in sorted(pairs):
        RESULTS[key] = value
    return RESULTS
