# schedlint-fixture-module: repro/trace/example.py
"""Negative fixture: the per-second normalization hides a unit in a
magic literal (SF205)."""


def marker_rate(count, elapsed_ns):
    if elapsed_ns <= 0:
        return 0.0
    return count * 1_000_000_000 / elapsed_ns   # SF205: use units.SECOND
