# schedlint-fixture-module: repro/faultlab/example.py
"""Negative fixture: fork-unsafe RNG in worker context.

The process-global generator is cloned into every forked worker, so all
workers draw the *same* jitter sequence — and none of it is reachable
from the campaign's seed tree (SF403)."""

import random


def worker(cell):
    jitter = random.random()          # SF403: process-global generator
    rng = random.Random(1234)         # SF403: constant seed, same draws
    return cell + jitter + rng.random()


def launch(cells):
    import multiprocessing
    with multiprocessing.Pool(2) as pool:
        return pool.map(worker, cells)
