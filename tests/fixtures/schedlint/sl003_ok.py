# schedlint-fixture-module: repro/schedulers/example.py
"""Positive fixture: deterministic iteration patterns (SL003)."""


class Picker:
    def __init__(self):
        self.waiting = set()
        self.order = []          # lists iterate in insertion order
        self.index = {}          # dicts too

    def drain(self):
        for item in sorted(self.waiting):      # sorted() fixes the order
            print(item)
        for item in self.order:
            print(item)
        for key, value in self.index.items():
            print(key, value)
        total = sum(x for x in self.waiting)   # order-insensitive reducer
        present = 3 in self.waiting            # membership is fine
        return total, present
