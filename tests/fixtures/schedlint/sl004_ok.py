# schedlint-fixture-module: repro/core/example.py
"""Positive fixture: integral / exact tag arithmetic (SL004)."""

from fractions import Fraction

from repro.units import SECOND


class Tagged:
    def __init__(self, tags):
        self.tags = tags
        self.finish = Fraction(0)

    def charge(self, length, weight):
        self.finish = self.tags.advance(self.finish, length, weight)
        whole_quanta = length // weight        # floor division is fine
        duration = -((-length * SECOND) // weight)  # ceil-div idiom
        return whole_quanta, duration
