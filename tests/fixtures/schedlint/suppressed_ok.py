# schedlint-fixture-module: repro/core/example.py
# schedlint: disable-file=SL003
"""Positive fixture: suppression syntax silences findings (all rules)."""

import time


def measure():
    started = time.time()  # justified here  # schedlint: disable=SL001
    ratio = 1.0  # derived metric  # schedlint: disable=SL004,SL002
    for item in {1, 2, 3}:  # silenced by the disable-file line above
        print(item)
    return started, ratio
