# schedlint-fixture-module: repro/workloads/example.py
"""Negative fixture: unseeded randomness outside repro.sim.rng (SL002)."""

import random
from random import randint


def jitter():
    a = random.random()        # SL002: global unseeded generator
    b = randint(1, 6)          # SL002: same, via from-import
    rng = random.Random()      # SL002: Random() without a seed
    sys_rng = random.SystemRandom()  # SL002: unseedable
    random.shuffle([1, 2, 3])  # SL002: global generator
    return a, b, rng, sys_rng
