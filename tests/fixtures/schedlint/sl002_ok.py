# schedlint-fixture-module: repro/trace/example.py
"""Positive fixture: seeded randomness (SL002).

Targets a module outside the SL006 seed-tree scope: seeded ad-hoc RNGs
are fine in general code, just not in faultlab/workloads.
"""

import random

from repro.sim.rng import make_rng


def draws(seed):
    rng = make_rng(seed, "example")     # the preferred route
    explicit = random.Random(42)        # allowed: explicit seed
    keyword = random.Random(x=seed)     # allowed: explicit seed by keyword
    return rng.random(), explicit.random(), keyword.random()
