# schedlint-fixture-module: repro/workloads/example.py
"""Positive fixture: seeded randomness (SL002)."""

import random

from repro.sim.rng import make_rng


def draws(seed):
    rng = make_rng(seed, "example")     # the preferred route
    explicit = random.Random(42)        # allowed: explicit seed
    keyword = random.Random(x=seed)     # allowed: explicit seed by keyword
    return rng.random(), explicit.random(), keyword.random()
