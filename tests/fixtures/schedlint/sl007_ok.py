# schedlint-fixture-module: repro/workloads/example.py
"""Positive fixture: immutable module bindings and instance-held
accumulators satisfy SL007; ``__all__`` is exempt by convention."""

__all__ = ["Recorder", "KINDS", "LIMITS"]

KINDS = ("compute", "sleep", "io")
LIMITS = {"compute": 8, "sleep": 4}  # schedlint: disable=SL007 (reviewed: read-only table)


class Recorder:
    def __init__(self):
        self.cache = {}
        self.recent = []

    def remember(self, key, value):
        self.cache[key] = value
        self.recent.append(key)
