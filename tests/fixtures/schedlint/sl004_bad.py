# schedlint-fixture-module: repro/core/example.py
"""Negative fixture: float state in a tag-arithmetic module (SL004)."""


class Tagged:
    def __init__(self):
        self.finish = 0.0                      # SL004: float literal

    def charge(self, length, weight):
        self.finish += length / weight         # SL004: true division
        share = length
        share /= weight                        # SL004: /= division
        return share
