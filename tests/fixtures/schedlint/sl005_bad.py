# schedlint-fixture-module: repro/schedulers/example.py
"""Negative fixture: contract-breaking LeafScheduler subclasses (SL005)."""

from typing import Optional

from repro.schedulers.base import LeafScheduler


class MissingMethods(LeafScheduler):
    """SL005: defines no algorithm and misses most of the required set."""

    def add_thread(self, thread) -> None:
        pass

    def has_runnable(self) -> bool:
        return False


class WrongSignatures(LeafScheduler):
    """SL005: full method set, but renamed/reordered parameters."""

    algorithm = "wrong-signatures"

    def add_thread(self, t) -> None:            # SL005: 'thread' renamed
        pass

    def remove_thread(self, thread) -> None:
        pass

    def on_runnable(self, thread, when) -> None:  # SL005: 'now' renamed
        pass

    def on_block(self, now, thread) -> None:    # SL005: reordered
        pass

    def pick_next(self, now):
        return None

    def charge(self, thread, work, now, *extra) -> None:  # SL005: *args
        pass

    def has_runnable(self) -> bool:
        return False

    def quantum_for(self, thread, now) -> Optional[int]:  # SL005: extra param
        return None
