# schedlint-fixture-module: repro/workloads/example.py
"""Negative fixture: wall-clock and entropy reads (SL001)."""

import datetime
import os
import time
from datetime import datetime as dt


def stamp_event():
    started = time.time()          # SL001: wall clock
    tick = time.monotonic()        # SL001: host clock
    when = datetime.datetime.now()  # SL001: wall clock
    also = dt.utcnow()             # SL001: wall clock, via from-import alias
    seed = os.urandom(8)           # SL001: OS entropy
    return started, tick, when, also, seed
