# schedlint-fixture-module: repro/schedulers/example.py
"""Positive fixture: conforming LeafScheduler subclasses (SL005).

Includes the in-file inheritance pattern used by the WFQ family: an
underscore-prefixed abstract base supplies the machinery, concrete
subclasses supply ``algorithm`` (and may override selectively).
"""

from typing import Optional

from repro.schedulers.base import LeafScheduler


class CompleteScheduler(LeafScheduler):
    """Implements the full contract directly."""

    algorithm = "complete"

    def add_thread(self, thread) -> None:
        pass

    def remove_thread(self, thread) -> None:
        pass

    def on_runnable(self, thread, now) -> None:
        pass

    def on_block(self, thread, now) -> None:
        pass

    def pick_next(self, now):
        return None

    def charge(self, thread, work, now) -> None:
        pass

    def has_runnable(self) -> bool:
        return False

    def quantum_for(self, thread) -> Optional[int]:
        return None

    def should_preempt(self, current, candidate, now) -> bool:
        return False


class _SharedBase(LeafScheduler):
    """Abstract by convention (leading underscore): not itself checked."""

    def add_thread(self, thread) -> None:
        pass

    def remove_thread(self, thread) -> None:
        pass

    def on_runnable(self, thread, now) -> None:
        pass

    def on_block(self, thread, now) -> None:
        pass

    def pick_next(self, now):
        return None

    def charge(self, thread, work, now) -> None:
        pass

    def has_runnable(self) -> bool:
        return False


class InheritingScheduler(_SharedBase):
    """Concrete subclass completing the contract through its base."""

    algorithm = "inheriting"

    def on_block(self, thread, now) -> None:
        pass
