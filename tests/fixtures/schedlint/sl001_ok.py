# schedlint-fixture-module: repro/experiments/example.py
"""Positive fixture: the sanctioned ways to deal with time (SL001).

Simulation time comes from the engine; ``perf_counter`` is allowed for
measuring how long an experiment took to *compute* (reporting only).
"""

import time


def run(engine, machine):
    started = time.perf_counter()   # allowed: benchmarking, not state
    machine.run_until(engine.now + 1_000_000)
    elapsed = time.perf_counter() - started
    return engine.now, elapsed
