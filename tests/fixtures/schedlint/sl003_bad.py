# schedlint-fixture-module: repro/schedulers/example.py
"""Negative fixture: set iteration in a dispatch-path module (SL003)."""

from typing import Set


class Picker:
    def __init__(self):
        self.waiting = set()
        self.ready: Set[int] = set()

    def drain(self, extras):
        for item in self.waiting:          # SL003: attribute bound to set()
            print(item)
        names = [t for t in self.ready]    # SL003: annotated set attribute
        pool = {1, 2, 3}
        for item in pool:                  # SL003: local set literal
            print(item)
        for item in set(extras):           # SL003: set(...) call
            print(item)
        return names
