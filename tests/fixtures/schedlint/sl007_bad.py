# schedlint-fixture-module: repro/workloads/example.py
"""Negative fixture: module-level mutable containers (SL007)."""

import collections

CACHE = {}                              # SL007
RECENT = []                             # SL007
SEEN = collections.defaultdict(int)     # SL007


def remember(key, value):
    CACHE[key] = value
    RECENT.append(key)
    SEEN[key] += 1
