# schedlint-fixture-module: repro/faultlab/example.py
"""OK: faultlab randomness drawn from the campaign seed tree."""

from repro.sim.rng import Stream, make_rng


def arm(seed):
    rng = make_rng(seed, "fault/0")  # allowed: derives from the seed tree
    stream = Stream(seed)
    return rng, stream.rng("fault/1")  # allowed: named substream
