# schedlint-fixture-module: repro/faultlab/example.py
"""Bad: seeded RNGs constructed ad hoc inside the faultlab scope."""

import random
from random import Random


def arm(seed):
    rng = random.Random(seed)  # bad: bypasses the campaign seed tree
    backup = Random(1234)  # bad: aliased import, still ad hoc
    keyword = random.Random(x=seed)  # bad: keyword seed is still ad hoc
    return rng, backup, keyword
