"""Metrics registry: counters, gauges, histogram percentile math."""

import pytest

from repro.obs import events as ev
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SchedulerMetrics,
)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3


class TestHistogram:
    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram("h", (10, 10, 20))
        with pytest.raises(ValueError):
            Histogram("h", (20, 10))
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_rejects_negative_observations(self):
        with pytest.raises(ValueError):
            Histogram("h", (10,)).observe(-1)

    def test_bucket_edges_are_inclusive_upper(self):
        hist = Histogram("h", (10, 20))
        hist.observe(10)   # lands in the [0, 10] bucket
        hist.observe(11)   # lands in the (10, 20] bucket
        hist.observe(21)   # lands in the overflow bucket
        assert hist.counts == [1, 1, 1]

    def test_summary_statistics(self):
        hist = Histogram("h", (10, 20, 30))
        for value in (5, 10, 25):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 40
        assert hist.min_value == 5
        assert hist.max_value == 25
        assert hist.mean == pytest.approx(40 / 3)

    def test_percentiles_exact_at_bucket_edges(self):
        # One observation on each bucket's upper edge: the interpolation
        # is exact, so percentile ranks map to the edges themselves.
        hist = Histogram("h", (10, 20, 30, 40))
        for value in (10, 20, 30, 40):
            hist.observe(value)
        assert hist.percentile(25) == 10
        assert hist.percentile(50) == 20
        assert hist.percentile(75) == 30
        assert hist.percentile(100) == 40

    def test_percentile_interpolates_within_a_bucket(self):
        hist = Histogram("h", (100,))
        for __ in range(4):
            hist.observe(100)
        # All mass in [0, 100]: p50 targets rank 2 of 4 -> halfway up.
        assert hist.percentile(50) == 50

    def test_overflow_bucket_reports_max_observed(self):
        hist = Histogram("h", (10,))
        hist.observe(5)
        hist.observe(1_000)
        assert hist.percentile(99) == 1_000
        assert hist.max_value == 1_000

    def test_empty_histogram_is_calm(self):
        hist = Histogram("h", (10,))
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None

    def test_percentile_range_checked(self):
        hist = Histogram("h", (10,))
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            hist.percentile(-1)

    def test_snapshot_shape(self):
        hist = Histogram("h", (10, 20))
        hist.observe(15)
        snap = hist.snapshot()
        assert snap["type"] == "histogram"
        assert [b["le"] for b in snap["buckets"]] == [10, 20, "inf"]
        assert sum(b["count"] for b in snap["buckets"][:-1]) == 1


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_type_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")
        with pytest.raises(ValueError):
            registry.histogram("a")

    def test_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("n.count").inc(3)
        registry.gauge("n.level").set(7)
        registry.histogram("n.lat", (10,)).observe(4)
        snap = registry.snapshot()
        assert snap["n.count"] == 3
        assert snap["n.level"] == 7
        assert snap["n.lat"]["count"] == 1
        text = registry.render()
        assert "n.count" in text and "n.lat" in text
        assert registry.names() == ["n.count", "n.lat", "n.level"]


class TestSchedulerMetrics:
    def feed(self, metrics, kind, time, **data):
        metrics(ev.Event(kind, time, data))

    def test_dispatch_latency_from_runnable(self):
        metrics = SchedulerMetrics()
        self.feed(metrics, ev.RUNNABLE, 100, tid=1)
        self.feed(metrics, ev.DISPATCH, 350, tid=1, quantum_work=1_000)
        hist = metrics.registry.histogram("sched.dispatch_latency_ns")
        assert hist.count == 1
        assert hist.total == 250

    def test_run_delay_from_wake(self):
        metrics = SchedulerMetrics()
        self.feed(metrics, ev.WAKE, 500, tid=2)
        self.feed(metrics, ev.DISPATCH, 900, tid=2, quantum_work=1_000)
        hist = metrics.registry.histogram("sched.run_delay_ns")
        assert hist.count == 1
        assert hist.total == 400

    def test_quantum_overrun_is_clamped_at_zero(self):
        metrics = SchedulerMetrics()
        self.feed(metrics, ev.DISPATCH, 0, tid=1, quantum_work=1_000)
        self.feed(metrics, ev.CHARGE, 10, tid=1, work=400)  # under-run
        self.feed(metrics, ev.DISPATCH, 20, tid=1, quantum_work=1_000)
        self.feed(metrics, ev.CHARGE, 30, tid=1, work=1_500)  # over-run
        overrun = metrics.registry.histogram("sched.quantum_overrun_work")
        assert overrun.count == 2
        assert overrun.total == 500

    def test_counters_follow_the_stream(self):
        metrics = SchedulerMetrics()
        self.feed(metrics, ev.PREEMPT, 0, tid=1)
        self.feed(metrics, ev.INTERRUPT, 1, cpu=0, service=700)
        self.feed(metrics, ev.VIOLATION, 2, rule="x", node="/")
        snap = metrics.registry.snapshot()
        assert snap["sched.preemptions"] == 1
        assert snap["sched.interrupts"] == 1
        assert snap["sched.interrupt_ns"] == 700
        assert snap["sched.violations"] == 1

    def test_exit_cleans_pending_state(self):
        metrics = SchedulerMetrics()
        self.feed(metrics, ev.RUNNABLE, 0, tid=9)
        self.feed(metrics, ev.WAKE, 0, tid=9)
        self.feed(metrics, ev.EXIT, 5, tid=9)
        self.feed(metrics, ev.DISPATCH, 10, tid=9, quantum_work=0)
        # The stale runnable/wake stamps were dropped at exit, so the
        # dispatch after respawn-with-same-tid records no latency sample.
        assert metrics.registry.histogram("sched.dispatch_latency_ns").count == 0
        assert metrics.registry.histogram("sched.run_delay_ns").count == 0
