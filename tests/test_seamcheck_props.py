"""Property tests for the seamcheck C tokenizer/extractor.

The extractor is total by design: ``tokenize`` must never raise on any
string, and ``extract`` may raise only :class:`CParseError`. On well-
formed generated corpora (enums, structs, format strings) extraction
must round-trip exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools.schedflow import analyze_project
from repro.devtools.schedflow.cext import (
    CModule,
    CParseError,
    extract,
    scan_comments,
    tokenize,
)
from repro.devtools.schedflow.project import ProjectIndex
from repro.devtools.schedflow.seamrules import _parse_format

IDENT = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,11}", fullmatch=True)


# --- totality ------------------------------------------------------------


@given(st.text(max_size=400))
@settings(max_examples=200, deadline=None)
def test_tokenize_never_raises(text):
    tokens = tokenize(text)
    assert all(token.line >= 1 for token in tokens)


@given(st.text(max_size=400))
@settings(max_examples=200, deadline=None)
def test_extract_returns_module_or_parse_error(text):
    try:
        module = extract(text)
    except CParseError:
        return
    assert isinstance(module, CModule)


@given(st.text(alphabet="{}();=#/*\n aZ_09\"'\\", max_size=300))
@settings(max_examples=200, deadline=None)
def test_extract_survives_c_punctuation_soup(text):
    try:
        extract(text)
    except CParseError:
        pass


@given(st.text(max_size=300))
@settings(max_examples=100, deadline=None)
def test_scan_comments_never_raises(text):
    for line, comment in scan_comments(text):
        assert line >= 1
        assert isinstance(comment, str)


# --- tokenizer invariants -------------------------------------------------


@given(st.lists(st.sampled_from(
    ["int x;", "/* a */", "{", "}", "y = f(a, b);", '"str \\" lit"',
     "// line", "#define K 1", ""]), max_size=20))
@settings(max_examples=100, deadline=None)
def test_token_lines_are_monotonic(lines):
    text = "\n".join(lines)
    tokens = tokenize(text)
    numbers = [token.line for token in tokens]
    assert numbers == sorted(numbers)
    if numbers:
        assert numbers[-1] <= text.count("\n") + 1


@given(st.text(alphabet="{}();=+-\n aZ_09", max_size=300))
@settings(max_examples=100, deadline=None)
def test_tokenize_drops_only_whitespace(text):
    """Without comments or string literals, joining the token texts
    reproduces the input minus its whitespace."""
    joined = "".join(token.text for token in tokenize(text))
    assert joined == "".join(text.split())


# --- round trips over generated corpora -----------------------------------


@given(st.lists(IDENT, min_size=2, max_size=8, unique=True))
@settings(max_examples=100, deadline=None)
def test_enum_members_round_trip(names):
    body = ",\n    ".join(names)
    module = extract("enum {\n    %s\n};\n" % body)
    assert len(module.enums) == 1
    members = module.enums[0].members
    assert [member.name for member in members] == names
    assert [member.value for member in members] == list(range(len(names)))


@given(st.lists(IDENT, min_size=2, max_size=8, unique=True),
       st.integers(min_value=0, max_value=40))
@settings(max_examples=100, deadline=None)
def test_enum_explicit_start_round_trips(names, start):
    body = ("%s = %d,\n    " % (names[0], start)) + ",\n    ".join(names[1:])
    module = extract("enum {\n    %s\n};\n" % body)
    values = [member.value for member in module.enums[0].members]
    assert values == list(range(start, start + len(names)))


@given(st.lists(st.tuples(st.sampled_from(
    ["int", "long", "Py_ssize_t", "PyObject *", "double"]), IDENT),
    min_size=1, max_size=6, unique_by=lambda field: field[1]))
@settings(max_examples=100, deadline=None)
def test_struct_fields_round_trip(fields):
    body = "\n".join("    %s%s;" % (ctype if ctype.endswith("*")
                                    else ctype + " ", name)
                     for ctype, name in fields)
    module = extract("struct probe {\n%s\n};\n" % body)
    assert len(module.structs) == 1
    got = [field.name for field in module.structs[0].fields]
    assert got == [name for _ctype, name in fields]


@given(st.lists(st.sampled_from("OnisdlkK"), min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_simple_format_units_round_trip(units):
    fmt = "".join(units)
    assert _parse_format(fmt, build=False) == list(units)
    assert _parse_format(fmt, build=True) == list(units)


@given(st.lists(st.sampled_from("Onis"), min_size=0, max_size=5),
       st.sampled_from(["()", "[]", "{}", "|", ",", " "]))
@settings(max_examples=100, deadline=None)
def test_format_grouping_punctuation_is_transparent(units, noise):
    fmt = noise[:1] + "".join(units) + noise[1:] if len(noise) == 2 \
        else "".join(units) + noise
    assert _parse_format(fmt, build=False) == list(units)


def test_unbalanced_function_brace_is_parse_error():
    try:
        extract("static PyObject *\nbroken(void)\n{\n    if (x) {\n")
    except CParseError:
        return
    raise AssertionError("unbalanced braces must raise CParseError")


# --- analysis never crashes on arbitrary C --------------------------------


@given(st.text(alphabet="{}();=#/*\n aZ_09\"'\\", max_size=200))
@settings(max_examples=50, deadline=None)
def test_analyze_project_is_total_on_arbitrary_c(text):
    from repro.devtools.schedlint import LintError

    index = ProjectIndex()
    index.add_source(text, "fuzz.c")
    try:
        findings = analyze_project(index)
    except LintError:
        return
    assert isinstance(findings, list)
