"""Long-running mixed-workload stress scenarios with invariant sweeps."""

import pytest

from repro.core.structure import ADMIN_SET_WEIGHT
from repro.cpu.interrupts import PeriodicInterruptSource, PoissonInterruptSource
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.schedulers.svr4 import Svr4TimeSharing
from repro.sim.rng import make_rng
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.units import MS, SECOND
from repro.workloads.bursty import BurstyWorkload
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.interactive import InteractiveWorkload
from repro.workloads.mpeg import MpegDecodeWorkload, MpegVbrModel
from repro.workloads.periodic import PeriodicWorkload

from tests.conftest import Harness

KILO = 1000


def build_everything(harness: Harness):
    """A kitchen-sink machine: every leaf scheduler, every workload kind."""
    structure = harness.structure
    rt = structure.mknod("/rt", 2, scheduler=EdfScheduler(quantum=5 * MS))
    media = structure.mknod("/media", 3, scheduler=SfqScheduler())
    ts = structure.mknod("/ts", 2, scheduler=Svr4TimeSharing())
    threads = []

    def spawn(name, workload, leaf, weight=1, params=None):
        thread = SimThread(name, workload, weight=weight, params=params)
        leaf.attach_thread(thread)
        harness.machine.spawn(thread)
        threads.append(thread)
        return thread

    rt_wl = PeriodicWorkload(period=40 * MS, cost=2 * KILO)
    spawn("periodic", rt_wl, rt, params={"period": 40 * MS})
    spawn("video", MpegDecodeWorkload(
        MpegVbrModel(seed=3, mean_cost=3 * KILO), paced=True), media,
        weight=3)
    spawn("burst", BurstyWorkload(20 * KILO, 50 * MS,
                                  rng=make_rng(4, "s")), media)
    spawn("hog", DhrystoneWorkload(loop_cost=100, batch=10),
          harness.leaf)
    spawn("editor", InteractiveWorkload(2 * KILO, 80 * MS,
                                        rng=make_rng(5, "s")), ts,
          params={"priority": 40})
    spawn("cruncher", DhrystoneWorkload(loop_cost=100, batch=10), ts,
          params={"priority": 20})
    return threads, rt_wl


class TestKitchenSink:
    def test_long_mixed_run_invariants(self):
        harness = Harness()
        threads, rt_wl = build_everything(harness)
        harness.machine.add_interrupt_source(
            PeriodicInterruptSource(period=10 * MS, service=200_000))
        harness.machine.add_interrupt_source(PoissonInterruptSource(
            mean_interarrival=7 * MS, mean_service=100_000,
            rng=make_rng(6, "s"), exponential_service=True))
        # weight churn while running
        for second in range(1, 20, 3):
            harness.engine.at(second * SECOND,
                              (lambda s=second: harness.structure.admin(
                                  "/media", ADMIN_SET_WEIGHT,
                                  1 + s % 5)))
        harness.machine.run_until(20 * SECOND)

        stats = harness.machine.stats
        now = harness.engine.now
        # time partition holds to the nanosecond
        assert (stats.busy_time + stats.interrupt_time + stats.overhead_time
                + stats.idle_time(now)) == now
        # every thread made progress
        for thread in threads:
            assert thread.stats.work_done > 0
        # execution slices never overlap across all threads
        slices = []
        for thread in threads:
            slices.extend(
                (t0, t1) for t0, t1, __ in
                harness.recorder.trace_of(thread).slices)
        slices.sort()
        for (a0, a1), (b0, b1) in zip(slices, slices[1:]):
            assert a1 <= b0
        # recorder totals match thread stats
        for thread in threads:
            assert harness.recorder.trace_of(thread).total_work == \
                thread.stats.work_done

    def test_rt_deadlines_survive_the_chaos(self):
        harness = Harness()
        threads, rt_wl = build_everything(harness)
        harness.machine.run_until(20 * SECOND)
        from repro.trace.metrics import latency_slack
        rt_thread = threads[0]
        results = latency_slack(harness.recorder, rt_thread, rt_wl)
        assert len(results) > 400
        misses = sum(1 for __, __, slack in results if slack <= 0)
        assert misses == 0

    def test_churning_thread_population(self):
        """Threads spawn and exit continuously; nothing leaks or wedges."""
        harness = Harness()
        anchor = harness.spawn_dhrystone("anchor")
        generation = []

        def spawn_generation(index):
            from repro.threads.segments import (Compute,
                                                SegmentListWorkload,
                                                SleepFor)
            for k in range(3):
                thread = SimThread(
                    "g%d-%d" % (index, k),
                    SegmentListWorkload([Compute(5 * KILO),
                                         SleepFor(20 * MS),
                                         Compute(5 * KILO)]))
                harness.leaf.attach_thread(thread)
                harness.machine.spawn(thread)
                generation.append(thread)

        for index in range(20):
            harness.engine.at(index * 200 * MS,
                              (lambda i=index: spawn_generation(i)))
        harness.machine.run_until(10 * SECOND)
        assert all(t.state is ThreadState.EXITED for t in generation)
        assert len(generation) == 60
        # the leaf's SFQ queue is empty of exited threads
        assert len(harness.leaf.scheduler.queue) == 1  # just the anchor
        # anchor absorbed all remaining capacity
        total = anchor.stats.work_done + sum(
            t.stats.work_done for t in generation)
        assert total == pytest.approx(10_000 * KILO, rel=0.001)
