"""Integration tests replaying the paper's core scenarios end-to-end."""

import pytest

from repro.analysis.fairness import max_normalized_service_gap, sfq_fairness_bound
from repro.analysis.fc_server import fc_params_for_periodic_interrupts, fit_fc_params
from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import ADMIN_SET_WEIGHT, SchedulingStructure
from repro.cpu.interrupts import PeriodicInterruptSource
from repro.cpu.machine import Machine
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.schedulers.svr4 import Svr4TimeSharing
from repro.sim.engine import Simulator
from repro.threads.segments import Compute, SegmentListWorkload, SleepUntil
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.trace.timeline import merge_timeline
from repro.units import MS, SECOND

from tests.conftest import Harness

KILO = 1000


class TestFigure3Golden:
    """The §3 worked example, machine-level, exact."""

    def build(self):
        structure = SchedulingStructure()
        leaf = structure.mknod("/example", 1, scheduler=SfqScheduler())
        engine = Simulator()
        recorder = Recorder()
        machine = Machine(engine, HierarchicalScheduler(structure),
                          capacity_ips=1000, default_quantum=10 * MS,
                          tracer=recorder)
        a = SimThread("A", SegmentListWorkload(
            [Compute(50), SleepUntil(110 * MS), Compute(30)]), weight=1)
        b = SimThread("B", SegmentListWorkload(
            [Compute(40), SleepUntil(115 * MS), Compute(40)]), weight=2)
        leaf.attach_thread(a)
        leaf.attach_thread(b)
        machine.spawn(a)
        machine.spawn(b)
        return machine, recorder, leaf, a, b

    def test_execution_sequence_matches_paper(self):
        machine, recorder, leaf, a, b = self.build()
        machine.run_until(400 * MS)
        timeline = [(t0 // MS, t1 // MS, t.name)
                    for t0, t1, t in merge_timeline(recorder, [a, b])]
        assert timeline == [
            (0, 10, "A"), (10, 30, "B"), (30, 40, "A"), (40, 60, "B"),
            (60, 90, "A"),                      # B blocked at 60
            (110, 120, "A"), (120, 140, "B"),   # rejoin at 110/115
            (140, 150, "A"), (150, 170, "B"), (170, 180, "A"),
        ]

    def test_virtual_time_jumps_to_50_on_idle(self):
        machine, recorder, leaf, a, b = self.build()
        machine.run_until(100 * MS)  # idle period 90-110 ms
        assert leaf.scheduler.queue.virtual_time == 50

    def test_rejoining_threads_stamped_50(self):
        machine, recorder, leaf, a, b = self.build()
        machine.run_until(116 * MS)
        assert leaf.scheduler.queue.start_tag(a) == 50
        assert leaf.scheduler.queue.start_tag(b) == 50

    def test_service_proportional_while_both_runnable(self):
        machine, recorder, leaf, a, b = self.build()
        machine.run_until(60 * MS)
        # in [0, 60] both runnable: A got 20 ms, B got 40 ms (1:2)
        assert a.stats.work_done == 20
        assert b.stats.work_done == 40


class TestProtection:
    """§5.3: application classes are protected from each other."""

    def test_greedy_class_cannot_starve_others(self):
        structure = SchedulingStructure()
        greedy = structure.mknod("/greedy", 1, scheduler=SfqScheduler())
        meek = structure.mknod("/meek", 1, scheduler=Svr4TimeSharing())
        engine = Simulator()
        recorder = Recorder()
        machine = Machine(engine, HierarchicalScheduler(structure),
                          capacity_ips=1_000_000, default_quantum=10 * MS,
                          tracer=recorder)
        from repro.workloads.dhrystone import DhrystoneWorkload
        hogs = []
        for index in range(8):
            hog = SimThread("hog%d" % index,
                            DhrystoneWorkload(loop_cost=100, batch=10))
            greedy.attach_thread(hog)
            machine.spawn(hog)
            hogs.append(hog)
        victim = SimThread("victim", DhrystoneWorkload(loop_cost=100,
                                                       batch=10))
        meek.attach_thread(victim)
        machine.spawn(victim)
        machine.run_until(2 * SECOND)
        # the meek class holds its 50% regardless of 8 hogs next door
        assert victim.stats.work_done == pytest.approx(1_000_000, rel=0.02)

    def test_node_weight_change_takes_effect(self):
        harness = Harness()
        second_leaf = harness.structure.mknod("/other", 1,
                                              scheduler=SfqScheduler())
        a = harness.spawn_dhrystone("a")
        b = harness.spawn_dhrystone("b", leaf=second_leaf)
        harness.machine.run_until(SECOND)
        w_a_before = a.stats.work_done
        w_b_before = b.stats.work_done
        harness.structure.admin("/other", ADMIN_SET_WEIGHT, 3)
        harness.machine.run_until(2 * SECOND)
        gained_a = a.stats.work_done - w_a_before
        gained_b = b.stats.work_done - w_b_before
        assert gained_b == pytest.approx(3 * gained_a, rel=0.05)


class TestFairnessUnderFluctuation:
    """§3.1 property 1 on a machine whose bandwidth fluctuates."""

    def test_sfq_bound_holds_with_interrupts(self):
        harness = Harness()
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=2)
        harness.machine.add_interrupt_source(
            PeriodicInterruptSource(period=7 * MS, service=2 * MS))
        harness.machine.run_until(3 * SECOND)
        gap = max_normalized_service_gap(harness.recorder, a, b, 3 * SECOND)
        bound = sfq_fairness_bound(10 * KILO, 1, 10 * KILO, 2)
        assert gap <= bound + 1e-9

    def test_throughput_ratio_immune_to_fluctuation(self):
        harness = Harness()
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=2)
        harness.machine.add_interrupt_source(
            PeriodicInterruptSource(period=7 * MS, service=2 * MS))
        harness.machine.run_until(3 * SECOND)
        assert b.stats.work_done / a.stats.work_done == pytest.approx(
            2.0, rel=0.02)


class TestFcPropagation:
    """§3.1 property 3: FC CPU => FC per-thread service."""

    def test_aggregate_service_is_fc_with_analytic_params(self):
        harness = Harness()
        a = harness.spawn_dhrystone("a")
        b = harness.spawn_dhrystone("b")
        harness.machine.add_interrupt_source(
            PeriodicInterruptSource(period=10 * MS, service=2 * MS))
        harness.machine.run_until(3 * SECOND)
        analytic = fc_params_for_periodic_interrupts(1_000_000, 10 * MS,
                                                     2 * MS)
        points = []
        for t in range(0, 3001, 10):
            ts = t * MS
            total = (harness.recorder.trace_of(a).service_at(ts)
                     + harness.recorder.trace_of(b).service_at(ts))
            points.append((ts, total))
        fitted = fit_fc_params(points, analytic.rate_ips)
        # empirical burstiness within the analytic bound plus one quantum
        assert fitted.burstiness <= analytic.burstiness + 10 * KILO

    def test_thread_service_is_fc_at_its_share(self):
        harness = Harness()
        a = harness.spawn_dhrystone("a", weight=1)
        b = harness.spawn_dhrystone("b", weight=1)
        harness.machine.add_interrupt_source(
            PeriodicInterruptSource(period=10 * MS, service=2 * MS))
        harness.machine.run_until(3 * SECOND)
        trace = harness.recorder.trace_of(a)
        points = [(t * MS, trace.service_at(t * MS))
                  for t in range(0, 3001, 10)]
        # share = 50% of the 800k effective rate
        fitted = fit_fc_params(points, 400_000)
        # burstiness stays bounded by a couple of quanta
        assert fitted.burstiness <= 25 * KILO
