"""Text visualization: tables, charts, sparklines."""

import pytest

from repro.viz.ascii_chart import line_chart, sparkline
from repro.viz.table import format_table


class TestTable:
    def test_alignment_and_headers(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to the same width

    def test_title(self):
        out = format_table(["h"], [[1]], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456], [1234.5678], [2.5]])
        assert "0.1235" in out
        assert "1235" in out
        assert "2.500" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_capped_at_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_short_series_kept(self):
        assert len(sparkline([1, 2, 3], width=40)) == 3

    def test_monotone_series_monotone_chars(self):
        from repro.viz.ascii_chart import _SPARK_LEVELS
        chars = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
        levels = [_SPARK_LEVELS.index(c) for c in chars]
        assert levels == sorted(levels)

    def test_flat_series(self):
        assert set(sparkline([5, 5, 5])) <= {" "}


class TestLineChart:
    def test_contains_series_marks_and_legend(self):
        out = line_chart({"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
                         height=6, width=20)
        assert "u=up" in out
        assert "d=down" in out
        assert "u" in out
        assert "d" in out

    def test_empty_series(self):
        assert line_chart({}) == ""
        assert line_chart({"x": []}, title="t") == "t"

    def test_dimensions(self):
        out = line_chart({"a": [1, 2]}, height=5, width=10, title="T")
        lines = out.splitlines()
        # title + max + 5 rows + axis + min + legend
        assert len(lines) == 10
        chart_rows = [l for l in lines if l.startswith("|")]
        assert len(chart_rows) == 5
        assert all(len(l) == 11 for l in chart_rows)
