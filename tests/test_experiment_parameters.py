"""Experiments respond correctly to non-default parameters.

The harnesses are a public API (users sweep them); these tests pin the
parameterization: weights flow through to measured ratios, durations and
sizes scale the outputs, seeds keep everything reproducible.
"""

import pytest

from repro.experiments import figure1, figure5, figure7, figure8, figure10
from repro.units import MS, SECOND


class TestFigure1Parameters:
    def test_frame_count_controls_rows(self):
        result = figure1.run(frames=300)
        groups = dict(zip(result.column("group"), result.column("n")))
        assert groups["all frames"] == 300
        assert groups["I frames"] + groups["P frames"] + \
            groups["B frames"] == 300

    def test_seed_changes_trace(self):
        a = figure1.run(frames=300, seed=1)
        b = figure1.run(frames=300, seed=2)
        assert a.series["decode_ms"] != b.series["decode_ms"]

    def test_same_seed_reproduces(self):
        a = figure1.run(frames=300, seed=9)
        b = figure1.run(frames=300, seed=9)
        assert a.series["decode_ms"] == b.series["decode_ms"]


class TestFigure5Parameters:
    def test_thread_count_controls_rows(self):
        result = figure5.run(threads=3, duration=4 * SECOND)
        thread_rows = [row for row in result.rows
                       if str(row[0]).startswith("thread-")]
        assert len(thread_rows) == 3


class TestFigure7Parameters:
    def test_sweep_bounds(self):
        result = figure7.run_thread_sweep(max_threads=3,
                                          duration=SECOND)
        assert result.column("threads") == [1, 2, 3]

    def test_depth_step(self):
        result = figure7.run_depth_sweep(max_depth=12, step=4,
                                         duration=SECOND)
        assert result.column("interposed depth") == [0, 4, 8, 12]


class TestFigure8Parameters:
    def test_window_controls_row_count(self):
        result = figure8.run_partitioning(duration=4 * SECOND,
                                          window=2 * SECOND)
        assert len(result.rows) == 2

    def test_isolation_duration(self):
        result = figure8.run_isolation(duration=3 * SECOND,
                                       window=SECOND)
        assert len(result.rows) == 3


class TestFigure10Parameters:
    def test_custom_weights_change_ratio(self):
        result = figure10.run(duration=6 * SECOND, weights=(1, 3))
        # ratio follows the weights: 3.0 instead of the paper's 2.0
        for ratio in result.series["ratio"]:
            assert ratio == pytest.approx(3.0, rel=0.2)

    def test_equal_weights_equal_frames(self):
        result = figure10.run(duration=6 * SECOND, weights=(5, 5))
        for ratio in result.series["ratio"]:
            assert ratio == pytest.approx(1.0, rel=0.1)
