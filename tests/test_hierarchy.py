"""The hierarchical scheduler: setrun/sleep propagation, pick, charge, move."""

from fractions import Fraction

import pytest

from repro.core.hierarchy import PREEMPT_LEAF, HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.errors import SchedulingError
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.segments import SegmentListWorkload
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread


def make_thread(name="t", weight=1):
    return SimThread(name, SegmentListWorkload([]), weight=weight)


class TreeHarness:
    """root -> {classA -> {leaf1, leaf2}, leafB} without a machine."""

    def __init__(self):
        self.structure = SchedulingStructure()
        self.class_a = self.structure.mknod("/classA", 2)
        self.leaf1 = self.structure.mknod("/classA/leaf1", 1,
                                          scheduler=SfqScheduler())
        self.leaf2 = self.structure.mknod("/classA/leaf2", 1,
                                          scheduler=SfqScheduler())
        self.leaf_b = self.structure.mknod("/leafB", 1,
                                           scheduler=SfqScheduler())
        self.scheduler = HierarchicalScheduler(self.structure)

    def add_runnable(self, leaf, name="t", weight=1):
        thread = make_thread(name, weight)
        leaf.attach_thread(thread)
        thread.transition(ThreadState.RUNNABLE)
        self.scheduler.thread_runnable(thread, 0)
        return thread


@pytest.fixture
def tree():
    return TreeHarness()


class TestSetrunSleep:
    def test_setrun_propagates_to_root(self, tree):
        tree.add_runnable(tree.leaf1)
        assert tree.leaf1.runnable
        assert tree.class_a.runnable
        assert tree.structure.root.runnable

    def test_setrun_stops_at_runnable_ancestor(self, tree):
        tree.add_runnable(tree.leaf1)
        # second leaf under the same class: ancestors already runnable
        tree.add_runnable(tree.leaf2)
        assert tree.leaf2.runnable
        assert tree.class_a.queue.runnable_count == 2

    def test_sleep_propagates_while_empty(self, tree):
        thread = tree.add_runnable(tree.leaf1)
        tree.scheduler.thread_blocked(thread, 10)
        assert not tree.leaf1.runnable
        assert not tree.class_a.runnable
        assert not tree.structure.root.runnable

    def test_sleep_stops_at_busy_ancestor(self, tree):
        t1 = tree.add_runnable(tree.leaf1)
        tree.add_runnable(tree.leaf2)
        tree.scheduler.thread_blocked(t1, 10)
        assert not tree.leaf1.runnable
        assert tree.class_a.runnable
        assert tree.structure.root.runnable

    def test_has_runnable_tracks_root(self, tree):
        assert not tree.scheduler.has_runnable()
        thread = tree.add_runnable(tree.leaf_b)
        assert tree.scheduler.has_runnable()
        tree.scheduler.thread_blocked(thread, 0)
        assert not tree.scheduler.has_runnable()


class TestPick:
    def test_pick_walks_to_leaf_thread(self, tree):
        thread = tree.add_runnable(tree.leaf1)
        assert tree.scheduler.pick_next(0) is thread

    def test_pick_none_when_idle(self, tree):
        assert tree.scheduler.pick_next(0) is None

    def test_decision_depth(self, tree):
        tree.add_runnable(tree.leaf1)
        tree.scheduler.pick_next(0)
        assert tree.scheduler.decision_depth == 3  # root -> classA -> leaf1
        thread_b = tree.add_runnable(tree.leaf_b)
        # exhaust classA's tag advantage by charging it
        tree.scheduler.charge(tree.scheduler.pick_next(0), 100, 0)
        assert tree.scheduler.pick_next(0) is thread_b
        assert tree.scheduler.decision_depth == 2

    def test_weighted_split_between_classes(self, tree):
        ta = tree.add_runnable(tree.leaf1)  # classA weight 2
        tb = tree.add_runnable(tree.leaf_b)  # leafB weight 1
        service = {ta: 0, tb: 0}
        for __ in range(300):
            picked = tree.scheduler.pick_next(0)
            service[picked] += 10
            tree.scheduler.charge(picked, 10, 0)
        assert service[ta] == pytest.approx(2 * service[tb], rel=0.05)


class TestCharge:
    def test_charge_updates_all_ancestors(self, tree):
        thread = tree.add_runnable(tree.leaf1)
        picked = tree.scheduler.pick_next(0)
        tree.scheduler.charge(picked, 12, 0)
        # leaf scheduler: thread finish = 12 / weight 1
        assert tree.leaf1.scheduler.queue.finish_tag(thread) == 12
        # classA queue: leaf1 charged 12 at weight 1
        assert tree.class_a.queue.finish_tag(tree.leaf1) == 12
        # root queue: classA charged 12 at weight 2
        assert tree.structure.root.queue.finish_tag(tree.class_a) == Fraction(6)

    def test_residual_bandwidth_redistributed(self, tree):
        """Paper Example 1: an idle class's share goes to the others."""
        t1 = tree.add_runnable(tree.leaf1)
        t2 = tree.add_runnable(tree.leaf2)
        # leafB idle: leaf1 and leaf2 split classA's 100% equally
        service = {t1: 0, t2: 0}
        for __ in range(100):
            picked = tree.scheduler.pick_next(0)
            service[picked] += 10
            tree.scheduler.charge(picked, 10, 0)
        assert service[t1] == service[t2]


class TestMoveThread:
    def test_move_runnable_thread(self, tree):
        thread = tree.add_runnable(tree.leaf1)
        tree.scheduler.move_thread(thread, tree.leaf_b, now=0)
        assert thread.leaf is tree.leaf_b
        assert not tree.leaf1.runnable
        assert tree.leaf_b.runnable
        assert tree.scheduler.pick_next(0) is thread

    def test_move_running_thread_rejected(self, tree):
        thread = tree.add_runnable(tree.leaf1)
        thread.transition(ThreadState.RUNNING)
        with pytest.raises(SchedulingError):
            tree.scheduler.move_thread(thread, tree.leaf_b, now=0)

    def test_move_via_structure(self, tree):
        thread = tree.add_runnable(tree.leaf1)
        tree.structure.move(thread, "/leafB")
        assert thread.leaf is tree.leaf_b

    def test_move_sleeping_thread(self, tree):
        thread = make_thread()
        tree.leaf1.attach_thread(thread)
        thread.transition(ThreadState.SLEEPING)
        tree.scheduler.move_thread(thread, tree.leaf_b, now=0)
        assert thread.leaf is tree.leaf_b
        assert not tree.leaf_b.runnable


class TestAdmitRetire:
    def test_admit_requires_leaf(self, tree):
        with pytest.raises(SchedulingError):
            tree.scheduler.admit(make_thread())

    def test_retire_detaches_and_sleeps(self, tree):
        thread = tree.add_runnable(tree.leaf1)
        tree.scheduler.retire(thread, 0)
        assert thread.leaf is None
        assert not tree.leaf1.runnable


class TestPreemptPolicy:
    def test_default_never_preempts(self, tree):
        t1 = tree.add_runnable(tree.leaf1)
        t2 = tree.add_runnable(tree.leaf1)
        assert not tree.scheduler.should_preempt(t1, t2, 0)

    def test_invalid_policy_rejected(self, tree):
        with pytest.raises(ValueError):
            HierarchicalScheduler(SchedulingStructure(), "sometimes")

    def test_leaf_policy_delegates(self):
        structure = SchedulingStructure()

        class PreemptingSfq(SfqScheduler):
            def should_preempt(self, current, candidate, now):
                return True

        leaf = structure.mknod("/rt", 1, scheduler=PreemptingSfq())
        scheduler = HierarchicalScheduler(structure, PREEMPT_LEAF)
        t1, t2 = make_thread("a"), make_thread("b")
        leaf.attach_thread(t1)
        leaf.attach_thread(t2)
        assert scheduler.should_preempt(t1, t2, 0)

    def test_leaf_policy_ignores_cross_leaf(self, tree):
        tree.scheduler.preempt_policy = PREEMPT_LEAF
        t1 = tree.add_runnable(tree.leaf1)
        t2 = tree.add_runnable(tree.leaf_b)
        assert not tree.scheduler.should_preempt(t1, t2, 0)


class TestInvariantViolations:
    def test_pick_on_desynced_tree_raises(self, tree):
        # Corrupt the runnable flag directly: pick must detect it.
        tree.structure.root.runnable = True
        with pytest.raises(SchedulingError):
            tree.scheduler.pick_next(0)
