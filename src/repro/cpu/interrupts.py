"""Interrupt sources: the cause of CPU bandwidth fluctuation.

"In most operating systems processing of hardware interrupts occurs at the
highest priority.  Consequently, the effective bandwidth of CPU fluctuates
over time." (paper §3.1).  An interrupt source injects service demands that
pause whatever thread is running; the machine accounts the stolen time,
which lets :mod:`repro.analysis.fc_server` fit the Fluctuation-Constrained
parameters the paper's throughput/delay bounds are stated in.

* :class:`PeriodicInterruptSource` — e.g. a 100 Hz clock tick with a fixed
  handler cost; yields a deterministic FC server.
* :class:`PoissonInterruptSource` — e.g. network interrupts; exponential
  interarrivals with fixed or exponential service, yielding an EBF server.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.machine import Machine


class InterruptSource:
    """Base class; subclasses schedule arrivals against the machine's engine."""

    def start(self, machine: "Machine") -> None:
        """Begin generating interrupts; called by ``Machine.add_interrupt_source``."""
        raise NotImplementedError

    def stop(self) -> None:
        """Stop generating further interrupts (pending service completes)."""
        raise NotImplementedError


class PeriodicInterruptSource(InterruptSource):
    """Fixed-period interrupts with a fixed service time.

    With period ``P`` and service ``s`` the effective CPU is an FC server
    with rate ``C * (1 - s/P)`` and burstiness ``<= C * s`` instructions.
    """

    def __init__(self, period: int, service: int, phase: int = 0) -> None:
        if period <= 0:
            raise SimulationError("interrupt period must be positive")
        if not 0 <= service < period:
            raise SimulationError(
                "service time must satisfy 0 <= service < period "
                "(got service=%d, period=%d)" % (service, period))
        self.period = period
        self.service = service
        self.phase = phase
        self._machine: Optional["Machine"] = None
        self._handle = None
        self._stopped = False

    def start(self, machine: "Machine") -> None:
        self._machine = machine
        first = machine.engine.now + self.phase + self.period
        self._handle = machine.engine.at(first, self._fire,
                                         priority=machine.PRIORITY_INTERRUPT)

    def stop(self) -> None:
        self._stopped = True
        if self._machine is not None:
            self._machine.engine.cancel(self._handle)

    def _fire(self) -> None:
        assert self._machine is not None
        if self._stopped:
            return
        self._machine.interrupt(self.service)
        self._handle = self._machine.engine.after(
            self.period, self._fire, priority=self._machine.PRIORITY_INTERRUPT)


class PoissonInterruptSource(InterruptSource):
    """Poisson arrivals with fixed or exponentially distributed service."""

    def __init__(self, mean_interarrival: int, mean_service: int,
                 rng: Optional[random.Random] = None,
                 exponential_service: bool = False) -> None:
        if mean_interarrival <= 0 or mean_service <= 0:
            raise SimulationError("interarrival and service means must be positive")
        self.mean_interarrival = mean_interarrival
        self.mean_service = mean_service
        self.exponential_service = exponential_service
        self.rng = rng if rng is not None else random.Random(0)
        self._machine: Optional["Machine"] = None
        self._handle = None
        self._stopped = False

    def start(self, machine: "Machine") -> None:
        self._machine = machine
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True
        if self._machine is not None:
            self._machine.engine.cancel(self._handle)

    def _schedule_next(self) -> None:
        assert self._machine is not None
        gap = max(1, round(self.rng.expovariate(1.0 / self.mean_interarrival)))
        self._handle = self._machine.engine.after(
            gap, self._fire, priority=self._machine.PRIORITY_INTERRUPT)

    def _fire(self) -> None:
        assert self._machine is not None
        if self._stopped:
            return
        if self.exponential_service:
            service = max(1, round(self.rng.expovariate(1.0 / self.mean_service)))
        else:
            service = self.mean_service
        self._machine.interrupt(service)
        self._schedule_next()
