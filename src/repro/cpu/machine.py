"""The single-CPU machine.

The machine owns every thread state transition.  Its execution model:

* Threads are dispatched for **quanta measured in work** (instructions):
  a quantum of ``q`` nanoseconds grants ``q * capacity / 1s`` instructions.
  Interrupts pause the running thread without consuming its quantum, which
  is exactly the paper's model of quantum lengths "measured in units of
  instructions" on a fluctuating-bandwidth CPU.
* A dispatched thread runs in **bursts**: a burst ends at segment
  completion, quantum exhaustion, an interrupt arrival (pause/resume), or a
  preemption.  At the end of the *dispatch* (not of each burst) the
  scheduler is charged once with the total executed work — SFQ's
  "quantum length known only at completion" property.
* Interrupt service occupies the CPU at top priority; service times queue
  FIFO.  Stolen time is tracked so analysis code can fit FC/EBF parameters.
* Scheduling decisions and context switches consume CPU according to a
  pluggable :class:`~repro.cpu.costs.SchedulingCostModel` (Figure 7).

Event priorities at equal timestamps: interrupts fire first, then wakeups,
then burst completions, then deferred dispatch attempts.  This ordering is
deterministic and makes a thread waking exactly at a quantum boundary
eligible for that boundary's scheduling decision.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.engine import OPS as _ENGINE_OPS
from repro.cpu.costs import SchedulingCostModel
from repro.cpu.interface import TopScheduler
from repro.cpu.interrupts import InterruptSource
from repro.devtools.schedsan import maybe_wrap as _schedsan_wrap
from repro.errors import SchedulingError, SimulationError, WorkloadError
from repro.obs import events as obs
from repro.sim.engine import Simulator
from repro.sync.mutex import Acquire, Release
from repro.sync.semaphore import Down, Notify, Up, WaitOn
from repro.threads.segments import Compute, Exit, SleepFor, SleepUntil
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.units import MS, SECOND, work_from_time

#: module-level alias of the process-wide bus: emit-site guards are on
#: the per-dispatch hot path, and `_BUS.active` is one attribute lookup
#: cheaper than `obs.BUS.active`.
_BUS = obs.BUS

#: the compiled burst-completion tick (``None`` on the pure engine).  The
#: C function mirrors _on_burst_complete -> _account_burst ->
#: _finish_dispatch -> _maybe_dispatch for the common case (hierarchical
#: scheduler, SFQ leaf, zero-cost model, no tracing, no interrupt in
#: service) and bails to the Python methods for everything else.
_TURBO_TICK = getattr(_ENGINE_OPS, "machine_tick", None)

#: compiled wakeup entry (None on the pure engine).  Scheduled in place of
#: ``_on_wakeup`` with a ``(machine, thread)`` pair as the event argument;
#: like the turbo tick it re-checks tracing at fire time and delegates back
#: to ``_on_wakeup`` whenever the simplified path does not apply.
_TURBO_WAKE = getattr(_ENGINE_OPS, "machine_wake", None)

_OUTCOME_RUN = "run"
_OUTCOME_SLEEP = "sleep"
_OUTCOME_WAIT = "wait"  # blocked on a mutex; woken by the holder's release
_OUTCOME_EXIT = "exit"

#: safety bound on consecutive zero-length segments from one workload
_MAX_SEGMENT_PULLS = 1000


def _leaf_path(thread: SimThread) -> str:
    """Pathname of the thread's leaf node, "/" for flat schedulers."""
    leaf = thread.leaf
    return leaf.path if leaf is not None else "/"


class MachineStats:
    """Aggregate machine counters."""

    __slots__ = ("busy_time", "interrupt_time", "overhead_time", "dispatches",
                 "context_switches", "interrupts", "pauses", "preemptions")

    def __init__(self) -> None:
        self.busy_time = 0
        self.interrupt_time = 0
        self.overhead_time = 0
        self.dispatches = 0
        self.context_switches = 0
        self.interrupts = 0
        self.pauses = 0
        self.preemptions = 0

    def idle_time(self, now: int) -> int:
        """Time the CPU spent doing nothing up to ``now``."""
        return now - self.busy_time - self.interrupt_time - self.overhead_time


class Machine:
    """A single simulated CPU driven by a :class:`TopScheduler`."""

    PRIORITY_INTERRUPT = -10
    PRIORITY_WAKEUP = 0
    PRIORITY_COMPLETION = 10
    PRIORITY_DISPATCH = 20

    def __init__(self, engine: Simulator, scheduler: TopScheduler,
                 capacity_ips: int = 100_000_000, default_quantum: int = 20 * MS,
                 cost_model: Optional[SchedulingCostModel] = None,
                 tracer=None) -> None:
        if capacity_ips <= 0:
            raise SimulationError("capacity must be positive")
        if default_quantum <= 0:
            raise SimulationError("default quantum must be positive")
        self.engine = engine
        # Opt-in sanitizer (REPRO_SCHEDSAN=1): audits every scheduler
        # interaction below; a no-op pass-through when disabled.
        scheduler = _schedsan_wrap(scheduler)
        self.scheduler = scheduler
        self.capacity_ips = capacity_ips
        self.default_quantum = default_quantum
        #: default quantum pre-converted to instructions (per-dispatch path)
        self._default_quantum_work = work_from_time(default_quantum, capacity_ips)
        self.cost_model = cost_model if cost_model is not None else SchedulingCostModel()
        self.tracer = tracer
        self.stats = MachineStats()
        self.threads: List[SimThread] = []

        # Hierarchical schedulers want a clock for hsfq_move bookkeeping.
        if hasattr(scheduler, "clock"):
            scheduler.clock = lambda: self.engine.now

        # --- dispatch state ------------------------------------------------
        self.current: Optional[SimThread] = None
        self._last_ran: Optional[SimThread] = None
        self._quantum_work_left = 0
        self._quantum_work_done = 0
        self._burst_planned = 0
        self._burst_compute_start = 0
        self._burst_handle = None
        self._paused = False
        self._pending_dispatch = None
        # Compiled completion fast path.  Installed only for a plain
        # Machine (SmpMachine and subclasses keep the Python cycle); the
        # C tick re-checks every dynamic condition -- tracing, interrupt
        # service, cost model, wrapped scheduler -- at fire time and
        # delegates back to the Python methods, so installation is
        # unconditional beyond the exact-type check.
        self._turbo = _TURBO_TICK if type(self) is Machine else None
        self._turbo_wake = _TURBO_WAKE if type(self) is Machine else None

        # --- interrupt state ------------------------------------------------
        self._intr_busy_until = 0
        self._resume_handle = None
        self._sources: List[InterruptSource] = []

    # --- public API ------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time (ns)."""
        return self.engine.now

    def add_interrupt_source(self, source: InterruptSource) -> None:
        """Attach and start an interrupt source."""
        self._sources.append(source)
        source.start(self)

    def spawn(self, thread: SimThread, at: Optional[int] = None) -> SimThread:
        """Create ``thread`` now (or at absolute time ``at``) and return it.

        For a hierarchical scheduler, attach the thread to its leaf node
        *before* spawning.
        """
        self.threads.append(thread)
        if at is None or at <= self.engine.now:
            self._do_spawn(thread)
        else:
            self.engine.at(at, self._do_spawn, thread)
        return thread

    def run_until(self, time: int) -> None:
        """Advance the simulation to absolute ``time``.

        Accounting is settled at the horizon: a burst in flight at ``time``
        has its work-so-far booked (and then continues), so statistics and
        traces are exact as of ``time``.
        """
        self.engine.run_until(time)
        self._flush_burst()

    def run_for(self, duration: int) -> None:
        """Advance the simulation by ``duration`` nanoseconds."""
        self.run_until(self.engine.now + duration)

    def utilization(self) -> float:
        """Fraction of elapsed time the CPU spent executing threads."""
        if self.engine.now == 0:
            return 0.0
        return self.stats.busy_time / self.engine.now

    # --- spawning / workload advancement ----------------------------------

    def _do_spawn(self, thread: SimThread) -> None:
        now = self.engine.now
        thread.stats.created_at = now
        self.scheduler.admit(thread)
        if self.tracer is not None:
            self.tracer.on_spawn(thread, now)
        if _BUS.active:
            _BUS.emit(obs.SPAWN, now, tid=thread.tid, name=thread.name,
                         node=_leaf_path(thread), weight=thread.weight)
        self._settle(thread)

    def _settle(self, thread: SimThread) -> None:
        """Pull the next segment of an off-CPU thread and act on it.

        Used at spawn and at wakeup; the thread is NEW or SLEEPING.
        """
        now = self.engine.now
        outcome, wake_time = self._advance_workload(thread)
        if outcome == _OUTCOME_RUN:
            self._make_runnable(thread)
        elif outcome == _OUTCOME_SLEEP:
            if thread.state is not ThreadState.SLEEPING:
                thread.transition(ThreadState.SLEEPING)
            self._schedule_wakeup(thread, wake_time)
        elif outcome == _OUTCOME_WAIT:
            if thread.state is not ThreadState.SLEEPING:
                thread.transition(ThreadState.SLEEPING)
            if self.tracer is not None:
                self.tracer.on_block(thread, now, -1)
            if _BUS.active:
                _BUS.emit(obs.BLOCK, now, tid=thread.tid,
                             node=_leaf_path(thread), wake=-1)
        else:
            thread.transition(ThreadState.EXITED)
            thread.stats.exited_at = now
            self._release_held_mutexes(thread)
            if _BUS.active:
                _BUS.emit(obs.EXIT, now, tid=thread.tid,
                             node=_leaf_path(thread))
            self.scheduler.retire(thread, now)
            if self.tracer is not None:
                self.tracer.on_exit(thread, now)

    def _advance_workload(self, thread: SimThread):
        """Pull segments until the thread has work, sleeps, or exits."""
        now = self.engine.now
        for __ in range(_MAX_SEGMENT_PULLS):
            segment = thread.workload.next_segment(now, thread)
            if segment is None or isinstance(segment, Exit):
                return _OUTCOME_EXIT, None
            if isinstance(segment, Compute):
                thread.remaining_work = segment.work
                return _OUTCOME_RUN, None
            if isinstance(segment, SleepFor):
                if segment.duration == 0:
                    continue
                return _OUTCOME_SLEEP, now + segment.duration
            if isinstance(segment, SleepUntil):
                if segment.wakeup <= now:
                    continue
                return _OUTCOME_SLEEP, segment.wakeup
            if isinstance(segment, Acquire):
                if segment.mutex.try_acquire(thread):
                    thread.held_mutexes.append(segment.mutex)
                    continue
                segment.mutex.enqueue_waiter(thread)
                return _OUTCOME_WAIT, None
            if isinstance(segment, Release):
                self._release_mutex(thread, segment.mutex)
                continue
            if isinstance(segment, Down):
                if segment.semaphore.try_down(thread):
                    continue
                segment.semaphore.enqueue_waiter(thread)
                return _OUTCOME_WAIT, None
            if isinstance(segment, Up):
                granted = segment.semaphore.up()
                if granted is not None:
                    self._defer_wake(granted)
                continue
            if isinstance(segment, WaitOn):
                segment.queue.enqueue_waiter(thread)
                return _OUTCOME_WAIT, None
            if isinstance(segment, Notify):
                for woken in segment.queue.notify(segment.count):
                    self._defer_wake(woken)
                continue
            raise WorkloadError(
                "workload %r produced unknown segment %r"
                % (thread.workload, segment))
        raise WorkloadError(
            "workload for %r produced %d zero-length segments in a row"
            % (thread, _MAX_SEGMENT_PULLS))

    def _make_runnable(self, thread: SimThread) -> None:
        now = self.engine.now
        thread.transition(ThreadState.RUNNABLE)
        thread.last_runnable_at = now
        if self.tracer is not None:
            self.tracer.on_runnable(thread, now)
        if _BUS.active:
            _BUS.emit(obs.RUNNABLE, now, tid=thread.tid,
                         node=_leaf_path(thread))
        self.scheduler.thread_runnable(thread, now)
        if (self.current is not None
                and not self._paused
                and self.scheduler.should_preempt(self.current, thread, now)):
            self._preempt_current()
        self._maybe_dispatch()

    # --- sleep / wakeup ----------------------------------------------------

    def _schedule_wakeup(self, thread: SimThread, wake_time: int) -> None:
        if self.tracer is not None:
            self.tracer.on_block(thread, self.engine.now, wake_time)
        if _BUS.active:
            _BUS.emit(obs.BLOCK, self.engine.now, tid=thread.tid,
                         node=_leaf_path(thread), wake=wake_time)
        if self._turbo_wake is not None:
            thread.wakeup_handle = self.engine.at(
                wake_time, self._turbo_wake, (self, thread),
                priority=self.PRIORITY_WAKEUP)
        else:
            thread.wakeup_handle = self.engine.at(
                wake_time, self._on_wakeup, thread,
                priority=self.PRIORITY_WAKEUP)

    def _on_wakeup(self, thread: SimThread) -> None:
        thread.wakeup_handle = None
        thread.stats.wakeups += 1
        if self.tracer is not None:
            self.tracer.on_wake(thread, self.engine.now)
        if _BUS.active:
            _BUS.emit(obs.WAKE, self.engine.now, tid=thread.tid,
                         node=_leaf_path(thread))
        if thread.remaining_work > 0:
            # Woke with unfinished compute (blocked mid-segment cannot
            # happen today, but a moved/suspended thread resumes here).
            self._make_runnable(thread)
        else:
            self._settle(thread)

    # --- dispatching ---------------------------------------------------------

    def _maybe_dispatch(self) -> None:
        if self.current is not None:
            return
        now = self.engine.now
        if now < self._intr_busy_until:
            self._defer_dispatch(self._intr_busy_until)
            return
        # One scheduler call instead of has_runnable() + pick_next():
        # pick_next returns None when nothing is runnable (interface
        # contract), so has_runnable() is only consulted to keep the
        # contract-violation diagnostic.
        thread = self.scheduler.pick_next(now)
        if thread is None:
            if self.scheduler.has_runnable():
                raise SchedulingError(
                    "scheduler claimed runnable work but picked None")
            return
        if thread.state is not ThreadState.RUNNABLE:
            raise SchedulingError(
                "scheduler picked non-runnable thread %r" % (thread,))
        switched = thread is not self._last_ran
        overhead = self.cost_model.dispatch_cost(
            self.scheduler.decision_depth, switched)
        # RUNNABLE was verified above and RUNNABLE -> RUNNING is the only
        # edge out of it, so the transition() validation is redundant here.
        thread.state = ThreadState.RUNNING
        self.current = thread
        self._last_ran = thread
        self.stats.dispatches += 1
        thread.stats.dispatches += 1
        if switched:
            self.stats.context_switches += 1
        self.stats.overhead_time += overhead
        quantum_ns = self.scheduler.quantum_for(thread)
        if quantum_ns is None:
            quantum_ns = self.default_quantum
            self._quantum_work_left = self._default_quantum_work
        else:
            self._quantum_work_left = work_from_time(quantum_ns, self.capacity_ips)
        if self._quantum_work_left <= 0:
            raise SimulationError(
                "quantum of %d ns yields zero instructions at %d ips"
                % (quantum_ns, self.capacity_ips))
        self._quantum_work_done = 0
        if self.tracer is not None:
            self.tracer.on_dispatch(thread, now)
        if _BUS.active:
            _BUS.emit(obs.DISPATCH, now, tid=thread.tid,
                         name=thread.name, node=_leaf_path(thread), cpu=0,
                         depth=self.scheduler.decision_depth,
                         switched=switched, overhead_ns=overhead,
                         quantum_work=self._quantum_work_left)
        self._begin_burst(overhead)

    def _defer_dispatch(self, at_time: int) -> None:
        if self._pending_dispatch is not None and not self._pending_dispatch.cancelled:
            return
        self._pending_dispatch = self.engine.at(
            at_time, self._deferred_dispatch, priority=self.PRIORITY_DISPATCH)

    def _deferred_dispatch(self) -> None:
        self._pending_dispatch = None
        self._maybe_dispatch()

    # --- burst execution -------------------------------------------------------

    def _begin_burst(self, overhead_ns: int = 0) -> None:
        assert self.current is not None
        thread = self.current
        planned = min(thread.remaining_work, self._quantum_work_left)
        if planned <= 0:
            raise SimulationError("attempted to start an empty burst for %r" % (thread,))
        self._burst_planned = planned
        self._burst_compute_start = self.engine.now + overhead_ns
        self._paused = False
        # time_from_work(planned, capacity) inlined: planned > 0 was just
        # checked and capacity was validated at construction.
        duration = -((-planned * SECOND) // self.capacity_ips)
        if self._turbo is not None:
            self._burst_handle = self.engine.at(
                self._burst_compute_start + duration, self._turbo, self,
                priority=self.PRIORITY_COMPLETION)
        else:
            self._burst_handle = self.engine.at(
                self._burst_compute_start + duration, self._on_burst_complete,
                priority=self.PRIORITY_COMPLETION)

    def _account_burst(self, executed: int) -> None:
        """Book ``executed`` instructions of the current burst."""
        assert self.current is not None
        thread = self.current
        now = self.engine.now
        if executed <= 0:
            return
        thread.remaining_work -= executed
        if thread.remaining_work < 0:
            raise SimulationError("burst executed more work than remained")
        self._quantum_work_left -= executed
        self._quantum_work_done += executed
        elapsed = max(0, now - self._burst_compute_start)
        thread.stats.work_done += executed
        thread.stats.cpu_time += elapsed
        self.stats.busy_time += elapsed
        if self.tracer is not None:
            self.tracer.on_slice(thread, self._burst_compute_start, now, executed)
        if _BUS.active:
            _BUS.emit(obs.SLICE, now, tid=thread.tid, name=thread.name,
                         node=_leaf_path(thread), cpu=0,
                         start=self._burst_compute_start, work=executed)

    def _on_burst_complete(self) -> None:
        self._burst_handle = None
        self._account_burst(self._burst_planned)
        self._finish_dispatch()

    def _executed_so_far(self) -> int:
        """Work completed in the active burst, for pause/preempt accounting."""
        elapsed = self.engine.now - self._burst_compute_start
        if elapsed <= 0:
            return 0
        done = work_from_time(elapsed, self.capacity_ips)
        return min(done, self._burst_planned)

    def _stop_burst(self) -> None:
        """Cancel the completion event and account partial work."""
        self.engine.cancel(self._burst_handle)
        self._burst_handle = None
        self._account_burst(self._executed_so_far())

    def _flush_burst(self) -> None:
        """Settle the active burst's partial work without ending the dispatch."""
        if self.current is None or self._paused or self._burst_handle is None:
            return
        self._stop_burst()
        if self.current.remaining_work == 0 or self._quantum_work_left == 0:
            self._finish_dispatch()
        else:
            self._begin_burst(0)

    def _preempt_current(self) -> None:
        assert self.current is not None
        self.stats.preemptions += 1
        self.current.stats.preemptions += 1
        if _BUS.active:
            _BUS.emit(obs.PREEMPT, self.engine.now, tid=self.current.tid,
                         node=_leaf_path(self.current))
        self._stop_burst()
        self._finish_dispatch()

    def _finish_dispatch(self) -> None:
        """End the current dispatch: settle the workload, charge, reschedule."""
        assert self.current is not None
        thread = self.current
        now = self.engine.now
        self.current = None
        self._paused = False

        if thread.remaining_work > 0:
            outcome, wake_time = _OUTCOME_RUN, None
        else:
            thread.stats.segments_completed += 1
            if self.tracer is not None:
                self.tracer.on_segment_complete(thread, now)
            outcome, wake_time = self._advance_workload(thread)

        # State first, then charge: schedulers observe the post-transition
        # runnability (see LeafScheduler contract).  The current thread is
        # RUNNING (only the machine assigns states, and dispatch set it),
        # and every RUNNING -> X edge is legal, so assign directly instead
        # of paying transition() validation on the per-dispatch path.
        if outcome == _OUTCOME_RUN:
            thread.state = ThreadState.RUNNABLE
        elif outcome in (_OUTCOME_SLEEP, _OUTCOME_WAIT):
            thread.state = ThreadState.SLEEPING
            thread.stats.blocks += 1
        else:
            thread.state = ThreadState.EXITED
            thread.stats.exited_at = now

        if self._quantum_work_done > 0:
            self.scheduler.charge(thread, self._quantum_work_done, now)
            if self.tracer is not None:
                self.tracer.on_charge(thread, now, self._quantum_work_done)
            if _BUS.active:
                _BUS.emit(obs.CHARGE, now, tid=thread.tid,
                             node=_leaf_path(thread),
                             work=self._quantum_work_done)
        self._quantum_work_done = 0
        self._quantum_work_left = 0

        if outcome == _OUTCOME_SLEEP:
            self.scheduler.thread_blocked(thread, now)
            self._schedule_wakeup(thread, wake_time)
        elif outcome == _OUTCOME_WAIT:
            self.scheduler.thread_blocked(thread, now)
            if self.tracer is not None:
                self.tracer.on_block(thread, now, -1)
            if _BUS.active:
                _BUS.emit(obs.BLOCK, now, tid=thread.tid,
                             node=_leaf_path(thread), wake=-1)
        elif outcome == _OUTCOME_EXIT:
            self._release_held_mutexes(thread)
            if _BUS.active:
                _BUS.emit(obs.EXIT, now, tid=thread.tid,
                             node=_leaf_path(thread))
            self.scheduler.retire(thread, now)
            if self.tracer is not None:
                self.tracer.on_exit(thread, now)

        self._maybe_dispatch()

    # --- mutexes -----------------------------------------------------------

    def _defer_wake(self, thread: SimThread) -> None:
        """Wake a synchronization waiter via an immediate engine event.

        Deferring ensures the waking thread's own dispatch is fully
        settled (charged, requeued) before the waiter competes for the
        CPU.
        """
        self.engine.at(self.engine.now, self._on_wakeup, thread,
                       priority=self.PRIORITY_WAKEUP)

    def _release_mutex(self, thread: SimThread, mutex) -> None:
        """Release ``mutex``; the granted waiter (if any) wakes deferred."""
        thread.held_mutexes.remove(mutex)
        granted = mutex.release(thread)
        if granted is not None:
            granted.held_mutexes.append(mutex)
            self._defer_wake(granted)

    def _release_held_mutexes(self, thread: SimThread) -> None:
        """An exiting thread implicitly releases everything it still holds."""
        while thread.held_mutexes:
            self._release_mutex(thread, thread.held_mutexes[-1])

    # --- interrupts ----------------------------------------------------------

    def interrupt(self, service: int) -> None:
        """An interrupt arrived demanding ``service`` ns of CPU at top priority."""
        if service <= 0:
            return
        now = self.engine.now
        self.stats.interrupts += 1
        self.stats.interrupt_time += service
        busy_until = max(now, self._intr_busy_until) + service
        self._intr_busy_until = busy_until
        if self.tracer is not None:
            self.tracer.on_interrupt(now, service)
        if _BUS.active:
            _BUS.emit(obs.INTERRUPT, now, cpu=0, service=service)
        if self.current is not None:
            if not self._paused:
                self.stats.pauses += 1
                self._stop_burst()
                self._paused = True
            # (Re)schedule the resume for when interrupt service drains.
            self.engine.cancel(self._resume_handle)
            self._resume_handle = self.engine.at(
                busy_until, self._resume_current, priority=self.PRIORITY_DISPATCH)

    def _resume_current(self) -> None:
        self._resume_handle = None
        if self.current is None or not self._paused:
            return
        # The pause may have consumed the whole quantum or segment.
        if self.current.remaining_work == 0 or self._quantum_work_left == 0:
            self._finish_dispatch()
        else:
            self._begin_burst(0)
