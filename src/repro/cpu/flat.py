"""A flat top-level scheduler: one leaf scheduler as the whole machine.

This is the "unmodified kernel" baseline of the paper's experiments: the
same machine, the same workloads, but a single scheduler (e.g. SVR4
time-sharing) with no hierarchy on top.  Figures 5 and 7 compare runs under
:class:`FlatScheduler` against runs under the hierarchical scheduler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from repro.cpu.interface import TopScheduler
from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.schedulers.base import LeafScheduler
    from repro.threads.thread import SimThread


class FlatScheduler(TopScheduler):
    """Adapter exposing a single :class:`LeafScheduler` as a machine scheduler."""

    def __init__(self, scheduler: "LeafScheduler") -> None:
        self.leaf_scheduler = scheduler
        self._threads: Set["SimThread"] = set()

    def admit(self, thread: "SimThread") -> None:
        if thread in self._threads:
            raise SchedulingError("thread %r already admitted" % (thread,))
        self._threads.add(thread)
        self.leaf_scheduler.add_thread(thread)

    def retire(self, thread: "SimThread", now: int) -> None:
        self.leaf_scheduler.on_block(thread, now)
        self.leaf_scheduler.remove_thread(thread)
        self._threads.discard(thread)

    def thread_runnable(self, thread: "SimThread", now: int) -> None:
        self.leaf_scheduler.on_runnable(thread, now)

    def thread_blocked(self, thread: "SimThread", now: int) -> None:
        self.leaf_scheduler.on_block(thread, now)

    def pick_next(self, now: int) -> Optional["SimThread"]:
        return self.leaf_scheduler.pick_next(now)

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        self.leaf_scheduler.charge(thread, work, now)

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return self.leaf_scheduler.quantum_for(thread)

    def should_preempt(self, current: "SimThread", candidate: "SimThread",
                       now: int) -> bool:
        return self.leaf_scheduler.should_preempt(current, candidate, now)

    def has_runnable(self) -> bool:
        return self.leaf_scheduler.has_runnable()
