"""Scheduling overhead models.

The paper's Figure 7 measures how much throughput the hierarchical
scheduler costs relative to the unmodified kernel.  On a simulator that
cost must be modelled explicitly: every dispatch consumes
``dispatch_cost(depth, switched)`` nanoseconds of CPU before the thread
starts executing.  ``depth`` is the number of tree levels the scheduling
decision traversed (1 for a flat scheduler) and ``switched`` is whether the
CPU switched to a different thread than it last ran.

The default :class:`LinearCostModel` parameters are loosely calibrated to
the mid-1990s hardware of the paper (a SPARCstation 10): a few microseconds
per decision, ~10 microseconds per context switch.  The Figure 7 benchmarks
also measure the *actual* wall-clock cost of this Python implementation's
pick/charge path with pytest-benchmark.
"""

from __future__ import annotations

from repro.units import US


class SchedulingCostModel:
    """Base cost model: scheduling is free."""

    def dispatch_cost(self, depth: int, switched: bool) -> int:
        """Nanoseconds of CPU consumed by one scheduling decision."""
        return 0


class LinearCostModel(SchedulingCostModel):
    """Cost linear in the depth of the scheduling decision.

    ``cost = base + per_level * depth (+ context_switch when switching)``
    """

    def __init__(self, base_ns: int = 2 * US, per_level_ns: int = 1 * US,
                 context_switch_ns: int = 10 * US) -> None:
        if min(base_ns, per_level_ns, context_switch_ns) < 0:
            raise ValueError("cost model parameters must be non-negative")
        self.base_ns = base_ns
        self.per_level_ns = per_level_ns
        self.context_switch_ns = context_switch_ns

    def dispatch_cost(self, depth: int, switched: bool) -> int:
        cost = self.base_ns + self.per_level_ns * depth
        if switched:
            cost += self.context_switch_ns
        return cost
