"""The simulated CPU.

* :mod:`repro.cpu.machine` — the single-CPU machine: dispatching, quantum
  accounting, blocking/wakeup, interrupt pauses, overhead models;
* :mod:`repro.cpu.interrupts` — top-priority interrupt sources (the cause
  of bandwidth fluctuation, modelled as in the paper's FC/EBF discussion);
* :mod:`repro.cpu.costs` — scheduling-decision and context-switch cost
  models (the Figure 7 overhead experiments);
* :mod:`repro.cpu.flat` — a flat adapter running one leaf scheduler as the
  whole machine ("unmodified kernel" baseline);
* :mod:`repro.cpu.interface` — the machine/scheduler contract.
"""

from repro.cpu.costs import LinearCostModel, SchedulingCostModel
from repro.cpu.flat import FlatScheduler
from repro.cpu.interface import TopScheduler
from repro.cpu.interrupts import PeriodicInterruptSource, PoissonInterruptSource
from repro.cpu.machine import Machine, MachineStats

__all__ = [
    "Machine",
    "MachineStats",
    "TopScheduler",
    "FlatScheduler",
    "SchedulingCostModel",
    "LinearCostModel",
    "PeriodicInterruptSource",
    "PoissonInterruptSource",
]
