"""The contract between the CPU machine and a top-level scheduler.

The machine drives whatever scheduler it is given through this interface;
two implementations exist:

* :class:`repro.core.hierarchy.HierarchicalScheduler` — the paper's
  hierarchical SFQ framework;
* :class:`repro.cpu.flat.FlatScheduler` — a single leaf scheduler standing
  in for an unmodified kernel (used as the baseline in Figures 5 and 7).

All times are integer nanoseconds; all work is integer instructions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class TopScheduler:
    """Abstract top-level scheduler driven by :class:`repro.cpu.machine.Machine`."""

    def admit(self, thread: "SimThread") -> None:
        """Register a newly spawned thread (not yet runnable)."""
        raise NotImplementedError

    def retire(self, thread: "SimThread", now: int) -> None:
        """Deregister an exited thread."""
        raise NotImplementedError

    def thread_runnable(self, thread: "SimThread", now: int) -> None:
        """``thread`` became eligible to run (spawn or wakeup)."""
        raise NotImplementedError

    def thread_blocked(self, thread: "SimThread", now: int) -> None:
        """``thread`` blocked (sleep or I/O); it was previously runnable."""
        raise NotImplementedError

    def pick_next(self, now: int) -> Optional["SimThread"]:
        """Select the next thread to run, or ``None`` when nothing is runnable.

        The selected thread stays logically queued until the matching
        :meth:`charge` (SFQ's "in service" notion).
        """
        raise NotImplementedError

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        """Account ``work`` instructions executed by ``thread``.

        Called exactly once per dispatch, at quantum expiry, block, exit, or
        preemption — with the *actual* work executed, which is how SFQ
        avoids needing quantum lengths a priori.
        """
        raise NotImplementedError

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        """Quantum length (ns) for the next dispatch; ``None`` = machine default."""
        raise NotImplementedError

    def should_preempt(self, current: "SimThread", candidate: "SimThread",
                       now: int) -> bool:
        """Whether ``candidate`` waking up should preempt ``current`` mid-quantum.

        The paper's implementation is non-preemptive within a quantum; the
        default everywhere is False.
        """
        return False

    def has_runnable(self) -> bool:
        """True when some thread is eligible to run."""
        raise NotImplementedError

    @property
    def decision_depth(self) -> int:
        """Tree depth traversed by the most recent :meth:`pick_next`.

        Used by the scheduling-cost model for the Figure 7 overhead
        experiments; flat schedulers report 1.
        """
        return 1
