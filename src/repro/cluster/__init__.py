"""``repro.cluster``: sharded multi-host simulation with a placement tier.

The paper composes schedulers per node *within one host*; this package
models the next tier up (OS -> cluster in the scheduler-taxonomy survey):
a fleet of per-host simulators — each running its own HSFQ hierarchy on a
``cpu`` or ``smp`` machine — fed by a top-level **placement scheduler**
that admits tenants, balances load, migrates tenants between hosts, and
reacts to host churn.

Determinism is the design center, lifted from faultlab's worker-pool
discipline:

* hosts are partitioned across worker processes by **name-sorted
  round-robin buckets** (:func:`repro.cluster.shards.partition_hosts`);
* every stochastic input draws from :func:`repro.sim.rng.derive_seed`
  substreams keyed by *names*, never by process or shard state;
* cross-host events (tenant placement, migration, host join/leave) are
  exchanged **only at epoch barriers** through a sort-key-merged message
  log (:mod:`repro.cluster.messages`);

so ``--shards 1`` and ``--shards N`` produce byte-identical merged
traces, placement logs, and cluster schedstats — asserted by
``python -m repro.cluster gate`` and the cluster-mode CI job.

See ``docs/CLUSTER.md`` for the epoch/barrier model and a worked example.
"""

from repro.cluster.placement import PLACEMENTS, PlacementPolicy
from repro.cluster.runner import ClusterResult, run_cluster
from repro.cluster.scenario import CLUSTER_SCENARIOS, cluster_scenarios
from repro.cluster.spec import ClusterSpec, HostSpec, TenantSpec

__all__ = [
    "CLUSTER_SCENARIOS",
    "ClusterResult",
    "ClusterSpec",
    "HostSpec",
    "PLACEMENTS",
    "PlacementPolicy",
    "TenantSpec",
    "cluster_scenarios",
    "run_cluster",
]
