"""One simulated host: an HSFQ machine plus its barrier protocol glue.

A :class:`HostSim` wraps a complete single-host simulation — integer-ns
:class:`~repro.sim.engine.Simulator`, scheduling structure, and a
``cpu``/``smp`` machine — and speaks the cluster's epoch protocol:

* :meth:`apply` consumes directives (spawn / migrate / prepare-down)
  at a barrier, before the next epoch runs;
* :meth:`advance` runs the machine to the next barrier, with the host's
  own :class:`~repro.obs.schedstat.SchedStat` (and optional binlog
  writer) subscribed on the global bus only for the duration of the
  call, so co-resident hosts in one shard never see each other's events;
* :meth:`barrier_report` emits the host's outbox for the epoch —
  tenant exits and migrate-outs at their exact simulated times, then
  drain/load reports at the barrier instant — already in message sort
  order.

Migration and failover never teleport running state.  A migrating
tenant's workload is wrapped so its next segment pull returns ``Exit``
(the segment boundary is the only preemption point for placement, just
as the quantum is for the CPU), and the control tier re-places the
*remaining* work as a fresh attempt.  A downed host simply freezes: its
simulator is never advanced again, and a later ``host-up`` creates a
fresh :class:`HostSim` incarnation whose clock starts at the barrier.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Union

from repro.cluster.messages import Message, message
from repro.cluster.spec import HostSpec, TenantSpec, TenantWorkload, tenant_leaf
from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.core.tags import FLOAT
from repro.cpu.machine import Machine
from repro.errors import ClusterError
from repro.obs.binlog import BinaryTraceWriter
from repro.obs.events import BUS
from repro.obs.schedstat import SchedStat
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.smp.machine import SmpMachine
from repro.threads.segments import Exit, Workload
from repro.threads.thread import SimThread


class _DrainWorkload(Workload):
    """Replacement workload that exits at the next segment boundary.

    Swapped in for a migrating (or failing-over) tenant's real workload:
    whatever segment is in flight completes under the machine's normal
    accounting, and the very next pull yields ``Exit`` — the cluster
    never interrupts a segment mid-stream.
    """

    def next_segment(self, now: int, thread: SimThread) -> Exit:
        """Always exit: the tenant's remaining work moves with it."""
        return Exit()


class _Tenant:
    """Book-keeping for one tenant attempt resident on this host."""

    __slots__ = ("spec", "thread", "reported", "migrating")

    def __init__(self, spec: TenantSpec, thread: SimThread) -> None:
        self.spec = spec
        self.thread = thread
        #: exit/migrate-out already emitted at an earlier barrier
        self.reported = False
        #: drain wrapper installed; exit will report as ``migrate-out``
        self.migrating = False


class HostSim:
    """A live host incarnation participating in the cluster protocol."""

    def __init__(self, spec: HostSpec, incarnation: int = 0,
                 start_ns: int = 0,
                 trace_path: Optional[str] = None) -> None:
        self.spec = spec
        self.incarnation = incarnation
        self.engine = Simulator()
        self.structure = SchedulingStructure(FLOAT)
        for group in range(spec.groups):
            parent = self.structure.mknod("g%d" % group, 1)
            for leaf in range(spec.leaves):
                self.structure.mknod("l%d" % leaf, 1, parent=parent,
                                     scheduler=SfqScheduler(FLOAT))
        scheduler = HierarchicalScheduler(self.structure)
        self.machine: Union[Machine, SmpMachine]
        if spec.kind == "smp":
            self.machine = SmpMachine(self.engine, scheduler,
                                      num_cpus=spec.cpus,
                                      capacity_ips=spec.capacity_ips,
                                      default_quantum=spec.quantum_ns)
        else:
            self.machine = Machine(self.engine, scheduler,
                                   capacity_ips=spec.capacity_ips,
                                   default_quantum=spec.quantum_ns)
        if start_ns:
            # A fresh incarnation joins mid-run: align its empty simulator
            # with cluster time so message timestamps stay globally ordered.
            self.machine.run_until(start_ns)
        self.stats = SchedStat()
        self._writer = (BinaryTraceWriter(trace_path)
                        if trace_path is not None else None)
        self.tenants: Dict[str, _Tenant] = {}
        self.draining = False
        self.frozen = False
        self._seq = 0

    @property
    def key(self) -> str:
        """Cluster-wide identity of this incarnation (``name`` or ``name+n``)."""
        if self.incarnation == 0:
            return self.spec.name
        return "%s+%d" % (self.spec.name, self.incarnation)

    # --- directives -------------------------------------------------------

    def apply(self, directives: List[Message]) -> None:
        """Consume the control tier's barrier directives for this host."""
        for directive in directives:
            kind = directive["kind"]
            if kind == "spawn":
                self._apply_spawn(directive)
            elif kind == "migrate":
                self._apply_migrate(str(directive["thread"]))
            elif kind == "prepare-down":
                self.draining = True
            else:
                raise ClusterError("host %s: unknown directive kind %r"
                                   % (self.key, kind))

    def _apply_spawn(self, directive: Message) -> None:
        """Admit one tenant: attach to its affinity leaf, spawn on schedule."""
        spec = TenantSpec.from_fields(directive)  # type: ignore[arg-type]
        name = spec.thread_name
        if name in self.tenants:
            raise ClusterError("host %s: duplicate tenant thread %r"
                               % (self.key, name))
        thread = SimThread(name, TenantWorkload(
            spec.total_work, spec.burst_work, spec.sleep_ns),
            weight=spec.weight)
        leaf = self.structure.parse(tenant_leaf(self.spec, spec.group))
        leaf.attach_thread(thread)
        self.machine.spawn(thread, at=int(directive["spawn_ns"]))  # type: ignore[call-overload]
        self.tenants[name] = _Tenant(spec, thread)

    def _apply_migrate(self, name: str) -> None:
        """Wrap a tenant so it exits (and reports out) at its next boundary."""
        tenant = self.tenants.get(name)
        if tenant is None or tenant.reported or tenant.migrating:
            return  # raced with a natural exit; control reconciles via the log
        if not tenant.thread.alive:
            return
        tenant.migrating = True
        tenant.thread.workload = _DrainWorkload()

    # --- epoch execution --------------------------------------------------

    def advance(self, to_ns: int) -> None:
        """Run this host's simulation to the barrier at ``to_ns``.

        The host's stats (and binlog writer, when tracing) subscribe to
        the process-global bus only while this host is executing.
        """
        if self.frozen or self.draining:
            return
        if self._writer is not None:
            with BUS.subscription(self.stats):
                with BUS.subscription(self._writer):
                    self.machine.run_until(to_ns)
        else:
            with BUS.subscription(self.stats):
                self.machine.run_until(to_ns)

    # --- barrier reporting ------------------------------------------------

    def _emit(self, epoch: int, time: int, kind: str,
              **fields: object) -> Message:
        """Build the next outbox message, advancing the per-host seq."""
        msg = message(epoch, time, self.key, self._seq, kind, **fields)
        self._seq += 1
        return msg

    def barrier_report(self, epoch: int, barrier_ns: int) -> List[Message]:
        """This host's sorted outbox for the epoch ending at ``barrier_ns``."""
        if self.frozen:
            return []
        out: List[Message] = []
        exited = [(tenant.thread.stats.exited_at or 0, name)
                  for name, tenant in self.tenants.items()
                  if not tenant.reported and not tenant.thread.alive]
        for exited_at, name in sorted(exited):
            tenant = self.tenants[name]
            tenant.reported = True
            done = tenant.thread.stats.work_done
            remaining = max(0, tenant.spec.total_work - done)
            kind = "migrate-out" if tenant.migrating else "tenant-exit"
            out.append(self._emit(
                epoch, exited_at, kind, tenant=tenant.spec.name,
                thread=name, attempt=tenant.spec.attempt,
                work_done=done, remaining=remaining))
        if self.draining:
            for name in sorted(self.tenants):
                tenant = self.tenants[name]
                if tenant.reported or not tenant.thread.alive:
                    continue
                tenant.reported = True
                done = tenant.thread.stats.work_done
                out.append(self._emit(
                    epoch, barrier_ns, "tenant-drain",
                    tenant=tenant.spec.name, thread=name,
                    attempt=tenant.spec.attempt, work_done=done,
                    remaining=max(0, tenant.spec.total_work - done)))
            out.append(self._emit(epoch, barrier_ns, "host-down"))
            self.draining = False
            self.frozen = True
            return out
        alive = [tenant for tenant in self.tenants.values()
                 if tenant.thread.alive]
        out.append(self._emit(
            epoch, barrier_ns, "host-load",
            load=sum(tenant.spec.weight for tenant in alive),
            alive=len(alive)))
        return out

    # --- teardown ---------------------------------------------------------

    def finalize(self) -> Dict[str, object]:
        """Seal the trace and summarize the incarnation's final state.

        The summary is keyed entirely by names — thread names, node
        paths — never tids, so it is byte-identical across shard layouts.
        """
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        rows = []
        for name in sorted(self.tenants):
            tenant = self.tenants[name]
            rows.append({
                "thread": name,
                "tenant": tenant.spec.name,
                "attempt": tenant.spec.attempt,
                "group": tenant.spec.group,
                "weight": tenant.spec.weight,
                "state": tenant.thread.state.value,
                "work_done": tenant.thread.stats.work_done,
                "dispatches": tenant.thread.stats.dispatches,
            })
        stats = getattr(self.machine, "stats", self.machine)
        summary: Dict[str, object] = {
            "key": self.key,
            "sim_ns": self.engine.now,
            "events": self.engine.events_fired,
            "dispatches": stats.dispatches,
            "tenants": rows,
            "schedstat": self.stats.to_dict(),
        }
        digest_src = json.dumps(
            {"key": self.key, "tenants": rows}, sort_keys=True,
            separators=(",", ":"))
        summary["digest"] = hashlib.sha256(
            digest_src.encode("utf-8")).hexdigest()
        return summary
