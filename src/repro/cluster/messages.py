"""The cluster message log: the only channel across the epoch barrier.

Hosts and the control tier communicate exclusively through *messages* —
flat JSON-able dicts with four reserved routing fields:

``epoch``
    The epoch whose barrier carried the message.
``time``
    Simulated nanoseconds of the underlying event (barrier time for
    reports, exact times for tenant exits).
``src``
    The emitting host key, or ``"ctl"`` for the control tier.
``seq``
    Per-source emission counter within the epoch.

``(epoch, time, src, seq)`` is a total order with no ties (``seq`` is
unique per source and times never decrease within a source's epoch), so
merging per-shard outboxes is a deterministic k-way sorted merge —
**independent of shard count and worker scheduling**.  The merge
*verifies* rather than trusts: a shard handing back an unsorted outbox
is a determinism bug, and :func:`merge_outboxes` raises
:class:`ClusterError` instead of silently resorting it (the seeded-skew
test in ``tests/test_cluster_determinism.py`` pins this).
"""

from __future__ import annotations

import hashlib
import heapq
import json
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ClusterError

#: message routing fields, in canonical order
ROUTING_FIELDS = ("epoch", "time", "src", "seq")

Message = Dict[str, object]


def message(epoch: int, time: int, src: str, seq: int, kind: str,
            **fields: object) -> Message:
    """Build one message dict; ``fields`` are the kind-specific payload."""
    msg: Message = {"epoch": epoch, "time": time, "src": src, "seq": seq,
                    "kind": kind}
    overlap = set(fields) & set(msg)
    if overlap:
        raise ValueError("payload shadows routing fields: %s"
                         % ", ".join(sorted(overlap)))
    msg.update(fields)
    return msg


def sort_key(msg: Message) -> Tuple[int, int, str, int]:
    """The total merge order: ``(epoch, time, src, seq)``."""
    return (msg["epoch"], msg["time"], msg["src"], msg["seq"])  # type: ignore[return-value]


def check_sorted(msgs: Sequence[Message], label: str) -> None:
    """Raise :class:`ClusterError` unless ``msgs`` is strictly sort-ordered.

    Strictness matters: a duplicate key would make the merged order
    depend on which shard's message the merge happened to take first.
    """
    previous = None
    for msg in msgs:
        key = sort_key(msg)
        if previous is not None and key <= previous:
            raise ClusterError(
                "out-of-order message in %s: %r after %r — shard outboxes "
                "must be emitted in (epoch, time, src, seq) order"
                % (label, key, previous))
        previous = key


def merge_outboxes(outboxes: Sequence[Sequence[Message]]) -> List[Message]:
    """Sort-key merge of per-shard outboxes into one epoch log.

    Each outbox must already be internally sorted (shards emit hosts in
    name order and messages in emission order); the merge validates both
    the inputs and its own output so any ordering drift fails loudly.
    """
    for index, outbox in enumerate(outboxes):
        check_sorted(outbox, "shard %d outbox" % index)
    merged = list(heapq.merge(*outboxes, key=sort_key))
    check_sorted(merged, "merged epoch log")
    return merged


def render_lines(msgs: Iterable[Message]) -> str:
    """Canonical byte-stable JSONL rendering of a message stream."""
    return "".join(
        json.dumps(msg, sort_keys=True, separators=(",", ":")) + "\n"
        for msg in msgs)


def log_digest(msgs: Iterable[Message]) -> str:
    """sha256 over the canonical rendering (what the CI gate compares)."""
    return hashlib.sha256(render_lines(msgs).encode("utf-8")).hexdigest()
