"""Command-line front end: ``python -m repro.cluster run|report|gate``.

``run``
    Execute one named cluster scenario and write its artifact set
    (merged trace, placement log, merged schedstat, report.json).
``report``
    Summarize a previously written artifact directory: control-tier
    counters, digests, and the head of the merged cluster schedstat.
``gate``
    The shard determinism gate: run the same scenario serially and
    sharded, compare every shard-invariant digest, exit non-zero on any
    byte difference.  CI runs this over ``cluster_storm``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.cluster.runner import run_cluster
from repro.cluster.scenario import CLUSTER_SCENARIOS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="sharded multi-host simulation with a placement tier")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scenario", default="cluster_mini", metavar="NAME",
                       choices=sorted(CLUSTER_SCENARIOS),
                       help="cluster scenario (default cluster_mini)")
        p.add_argument("--seed", type=int, default=42,
                       help="cluster seed (default 42)")
        p.add_argument("--quick", action="store_true",
                       help="CI-sized fleet and tenant count")

    run = sub.add_parser("run", help="run a scenario, write artifacts")
    add_common(run)
    run.add_argument("--shards", type=int, default=1,
                     help="worker processes to partition hosts across")
    run.add_argument("--out", default=None, metavar="DIR",
                     help="artifact directory (default clusterlab/<name>)")
    run.add_argument("--trace", action="store_true",
                     help="also capture one binlog per host incarnation "
                          "under <out>/binlogs/")

    report = sub.add_parser("report", help="summarize a run directory")
    report.add_argument("dir", help="artifact directory from a run")
    report.add_argument("--schedstat-lines", type=int, default=12,
                        help="schedstat preview lines (default 12)")

    gate = sub.add_parser(
        "gate", help="assert --shards N output is byte-identical to serial")
    add_common(gate)
    gate.add_argument("--shards", type=int, default=4,
                      help="sharded run's worker count (default 4)")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    spec = CLUSTER_SCENARIOS[args.scenario].build(args.quick)
    outdir = args.out or os.path.join("clusterlab", spec.name)
    trace_dir = os.path.join(outdir, "binlogs") if args.trace else None
    result = run_cluster(spec, args.seed, shards=args.shards,
                         trace_dir=trace_dir)
    paths = result.write(outdir)
    control = result.control["counters"]  # type: ignore[index]
    print("cluster %s: %d hosts, %d tenants, %d epochs, shards=%d"
          % (spec.name, len(spec.hosts), spec.tenants, spec.epochs,
             args.shards))
    print("  placements=%s completions=%s migrations=%s drains=%s "
          "hosts_down=%s hosts_up=%s"
          % (control["placements"], control["completions"],  # type: ignore[index]
             control["migrations"], control["drains"],  # type: ignore[index]
             control["hosts_down"], control["hosts_up"]))  # type: ignore[index]
    for name, digest in sorted(result.digests().items()):
        print("  %s: %s" % (name, digest))
    for name, path in sorted(paths.items()):
        print("  wrote %s" % path)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    report_path = os.path.join(args.dir, "report.json")
    try:
        with open(report_path) as fh:
            report = json.load(fh)
    except FileNotFoundError:
        print("no report.json under %s (run `repro.cluster run` first)"
              % args.dir, file=sys.stderr)
        return 2
    print("cluster %s: %s hosts, %s tenants, %s epochs, %s messages, "
          "shards=%s" % (report["cluster"], report["hosts"],
                         report["tenants"], report["epochs"],
                         report["messages"], report["shards"]))
    for key, value in sorted(report["control"]["counters"].items()):
        print("  %s=%s" % (key, value))
    print("  live_tenants=%s pending=%s"
          % (report["control"]["live_tenants"],
             report["control"]["pending"]))
    for name, digest in sorted(report["digests"].items()):
        print("  %s: %s" % (name, digest))
    sched_path = os.path.join(args.dir, "cluster-schedstat.txt")
    if os.path.exists(sched_path):
        print("merged cluster schedstat (head):")
        with open(sched_path) as fh:
            for index, line in enumerate(fh):
                if index >= args.schedstat_lines:
                    print("  ...")
                    break
                print("  " + line.rstrip("\n"))
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    build = CLUSTER_SCENARIOS[args.scenario].build
    serial = run_cluster(build(args.quick), args.seed, shards=1)
    sharded = run_cluster(build(args.quick), args.seed, shards=args.shards)
    serial_digests = serial.digests()
    sharded_digests = sharded.digests()
    failed = False
    for name in sorted(serial_digests):
        ok = serial_digests[name] == sharded_digests[name]
        failed = failed or not ok
        print("%s %s: serial=%s shards%d=%s"
              % ("ok  " if ok else "FAIL", name,
                 serial_digests[name][:16], args.shards,
                 sharded_digests[name][:16]))
    if failed:
        print("shard determinism gate FAILED for %s (seed %d)"
              % (args.scenario, args.seed), file=sys.stderr)
        return 1
    print("shard determinism gate passed: %s is byte-identical at "
          "--shards 1 and --shards %d" % (args.scenario, args.shards))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        return _cmd_report(args)
    return _cmd_gate(args)
