"""Cluster, host, and tenant specifications.

A :class:`ClusterSpec` is a complete, JSON-able description of one
cluster simulation: the host fleet, the tenant arrival schedule
parameters, the placement policy, the epoch geometry, and an optional
fault schedule (host churn).  Everything a shard worker needs to rebuild
its bucket of hosts is derived from the spec plus the cluster seed, so
worker processes receive only ``(scenario name, quick, seed, host
names)`` and never pickle a live simulator.

Host registration order is irrelevant by construction: the spec sorts
hosts by name, and every derived quantity (seeds, leaf assignment,
arrival schedule) is keyed by names — shuffling the input host list
cannot change a single output byte.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.sim.rng import Stream, derive_seed
from repro.threads.segments import Compute, Exit, SleepFor, Workload
from repro.units import MS

#: capacity of every host CPU (the paper's ~100 MIPS machine)
HOST_CAPACITY = 100_000_000


class HostSpec:
    """One host in the fleet: machine kind, size, and hierarchy shape.

    ``kind`` is ``"cpu"`` (uniprocessor :class:`~repro.cpu.machine.Machine`)
    or ``"smp"`` (:class:`~repro.smp.machine.SmpMachine` with ``cpus``
    processors).  The per-host scheduling structure is ``groups`` internal
    nodes with ``leaves`` SFQ leaves each; tenants map to leaves by a
    seed-derived hash of their affinity group, so co-grouped tenants
    share a leaf.  ``capacity_weight`` (defaults to ``cpus``) is the
    placement tier's notion of how much load the host can carry.
    """

    __slots__ = ("name", "kind", "cpus", "capacity_ips", "quantum_ns",
                 "groups", "leaves", "capacity_weight")

    def __init__(self, name: str, kind: str = "cpu", cpus: int = 1,
                 capacity_ips: int = HOST_CAPACITY,
                 quantum_ns: int = 1 * MS, groups: int = 2, leaves: int = 4,
                 capacity_weight: Optional[int] = None) -> None:
        if kind not in ("cpu", "smp"):
            raise ValueError("host kind must be 'cpu' or 'smp', got %r"
                             % (kind,))
        if kind == "cpu" and cpus != 1:
            raise ValueError("a 'cpu' host has exactly one CPU")
        self.name = name
        self.kind = kind
        self.cpus = cpus
        self.capacity_ips = capacity_ips
        self.quantum_ns = quantum_ns
        self.groups = groups
        self.leaves = leaves
        self.capacity_weight = capacity_weight if capacity_weight else cpus

    def leaf_paths(self) -> List[str]:
        """Every leaf pathname of this host's hierarchy, in tree order."""
        return ["/g%d/l%d" % (group, leaf)
                for group in range(self.groups)
                for leaf in range(self.leaves)]


class TenantSpec:
    """One tenant: a finite stream of CPU work placed onto some host.

    The workload is deterministic and RNG-free — ``total_work``
    instructions consumed in ``burst_work``-sized compute segments with
    ``sleep_ns`` of think time between bursts, then exit.  ``group`` is
    the affinity key placement policies may consolidate on.  ``attempt``
    counts placements: a migrated or failed-over tenant is re-placed as
    attempt ``n+1`` carrying only its remaining work, and its thread name
    gains a ``+n`` suffix so names stay unique cluster-wide.
    """

    __slots__ = ("name", "weight", "total_work", "burst_work", "sleep_ns",
                 "group", "arrival_ns", "attempt")

    def __init__(self, name: str, weight: int, total_work: int,
                 burst_work: int, sleep_ns: int, group: str,
                 arrival_ns: int, attempt: int = 0) -> None:
        self.name = name
        self.weight = weight
        self.total_work = total_work
        self.burst_work = burst_work
        self.sleep_ns = sleep_ns
        self.group = group
        self.arrival_ns = arrival_ns
        self.attempt = attempt

    @property
    def thread_name(self) -> str:
        """Unique thread name for this placement attempt."""
        if self.attempt == 0:
            return self.name
        return "%s+%d" % (self.name, self.attempt)

    def to_fields(self) -> Dict[str, object]:
        """Flat JSON-able view (spawn directives and log records)."""
        return {"tenant": self.name, "weight": self.weight,
                "total_work": self.total_work, "burst_work": self.burst_work,
                "sleep_ns": self.sleep_ns, "group": self.group,
                "arrival_ns": self.arrival_ns, "attempt": self.attempt}

    @classmethod
    def from_fields(cls, fields: Dict[str, object]) -> "TenantSpec":
        """Rebuild a spec from :meth:`to_fields` output."""
        return cls(name=str(fields["tenant"]),
                   weight=int(fields["weight"]),  # type: ignore[arg-type]
                   total_work=int(fields["total_work"]),  # type: ignore[arg-type]
                   burst_work=int(fields["burst_work"]),  # type: ignore[arg-type]
                   sleep_ns=int(fields["sleep_ns"]),  # type: ignore[arg-type]
                   group=str(fields["group"]),
                   arrival_ns=int(fields["arrival_ns"]),  # type: ignore[arg-type]
                   attempt=int(fields.get("attempt", 0)))  # type: ignore[arg-type]


class TenantWorkload(Workload):
    """The tenant's segment stream: bursts of compute, think time, exit.

    Deterministic and stateless apart from the consumed-work cursor; the
    machine owns all execution accounting.
    """

    def __init__(self, total_work: int, burst_work: int,
                 sleep_ns: int) -> None:
        self.total_work = max(1, total_work)
        self.burst_work = max(1, burst_work)
        self.sleep_ns = sleep_ns
        self._planned = 0
        self._need_sleep = False

    def next_segment(self, now: int, thread) -> object:
        """Next burst (or think-sleep, or exit once all work is planned)."""
        if self._planned >= self.total_work:
            return Exit()
        if self._need_sleep and self.sleep_ns > 0:
            self._need_sleep = False
            return SleepFor(self.sleep_ns)
        chunk = min(self.burst_work, self.total_work - self._planned)
        self._planned += chunk
        self._need_sleep = True
        return Compute(chunk)


def tenant_leaf(host: HostSpec, group: str) -> str:
    """The leaf pathname tenants of affinity ``group`` use on ``host``.

    Keyed by the group name alone (not the host), so a migrated group
    lands in the "same" leaf slot of its new host — a stable, seedless
    hash via :func:`~repro.sim.rng.derive_seed`.
    """
    paths = host.leaf_paths()
    return paths[derive_seed(0, "cluster-leaf/%s" % group) % len(paths)]


class ClusterSpec:
    """A complete cluster scenario description.

    ``epoch_ns`` is the barrier period; the run lasts ``epochs`` epochs.
    ``arrival_window_epochs`` bounds tenant arrivals to the first k
    epochs so placements can drain before the horizon.  ``faults`` is a
    list of faultlab fault specs (``{"kind": ..., "params": ...}``) armed
    against the cluster control tier — the ``host-churn`` injector family.
    ``rebalance_threshold`` (weight units) triggers migrate requests from
    the most- to the least-loaded host when the spread exceeds it;
    ``0`` disables rebalancing.
    """

    __slots__ = ("name", "hosts", "tenants", "tenant_weights",
                 "tenant_total_work", "tenant_burst_work", "tenant_sleep_ns",
                 "tenant_groups", "epoch_ns", "epochs",
                 "arrival_window_epochs", "policy", "faults",
                 "rebalance_threshold")

    def __init__(self, name: str, hosts: Sequence[HostSpec], tenants: int,
                 epoch_ns: int, epochs: int, arrival_window_epochs: int,
                 policy: str = "least-loaded",
                 tenant_weights: Sequence[int] = (1, 2, 3),
                 tenant_total_work: int = 40_000,
                 tenant_burst_work: int = 20_000,
                 tenant_sleep_ns: int = 5 * MS,
                 tenant_groups: int = 16,
                 faults: Optional[Sequence[Dict[str, object]]] = None,
                 rebalance_threshold: int = 0) -> None:
        if not hosts:
            raise ValueError("a cluster needs at least one host")
        names = [host.name for host in hosts]
        if len(set(names)) != len(names):
            raise ValueError("duplicate host names: %r" % (sorted(names),))
        self.name = name
        #: name-sorted: registration order can never influence a byte
        self.hosts = sorted(hosts, key=lambda host: host.name)
        self.tenants = tenants
        self.tenant_weights = tuple(tenant_weights)
        self.tenant_total_work = tenant_total_work
        self.tenant_burst_work = tenant_burst_work
        self.tenant_sleep_ns = tenant_sleep_ns
        self.tenant_groups = tenant_groups
        self.epoch_ns = epoch_ns
        self.epochs = epochs
        self.arrival_window_epochs = min(arrival_window_epochs, epochs)
        self.policy = policy
        self.faults = list(faults or ())
        self.rebalance_threshold = rebalance_threshold

    def host_names(self) -> List[str]:
        """Sorted host names (the canonical fleet order)."""
        return [host.name for host in self.hosts]

    def host(self, name: str) -> HostSpec:
        """Look up one host spec by name."""
        for candidate in self.hosts:
            if candidate.name == name:
                return candidate
        raise KeyError("no host named %r in cluster %s" % (name, self.name))

    @property
    def horizon_ns(self) -> int:
        """Total simulated span of the run."""
        return self.epoch_ns * self.epochs

    def arrivals(self, seed: int) -> Iterator[TenantSpec]:
        """The deterministic tenant arrival schedule, in arrival order.

        Arrival instants are evenly staggered over the arrival window
        (like perfkit's storm scenarios); weights and affinity groups
        draw from a ``Stream`` substream keyed by the tenant name, so
        the schedule is independent of everything but ``seed``.
        """
        stream = Stream(seed, "cluster/%s" % self.name).substream("arrivals")
        window = self.arrival_window_epochs * self.epoch_ns
        digits = len(str(max(1, self.tenants - 1)))
        for index in range(self.tenants):
            name = "t%0*d" % (digits, index)
            rng = stream.rng(name)
            yield TenantSpec(
                name=name,
                weight=rng.choice(self.tenant_weights),
                total_work=self.tenant_total_work,
                burst_work=self.tenant_burst_work,
                sleep_ns=self.tenant_sleep_ns,
                group="g%03d" % rng.randrange(self.tenant_groups),
                arrival_ns=(index * window) // max(1, self.tenants),
            )
