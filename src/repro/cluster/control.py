"""The control tier: admission, placement, migration, and churn handling.

:class:`ControlTier` is the cluster's top-level scheduler.  It runs once
per epoch barrier, entirely outside the per-host simulators, and sees
the fleet only through the merged message log — never a live simulator
object — so its decisions depend exclusively on message content that is
itself shard-invariant.

Its output is a list of control messages (``src`` ``"~ctl"``; the tilde
sorts the control tier after every host key at the shared barrier
timestamp) which serve double duty: they are appended to the epoch log
*and* broadcast back to the shard workers as directives —

``place``
    Spawn one tenant attempt on the named host next epoch.
``migrate-req``
    Ask a host to drain one tenant at its next segment boundary.
``host-stop``
    Tell a host to drain everything and freeze at the next barrier.
``host-start``
    Bring up a fresh incarnation of a downed host at the barrier.

The tier is also the protocol's auditor: it keeps its own model of what
lives where, and every ``host-load`` report is checked against that
model — any disagreement (a lost message, a double spawn, an unsynced
shard) raises :class:`~repro.errors.ClusterError` instead of silently
diverging.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.messages import Message, message
from repro.cluster.placement import HostView, PlacementView, build_placement
from repro.cluster.spec import ClusterSpec, HostSpec, TenantSpec
from repro.errors import ClusterError

#: the control tier's message source key (sorts after every host key)
CTL_SRC = "~ctl"

#: control message kinds that shard workers execute as directives
DIRECTIVE_KINDS = ("place", "migrate-req", "host-stop", "host-start")

#: a scheduled churn action: (epoch, "down"|"up", host name)
ChurnEvent = Tuple[int, str, str]


class _HostModel:
    """The control tier's belief about one host."""

    __slots__ = ("spec", "incarnation", "status", "tenants", "migrating")

    def __init__(self, spec: HostSpec) -> None:
        self.spec = spec
        self.incarnation = 0
        #: "up" | "draining" | "down"
        self.status = "up"
        #: thread name -> the TenantSpec placed there
        self.tenants: Dict[str, TenantSpec] = {}
        #: thread names with an outstanding migrate-req
        self.migrating: Set[str] = set()

    @property
    def key(self) -> str:
        """Cluster-wide key of the current incarnation."""
        if self.incarnation == 0:
            return self.spec.name
        return "%s+%d" % (self.spec.name, self.incarnation)

    def load(self) -> int:
        """Total weight of tenants believed resident."""
        return sum(spec.weight for spec in self.tenants.values())

    def group_counts(self) -> Dict[str, int]:
        """Live tenant count per affinity group."""
        counts: Dict[str, int] = {}
        for spec in self.tenants.values():
            counts[spec.group] = counts.get(spec.group, 0) + 1
        return counts


class ControlTier:
    """Barrier-driven placement scheduler over the merged message log."""

    def __init__(self, spec: ClusterSpec, seed: int,
                 churn: Optional[Iterable[ChurnEvent]] = None) -> None:
        self.spec = spec
        self.policy = build_placement(spec.policy)
        self._hosts: Dict[str, _HostModel] = {
            host.name: _HostModel(host) for host in spec.hosts}
        self._arrivals = list(spec.arrivals(seed))
        self._arrival_index = 0
        self._pending: List[TenantSpec] = []
        self._churn = sorted(churn or (),
                             key=lambda event: (event[0], event[1], event[2]))
        self._seq = 0
        self._expect: Set[str] = {model.key for model in self._hosts.values()}
        self.counters: Dict[str, int] = {
            "admitted": 0, "placements": 0, "completions": 0,
            "migrations": 0, "drains": 0, "deferred": 0,
            "hosts_down": 0, "hosts_up": 0,
        }

    # --- message helpers --------------------------------------------------

    def _emit(self, epoch: int, barrier_ns: int, kind: str,
              **fields: object) -> Message:
        msg = message(epoch, barrier_ns, CTL_SRC, self._seq, kind, **fields)
        self._seq += 1
        return msg

    def _model_for(self, src: str) -> _HostModel:
        base = src.split("+", 1)[0]
        model = self._hosts.get(base)
        if model is None or model.key != src:
            raise ClusterError("message from unknown host incarnation %r"
                               % (src,))
        return model

    # --- the barrier ------------------------------------------------------

    def barrier(self, epoch: int, inbox: List[Message]) -> List[Message]:
        """Run one barrier: fold reports, decide, return control messages.

        ``inbox`` is the merged host outbox for ``epoch``; the return
        value is both the log tail for the epoch and the directive
        broadcast for the next one.
        """
        barrier_ns = (epoch + 1) * self.spec.epoch_ns
        out: List[Message] = []
        self._process_inbox(epoch, inbox)
        out.extend(self._apply_churn(epoch, barrier_ns))
        self._admit(barrier_ns)
        out.extend(self._place(epoch, barrier_ns))
        out.extend(self._rebalance(epoch, barrier_ns))
        self._expect = {model.key for model in self._hosts.values()
                        if model.status == "up"}
        return out

    def _process_inbox(self, epoch: int, inbox: List[Message]) -> None:
        """Fold the epoch's host reports into the model, auditing each."""
        reported: Set[str] = set()
        for msg in inbox:
            src = str(msg["src"])
            model = self._model_for(src)
            kind = msg["kind"]
            if kind in ("tenant-exit", "migrate-out", "tenant-drain"):
                self._tenant_left(model, msg)
            elif kind == "host-down":
                if model.status != "draining":
                    raise ClusterError("host %s reported down without a "
                                       "host-stop" % src)
                if model.tenants:
                    raise ClusterError(
                        "host %s went down still holding %d tenants"
                        % (src, len(model.tenants)))
                model.status = "down"
            elif kind == "host-load":
                expected_load = model.load()
                expected_alive = len(model.tenants)
                if (int(msg["load"]) != expected_load  # type: ignore[arg-type]
                        or int(msg["alive"]) != expected_alive):  # type: ignore[arg-type]
                    raise ClusterError(
                        "host %s load report (load=%s alive=%s) disagrees "
                        "with the control model (load=%d alive=%d)"
                        % (src, msg["load"], msg["alive"],
                           expected_load, expected_alive))
                reported.add(src)
            else:
                raise ClusterError("unknown host message kind %r from %s"
                                   % (kind, src))
        missing = self._expect - reported
        if missing:
            raise ClusterError(
                "no load report at barrier %d from: %s"
                % (epoch, ", ".join(sorted(missing))))

    def _tenant_left(self, model: _HostModel, msg: Message) -> None:
        """One tenant exit / migrate-out / drain report."""
        thread = str(msg["thread"])
        placed = model.tenants.pop(thread, None)
        if placed is None:
            raise ClusterError("host %s reported unknown tenant %r"
                               % (model.key, thread))
        model.migrating.discard(thread)
        work_done = int(msg["work_done"])  # type: ignore[arg-type]
        remaining = max(0, placed.total_work - work_done)
        if remaining != int(msg["remaining"]):  # type: ignore[arg-type]
            raise ClusterError(
                "host %s reported remaining=%s for %r; model says %d"
                % (model.key, msg["remaining"], thread, remaining))
        kind = msg["kind"]
        if kind == "tenant-exit":
            self.counters["completions"] += 1
            return
        self.counters["migrations" if kind == "migrate-out"
                      else "drains"] += 1
        if remaining > 0:
            barrier_ns = (int(msg["epoch"]) + 1) * self.spec.epoch_ns  # type: ignore[arg-type]
            self._pending.append(TenantSpec(
                name=placed.name, weight=placed.weight,
                total_work=remaining, burst_work=placed.burst_work,
                sleep_ns=placed.sleep_ns, group=placed.group,
                arrival_ns=barrier_ns, attempt=placed.attempt + 1))
        else:
            self.counters["completions"] += 1

    def _apply_churn(self, epoch: int, barrier_ns: int) -> List[Message]:
        """Turn this barrier's scheduled churn into stop/start messages."""
        out: List[Message] = []
        for event_epoch, action, name in self._churn:
            if event_epoch != epoch:
                continue
            model = self._hosts[name]
            if action == "down" and model.status == "up":
                model.status = "draining"
                self.counters["hosts_down"] += 1
                out.append(self._emit(epoch, barrier_ns, "host-stop",
                                      host=model.key))
            elif action == "up" and model.status == "down":
                model.incarnation += 1
                model.status = "up"
                model.tenants = {}
                model.migrating = set()
                self.counters["hosts_up"] += 1
                out.append(self._emit(
                    epoch, barrier_ns, "host-start", host=name,
                    incarnation=model.incarnation, start_ns=barrier_ns))
        return out

    def _admit(self, barrier_ns: int) -> None:
        """Move tenants whose arrival time has passed into the pending queue."""
        while (self._arrival_index < len(self._arrivals)
               and self._arrivals[self._arrival_index].arrival_ns
               < barrier_ns):
            self._pending.append(self._arrivals[self._arrival_index])
            self._arrival_index += 1
            self.counters["admitted"] += 1

    def _place(self, epoch: int, barrier_ns: int) -> List[Message]:
        """Place every pending tenant (FIFO) through the policy."""
        if not self._pending:
            return []
        up = sorted((model for model in self._hosts.values()
                     if model.status == "up"),
                    key=lambda model: model.key)
        if not up:
            self.counters["deferred"] += len(self._pending)
            return []  # everything stays pending until a host returns
        views = {model.key: HostView(model.key, model.spec.capacity_weight,
                                     model.load(), model.group_counts())
                 for model in up}
        view = PlacementView(list(views.values()))
        by_key = {model.key: model for model in up}
        out: List[Message] = []
        for spec in self._pending:
            chosen = self.policy.choose(spec.group, spec.weight, view)
            model = by_key[chosen]
            model.tenants[spec.thread_name] = spec
            # keep the shared view current without rebuilding it per tenant
            views[chosen].load += spec.weight
            views[chosen].group_counts[spec.group] = (
                views[chosen].group_counts.get(spec.group, 0) + 1)
            self.counters["placements"] += 1
            fields = spec.to_fields()
            fields["host"] = chosen
            fields["spawn_ns"] = spec.arrival_ns + self.spec.epoch_ns
            out.append(self._emit(epoch, barrier_ns, "place", **fields))
        self._pending = []
        return out

    def _rebalance(self, epoch: int, barrier_ns: int) -> List[Message]:
        """One migrate request per barrier when the load spread is too wide."""
        threshold = self.spec.rebalance_threshold
        if threshold <= 0:
            return []
        up = sorted((model for model in self._hosts.values()
                     if model.status == "up"),
                    key=lambda model: model.key)
        if len(up) < 2:
            return []
        hottest = max(up, key=lambda model: (model.load(), model.key))
        coldest = min(up, key=lambda model: (model.load(), model.key))
        if hottest.load() - coldest.load() <= threshold:
            return []
        movable = sorted(name for name in hottest.tenants
                         if name not in hottest.migrating)
        if not movable:
            return []
        victim = movable[0]
        hottest.migrating.add(victim)
        return [self._emit(epoch, barrier_ns, "migrate-req",
                           host=hottest.key, thread=victim)]

    # --- reporting --------------------------------------------------------

    def live_tenants(self) -> int:
        """Tenants still resident somewhere (unfinished at the horizon)."""
        return sum(len(model.tenants) for model in self._hosts.values())

    def summary(self) -> Dict[str, object]:
        """JSON-able end-of-run view of the control tier."""
        return {
            "counters": dict(self.counters),
            "pending": len(self._pending),
            "live_tenants": self.live_tenants(),
            "hosts": {name: {"key": model.key, "status": model.status,
                             "tenants": len(model.tenants)}
                      for name, model in sorted(self._hosts.items())},
        }
