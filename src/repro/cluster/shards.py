"""Deterministic sharding: hosts partitioned across worker processes.

Hosts are assigned to shards by **name-sorted round-robin**
(:func:`partition_hosts`), so the bucket layout is a pure function of
``(host names, shard count)``.  Every shard — whether it runs inline
(:class:`SerialShards`) or in a persistent worker process
(:class:`ProcessShards`) — executes the *same* :class:`ShardState` code
path: apply barrier directives, advance each host to the barrier in
name order, and hand back a sort-key-merged outbox.  The parent merges
shard outboxes with the validating k-way merge, so the epoch log is
byte-identical for ``--shards 1`` and ``--shards N`` by construction.

Worker processes are rebuilt from pickled *specs* (plain slotted data
objects) — a live simulator never crosses a process boundary.  The pipe
protocol is strictly request/reply in shard-index order, so no result
ordering ever depends on OS scheduling (the faultlab/parjobs pool
discipline, adapted to persistent workers).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional

from repro.cluster.control import DIRECTIVE_KINDS
from repro.cluster.host import HostSim
from repro.cluster.messages import Message, merge_outboxes
from repro.cluster.spec import ClusterSpec
from repro.errors import ClusterError


def partition_hosts(names: List[str], shards: int) -> List[List[str]]:
    """Name-sorted round-robin buckets; every shard gets a stable slice.

    ``partition_hosts(names, 1)`` is the whole fleet in name order —
    the serial layout every other layout must agree with byte-for-byte.
    """
    if shards < 1:
        raise ValueError("shard count must be >= 1, got %d" % shards)
    buckets: List[List[str]] = [[] for _ in range(shards)]
    for index, name in enumerate(sorted(names)):
        buckets[index % shards].append(name)
    return [bucket for bucket in buckets if bucket]


class ShardState:
    """One shard's hosts and their epoch loop (shared serial/process path)."""

    def __init__(self, spec: ClusterSpec, bucket: List[str],
                 trace_dir: Optional[str] = None) -> None:
        self.spec = spec
        self.trace_dir = trace_dir
        self.hosts: Dict[str, HostSim] = {
            name: HostSim(spec.host(name), incarnation=0, start_ns=0,
                          trace_path=self._trace_path(name))
            for name in bucket}
        #: finalized summaries of replaced (downed) incarnations
        self.retired: List[Dict[str, object]] = []

    def _trace_path(self, key: str) -> Optional[str]:
        if self.trace_dir is None:
            return None
        return os.path.join(self.trace_dir, "host-%s.binlog" % key)

    def epoch(self, epoch: int, barrier_ns: int,
              directives: List[Message]) -> List[Message]:
        """Apply directives, run every host to the barrier, merge reports."""
        routed: Dict[str, List[Message]] = {name: [] for name in self.hosts}
        for directive in directives:
            kind = directive["kind"]
            if kind not in DIRECTIVE_KINDS:
                raise ClusterError("not a directive: %r" % (kind,))
            base = str(directive["host"]).split("+", 1)[0]
            if base not in self.hosts:
                continue  # another shard's host
            if kind == "host-start":
                incarnation = int(directive["incarnation"])  # type: ignore[arg-type]
                old = self.hosts[base]
                self.retired.append(old.finalize())
                fresh = HostSim(self.spec.host(base),
                                incarnation=incarnation,
                                start_ns=int(directive["start_ns"]),  # type: ignore[arg-type]
                                trace_path=self._trace_path(
                                    "%s+%d" % (base, incarnation)))
                self.hosts[base] = fresh
            elif kind == "place":
                spawn = dict(directive)
                spawn["kind"] = "spawn"
                routed[base].append(spawn)
            elif kind == "migrate-req":
                routed[base].append({"kind": "migrate",
                                     "thread": directive["thread"]})
            elif kind == "host-stop":
                routed[base].append({"kind": "prepare-down"})
        outboxes = []
        for name in sorted(self.hosts):
            host = self.hosts[name]
            host.apply(routed[name])
            host.advance(barrier_ns)
            outboxes.append(host.barrier_report(epoch, barrier_ns))
        return merge_outboxes(outboxes)

    def finalize(self) -> List[Dict[str, object]]:
        """Summaries of every incarnation this shard ran, key-sorted."""
        summaries = list(self.retired)
        for name in sorted(self.hosts):
            summaries.append(self.hosts[name].finalize())
        return sorted(summaries, key=lambda summary: str(summary["key"]))


class SerialShards:
    """All shards run inline, in shard order — the reference execution."""

    def __init__(self, spec: ClusterSpec, buckets: List[List[str]],
                 trace_dir: Optional[str] = None) -> None:
        self._shards = [ShardState(spec, bucket, trace_dir)
                        for bucket in buckets]

    def epoch(self, epoch: int, barrier_ns: int,
              directives: List[Message]) -> List[List[Message]]:
        """Per-shard outboxes for one epoch, in shard order."""
        return [shard.epoch(epoch, barrier_ns, directives)
                for shard in self._shards]

    def finalize(self) -> List[Dict[str, object]]:
        """All host summaries across shards, key-sorted."""
        summaries: List[Dict[str, object]] = []
        for shard in self._shards:
            summaries.extend(shard.finalize())
        return sorted(summaries, key=lambda summary: str(summary["key"]))

    def close(self) -> None:
        """Nothing to tear down for inline shards."""


def _shard_worker(conn, spec: ClusterSpec, bucket: List[str],
                  trace_dir: Optional[str]) -> None:
    """Worker entry point: serve epoch/finalize requests over the pipe.

    Builds its bucket's hosts from the pickled spec, then loops on a
    strict request/reply protocol until told to stop.  Top-level by
    design (picklable under spawn, visible to the SF4xx checker).
    """
    state = ShardState(spec, bucket, trace_dir)
    while True:
        request = conn.recv()
        verb = request[0]
        if verb == "epoch":
            __, epoch, barrier_ns, directives = request
            conn.send(state.epoch(epoch, barrier_ns, directives))
        elif verb == "finalize":
            conn.send(state.finalize())
        elif verb == "stop":
            conn.close()
            return
        else:
            raise ClusterError("unknown shard request %r" % (verb,))


class ProcessShards:
    """Shards as persistent worker processes, one per bucket.

    Replies are collected in shard-index order — workers may *compute*
    epochs concurrently, but every observable sequence is fixed.
    """

    def __init__(self, spec: ClusterSpec, buckets: List[List[str]],
                 trace_dir: Optional[str] = None) -> None:
        self._pipes = []
        self._procs = []
        for bucket in buckets:
            parent, child = multiprocessing.Pipe()
            proc = multiprocessing.Process(
                target=_shard_worker, args=(child, spec, bucket, trace_dir))
            proc.daemon = True
            proc.start()
            child.close()
            self._pipes.append(parent)
            self._procs.append(proc)

    def epoch(self, epoch: int, barrier_ns: int,
              directives: List[Message]) -> List[List[Message]]:
        """Broadcast the barrier, then gather outboxes in shard order."""
        for pipe in self._pipes:
            pipe.send(("epoch", epoch, barrier_ns, directives))
        return [pipe.recv() for pipe in self._pipes]

    def finalize(self) -> List[Dict[str, object]]:
        """Gather summaries from every worker, key-sorted."""
        for pipe in self._pipes:
            pipe.send(("finalize",))
        summaries: List[Dict[str, object]] = []
        for pipe in self._pipes:
            summaries.extend(pipe.recv())
        return sorted(summaries, key=lambda summary: str(summary["key"]))

    def close(self) -> None:
        """Stop and join every worker."""
        for pipe in self._pipes:
            try:
                pipe.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - defensive teardown
                proc.terminate()
                proc.join(timeout=5)
        for pipe in self._pipes:
            pipe.close()


def make_shards(spec: ClusterSpec, shards: int,
                trace_dir: Optional[str] = None):
    """Build the right shard pool for ``shards`` (1 = inline serial)."""
    buckets = partition_hosts(spec.host_names(), shards)
    if shards == 1:
        return SerialShards(spec, buckets, trace_dir)
    return ProcessShards(spec, buckets, trace_dir)
