"""Arming faultlab injectors against a cluster instead of a machine.

:class:`ClusterFaultContext` duck-types the single-host
:class:`~repro.faultlab.faults.FaultContext` — same ``stream``,
``record``, ``log``, and ``for_fault`` surface — but exposes a
``cluster`` spec instead of a live machine.  Cluster-level injectors
(the ``host-churn`` family) detect the cluster attribute and translate
their seeded draws into a **churn schedule**: ``(epoch, action, host)``
tuples the control tier executes at barriers.  Machine-level injectors
armed against this context find no machine and skip with a log record,
exactly like structural faults skip on flat cells.

Everything happens at arm time — before the first epoch runs — so the
schedule is a pure function of ``(spec, seed)`` and identical across
shard layouts by construction.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster.spec import ClusterSpec
from repro.faultlab.faults import build_fault
from repro.sim.rng import Stream


class ClusterFaultContext:
    """A :class:`~repro.faultlab.faults.FaultContext` stand-in for clusters."""

    def __init__(self, cluster: ClusterSpec, stream: Stream) -> None:
        self.cluster = cluster
        self.stream = stream
        #: no live machine/engine/structure at cluster arm time
        self.machine = None
        self.engine = None
        self.structure = None
        self.horizon = cluster.horizon_ns
        #: JSON-able injection records (arm-time; ``time`` is always 0)
        self.log: List[Dict[str, object]] = []
        #: the armed schedule: (epoch, "down"|"up", host name)
        self.churn: List[Tuple[int, str, str]] = []

    def record(self, fault: str, action: str, **fields: object) -> None:
        """Append one arm-time injection record to the shared log."""
        entry: Dict[str, object] = {"time": 0, "fault": fault,
                                    "action": action}
        entry.update(fields)
        self.log.append(entry)

    def for_fault(self, index: int, kind: str) -> "ClusterFaultContext":
        """Per-injector view: own RNG substream, shared log and schedule."""
        child = ClusterFaultContext(
            self.cluster, self.stream.substream("%d/%s" % (index, kind)))
        child.log = self.log
        child.churn = self.churn
        return child


def build_churn(spec: ClusterSpec, seed: int) -> ClusterFaultContext:
    """Arm the spec's fault schedule and return the populated context.

    The context's ``churn`` list feeds the control tier; its ``log``
    lands in the run report so churn decisions are auditable.
    """
    ctx = ClusterFaultContext(
        spec, Stream(seed, "cluster/%s" % spec.name).substream("faults"))
    for index, fault_spec in enumerate(spec.faults):
        injector = build_fault(fault_spec)
        injector.arm(ctx.for_fault(index, injector.kind))  # type: ignore[arg-type]
    ctx.churn.sort()
    return ctx
