"""Named cluster scenarios: the fleet-scale analogue of perfkit scenarios.

Each scenario builds a :class:`~repro.cluster.spec.ClusterSpec` at a
``quick`` (CI) or full (local) size.  The spec helpers
(:func:`storm_spec`, :func:`rebalance_spec`) are exported separately so
perfkit can build bench-sized variants without duplicating geometry.

``cluster_storm`` at quick size is the CI determinism gate's subject:
16 hosts, 50k tenant threads, byte-identical under ``--shards 1`` vs
``--shards 4``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cluster.spec import ClusterSpec, HostSpec
from repro.units import MS


def mixed_fleet(cpu_hosts: int, smp_hosts: int, smp_cpus: int = 4,
                groups: int = 2, leaves: int = 4) -> List[HostSpec]:
    """A fleet of ``cpu_hosts`` uniprocessors plus ``smp_hosts`` SMP boxes."""
    digits = len(str(max(1, cpu_hosts + smp_hosts - 1)))
    hosts = [HostSpec("h%0*d" % (digits, index), kind="cpu",
                      groups=groups, leaves=leaves)
             for index in range(cpu_hosts)]
    hosts.extend(HostSpec("h%0*d" % (digits, cpu_hosts + index), kind="smp",
                          cpus=smp_cpus, groups=groups, leaves=leaves)
                 for index in range(smp_hosts))
    return hosts


def mini_spec(quick: bool) -> ClusterSpec:
    """A small mixed cluster with host churn — demos and unit tests."""
    return ClusterSpec(
        name="cluster_mini",
        hosts=mixed_fleet(2, 2, smp_cpus=2),
        tenants=24 if quick else 96,
        epoch_ns=25 * MS,
        epochs=10,
        arrival_window_epochs=4,
        policy="least-loaded",
        # ~6 bursts with 15ms think time: tenants span several epochs, so
        # the churned host actually drains live tenants for re-placement
        tenant_total_work=120_000,
        tenant_burst_work=20_000,
        tenant_sleep_ns=15 * MS,
        tenant_groups=8,
        faults=[{"kind": "host-churn", "params": {"downs": 1}}],
    )


def storm_spec(cpu_hosts: int, smp_hosts: int, tenants: int,
               epochs: int) -> ClusterSpec:
    """A placement storm: a tenant flood over a mixed fleet, no faults."""
    return ClusterSpec(
        name="cluster_storm",
        hosts=mixed_fleet(cpu_hosts, smp_hosts, smp_cpus=4,
                          groups=2, leaves=4),
        tenants=tenants,
        epoch_ns=100 * MS,
        epochs=epochs,
        arrival_window_epochs=8,
        policy="least-loaded",
        tenant_total_work=30_000,
        tenant_burst_work=15_000,
        tenant_sleep_ns=5 * MS,
        tenant_groups=32,
    )


def rebalance_spec(hosts: int, tenants: int, epochs: int) -> ClusterSpec:
    """Affinity packing plus churn, with the rebalancer unpacking hot hosts."""
    return ClusterSpec(
        name="tenant_rebalance",
        hosts=mixed_fleet(0, hosts, smp_cpus=2, groups=2, leaves=4),
        tenants=tenants,
        epoch_ns=50 * MS,
        epochs=epochs,
        arrival_window_epochs=6,
        policy="affinity",
        # ~5 bursts with 30ms think time: tenants outlive epochs, so both
        # the rebalancer and the churn drain path see live victims
        tenant_total_work=100_000,
        tenant_burst_work=20_000,
        tenant_sleep_ns=30 * MS,
        tenant_groups=12,
        # the outage lands inside the arrival window so the drained host
        # holds live tenants and the fail-over/re-place path runs
        faults=[{"kind": "host-churn",
                 "params": {"downs": 1, "first_epoch": 3, "last_epoch": 6}}],
        rebalance_threshold=12,
    )


class ClusterScenario:
    """A named, size-parameterized cluster spec builder."""

    __slots__ = ("name", "description", "build")

    def __init__(self, name: str, description: str,
                 build: Callable[[bool], ClusterSpec]) -> None:
        self.name = name
        self.description = description
        self.build = build


#: scenario name -> builder (module-level registry, like perfkit's)
CLUSTER_SCENARIOS: Dict[str, ClusterScenario] = {}


def _register(scenario: ClusterScenario) -> None:
    CLUSTER_SCENARIOS[scenario.name] = scenario


_register(ClusterScenario(
    "cluster_mini",
    "4 mixed hosts, small tenant wave, one host-churn outage",
    mini_spec))

_register(ClusterScenario(
    "cluster_storm",
    "16+ hosts, 50k+ tenant threads flooding the placement tier",
    lambda quick: (storm_spec(8, 8, 50_000, 24) if quick
                   else storm_spec(16, 16, 120_000, 32))))

_register(ClusterScenario(
    "tenant_rebalance",
    "affinity packing vs the rebalancer, under host churn",
    lambda quick: (rebalance_spec(6, 600, 16) if quick
                   else rebalance_spec(6, 2_400, 24))))


def cluster_scenarios() -> Dict[str, ClusterScenario]:
    """The scenario registry (a copy; callers cannot mutate the module's)."""
    return dict(CLUSTER_SCENARIOS)
