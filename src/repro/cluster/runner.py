"""The cluster run loop: epochs, barriers, merge, control, artifacts.

:func:`run_cluster` drives one cluster simulation to its horizon:

1. every shard advances its hosts to the next barrier and returns a
   sorted outbox (:mod:`repro.cluster.shards`);
2. the outboxes are merged with the validating k-way merge
   (:mod:`repro.cluster.messages`);
3. the control tier folds the merged log, decides placements /
   migrations / churn, and its messages become both the log tail and
   next epoch's directives (:mod:`repro.cluster.control`).

The resulting :class:`ClusterResult` carries the three shard-invariant
artifacts the CI gate compares byte-for-byte — the merged cluster trace,
the placement log, and the merged cluster schedstat — plus per-host
summaries and digests.  Per-host binlogs are deterministic for a fixed
shard layout but are keyed by process-global tids, so they are *not*
part of the cross-shard gate (the docs spell this out).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from repro.cluster.churn import build_churn
from repro.cluster.control import CTL_SRC, ControlTier
from repro.cluster.messages import (
    Message,
    check_sorted,
    log_digest,
    merge_outboxes,
    render_lines,
)
from repro.cluster.shards import make_shards
from repro.cluster.spec import ClusterSpec
from repro.obs.schedstat import SchedStat, merge_schedstats, render_schedstat_paths


class ClusterResult:
    """Everything one cluster run produced."""

    def __init__(self, spec: ClusterSpec, seed: int, shards: int,
                 log: List[Message], hosts: List[Dict[str, object]],
                 control: Dict[str, object],
                 fault_log: List[Dict[str, object]],
                 schedstat_text: str) -> None:
        self.spec = spec
        self.seed = seed
        self.shards = shards
        #: the merged, order-validated cluster message log
        self.log = log
        #: per-incarnation host summaries, key-sorted
        self.hosts = hosts
        self.control = control
        self.fault_log = fault_log
        self.schedstat_text = schedstat_text

    @property
    def placement_log(self) -> List[Message]:
        """Only the control tier's messages (the placement record)."""
        return [msg for msg in self.log if msg["src"] == CTL_SRC]

    def digests(self) -> Dict[str, str]:
        """sha256 digests of every shard-invariant artifact."""
        hosts_src = json.dumps(
            [{"key": host["key"], "digest": host["digest"]}
             for host in self.hosts],
            sort_keys=True, separators=(",", ":"))
        return {
            "trace": log_digest(self.log),
            "placement": log_digest(self.placement_log),
            "schedstat": hashlib.sha256(
                self.schedstat_text.encode("utf-8")).hexdigest(),
            "hosts": hashlib.sha256(hosts_src.encode("utf-8")).hexdigest(),
        }

    def report(self) -> Dict[str, object]:
        """The JSON-able run report (written as ``report.json``)."""
        return {
            "cluster": self.spec.name,
            "seed": self.seed,
            "shards": self.shards,
            "hosts": len(self.spec.hosts),
            "tenants": self.spec.tenants,
            "epochs": self.spec.epochs,
            "epoch_ns": self.spec.epoch_ns,
            "policy": self.spec.policy,
            "messages": len(self.log),
            "control": self.control,
            "fault_log": self.fault_log,
            "digests": self.digests(),
            "host_summaries": [
                {key: value for key, value in host.items()
                 if key != "schedstat"}
                for host in self.hosts],
        }

    def write(self, outdir: str) -> Dict[str, str]:
        """Write the artifact set; returns ``{artifact: path}``."""
        os.makedirs(outdir, exist_ok=True)
        paths = {
            "trace": os.path.join(outdir, "cluster-trace.jsonl"),
            "placement": os.path.join(outdir, "placement-log.jsonl"),
            "schedstat": os.path.join(outdir, "cluster-schedstat.txt"),
            "report": os.path.join(outdir, "report.json"),
        }
        with open(paths["trace"], "w") as fh:
            fh.write(render_lines(self.log))
        with open(paths["placement"], "w") as fh:
            fh.write(render_lines(self.placement_log))
        with open(paths["schedstat"], "w") as fh:
            fh.write(self.schedstat_text + "\n")
        with open(paths["report"], "w") as fh:
            json.dump(self.report(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return paths


def run_cluster(spec: ClusterSpec, seed: int, shards: int = 1,
                trace_dir: Optional[str] = None) -> ClusterResult:
    """Run one cluster simulation; byte-identical for any ``shards``.

    ``trace_dir`` additionally captures one binlog per host incarnation
    (deterministic per shard layout; see the module docstring for why
    binlogs are excluded from the cross-shard gate).
    """
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    churn_ctx = build_churn(spec, seed)
    control = ControlTier(spec, seed, churn=churn_ctx.churn)
    pool = make_shards(spec, shards, trace_dir)
    log: List[Message] = []
    directives: List[Message] = []
    try:
        for epoch in range(spec.epochs):
            barrier_ns = (epoch + 1) * spec.epoch_ns
            outboxes = pool.epoch(epoch, barrier_ns, directives)
            merged = merge_outboxes(outboxes)
            ctl = control.barrier(epoch, merged)
            log.extend(merged)
            log.extend(ctl)
            directives = ctl
        summaries = pool.finalize()
    finally:
        pool.close()
    check_sorted(log, "full cluster log")
    per_host = {str(summary["key"]):
                SchedStat.from_dict(summary["schedstat"])  # type: ignore[arg-type]
                for summary in summaries}
    schedstat_text = render_schedstat_paths(merge_schedstats(per_host))
    return ClusterResult(spec, seed, shards, log, summaries,
                         control.summary(), churn_ctx.log, schedstat_text)
