"""Placement policies: the cluster's top-level scheduler.

A placement policy is the cluster analogue of a leaf scheduler — small,
pluggable, and registered by name in :data:`PLACEMENTS` (the same
decorator-registry shape as ``repro.faultlab.faults.FAULTS``).  The
control tier calls :meth:`PlacementPolicy.choose` once per pending
tenant at each epoch barrier with a :class:`PlacementView` of the live
fleet; the policy returns the chosen host key.

Policies must be *deterministic pure functions of the view*: integer
arithmetic only (load comparisons cross-multiply rather than divide) and
name-order tie-breaks, so a placement decision can never depend on shard
count, dict order, or float rounding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type


class HostView:
    """The placement-relevant state of one live host."""

    __slots__ = ("key", "capacity_weight", "load", "group_counts")

    def __init__(self, key: str, capacity_weight: int, load: int,
                 group_counts: Dict[str, int]) -> None:
        self.key = key
        self.capacity_weight = max(1, capacity_weight)
        #: total weight of tenants currently believed on the host
        self.load = load
        #: affinity group -> live tenant count on this host
        self.group_counts = group_counts


class PlacementView:
    """Everything a policy may look at: the name-sorted live fleet."""

    __slots__ = ("hosts",)

    def __init__(self, hosts: List[HostView]) -> None:
        self.hosts = sorted(hosts, key=lambda host: host.key)

    def least_loaded(self, candidates: Optional[List[HostView]] = None
                     ) -> HostView:
        """The candidate with the smallest load-per-capacity, name tie-break.

        Compares ``load_a / cap_a`` against ``load_b / cap_b`` by
        cross-multiplication so the decision is exact integer math.
        """
        pool = self.hosts if candidates is None else candidates
        if not pool:
            raise ValueError("no live hosts to place on")
        best = pool[0]
        for host in pool[1:]:
            if (host.load * best.capacity_weight
                    < best.load * host.capacity_weight):
                best = host
        return best


#: policy name -> policy class; see ``register_placement``
PLACEMENTS: Dict[str, Type["PlacementPolicy"]] = {}


def register_placement(cls: Type["PlacementPolicy"]
                       ) -> Type["PlacementPolicy"]:
    """Class decorator adding a policy to the :data:`PLACEMENTS` registry."""
    if not cls.name:
        raise ValueError("placement class %r has no name" % (cls,))
    if cls.name in PLACEMENTS:
        raise ValueError("duplicate placement policy %r" % (cls.name,))
    PLACEMENTS[cls.name] = cls
    return cls


def build_placement(name: str) -> "PlacementPolicy":
    """Instantiate the registered policy called ``name``."""
    try:
        cls = PLACEMENTS[name]
    except KeyError:
        raise ValueError("unknown placement policy %r (have: %s)"
                         % (name, ", ".join(sorted(PLACEMENTS)))) from None
    return cls()


class PlacementPolicy:
    """Base class: choose a host key for one tenant given the fleet view."""

    name = ""

    def choose(self, group: str, weight: int, view: PlacementView) -> str:
        """Return the key of the host this tenant should be placed on."""
        raise NotImplementedError


@register_placement
class LeastLoadedPolicy(PlacementPolicy):
    """Weighted least-loaded: minimize load per capacity weight.

    The cluster reading of SFQ's "serve the smallest virtual tag": each
    host's ``load / capacity_weight`` plays the role of a virtual time,
    and the next tenant goes wherever it is smallest.
    """

    name = "least-loaded"

    def choose(self, group: str, weight: int, view: PlacementView) -> str:
        """Pick the least-loaded host outright."""
        return view.least_loaded().key


@register_placement
class AffinityPolicy(PlacementPolicy):
    """Tenant-affinity consolidation with a least-loaded escape hatch.

    Prefers the host already carrying the most tenants of the same
    affinity group (consolidating co-operating tenants), unless that
    host is more than twice as loaded per capacity as the least-loaded
    host — then the tenant spills to the least-loaded host instead.
    """

    name = "affinity"

    def choose(self, group: str, weight: int, view: PlacementView) -> str:
        """Pick the strongest same-group host unless badly overloaded."""
        coldest = view.least_loaded()
        peers: List[Tuple[int, str]] = [
            (host.group_counts.get(group, 0), host.key)
            for host in view.hosts if host.group_counts.get(group, 0) > 0]
        if not peers:
            return coldest.key
        best_count = max(count for count, __ in peers)
        preferred_key = min(key for count, key in peers
                            if count == best_count)
        preferred = next(host for host in view.hosts
                         if host.key == preferred_key)
        # Spill when preferred.load/cap > 2 * coldest.load/cap (and the
        # preferred host is non-trivially loaded) — integer cross-multiply.
        if (preferred.load * coldest.capacity_weight
                > 2 * coldest.load * preferred.capacity_weight
                and preferred.load > 2 * weight):
            return coldest.key
        return preferred_key
