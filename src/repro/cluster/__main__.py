"""``python -m repro.cluster`` — see :mod:`repro.cluster.cli`."""

import sys

from repro.cluster.cli import main

if __name__ == "__main__":
    sys.exit(main())
