"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError``, ``ValueError`` from user
code, etc.) propagate normally.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """An inconsistency was detected inside the discrete-event engine."""


class SchedulingError(ReproError):
    """An inconsistency was detected inside a scheduler."""


class StructureError(ReproError):
    """Invalid operation on the scheduling structure tree."""


class NodeExistsError(StructureError):
    """A node with the requested name already exists under the parent."""


class NodeNotFoundError(StructureError):
    """A pathname did not resolve to a node in the scheduling structure."""


class NodeBusyError(StructureError):
    """The node cannot be removed (it has children or attached threads)."""


class NotALeafError(StructureError):
    """A thread operation was attempted on a non-leaf node."""


class AdmissionError(ReproError):
    """The QoS manager rejected a request during admission control."""


class WorkloadError(ReproError):
    """A workload produced an invalid segment sequence."""


class ClusterError(ReproError):
    """A determinism or protocol violation in the cluster simulation tier."""
