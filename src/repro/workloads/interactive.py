"""Interactive (burst / think-time) workloads.

Models an editor-like task: short CPU bursts separated by long think
times.  The paper's §6 notes SFQ "provides lower delay to low throughput
applications ... interactive applications are low throughput in nature";
the response-time metrics in :mod:`repro.trace.metrics` quantify that.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.errors import WorkloadError
from repro.threads.segments import Compute, Exit, SleepFor, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class InteractiveWorkload(Workload):
    """Alternating CPU bursts and exponential think times.

    Parameters
    ----------
    burst_work:
        Mean instructions per burst (exponentially distributed, min 1).
    think_time:
        Mean think time in ns (exponentially distributed, min 1).
    rng:
        Seeded random source; deterministic given the seed.
    interactions:
        Number of burst/think cycles before exit; ``None`` = forever.
    """

    def __init__(self, burst_work: int, think_time: int,
                 rng: Optional[random.Random] = None,
                 interactions: Optional[int] = None) -> None:
        if burst_work <= 0 or think_time <= 0:
            raise WorkloadError("burst_work and think_time must be positive")
        self.burst_work = burst_work
        self.think_time = think_time
        # Fixed-seed fallback for standalone use; campaigns pass a seed-tree rng.
        self.rng = (rng if rng is not None
                    else random.Random(0))  # schedlint: disable=SL006
        self.interactions = interactions
        self._count = 0
        self._phase = "burst"

    def next_segment(self, now: int, thread: "SimThread"):
        if self._phase == "burst":
            if self.interactions is not None and self._count >= self.interactions:
                return Exit()
            self._count += 1
            self._phase = "think"
            work = max(1, round(self.rng.expovariate(1.0 / self.burst_work)))
            return Compute(work)
        self._phase = "burst"
        thread.stats.bump_marker("interactions")
        delay = max(1, round(self.rng.expovariate(1.0 / self.think_time)))
        return SleepFor(delay)

    def reset(self) -> None:
        self._count = 0
        self._phase = "burst"
