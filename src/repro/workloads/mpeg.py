"""A synthetic VBR MPEG decoder model.

The paper's Figure 1 shows that MPEG decompression cost varies
"from frame-to-frame (i.e., at the time scale of tens of milliseconds) as
well as from scene-to-scene (i.e., at the time scale of seconds)", and that
these variations are unpredictable.  :class:`MpegVbrModel` reproduces both
timescales:

* **frame level** — a repeating GOP pattern (I frames expensive, P frames
  moderate, B frames cheap) plus multiplicative per-frame noise;
* **scene level** — scene lengths are geometrically distributed (mean a few
  seconds of video) and each scene has its own complexity factor that the
  per-frame costs are scaled by, with a touch of AR(1) smoothing inside the
  scene.

The absolute calibration targets the paper's era: mean decode cost around
2/3 of a frame time on a ~100 MIPS CPU, so a dedicated machine decodes
faster than real time but not trivially so.

:class:`MpegDecodeWorkload` turns a model into thread behaviour.  In
*unpaced* mode (Figure 10, the Berkeley player benchmarked flat out) it
decodes frame after frame as fast as the scheduler allows; in *paced* mode
it decodes ahead of a display clock with bounded lookahead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.errors import WorkloadError
from repro.sim.rng import Stream
from repro.threads.segments import Compute, Exit, SleepUntil, Workload
from repro.units import SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread

#: canonical 12-frame GOP at IBBPBBPBBPBB
DEFAULT_GOP = "IBBPBBPBBPBB"


class MpegVbrModel:
    """Generator of per-frame decode costs (instructions).

    Parameters
    ----------
    seed:
        Root seed; every derived stream is deterministic in it.
    gop:
        Frame-type pattern, e.g. ``"IBBPBBPBBPBB"``.
    mean_cost:
        Target mean decode cost per frame in instructions.
    frame_rate:
        Frames per second of the video (used by paced decoding).
    mean_scene_frames:
        Mean scene length in frames (geometric distribution).
    scene_sigma:
        Log-scale spread of scene complexity factors.
    noise_sigma:
        Per-frame multiplicative noise spread.
    """

    #: relative weight of each frame type before normalization
    TYPE_FACTORS = {"I": 2.2, "P": 1.2, "B": 0.6}

    def __init__(self, seed: int = 1, gop: str = DEFAULT_GOP,
                 mean_cost: int = 2_000_000, frame_rate: int = 30,
                 mean_scene_frames: int = 120, scene_sigma: float = 0.35,
                 noise_sigma: float = 0.12) -> None:
        if not gop or any(ch not in self.TYPE_FACTORS for ch in gop):
            raise WorkloadError("GOP pattern %r must use only I/P/B" % (gop,))
        if mean_cost <= 0 or frame_rate <= 0 or mean_scene_frames <= 0:
            raise WorkloadError("mean_cost, frame_rate, mean_scene_frames must be positive")
        self.gop = gop
        self.mean_cost = mean_cost
        self.frame_rate = frame_rate
        self.mean_scene_frames = mean_scene_frames
        self.scene_sigma = scene_sigma
        self.noise_sigma = noise_sigma
        # Labels under the root stream, not a "mpeg" substream: these
        # spellings reproduce the historical make_rng draws exactly.
        stream = Stream(seed)
        self._scene_rng = stream.rng("mpeg/scene")
        self._noise_rng = stream.rng("mpeg/noise")
        # Normalize type factors so the long-run mean cost hits mean_cost.
        gop_mean = sum(self.TYPE_FACTORS[ch] for ch in gop) / len(gop)
        self._scale = mean_cost / gop_mean
        self._frame_index = 0
        self._scene_left = 0
        self._scene_factor = 1.0

    @property
    def frame_period(self) -> int:
        """Display time per frame in nanoseconds."""
        return SECOND // self.frame_rate

    def frame_type(self, index: int) -> str:
        """Frame type (I/P/B) of frame ``index``."""
        return self.gop[index % len(self.gop)]

    def next_cost(self) -> int:
        """Decode cost (instructions) of the next frame in sequence."""
        if self._scene_left <= 0:
            self._begin_scene()
        self._scene_left -= 1
        ftype = self.frame_type(self._frame_index)
        self._frame_index += 1
        noise = self._noise_rng.lognormvariate(0.0, self.noise_sigma)
        cost = self._scale * self.TYPE_FACTORS[ftype] * self._scene_factor * noise
        return max(1, round(cost))

    def frame_costs(self, count: int) -> List[int]:
        """Costs of the next ``count`` frames."""
        return [self.next_cost() for __ in range(count)]

    def _begin_scene(self) -> None:
        rng = self._scene_rng
        # Geometric scene length with the configured mean, at least one GOP.
        p = 1.0 / self.mean_scene_frames
        length = len(self.gop)
        while rng.random() > p:
            length += 1
            if length >= 50 * self.mean_scene_frames:
                break
        target = rng.lognormvariate(0.0, self.scene_sigma)
        # AR(1)-style smoothing: a new scene remembers 30% of the old level,
        # so complexity drifts rather than teleports.
        self._scene_factor = 0.3 * self._scene_factor + 0.7 * target
        self._scene_left = length


class MpegDecodeWorkload(Workload):
    """Decode frames from an :class:`MpegVbrModel` (or a fixed cost list).

    Parameters
    ----------
    source:
        A model, or a pre-generated sequence of frame costs.
    frame_count:
        Frames to decode before exiting; ``None`` decodes forever (requires
        a model source).
    paced:
        When True, decoding is display-driven: the decoder sleeps whenever
        it is more than ``lookahead`` frames ahead of the display clock.
        When False (default; Figure 10) it decodes flat out.
    lookahead:
        Decode-ahead buffer, in frames, for paced mode.
    """

    def __init__(self, source: Union[MpegVbrModel, Sequence[int]],
                 frame_count: Optional[int] = None, paced: bool = False,
                 lookahead: int = 4,
                 frame_period: Optional[int] = None) -> None:
        self._model: Optional[MpegVbrModel]
        if isinstance(source, MpegVbrModel):
            self._model = source
            self._costs: Optional[Sequence[int]] = None
            self._frame_period = frame_period or source.frame_period
        else:
            self._model = None
            self._costs = list(source)
            if frame_count is None:
                frame_count = len(self._costs)
            if frame_count > len(self._costs):
                raise WorkloadError("frame_count exceeds supplied cost list")
            if paced and frame_period is None:
                raise WorkloadError("paced decoding from a list needs frame_period")
            self._frame_period = frame_period or 0
        if frame_count is not None and frame_count <= 0:
            raise WorkloadError("frame_count must be positive")
        self.frame_count = frame_count
        self.paced = paced
        self.lookahead = max(1, lookahead)
        self.frames_decoded = 0
        self._started_at: Optional[int] = None
        self._pending_pace = False

    def next_segment(self, now: int, thread: "SimThread"):
        if self._started_at is None:
            self._started_at = now
        elif not self._pending_pace:
            # The previous segment was a decode that just completed.
            self.frames_decoded += 1
            thread.stats.bump_marker("frames")
        self._pending_pace = False

        if self.frame_count is not None and self.frames_decoded >= self.frame_count:
            return Exit()

        if self.paced:
            # Display has consumed floor((now - start) / period) frames;
            # sleep when we are a full lookahead window ahead of it.
            displayed = (now - self._started_at) // self._frame_period
            if self.frames_decoded >= displayed + self.lookahead:
                self._pending_pace = True
                wake = self._started_at + self._frame_period * (
                    self.frames_decoded - self.lookahead + 1)
                return SleepUntil(wake)

        if self._model is not None:
            cost = self._model.next_cost()
        else:
            assert self._costs is not None
            cost = self._costs[self.frames_decoded]
        return Compute(cost)

    def reset(self) -> None:
        self.frames_decoded = 0
        self._started_at = None
        self._pending_pace = False
