"""Periodic real-time tasks.

A :class:`PeriodicWorkload` releases a job every ``period`` nanoseconds:
it sleeps until the release instant, computes for ``cost`` instructions,
then sleeps until the next release.  This is the thread model of the
paper's Figure 9 experiment ("thread1 executed for 10 ms every 60 ms,
thread2 required 150 ms of computation time every 960 ms", with "a clock
interrupt used to announce the deadline for the current round and the
start of a new round").

The workload records the release history so the experiment harness can
compute *scheduling latency* (release -> first dispatch) and *slack*
(deadline - completion) per round.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Union

from repro.errors import WorkloadError
from repro.threads.segments import Compute, Exit, SleepUntil, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread

CostSpec = Union[int, Callable[[int], int]]


class PeriodicWorkload(Workload):
    """Release a ``cost``-instruction job every ``period`` nanoseconds.

    Parameters
    ----------
    period:
        Release period in ns.  The deadline of round ``k`` is the next
        release, ``offset + (k + 1) * period`` (implicit deadlines).
    cost:
        Instructions per job; either a constant or ``f(round_index)``.
    offset:
        Release time of round 0.
    rounds:
        Number of jobs before exiting; ``None`` runs forever.
    """

    def __init__(self, period: int, cost: CostSpec, offset: int = 0,
                 rounds: Optional[int] = None) -> None:
        if period <= 0:
            raise WorkloadError("period must be positive")
        if isinstance(cost, int) and cost <= 0:
            raise WorkloadError("cost must be positive")
        self.period = period
        self.cost = cost
        self.offset = offset
        self.rounds = rounds
        self.round_index = 0
        #: release time of each round, appended when the job is emitted
        self.releases: List[int] = []
        self._phase = "sleep"  # alternates sleep -> compute -> sleep ...

    def deadline(self, round_index: int) -> int:
        """Absolute (implicit) deadline of round ``round_index``."""
        return self.offset + (round_index + 1) * self.period

    def release_time(self, round_index: int) -> int:
        """Absolute release time of round ``round_index``."""
        return self.offset + round_index * self.period

    def next_segment(self, now: int, thread: "SimThread"):
        if self._phase == "sleep":
            if self.rounds is not None and self.round_index >= self.rounds:
                return Exit()
            self._phase = "compute"
            release = self.release_time(self.round_index)
            if release > now:
                return SleepUntil(release)
            # Release already passed (overrun or offset 0): fall through and
            # compute immediately.
            return self._emit_job(max(now, release), thread)
        if self._phase == "compute":
            return self._emit_job(now, thread)
        raise WorkloadError("invalid periodic workload phase %r" % (self._phase,))

    def _emit_job(self, now: int, thread: "SimThread") -> Compute:
        release = self.release_time(self.round_index)
        self.releases.append(release)
        if callable(self.cost):
            cost = self.cost(self.round_index)
        else:
            cost = self.cost
        self.round_index += 1
        self._phase = "sleep"
        thread.stats.bump_marker("jobs")
        return Compute(cost)

    def reset(self) -> None:
        self.round_index = 0
        self.releases = []
        self._phase = "sleep"
