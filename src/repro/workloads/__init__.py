"""Workload generators used by the paper's experiments.

* :mod:`repro.workloads.dhrystone` — the CPU-bound loop benchmark used in
  Figures 5, 7, 8, and 11;
* :mod:`repro.workloads.mpeg` — a synthetic VBR MPEG decoder with
  frame-level and scene-level cost variability (Figures 1 and 10);
* :mod:`repro.workloads.periodic` — periodic real-time tasks (Figure 9);
* :mod:`repro.workloads.interactive` — burst/think-time tasks;
* :mod:`repro.workloads.bursty` — on/off CPU demand with random phases.
"""

from repro.workloads.bursty import BurstyWorkload
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.interactive import InteractiveWorkload
from repro.workloads.mpeg import MpegDecodeWorkload, MpegVbrModel
from repro.workloads.periodic import PeriodicWorkload
from repro.workloads.phased import PhasedWorkload

__all__ = [
    "DhrystoneWorkload",
    "MpegVbrModel",
    "MpegDecodeWorkload",
    "PeriodicWorkload",
    "PhasedWorkload",
    "InteractiveWorkload",
    "BurstyWorkload",
]
