"""On/off bursty CPU demand.

Used as background load: alternating exponentially distributed busy and
idle phases.  In the Figure 8(a) experiment a mix of these threads plays
the role of "all the other threads in the system" in the SVR4 node, making
the bandwidth available to the SFQ nodes fluctuate over time — the exact
condition under which SFQ must (and the experiment shows, does) remain
fair.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.errors import WorkloadError
from repro.threads.segments import Compute, Exit, SleepFor, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class BurstyWorkload(Workload):
    """Exponential on/off demand.

    Parameters
    ----------
    mean_busy_work:
        Mean instructions per busy phase.
    mean_idle_time:
        Mean idle duration (ns) between busy phases.
    rng:
        Seeded random source.
    cycles:
        Busy/idle cycles before exiting; ``None`` = forever.
    """

    def __init__(self, mean_busy_work: int, mean_idle_time: int,
                 rng: Optional[random.Random] = None,
                 cycles: Optional[int] = None) -> None:
        if mean_busy_work <= 0 or mean_idle_time <= 0:
            raise WorkloadError("mean_busy_work and mean_idle_time must be positive")
        self.mean_busy_work = mean_busy_work
        self.mean_idle_time = mean_idle_time
        # Fixed-seed fallback for standalone use; campaigns pass a seed-tree rng.
        self.rng = (rng if rng is not None
                    else random.Random(0))  # schedlint: disable=SL006
        self.cycles = cycles
        self._count = 0
        self._phase = "busy"

    def next_segment(self, now: int, thread: "SimThread"):
        if self._phase == "busy":
            if self.cycles is not None and self._count >= self.cycles:
                return Exit()
            self._count += 1
            self._phase = "idle"
            work = max(1, round(self.rng.expovariate(1.0 / self.mean_busy_work)))
            return Compute(work)
        self._phase = "busy"
        delay = max(1, round(self.rng.expovariate(1.0 / self.mean_idle_time)))
        return SleepFor(delay)

    def reset(self) -> None:
        self._count = 0
        self._phase = "busy"
