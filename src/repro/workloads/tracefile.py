"""Trace-file-driven MPEG workloads.

When a real per-frame decode-cost trace is available (one value per line,
or CSV with a configurable column), these helpers feed it to
:class:`~repro.workloads.mpeg.MpegDecodeWorkload` so Figure 1/10-style
experiments can run on measured data instead of the synthetic VBR model.
Exported traces from :func:`save_frame_trace` round-trip losslessly.
"""

from __future__ import annotations

import csv
from typing import List, Optional, Sequence

from repro.errors import WorkloadError
from repro.workloads.mpeg import MpegDecodeWorkload


def load_frame_trace(path: str, column: Optional[str] = None,
                     scale: float = 1.0) -> List[int]:
    """Load per-frame costs (instructions) from a text or CSV file.

    * plain format: one number per line; blank lines and ``#`` comments
      are skipped;
    * CSV format: pass ``column`` naming the cost column.

    ``scale`` multiplies every value (e.g. to convert cycles at a known
    clock into instructions).
    """
    costs: List[int] = []
    with open(path, "r") as handle:
        if column is not None:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None or column not in reader.fieldnames:
                raise WorkloadError(
                    "column %r not found in %s (have %s)"
                    % (column, path, reader.fieldnames))
            for row in reader:
                costs.append(_parse_cost(row[column], scale, path))
        else:
            for line in handle:
                text = line.split("#", 1)[0].strip()
                if not text:
                    continue
                costs.append(_parse_cost(text, scale, path))
    if not costs:
        raise WorkloadError("trace file %s contains no frames" % path)
    return costs


def save_frame_trace(path: str, costs: Sequence[int],
                     header_comment: str = "") -> None:
    """Write per-frame costs in the plain format ``load_frame_trace`` reads."""
    with open(path, "w") as handle:
        if header_comment:
            handle.write("# %s\n" % header_comment)
        for cost in costs:
            handle.write("%d\n" % cost)


def workload_from_trace(path: str, column: Optional[str] = None,
                        scale: float = 1.0, paced: bool = False,
                        frame_period: Optional[int] = None,
                        loop: int = 1) -> MpegDecodeWorkload:
    """Build a decoder workload directly from a trace file.

    ``loop`` repeats the trace that many times (long experiments on short
    clips).
    """
    costs = load_frame_trace(path, column=column, scale=scale)
    if loop > 1:
        costs = list(costs) * loop
    return MpegDecodeWorkload(costs, paced=paced, frame_period=frame_period)


def _parse_cost(text: str, scale: float, path: str) -> int:
    try:
        value = float(text)
    except ValueError:
        raise WorkloadError("bad cost value %r in %s" % (text, path)) from None
    cost = round(value * scale)
    if cost <= 0:
        raise WorkloadError("non-positive frame cost %r in %s" % (text, path))
    return cost
