"""A Dhrystone-like CPU-bound loop benchmark.

The paper measures "the number of loops completed in a fixed duration"
(§5).  Here a loop costs a fixed number of instructions, the workload
computes forever in batches, and the loop count of a thread at any time is
``work_done // loop_cost`` (exposed by :func:`loops_completed`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import WorkloadError
from repro.threads.segments import Compute, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread

#: Dhrystone V2.1 is roughly ~300 instructions per loop on 1990s RISC.
DEFAULT_LOOP_COST = 300


class DhrystoneWorkload(Workload):
    """An endless CPU-bound loop.

    Parameters
    ----------
    loop_cost:
        Instructions per loop iteration.
    batch:
        Loops per Compute segment.  Batching only affects event granularity,
        never the loop count (progress is derived from executed work).
    """

    def __init__(self, loop_cost: int = DEFAULT_LOOP_COST,
                 batch: int = 10_000) -> None:
        if loop_cost <= 0 or batch <= 0:
            raise WorkloadError("loop_cost and batch must be positive")
        self.loop_cost = loop_cost
        self.batch = batch

    def next_segment(self, now: int, thread: "SimThread") -> Compute:
        return Compute(self.loop_cost * self.batch)


def loops_completed(thread: "SimThread") -> int:
    """Dhrystone loops completed by ``thread`` so far."""
    workload = thread.workload
    if not isinstance(workload, DhrystoneWorkload):
        raise WorkloadError("%r does not run a DhrystoneWorkload" % (thread,))
    return thread.stats.work_done // workload.loop_cost
