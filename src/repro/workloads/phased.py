"""Deterministic on/off (phased) CPU demand.

A :class:`PhasedWorkload` is CPU-bound during the first ``on`` nanoseconds
of every ``cycle`` and asleep for the remainder — the deterministic
counterpart of :class:`~repro.workloads.bursty.BurstyWorkload`.  Because
its active windows are known exactly, experiments can restrict
measurements to intervals where the thread was provably backlogged; the
fluctuation, currency, and fairness-lab studies all rely on that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import WorkloadError
from repro.threads.segments import Compute, SleepUntil, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class PhasedWorkload(Workload):
    """CPU-bound for ``on`` out of every ``cycle`` nanoseconds.

    Parameters
    ----------
    on:
        Busy prefix of each cycle (ns); ``on == cycle`` never sleeps.
    cycle:
        Cycle length (ns).
    batch:
        Instructions per Compute segment while busy.
    phase:
        Offset added to the wall clock before computing the cycle
        position, letting multiple threads interleave their busy windows.
    """

    def __init__(self, on: int, cycle: int, batch: int,
                 phase: int = 0) -> None:
        if not 0 < on <= cycle:
            raise WorkloadError("need 0 < on <= cycle")
        if batch <= 0:
            raise WorkloadError("batch must be positive")
        self.on = on
        self.cycle = cycle
        self.batch = batch
        self.phase = phase

    def next_segment(self, now: int, thread: "SimThread"):
        position = (now + self.phase) % self.cycle
        if position >= self.on:
            return SleepUntil(now + (self.cycle - position))
        return Compute(self.batch)

    def is_on(self, t: int) -> bool:
        """True when the workload is in a busy phase at time ``t``."""
        return (t + self.phase) % self.cycle < self.on

    def window_fully_on(self, t1: int, t2: int) -> bool:
        """True when [t1, t2) lies entirely inside one busy phase."""
        if t2 <= t1:
            return True
        position = (t1 + self.phase) % self.cycle
        return position + (t2 - t1) <= self.on
