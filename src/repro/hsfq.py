"""The paper's system-call interface, verbatim.

Section 4 of the paper specifies five calls operating on integer node
identifiers.  This module reproduces that C-flavoured API exactly (names,
id-based addressing, flag words) on top of
:class:`~repro.core.structure.SchedulingStructure`, for users porting code
or pseudo-code written against the original interface.  New code should
prefer the object API.

    sid = hsfq_mknod(structure, "/soft-rt", parent=0, weight=3,
                     flag=HSFQ_LEAF, sid=SCHED_SFQ)
    node_id = hsfq_parse(structure, "user1", hint=best_effort_id)
    hsfq_admin(structure, node_id, HSFQ_ADMIN_SETWEIGHT, 5)
    hsfq_move(structure, thread, node_id)
    hsfq_rmnod(structure, node_id)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.structure import (
    ADMIN_GET_WEIGHT,
    ADMIN_INFO,
    ADMIN_SET_WEIGHT,
    SchedulingStructure,
)
from repro.errors import StructureError
from repro.obs import events as obs
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.rma import RmaScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.schedulers.svr4 import Svr4TimeSharing

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread

# --- flag word for hsfq_mknod ----------------------------------------------

#: create an intermediate (SFQ-scheduled) node
HSFQ_INTERNAL = 0
#: create a leaf node; ``sid`` selects its class scheduler
HSFQ_LEAF = 1

# --- scheduler ids (the paper's ``scheduler_id sid``) ------------------------

SCHED_SFQ = 0
SCHED_SVR4 = 1
SCHED_EDF = 2
SCHED_RMA = 3
SCHED_FIFO = 4
SCHED_RR = 5

_SCHEDULER_FACTORIES = {
    SCHED_SFQ: SfqScheduler,
    SCHED_SVR4: Svr4TimeSharing,
    SCHED_EDF: EdfScheduler,
    SCHED_RMA: RmaScheduler,
    SCHED_FIFO: FifoScheduler,
    SCHED_RR: RoundRobinScheduler,
}

# --- admin commands ------------------------------------------------------------

HSFQ_ADMIN_GETWEIGHT = ADMIN_GET_WEIGHT
HSFQ_ADMIN_SETWEIGHT = ADMIN_SET_WEIGHT
HSFQ_ADMIN_INFO = ADMIN_INFO


def _obs_now(structure: SchedulingStructure) -> int:
    """Current simulation time for observability stamps (0 off-machine)."""
    hierarchy = structure.hierarchy
    return hierarchy.clock() if hierarchy is not None else 0


def hsfq_mknod(structure: SchedulingStructure, name: str, parent: int,
               weight: int, flag: int = HSFQ_INTERNAL,
               sid: int = SCHED_SFQ) -> int:
    """Create a node under ``parent`` (a node id); returns the new node id.

    ``flag`` selects leaf (``HSFQ_LEAF``) versus intermediate; for a leaf,
    ``sid`` selects the class scheduler installed at the node — the
    function-pointer installation of the paper.
    """
    if flag == HSFQ_LEAF:
        try:
            factory = _SCHEDULER_FACTORIES[sid]
        except KeyError:
            raise StructureError("unknown scheduler id %r" % (sid,)) from None
        scheduler: Optional[object] = factory()
    elif flag == HSFQ_INTERNAL:
        scheduler = None
    else:
        raise StructureError("unknown mknod flag %r" % (flag,))
    node = structure.mknod(name, weight, parent=parent, scheduler=scheduler)
    if obs.BUS.active:
        obs.BUS.emit(obs.NODE_CREATE, _obs_now(structure), node=node.path,
                     weight=weight, leaf=flag == HSFQ_LEAF, sid=sid)
    return node.node_id


def hsfq_parse(structure: SchedulingStructure, name: str,
               hint: int = 0) -> int:
    """Resolve ``name`` (absolute, or relative to node id ``hint``)."""
    return structure.parse(name, hint=hint).node_id


def hsfq_rmnod(structure: SchedulingStructure, node_id: int,
               mode: int = 0) -> None:
    """Remove node ``node_id`` (must be childless and idle)."""
    del mode  # the paper reserves a mode word; no modes are defined
    path = structure.resolve(node_id).path
    structure.rmnod(node_id)
    if obs.BUS.active:
        obs.BUS.emit(obs.NODE_REMOVE, _obs_now(structure), node=path)


def hsfq_move(structure: SchedulingStructure, thread: "SimThread",
              to: int) -> None:
    """Move ``thread`` to the leaf with id ``to``."""
    source = thread.leaf
    structure.move(thread, to)
    if obs.BUS.active:
        obs.BUS.emit(obs.THREAD_MOVE, _obs_now(structure), tid=thread.tid,
                     name=thread.name,
                     node=structure.resolve(to).path,
                     source=source.path if source is not None else "")


def hsfq_admin(structure: SchedulingStructure, node_id: int, cmd: str,
               args=None):
    """Administrative operations; see HSFQ_ADMIN_* commands."""
    old_weight = 0
    if cmd == HSFQ_ADMIN_SETWEIGHT:
        old_weight = structure.resolve(node_id).weight
    result = structure.admin(node_id, cmd, args)
    if cmd == HSFQ_ADMIN_SETWEIGHT and obs.BUS.active:
        node = structure.resolve(node_id)
        obs.BUS.emit(obs.WEIGHT_CHANGE, _obs_now(structure), node=node.path,
                     weight=node.weight, old_weight=old_weight)
    return result
