"""The currency graph and the machine-wide lottery.

Model (after Waldspurger & Weihl '94):

* the **base** currency is the root; every other currency is *funded* by a
  ticket issue denominated in its parent currency;
* a thread holds tickets in exactly one currency;
* a currency's value in base units is the base value of its funding,
  divided among its *active* tickets (tickets of runnable threads plus
  funding of currencies with active consumers);
* each dispatch holds a lottery over runnable threads weighted by the base
  value of their tickets.

Hierarchical partitioning falls out: when a thread blocks, its tickets go
inactive and the remaining tickets in the same currency gain value, so the
currency's total allocation is preserved.  The paper's criticisms, which
EXP-AB7 measures: the allocation is fair only in expectation (large
intervals), re-valuation happens on every block/unblock, and there is no
way to give different classes different *scheduling algorithms* — the
lottery reaches through all currencies down to threads.

Exact arithmetic (Fraction) is used for ticket valuation so the funding
algebra is not perturbed by float error.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cpu.interface import TopScheduler
from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class Currency:
    """A currency funded by tickets of its parent currency."""

    def __init__(self, name: str, parent: Optional["Currency"],
                 funding: int) -> None:
        if parent is not None and funding <= 0:
            raise SchedulingError("currency funding must be positive")
        self.name = name
        self.parent = parent
        #: tickets of the parent currency backing this currency
        self.funding = funding
        self.children: List["Currency"] = []
        if parent is not None:
            parent.children.append(self)

    def __repr__(self) -> str:
        return "Currency(%r, funding=%d)" % (self.name, self.funding)


class CurrencyLottery(TopScheduler):
    """A top-level scheduler holding per-quantum base-currency lotteries."""

    def __init__(self, rng: Optional[random.Random] = None,
                 quantum: Optional[int] = None) -> None:
        self.base = Currency("base", None, 0)
        self.rng = rng if rng is not None else random.Random(0)
        self._threads: Dict[int, "SimThread"] = {}
        self._currency_of: Dict[int, Currency] = {}
        self._runnable: List["SimThread"] = []
        self._quantum = quantum
        self._winner: Optional["SimThread"] = None
        #: number of full re-valuations performed (the §6 overhead point)
        self.revaluations = 0

    # --- currency management ----------------------------------------------

    def create_currency(self, name: str, parent: Optional[Currency] = None,
                        funding: int = 100) -> Currency:
        """Issue a new currency funded in ``parent`` (default: base)."""
        return Currency(name, parent if parent is not None else self.base,
                        funding)

    def bind(self, thread: "SimThread", currency: Currency) -> None:
        """Denominate ``thread``'s tickets (= its weight) in ``currency``."""
        self._currency_of[id(thread)] = currency

    # --- valuation -----------------------------------------------------------

    def _active_tickets(self, currency: Currency) -> Fraction:
        """Tickets of ``currency`` held by runnable threads or by funded
        sub-currencies that have active consumers."""
        total = Fraction(0)
        for thread in self._runnable:
            if self._currency_of.get(id(thread)) is currency:
                total += thread.weight
        for child in currency.children:
            if self._active_tickets(child) > 0:
                total += child.funding
        return total

    def _currency_value(self, currency: Currency) -> Fraction:
        """Base-units value of ONE ticket of ``currency``."""
        if currency.parent is None:
            return Fraction(1)
        active = self._active_tickets(currency)
        if active == 0:
            return Fraction(0)
        parent_value = self._currency_value(currency.parent)
        return parent_value * currency.funding / active

    def base_value(self, thread: "SimThread") -> Fraction:
        """Base-units value of ``thread``'s tickets right now."""
        currency = self._currency_of.get(id(thread))
        if currency is None:
            raise SchedulingError("thread %r has no currency" % (thread,))
        return self._currency_value(currency) * thread.weight

    # --- TopScheduler -----------------------------------------------------

    def admit(self, thread: "SimThread") -> None:
        if id(thread) not in self._currency_of:
            raise SchedulingError(
                "bind %r to a currency before spawning" % (thread,))
        self._threads[id(thread)] = thread

    def retire(self, thread: "SimThread", now: int) -> None:
        self.thread_blocked(thread, now)
        self._threads.pop(id(thread), None)
        self._currency_of.pop(id(thread), None)

    def thread_runnable(self, thread: "SimThread", now: int) -> None:
        if thread not in self._runnable:
            self._runnable.append(thread)
            self.revaluations += 1  # ticket values shift on every change

    def thread_blocked(self, thread: "SimThread", now: int) -> None:
        if thread in self._runnable:
            self._runnable.remove(thread)
            self.revaluations += 1
        if self._winner is thread:
            self._winner = None

    def pick_next(self, now: int) -> Optional["SimThread"]:
        if not self._runnable:
            return None
        if self._winner is None or self._winner not in self._runnable:
            values = [(thread, self.base_value(thread))
                      for thread in self._runnable]
            total = sum(value for __, value in values)
            if total <= 0:
                self._winner = self._runnable[0]
            else:
                draw = Fraction(self.rng.random()) * total
                acc = Fraction(0)
                winner = values[-1][0]
                for thread, value in values:
                    acc += value
                    if draw < acc:
                        winner = thread
                        break
                self._winner = winner
        return self._winner

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        if self._winner is thread:
            self._winner = None  # fresh lottery next quantum

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return self._quantum

    def has_runnable(self) -> bool:
        return bool(self._runnable)
