"""Ticket-and-currency lottery scheduling (Waldspurger & Weihl, OSDI '94).

The hierarchical-partitioning alternative the paper's §6 compares against:
threads hold tickets denominated in currencies, currencies are funded by
tickets of other currencies, and every thread's tickets are exchanged into
the base currency for a machine-wide lottery.  Hierarchical partitioning
emerges because an idle thread's siblings inflate in value.

Implemented as a :class:`~repro.cpu.interface.TopScheduler`
(:class:`~repro.currency.lottery.CurrencyLottery`) so it can drive the
same machine as the hierarchical SFQ scheduler.  The EXP-AB7 ablation
measures the paper's two criticisms: randomized fairness (only over large
intervals) and the ticket re-valuation cost on every block/unblock.
"""

from repro.currency.lottery import Currency, CurrencyLottery

__all__ = ["Currency", "CurrencyLottery"]
