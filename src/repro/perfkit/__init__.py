"""perfkit: the benchmark harness guarding the scheduler's hot path.

The paper's overhead experiments (§5, Figures 10-11) argue hierarchical
SFQ dispatch costs O(depth) and stays cheap as the tree grows.  perfkit
turns that claim into a measured, CI-enforced contract:

* ``python -m repro.perfkit run`` executes a fixed suite of
  macro-scenarios (Figure-5/Figure-8 replays, a deep-hierarchy churn
  workload, an SMP + interrupt storm, a 10k-thread admission storm) with
  statistical repeats and emits a schema-versioned ``BENCH_<n>.json``;
* ``python -m repro.perfkit compare`` diffs two reports and exits
  non-zero on regressions beyond a noise threshold — CI runs it against
  the committed ``benchmarks/baseline.json``;
* ``python -m repro.perfkit baseline`` re-records that baseline.

Everything inside a scenario is deterministic (seeded RNGs, integer
simulated time); only the wall-clock measurements vary run to run, which
the repeats and the noise threshold absorb.  See docs/PERFORMANCE.md.
"""

from repro.perfkit.compare import CompareResult, compare_reports
from repro.perfkit.harness import run_suite
from repro.perfkit.scenarios import SCENARIOS, scenarios
from repro.perfkit.schema import SCHEMA, validate_report

__all__ = [
    "SCENARIOS",
    "scenarios",
    "SCHEMA",
    "CompareResult",
    "compare_reports",
    "run_suite",
    "validate_report",
]
