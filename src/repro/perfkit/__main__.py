"""``python -m repro.perfkit`` entry point."""

import sys

from repro.perfkit.cli import main

if __name__ == "__main__":
    sys.exit(main())
