"""Regression comparison between two BENCH reports.

The unit of comparison is a scenario's **median run wall time**.  A
scenario regresses when::

    current_median > baseline_median * (1 + threshold)

with a default threshold of 25% — wide enough to absorb host noise and CI
runner variance, tight enough to catch a real hot-path slip.  Scenarios
present in only one report are reported but never fail the comparison
(suites are allowed to grow).  ``--min-speedup name:X`` additionally
requires ``baseline_median / current_median >= X`` — used to demonstrate
an optimization target against a recorded pre-change baseline.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


DEFAULT_THRESHOLD = 0.25


class ScenarioDelta:
    """Comparison outcome for one scenario."""

    __slots__ = ("name", "baseline_s", "current_s", "speedup", "regressed",
                 "required_speedup", "met_required")

    def __init__(self, name: str, baseline_s: float, current_s: float,
                 threshold: float,
                 required_speedup: Optional[float] = None) -> None:
        self.name = name
        self.baseline_s = baseline_s
        self.current_s = current_s
        self.speedup = baseline_s / current_s if current_s > 0 else float("inf")
        self.regressed = current_s > baseline_s * (1.0 + threshold)
        self.required_speedup = required_speedup
        self.met_required = (required_speedup is None
                             or self.speedup >= required_speedup)

    def render(self) -> str:
        """One aligned report line: name, medians, speedup, failure flags."""
        flags = []
        if self.regressed:
            flags.append("REGRESSION")
        if not self.met_required:
            flags.append("below required %.2fx" % self.required_speedup)
        note = ("  [" + ", ".join(flags) + "]") if flags else ""
        return "%-22s %9.3fs -> %9.3fs   %5.2fx%s" % (
            self.name, self.baseline_s, self.current_s, self.speedup, note)


class CompareResult:
    """All per-scenario deltas plus the overall verdict."""

    __slots__ = ("deltas", "only_baseline", "only_current", "threshold")

    def __init__(self, deltas: List[ScenarioDelta], only_baseline: List[str],
                 only_current: List[str], threshold: float) -> None:
        self.deltas = deltas
        self.only_baseline = only_baseline
        self.only_current = only_current
        self.threshold = threshold

    @property
    def ok(self) -> bool:
        """True when no scenario regressed and every required speedup held."""
        return all(not delta.regressed and delta.met_required
                   for delta in self.deltas)

    def render(self) -> str:
        """The full human-readable comparison table plus the verdict line."""
        lines = ["scenario                 baseline ->    current   speedup"
                 "   (threshold %.0f%%)" % (self.threshold * 100)]
        lines.extend(delta.render() for delta in self.deltas)
        if self.only_baseline:
            lines.append("only in baseline: %s" % ", ".join(self.only_baseline))
        if self.only_current:
            lines.append("only in current:  %s" % ", ".join(self.only_current))
        lines.append("verdict: %s" % ("OK" if self.ok else "FAIL"))
        return "\n".join(lines)


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    threshold: float = DEFAULT_THRESHOLD,
                    min_speedups: Optional[Dict[str, float]] = None
                    ) -> CompareResult:
    """Compare two validated BENCH reports; see the module docstring."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative, got %r" % (threshold,))
    if current["mode"] != baseline["mode"]:
        raise ValueError(
            "cannot compare a %r-mode report against a %r-mode baseline; "
            "scenario durations differ by design" % (
                current["mode"], baseline["mode"]))
    min_speedups = dict(min_speedups or {})
    current_scenarios = current["scenarios"]
    baseline_scenarios = baseline["scenarios"]
    unknown = [name for name in min_speedups if name not in current_scenarios]
    if unknown:
        raise ValueError("--min-speedup for scenario(s) absent from the "
                         "current report: %s" % ", ".join(unknown))
    deltas = []
    for name, baseline_entry in baseline_scenarios.items():
        current_entry = current_scenarios.get(name)
        if current_entry is None:
            continue
        deltas.append(ScenarioDelta(
            name,
            baseline_entry["stats"]["run_s"]["median"],
            current_entry["stats"]["run_s"]["median"],
            threshold,
            min_speedups.get(name)))
    only_baseline = sorted(set(baseline_scenarios) - set(current_scenarios))
    only_current = sorted(set(current_scenarios) - set(baseline_scenarios))
    return CompareResult(deltas, only_baseline, only_current, threshold)


def parse_min_speedup(specs: List[str]) -> Dict[str, float]:
    """Parse repeated ``name:X`` CLI specs into a dict."""
    result: Dict[str, float] = {}
    for spec in specs:
        name, sep, value = spec.partition(":")
        if not sep or not name:
            raise ValueError("--min-speedup expects NAME:FACTOR, got %r" % spec)
        try:
            factor = float(value)
        except ValueError:
            raise ValueError("bad --min-speedup factor in %r" % spec) from None
        if factor <= 0:
            raise ValueError("--min-speedup factor must be positive: %r" % spec)
        result[name] = factor
    return result
