"""Command-line front end: ``python -m repro.perfkit run|compare|baseline``."""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.perfkit.compare import (
    DEFAULT_THRESHOLD,
    compare_reports,
    parse_min_speedup,
)
from repro.perfkit.harness import run_suite
from repro.perfkit.scenarios import SCENARIOS
from repro.perfkit.schema import SchemaError, dump_report, load_report

DEFAULT_BASELINE = os.path.join("benchmarks", "baseline.json")


def _next_bench_path(out_dir: str) -> str:
    index = 1
    while True:
        path = os.path.join(out_dir, "BENCH_%d.json" % index)
        if not os.path.exists(path):
            return path
        index += 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perfkit",
        description="benchmark harness for the scheduler hot path")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--quick", action="store_true",
                       help="CI-sized scenarios (seconds, not minutes)")
        p.add_argument("--repeats", type=int, default=3,
                       help="statistical repeats per scenario (default 3)")
        p.add_argument("--scenario", action="append", default=None,
                       metavar="NAME", choices=sorted(SCENARIOS),
                       help="run only the named scenario (repeatable)")
        p.add_argument("--trace", default=None, metavar="DIR",
                       help="also record a binary trace of each scenario "
                            "(one extra untimed run) to DIR/<name>.binlog")

    run = sub.add_parser("run", help="run the suite, emit BENCH_<n>.json")
    add_run_options(run)
    run.add_argument("--out", default=None, metavar="FILE",
                     help="output path (default: next free "
                          "benchmarks/BENCH_<n>.json)")
    run.add_argument("--out-dir", default="benchmarks", metavar="DIR",
                     help="directory for auto-numbered output (default "
                          "benchmarks/)")

    compare = sub.add_parser(
        "compare", help="compare a BENCH report against a baseline")
    compare.add_argument("current", help="BENCH json to evaluate")
    compare.add_argument("baseline", nargs="?", default=DEFAULT_BASELINE,
                         help="baseline json (default %s)" % DEFAULT_BASELINE)
    compare.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                         help="relative slowdown tolerated before failing "
                              "(default %.2f)" % DEFAULT_THRESHOLD)
    compare.add_argument("--min-speedup", action="append", default=[],
                         metavar="NAME:X",
                         help="require scenario NAME to be at least X times "
                              "faster than the baseline (repeatable)")

    baseline = sub.add_parser(
        "baseline", help="run the suite and (re)write the baseline file")
    add_run_options(baseline)
    baseline.add_argument("--out", default=DEFAULT_BASELINE, metavar="FILE",
                          help="baseline path (default %s)" % DEFAULT_BASELINE)
    return parser


def _cmd_run(args: argparse.Namespace, out: Optional[str]) -> int:
    report = run_suite(quick=args.quick, repeats=args.repeats,
                       scenario_names=args.scenario, echo=print,
                       trace_dir=args.trace)
    path = out
    if path is None:
        os.makedirs(args.out_dir, exist_ok=True)
        path = _next_bench_path(args.out_dir)
    else:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
    dump_report(report, path)
    print("wrote %s (%s mode, %d repeats)"
          % (path, report["mode"], report["repeats"]))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        min_speedups = parse_min_speedup(args.min_speedup)
        current = load_report(args.current)
        baseline = load_report(args.baseline)
        result = compare_reports(current, baseline, threshold=args.threshold,
                                 min_speedups=min_speedups)
    except (SchemaError, ValueError, OSError) as error:
        print("perfkit compare: %s" % error, file=sys.stderr)
        return 2
    print(result.render())
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args, args.out)
    if args.command == "baseline":
        return _cmd_run(args, args.out)
    return _cmd_compare(args)
