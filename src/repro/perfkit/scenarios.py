"""The macro-benchmark scenarios perfkit runs.

Each scenario is a list of *phases*; a phase builds a simulation (timed as
``build``) and drives it to a fixed horizon (timed as ``run``), then
reports the simulator's own counters (events fired, dispatches, simulated
nanoseconds, thread count).  Everything inside a phase is deterministic —
seeded RNGs, integer simulated time — so two runs of one scenario execute
the exact same event sequence and differ only in wall-clock cost.

Scenario sizing has a ``quick`` mode (CI, seconds) and a full mode (local
baselines).  The deep-hierarchy scenario uses float tag math — what a
production kernel would ship, and the regime where dispatch overhead
rather than ``Fraction`` arithmetic dominates, which is precisely what the
suite is guarding.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple, Union

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.core.tags import FLOAT
from repro.cpu.flat import FlatScheduler
from repro.cpu.interrupts import PoissonInterruptSource
from repro.cpu.machine import Machine
from repro.experiments.common import figure6_structure
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.smp.machine import SmpMachine
from repro.threads.segments import Compute, SegmentListWorkload, SleepFor
from repro.threads.thread import SimThread
from repro.units import MS, SECOND, US
from repro.workloads.bursty import BurstyWorkload
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.interactive import InteractiveWorkload

#: counters every phase reports after its run
Counters = Dict[str, int]
#: drive() advances the simulation; counters() reads the final counters
PhaseRun = Tuple[Callable[[], None], Callable[[], Counters]]

CAPACITY = 100_000_000


class Phase:
    """One timed unit of a scenario: a builder returning (drive, counters)."""

    __slots__ = ("name", "setup")

    def __init__(self, name: str, setup: Callable[[], PhaseRun]) -> None:
        self.name = name
        self.setup = setup


class Scenario:
    """A named list of phases at a given size."""

    __slots__ = ("name", "description", "phases")

    def __init__(self, name: str, description: str,
                 phases: Callable[[bool], List[Phase]]) -> None:
        self.name = name
        self.description = description
        self.phases = phases


def _machine_counters(machine: Union[Machine, SmpMachine], engine: Simulator,
                      threads: int) -> Callable[[], Counters]:
    def counters() -> Counters:
        dispatches = getattr(machine, "stats", machine)
        return {
            "events": engine.events_fired,
            "dispatches": dispatches.dispatches,
            "sim_ns": engine.now,
            "threads": threads,
        }
    return counters


# --- figure-5 replay ---------------------------------------------------------


def _figure5_phases(quick: bool) -> List[Phase]:
    duration = (60 if quick else 240) * SECOND

    def setup() -> PhaseRun:
        engine = Simulator()
        machine = Machine(engine, FlatScheduler(SfqScheduler()),
                          capacity_ips=CAPACITY, default_quantum=20 * MS)
        for index in range(5):
            machine.spawn(SimThread("dhry-%d" % index,
                                    DhrystoneWorkload(300, 10_000)))
        for index in range(2):
            rng = make_rng(11, "daemon/%d" % index)
            machine.spawn(SimThread(
                "daemon-%d" % index,
                InteractiveWorkload(burst_work=400_000,
                                    think_time=120 * MS, rng=rng)))
        return (lambda: machine.run_until(duration),
                _machine_counters(machine, engine, 7))

    return [Phase("replay", setup)]


# --- figure-8 replay ---------------------------------------------------------


def _figure8_phases(quick: bool) -> List[Phase]:
    duration = (60 if quick else 240) * SECOND

    def setup() -> PhaseRun:
        structure, sfq1, sfq2, svr4 = figure6_structure(
            sfq1_weight=2, sfq2_weight=6, svr4_weight=1)
        engine = Simulator()
        machine = Machine(engine, HierarchicalScheduler(structure),
                          capacity_ips=CAPACITY, default_quantum=20 * MS)
        for leaf, prefix in ((sfq1, "sfq1"), (sfq2, "sfq2")):
            for index in range(2):
                thread = SimThread("%s-%d" % (prefix, index),
                                   DhrystoneWorkload(300, 10_000))
                leaf.attach_thread(thread)
                machine.spawn(thread)
        for index in range(4):
            rng = make_rng(3, "bg/%d" % index)
            thread = SimThread(
                "bg-%d" % index,
                BurstyWorkload(mean_busy_work=20_000_000,
                               mean_idle_time=400 * MS, rng=rng))
            svr4.attach_thread(thread)
            machine.spawn(thread)
        return (lambda: machine.run_until(duration),
                _machine_counters(machine, engine, 8))

    return [Phase("replay", setup)]


# --- deep hierarchy (depth 8, fanout 8) churn --------------------------------


def _deep_tree() -> Tuple[SchedulingStructure, List]:
    """Depth-8 tree: fanout 8 at the top two levels, chains below.

    Leaves sit at depth 8, so every dispatch walks eight SFQ queues and
    every charge restamps eight ancestors — the paper's O(depth) cost,
    maximized.  Float tag math keeps the measurement about dispatch
    machinery, not Fraction arithmetic.
    """
    structure = SchedulingStructure(FLOAT)
    leaves = []
    for top in range(8):
        group = structure.mknod("g%d" % top, 1 + top % 3)
        for mid in range(8):
            node = structure.mknod("m%d" % mid, 1 + mid % 2, parent=group)
            for level in range(3, 8):
                node = structure.mknod("c%d" % level, 1, parent=node)
            leaves.append(structure.mknod(
                "leaf", 1, parent=node, scheduler=SfqScheduler(FLOAT)))
    return structure, leaves


def _deep_hierarchy_phases(quick: bool) -> List[Phase]:
    duration = (10 if quick else 40) * SECOND

    def setup() -> PhaseRun:
        structure, leaves = _deep_tree()
        engine = Simulator()
        machine = Machine(engine, HierarchicalScheduler(structure),
                          capacity_ips=CAPACITY, default_quantum=2 * MS)
        count = 0
        for index, leaf in enumerate(leaves):
            rng = make_rng(17, "churn/%d" % index)
            churn = SimThread(
                "churn-%d" % index,
                InteractiveWorkload(burst_work=150_000,
                                    think_time=8 * MS, rng=rng))
            leaf.attach_thread(churn)
            machine.spawn(churn)
            count += 1
            if index % 8 == 0:
                hog = SimThread("hog-%d" % index, DhrystoneWorkload(300, 5_000))
                leaf.attach_thread(hog)
                machine.spawn(hog)
                count += 1
        return (lambda: machine.run_until(duration),
                _machine_counters(machine, engine, count))

    return [Phase("churn", setup)]


# --- SMP + interrupt storm ---------------------------------------------------


def _smp_interrupts_phases(quick: bool) -> List[Phase]:
    smp_duration = (5 if quick else 20) * SECOND
    intr_duration = (5 if quick else 20) * SECOND

    def smp_setup() -> PhaseRun:
        structure, sfq1, sfq2, svr4 = figure6_structure(
            sfq1_weight=1, sfq2_weight=2, svr4_weight=1)
        engine = Simulator()
        machine = SmpMachine(engine, HierarchicalScheduler(structure),
                             num_cpus=8, capacity_ips=CAPACITY,
                             default_quantum=5 * MS)
        for index in range(12):
            thread = SimThread("cpu-%d" % index, DhrystoneWorkload(300, 10_000))
            (sfq1 if index % 2 else sfq2).attach_thread(thread)
            machine.spawn(thread)
        for index in range(8):
            rng = make_rng(5, "inter/%d" % index)
            thread = SimThread(
                "inter-%d" % index,
                InteractiveWorkload(burst_work=500_000,
                                    think_time=20 * MS, rng=rng))
            svr4.attach_thread(thread)
            machine.spawn(thread)

        def counters() -> Counters:
            return {
                "events": engine.events_fired,
                "dispatches": machine.dispatches,
                "sim_ns": engine.now,
                "threads": 20,
            }
        return (lambda: machine.run_until(smp_duration)), counters

    def intr_setup() -> PhaseRun:
        engine = Simulator()
        machine = Machine(engine, FlatScheduler(SfqScheduler()),
                          capacity_ips=CAPACITY, default_quantum=10 * MS)
        machine.add_interrupt_source(PoissonInterruptSource(
            mean_interarrival=800 * US, mean_service=60 * US,
            rng=make_rng(7, "intr/a")))
        machine.add_interrupt_source(PoissonInterruptSource(
            mean_interarrival=2 * MS, mean_service=150 * US,
            rng=make_rng(7, "intr/b")))
        for index in range(6):
            machine.spawn(SimThread("dhry-%d" % index,
                                    DhrystoneWorkload(300, 5_000),
                                    weight=1 + index % 3))
        return (lambda: machine.run_until(intr_duration),
                _machine_counters(machine, engine, 6))

    return [Phase("smp", smp_setup), Phase("interrupts", intr_setup)]


# --- admission storm ---------------------------------------------------------


def _admission_storm_phases(quick: bool) -> List[Phase]:
    population = 2_000 if quick else 10_000

    def setup() -> PhaseRun:
        structure = SchedulingStructure(FLOAT)
        leaves = []
        for group in range(8):
            node = structure.mknod("g%d" % group, 1 + group % 4)
            for leaf in range(2):
                leaves.append(structure.mknod(
                    "l%d" % leaf, 1, parent=node,
                    scheduler=SfqScheduler(FLOAT)))
        engine = Simulator()
        machine = Machine(engine, HierarchicalScheduler(structure),
                          capacity_ips=CAPACITY, default_quantum=1 * MS)
        spacing = SECOND // population  # arrivals spread over ~1 simulated s
        for index in range(population):
            thread = SimThread(
                "storm-%d" % index,
                SegmentListWorkload([
                    Compute(40_000), SleepFor(2 * MS), Compute(40_000)]),
                weight=1 + index % 5)
            leaves[index % len(leaves)].attach_thread(thread)
            machine.spawn(thread, at=index * spacing)

        def drive() -> None:
            # Horizon with slack: all arrivals + total work + sleep time.
            total_work_ns = population * 80_000 * SECOND // CAPACITY
            machine.run_until(SECOND + 4 * total_work_ns + SECOND)

        return drive, _machine_counters(machine, engine, population)

    return [Phase("storm", setup)]


# --- 100k-entity scale storm -------------------------------------------------


def _scale_storm_phases(quick: bool) -> List[Phase]:
    population = 100_000 if quick else 250_000

    def setup() -> PhaseRun:
        # 64 groups x 32 SFQ leaves = 2048 leaves; with ~50-120 threads per
        # leaf every arena column is thousands of entries long, so this is
        # the scenario where per-entity state layout (columnar arena vs
        # per-object attributes) dominates the cost.
        structure = SchedulingStructure(FLOAT)
        leaves = []
        for group in range(64):
            node = structure.mknod("g%d" % group, 1 + group % 4)
            for leaf in range(32):
                leaves.append(structure.mknod(
                    "l%d" % leaf, 1, parent=node,
                    scheduler=SfqScheduler(FLOAT)))
        engine = Simulator()
        machine = Machine(engine, HierarchicalScheduler(structure),
                          capacity_ips=CAPACITY, default_quantum=1 * MS)
        # Arrivals spread over ~2 simulated seconds so admission, dispatch,
        # sleep and exit all overlap instead of running in lockstep phases.
        spacing = 2 * SECOND // population
        for index in range(population):
            thread = SimThread(
                "scale-%d" % index,
                SegmentListWorkload([
                    Compute(20_000), SleepFor(5 * MS), Compute(20_000)]),
                weight=1 + index % 7)
            leaves[index % len(leaves)].attach_thread(thread)
            machine.spawn(thread, at=index * spacing)

        def drive() -> None:
            # Horizon with slack: all arrivals + total work + sleep time.
            total_work_ns = population * 40_000 * SECOND // CAPACITY
            machine.run_until(2 * SECOND + 4 * total_work_ns + SECOND)

        return drive, _machine_counters(machine, engine, population)

    return [Phase("storm", setup)]


# --- cluster-tier scenarios --------------------------------------------------


def _cluster_phase(name: str, build_spec: Callable[[], Any]) -> Phase:
    """One phase that drives a whole cluster simulation (serial shards).

    Shard workers would add process wall-clock noise, so perfkit always
    times the serial execution — the same event sequence the gate's
    ``--shards N`` run must reproduce byte-for-byte.
    """

    def setup() -> PhaseRun:
        from repro.cluster.runner import run_cluster
        spec = build_spec()
        holder: List[Any] = []

        def drive() -> None:
            holder.append(run_cluster(spec, seed=42, shards=1))

        def counters() -> Counters:
            result = holder[0]
            return {
                "events": sum(int(host["events"]) for host in result.hosts),
                "dispatches": sum(int(host["dispatches"])
                                  for host in result.hosts),
                "sim_ns": spec.horizon_ns,
                "threads": int(result.control["counters"]["placements"]),
            }

        return drive, counters

    return Phase(name, setup)


def _cluster_storm_phases(quick: bool) -> List[Phase]:
    from repro.cluster.scenario import storm_spec
    if quick:
        return [_cluster_phase("storm",
                               lambda: storm_spec(4, 4, 4_000, 16))]
    return [_cluster_phase("storm", lambda: storm_spec(8, 8, 50_000, 24))]


def _tenant_rebalance_phases(quick: bool) -> List[Phase]:
    from repro.cluster.scenario import rebalance_spec
    if quick:
        return [_cluster_phase("rebalance",
                               lambda: rebalance_spec(6, 600, 16))]
    return [_cluster_phase("rebalance", lambda: rebalance_spec(6, 2_400, 24))]


def scenarios() -> Dict[str, Scenario]:
    """The macro-scenario registry, keyed by name, in reporting order.

    This is the public way to enumerate perfkit's suite (faultlab mirrors
    these scenarios for its fault-injection cells).  The returned dict is
    a copy: mutating it does not affect the suite perfkit runs.
    """
    return dict(SCENARIOS)


#: the fixed suite, in reporting order
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario for scenario in (
        Scenario("figure5_replay",
                 "Figure-5 SFQ arm: 5 dhrystones + 2 interactive daemons",
                 _figure5_phases),
        Scenario("figure8_replay",
                 "Figure-8(a): 2:6:1 hierarchy under bursty background load",
                 _figure8_phases),
        Scenario("deep_hierarchy",
                 "depth-8/fanout-8 tree, 64 churning leaves + CPU hogs",
                 _deep_hierarchy_phases),
        Scenario("smp_interrupt_storm",
                 "8-CPU SMP mix, then a Poisson interrupt storm",
                 _smp_interrupts_phases),
        Scenario("admission_storm",
                 "thread admission storm: staggered spawn-to-exit lifecycles",
                 _admission_storm_phases),
        Scenario("scale_storm",
                 "100k-entity storm over 2048 SFQ leaves (arena scale test)",
                 _scale_storm_phases),
        Scenario("cluster_storm",
                 "multi-host placement storm through the cluster tier",
                 _cluster_storm_phases),
        Scenario("tenant_rebalance",
                 "affinity placement vs rebalancer under host churn",
                 _tenant_rebalance_phases),
    )
}
