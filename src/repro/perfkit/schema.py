"""The BENCH json schema: versioned, validated on load and on write.

Schema string is ``repro.perfkit/1``.  Shape::

    {
      "schema": "repro.perfkit/1",
      "mode": "quick" | "full",
      "repeats": <int >= 1>,
      "host": {"python": str, "platform": str},
      "scenarios": {
        "<name>": {
          "description": str,
          "repeats": [                       # one entry per repeat
            {"build_s": float, "run_s": float, "events": int,
             "dispatches": int, "sim_ns": int, "threads": int,
             "maxrss_kb": int,
             "phases": {"<phase>": {"build_s": float, "run_s": float,
                                    "events": int, "dispatches": int}}}
          ],
          "stats": {"run_s": {"min": float, "median": float,
                              "mean": float, "stdev": float},
                    "events_per_sec": float, "dispatches_per_sec": float,
                    "events": int, "dispatches": int, "peak_rss_kb": int}
        }, ...
      }
    }

``events_per_sec`` and ``dispatches_per_sec`` are computed against the
*median* run wall time; event/dispatch counts are identical across repeats
(the simulation is deterministic) and the harness verifies that.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple, Union


SCHEMA = "repro.perfkit/1"


class SchemaError(ValueError):
    """A BENCH report that does not conform to the schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _check_number(mapping: Dict[str, Any], key: str, where: str,
                  kind: Union[type, Tuple[type, ...]] = (int, float)) -> None:
    _require(key in mapping, "%s: missing %r" % (where, key))
    value = mapping[key]
    _require(isinstance(value, kind) and not isinstance(value, bool),
             "%s: %r must be numeric, got %r" % (where, key, value))


def validate_report(report: Dict[str, Any]) -> Dict[str, Any]:
    """Validate ``report`` against the schema; returns it for chaining."""
    _require(isinstance(report, dict), "report must be a JSON object")
    _require(report.get("schema") == SCHEMA,
             "unknown schema %r (expected %r)" % (report.get("schema"), SCHEMA))
    _require(report.get("mode") in ("quick", "full"),
             "mode must be 'quick' or 'full', got %r" % (report.get("mode"),))
    _check_number(report, "repeats", "report", kind=int)
    _require(report["repeats"] >= 1, "repeats must be >= 1")
    scenarios = report.get("scenarios")
    _require(isinstance(scenarios, dict) and scenarios,
             "scenarios must be a non-empty object")
    for name, entry in scenarios.items():
        where = "scenario %r" % name
        _require(isinstance(entry, dict), where + " must be an object")
        repeats = entry.get("repeats")
        _require(isinstance(repeats, list) and repeats,
                 where + ": repeats must be a non-empty list")
        for index, sample in enumerate(repeats):
            sample_where = "%s repeat %d" % (where, index)
            _require(isinstance(sample, dict), sample_where + " must be an object")
            for key in ("build_s", "run_s"):
                _check_number(sample, key, sample_where)
            for key in ("events", "dispatches", "sim_ns", "threads"):
                _check_number(sample, key, sample_where, kind=int)
        stats = entry.get("stats")
        _require(isinstance(stats, dict), where + ": missing stats")
        run_s = stats.get("run_s")
        _require(isinstance(run_s, dict), where + ": stats.run_s missing")
        for key in ("min", "median", "mean", "stdev"):
            _check_number(run_s, key, where + " stats.run_s")
        for key in ("events_per_sec", "dispatches_per_sec"):
            _check_number(stats, key, where + " stats")
        for key in ("events", "dispatches"):
            _check_number(stats, key, where + " stats", kind=int)
    return report


def load_report(path: str) -> Dict[str, Any]:
    """Read and validate a BENCH json file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise SchemaError("%s is not valid JSON: %s" % (path, error)) from None
    try:
        return validate_report(payload)
    except SchemaError as error:
        raise SchemaError("%s: %s" % (path, error)) from None


def dump_report(report: Dict[str, Any], path: str) -> None:
    """Validate and write a BENCH json file."""
    validate_report(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
