"""Runs the scenario suite with repeats and builds the BENCH report.

Wall time uses ``time.perf_counter`` (the sanctioned host clock for
measuring *how long computation took*; it never feeds simulation state).
Peak RSS comes from ``resource.getrusage`` — monotone over the process
lifetime, so per-scenario values are upper bounds, with the suite's true
peak in the last scenario measured.
"""

from __future__ import annotations

import gc
import os
import platform
import statistics
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.perfkit.scenarios import SCENARIOS, Scenario
from repro.perfkit.schema import SCHEMA, validate_report

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX hosts
    resource = None  # type: ignore[assignment]


def _peak_rss_kb() -> int:
    if resource is None:  # pragma: no cover - non-POSIX hosts
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _run_scenario_once(scenario: Scenario, quick: bool) -> Dict[str, Any]:
    phases: Dict[str, Dict[str, Any]] = {}
    totals = {"build_s": 0.0, "run_s": 0.0, "events": 0, "dispatches": 0,
              "sim_ns": 0, "threads": 0}
    for phase in scenario.phases(quick):
        gc.collect()
        t0 = time.perf_counter()
        drive, read_counters = phase.setup()
        t1 = time.perf_counter()
        drive()
        t2 = time.perf_counter()
        counters = read_counters()
        entry = {
            "build_s": t1 - t0,
            "run_s": t2 - t1,
            "events": counters["events"],
            "dispatches": counters["dispatches"],
        }
        phases[phase.name] = entry
        totals["build_s"] += entry["build_s"]
        totals["run_s"] += entry["run_s"]
        totals["events"] += entry["events"]
        totals["dispatches"] += entry["dispatches"]
        totals["sim_ns"] += counters["sim_ns"]
        totals["threads"] += counters["threads"]
    sample: Dict[str, Any] = dict(totals)
    sample["maxrss_kb"] = _peak_rss_kb()
    sample["phases"] = phases
    return sample


def _trace_scenario(scenario: Scenario, quick: bool, path: str) -> int:
    """One extra *untimed* run of ``scenario`` with a binlog attached.

    Capture runs outside the measured repeats so ``--trace`` never
    perturbs the BENCH numbers; returns the event count recorded.
    """
    from repro.obs.binlog import BinaryTraceWriter
    from repro.obs.events import BUS

    writer = BinaryTraceWriter(path)
    with BUS.subscription(writer):
        for phase in scenario.phases(quick):
            drive, __ = phase.setup()
            drive()
    writer.close()
    return writer.event_count


def _stats_for(samples: List[Dict[str, Any]]) -> Dict[str, Any]:
    runs = [sample["run_s"] for sample in samples]
    median_run = statistics.median(runs)
    events = samples[0]["events"]
    dispatches = samples[0]["dispatches"]
    return {
        "run_s": {
            "min": min(runs),
            "median": median_run,
            "mean": statistics.fmean(runs),
            "stdev": statistics.stdev(runs) if len(runs) > 1 else 0.0,
        },
        "events_per_sec": events / median_run if median_run > 0 else 0.0,
        "dispatches_per_sec":
            dispatches / median_run if median_run > 0 else 0.0,
        "events": events,
        "dispatches": dispatches,
        "peak_rss_kb": max(sample["maxrss_kb"] for sample in samples),
    }


def run_suite(quick: bool = False, repeats: int = 3,
              scenario_names: Optional[Iterable[str]] = None,
              echo: Optional[Callable[[str], None]] = None,
              trace_dir: Optional[str] = None) -> Dict[str, Any]:
    """Run the suite and return a schema-valid BENCH report dict.

    ``trace_dir`` additionally records a binary trace of each scenario
    (one extra untimed run) to ``<trace_dir>/<scenario>.binlog``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1, got %d" % repeats)
    names = list(scenario_names) if scenario_names else list(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise ValueError("unknown scenario(s): %s (have: %s)"
                         % (", ".join(unknown), ", ".join(SCENARIOS)))
    scenarios: Dict[str, Any] = {}
    for name in names:
        scenario = SCENARIOS[name]
        samples = []
        for repeat in range(repeats):
            sample = _run_scenario_once(scenario, quick)
            samples.append(sample)
            if repeat and sample["events"] != samples[0]["events"]:
                raise RuntimeError(
                    "scenario %r is non-deterministic: repeat %d fired %d "
                    "events, repeat 0 fired %d" % (
                        name, repeat, sample["events"], samples[0]["events"]))
        stats = _stats_for(samples)
        scenarios[name] = {
            "description": scenario.description,
            "repeats": samples,
            "stats": stats,
        }
        if echo is not None:
            echo("%-20s %8.3fs median  %12.0f events/s  %10.0f dispatches/s"
                 % (name, stats["run_s"]["median"], stats["events_per_sec"],
                    stats["dispatches_per_sec"]))
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
            trace_path = os.path.join(trace_dir, "%s.binlog" % name)
            traced = _trace_scenario(scenario, quick, trace_path)
            if echo is not None:
                echo("%-20s traced %d events -> %s"
                     % (name, traced, trace_path))
    report = {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "repeats": repeats,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "scenarios": scenarios,
    }
    return validate_report(report)
