"""Earliest Deadline First — a hard real-time leaf scheduler.

Each wakeup is a job release: the job's absolute deadline is
``release + relative_deadline`` where the relative deadline comes from
``thread.params["deadline"]`` (default: ``thread.params["period"]``).
The runnable job with the earliest absolute deadline runs first.

EDF is the paper's example of a scheduler appropriate for hard real-time
leaf classes (Figure 2 installs it under the hard real-time node); the
admission test lives in :mod:`repro.qos.admission`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.schedulers.base import LeafScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread

_seq = itertools.count()


class _EdfRecord:
    __slots__ = ("thread", "deadline", "relative_deadline", "runnable", "version")

    def __init__(self, thread: "SimThread", relative_deadline: int) -> None:
        self.thread = thread
        self.deadline = 0
        self.relative_deadline = relative_deadline
        self.runnable = False
        self.version = 0


class EdfScheduler(LeafScheduler):
    """Dynamic-priority earliest-deadline-first scheduling."""

    algorithm = "edf"

    def __init__(self, quantum: Optional[int] = None) -> None:
        self._records: Dict[int, _EdfRecord] = {}
        self._heap: List[Tuple[int, int, int, _EdfRecord]] = []
        self._runnable = 0
        self._quantum = quantum

    def add_thread(self, thread: "SimThread") -> None:
        if id(thread) in self._records:
            raise SchedulingError("thread %r already registered" % (thread,))
        relative = thread.params.get("deadline", thread.params.get("period"))
        if relative is None:
            raise SchedulingError(
                "EDF thread %r needs params['deadline'] or params['period']"
                % (thread,))
        self._records[id(thread)] = _EdfRecord(thread, int(relative))

    def remove_thread(self, thread: "SimThread") -> None:
        record = self._records.pop(id(thread), None)
        if record is not None and record.runnable:
            record.runnable = False
            record.version += 1
            self._runnable -= 1

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        if record.runnable:
            return
        record.deadline = now + record.relative_deadline
        record.runnable = True
        record.version += 1
        self._runnable += 1
        heapq.heappush(self._heap,
                       (record.deadline, next(_seq), record.version, record))

    def on_block(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        if record.runnable:
            record.runnable = False
            record.version += 1
            self._runnable -= 1

    def pick_next(self, now: int) -> Optional["SimThread"]:
        record = self._peek()
        return record.thread if record is not None else None

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        # Deadlines are set at release; execution does not change them.
        return

    def has_runnable(self) -> bool:
        return self._runnable > 0

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return thread.params.get("quantum", self._quantum)

    def should_preempt(self, current: "SimThread", candidate: "SimThread",
                       now: int) -> bool:
        return self._record(candidate).deadline < self._record(current).deadline

    def deadline_of(self, thread: "SimThread") -> int:
        """Absolute deadline of the thread's current job (for tests/metrics)."""
        return self._record(thread).deadline

    def _record(self, thread: "SimThread") -> _EdfRecord:
        try:
            return self._records[id(thread)]
        except KeyError:
            raise SchedulingError("thread %r not registered" % (thread,)) from None

    def _peek(self) -> Optional[_EdfRecord]:
        heap = self._heap
        while heap:
            __, __, version, record = heap[0]
            if record.runnable and version == record.version:
                return record
            heapq.heappop(heap)
        return None
