"""Leaf and baseline schedulers.

Any class implementing :class:`repro.schedulers.base.LeafScheduler` can be
installed at a leaf of the scheduling structure (paper §4: "any scheduling
algorithm can be used at the leaf node"), or run standalone under
:class:`repro.cpu.flat.FlatScheduler` as a whole-machine baseline.

Provided schedulers:

=====================  ====================================================
``SfqScheduler``        Start-time Fair Queuing over threads (paper §3)
``FifoScheduler``       run-to-block, FIFO order
``RoundRobinScheduler`` fixed quantum, circular order
``Svr4TimeSharing``     SVR4/Solaris ts_dptbl-style multi-level feedback
``EdfScheduler``        earliest deadline first (hard real-time leaf)
``RmaScheduler``        rate-monotonic static priorities (hard real-time)
``LotteryScheduler``    Waldspurger & Weihl randomized proportional share
``StrideScheduler``     Waldspurger & Weihl deterministic strides
``WfqScheduler``        Weighted Fair Queuing (finish-tag order)
``ScfqScheduler``       Self-Clocked Fair Queuing (Golestani)
``FqsScheduler``        Fair Queuing based on Start-time (Greenberg-Madras)
=====================  ====================================================
"""

from repro.schedulers.base import LeafScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.eevdf import EevdfScheduler
from repro.schedulers.fairqueue import FqsScheduler, ScfqScheduler, WfqScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.lottery import LotteryScheduler
from repro.schedulers.reserves import ReservesScheduler
from repro.schedulers.rma import RmaScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.schedulers.stride import StrideScheduler
from repro.schedulers.svr4 import Svr4TimeSharing

__all__ = [
    "LeafScheduler",
    "SfqScheduler",
    "FifoScheduler",
    "RoundRobinScheduler",
    "Svr4TimeSharing",
    "EdfScheduler",
    "EevdfScheduler",
    "RmaScheduler",
    "LotteryScheduler",
    "ReservesScheduler",
    "StrideScheduler",
    "WfqScheduler",
    "ScfqScheduler",
    "FqsScheduler",
]
