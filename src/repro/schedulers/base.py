"""The leaf scheduler contract.

A leaf scheduler manages the threads of one scheduling class.  The
hierarchy (or the flat-machine adapter) tells it about thread lifecycle
events and asks it to pick and charge; the scheduler never talks to the
machine directly.  This is the Python rendering of the paper's leaf
interface: "a pointer to a function that is invoked, when it is scheduled
by its parent node, to select one of its threads for execution", with
``setrun``/``sleep``/``update`` mediated by the hierarchy.

Lifecycle rules every implementation must honour:

* ``pick_next`` must NOT dequeue: the thread stays logically queued until
  the matching ``charge`` (and is removed only by ``on_block``);
* ``charge`` is called exactly once per dispatch with the *actual* executed
  work, after the machine has decided whether the thread stays runnable —
  so at charge time ``thread.is_runnable`` already reflects the outcome;
* ``on_block`` is called for blocking, exiting, and forced removal alike.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class LeafScheduler:
    """Base class for leaf schedulers; subclass and override."""

    #: human-readable algorithm name used in experiment output
    algorithm: str = "abstract"

    def add_thread(self, thread: "SimThread") -> None:
        """Register a thread with this scheduler (initially not runnable)."""
        raise NotImplementedError

    def remove_thread(self, thread: "SimThread") -> None:
        """Deregister a thread; callers must block it first if runnable."""
        raise NotImplementedError

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        """``thread`` became eligible (spawned or woke up)."""
        raise NotImplementedError

    def on_block(self, thread: "SimThread", now: int) -> None:
        """``thread`` became ineligible (blocked, exited, or is being moved)."""
        raise NotImplementedError

    def pick_next(self, now: int) -> Optional["SimThread"]:
        """Return the thread to run next, without dequeuing it."""
        raise NotImplementedError

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        """Account ``work`` instructions executed by ``thread``."""
        raise NotImplementedError

    def has_runnable(self) -> bool:
        """True when some registered thread is eligible."""
        raise NotImplementedError

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        """Per-thread quantum in ns, or ``None`` to use the machine default."""
        return None

    def should_preempt(self, current: "SimThread", candidate: "SimThread",
                       now: int) -> bool:
        """Intra-leaf preemption decision (only consulted in PREEMPT_LEAF mode)."""
        return False
