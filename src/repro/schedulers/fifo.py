"""A run-to-block FIFO scheduler.

The simplest possible leaf: threads run in arrival order until they block.
``quantum_for`` returns ``None`` so the machine default applies; with an
infinite machine quantum this is true FIFO, with a finite one it degrades
gracefully to FIFO-with-requeue-at-head (the running thread keeps the CPU
across quantum expiries because it stays at the head).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional, Set

from repro.errors import SchedulingError
from repro.schedulers.base import LeafScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class FifoScheduler(LeafScheduler):
    """First-in first-out, run-to-block."""

    algorithm = "fifo"

    def __init__(self) -> None:
        self._threads: Set["SimThread"] = set()
        self._ready: Deque["SimThread"] = deque()

    def add_thread(self, thread: "SimThread") -> None:
        if thread in self._threads:
            raise SchedulingError("thread %r already registered" % (thread,))
        self._threads.add(thread)

    def remove_thread(self, thread: "SimThread") -> None:
        self._threads.discard(thread)
        if thread in self._ready:
            self._ready.remove(thread)

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        if thread not in self._threads:
            raise SchedulingError("thread %r not registered" % (thread,))
        if thread not in self._ready:
            self._ready.append(thread)

    def on_block(self, thread: "SimThread", now: int) -> None:
        if thread in self._ready:
            self._ready.remove(thread)

    def pick_next(self, now: int) -> Optional["SimThread"]:
        return self._ready[0] if self._ready else None

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        # FIFO does no accounting; position is preserved across quanta.
        return

    def has_runnable(self) -> bool:
        return bool(self._ready)
