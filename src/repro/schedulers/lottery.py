"""Lottery scheduling (Waldspurger & Weihl, OSDI '94).

Each quantum a lottery is held among the runnable threads; the probability
of winning is proportional to a thread's tickets (we reuse the thread's
share ``weight`` as its ticket count).  The paper's §6 observes that
lottery scheduling "achieved fairness only over large time-intervals" due
to its randomized nature — the EXP-AB5 ablation quantifies that against
stride scheduling and SFQ.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import SchedulingError
from repro.schedulers.base import LeafScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class LotteryScheduler(LeafScheduler):
    """Randomized proportional share via ticket lotteries."""

    algorithm = "lottery"

    def __init__(self, rng: Optional[random.Random] = None,
                 quantum: Optional[int] = None) -> None:
        self.rng = rng if rng is not None else random.Random(0)
        self._threads: Dict[int, "SimThread"] = {}
        self._runnable: List["SimThread"] = []
        self._quantum = quantum
        self._winner: Optional["SimThread"] = None

    def add_thread(self, thread: "SimThread") -> None:
        if id(thread) in self._threads:
            raise SchedulingError("thread %r already registered" % (thread,))
        self._threads[id(thread)] = thread

    def remove_thread(self, thread: "SimThread") -> None:
        self._threads.pop(id(thread), None)
        if thread in self._runnable:
            self._runnable.remove(thread)
        if self._winner is thread:
            self._winner = None

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        if id(thread) not in self._threads:
            raise SchedulingError("thread %r not registered" % (thread,))
        if thread not in self._runnable:
            self._runnable.append(thread)

    def on_block(self, thread: "SimThread", now: int) -> None:
        if thread in self._runnable:
            self._runnable.remove(thread)
        if self._winner is thread:
            self._winner = None

    def pick_next(self, now: int) -> Optional["SimThread"]:
        if not self._runnable:
            return None
        # Hold one lottery per dispatch; repeated peeks between charges
        # return the same winner so pick/charge pairs stay consistent.
        if self._winner is None or self._winner not in self._runnable:
            total = sum(t.weight for t in self._runnable)
            draw = self.rng.randrange(total)
            for thread in self._runnable:
                draw -= thread.weight
                if draw < 0:
                    self._winner = thread
                    break
        return self._winner

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        if self._winner is thread:
            self._winner = None  # next dispatch holds a fresh lottery

    def has_runnable(self) -> bool:
        return bool(self._runnable)

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return self._quantum
