"""Stride scheduling (Waldspurger & Weihl, 1995).

The deterministic successor of lottery scheduling: each thread has a
``stride`` inversely proportional to its tickets; the thread with the
minimum ``pass`` value runs, and its pass advances by ``stride`` per unit
of service.  We advance passes by *actual executed work* (instructions)
rather than whole quanta, so partially used quanta are accounted exactly.

The paper (§6) classifies stride scheduling as a variant of WFQ with WFQ's
drawbacks; the EXP-AB5 ablation compares its short-window fairness against
lottery and SFQ.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.schedulers.base import LeafScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread

#: fixed-point scale for stride arithmetic (stride1 in the original paper)
STRIDE1 = 1 << 20

_seq = itertools.count()


class _StrideRecord:
    __slots__ = ("thread", "pass_value", "runnable", "version")

    def __init__(self, thread: "SimThread") -> None:
        self.thread = thread
        self.pass_value = 0
        self.runnable = False
        self.version = 0


class StrideScheduler(LeafScheduler):
    """Deterministic proportional share via strides."""

    algorithm = "stride"

    def __init__(self, quantum: Optional[int] = None) -> None:
        self._records: Dict[int, _StrideRecord] = {}
        self._heap: List[Tuple[int, int, int, _StrideRecord]] = []
        self._runnable = 0
        self._quantum = quantum
        self._global_pass = 0

    def add_thread(self, thread: "SimThread") -> None:
        if id(thread) in self._records:
            raise SchedulingError("thread %r already registered" % (thread,))
        self._records[id(thread)] = _StrideRecord(thread)

    def remove_thread(self, thread: "SimThread") -> None:
        record = self._records.pop(id(thread), None)
        if record is not None and record.runnable:
            record.runnable = False
            record.version += 1
            self._runnable -= 1

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        if record.runnable:
            return
        # A waking thread resumes at the global pass so it neither starves
        # the others (catch-up) nor is starved (left behind).
        if record.pass_value < self._global_pass:
            record.pass_value = self._global_pass
        record.runnable = True
        self._push(record)
        self._runnable += 1

    def on_block(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        if record.runnable:
            record.runnable = False
            record.version += 1
            self._runnable -= 1

    def pick_next(self, now: int) -> Optional["SimThread"]:
        record = self._peek()
        if record is None:
            return None
        self._global_pass = record.pass_value
        return record.thread

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        record = self._record(thread)
        record.pass_value += (work * STRIDE1) // thread.weight
        if record.runnable:
            record.version += 1
            self._push(record)

    def has_runnable(self) -> bool:
        return self._runnable > 0

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return self._quantum

    def pass_of(self, thread: "SimThread") -> int:
        """Current pass value (for tests)."""
        return self._record(thread).pass_value

    def _record(self, thread: "SimThread") -> _StrideRecord:
        try:
            return self._records[id(thread)]
        except KeyError:
            raise SchedulingError("thread %r not registered" % (thread,)) from None

    def _push(self, record: _StrideRecord) -> None:
        record.version += 1
        heapq.heappush(self._heap,
                       (record.pass_value, next(_seq), record.version, record))

    def _peek(self) -> Optional[_StrideRecord]:
        heap = self._heap
        while heap:
            __, __, version, record = heap[0]
            if record.runnable and version == record.version:
                return record
            heapq.heappop(heap)
        return None
