"""A classic round-robin scheduler with a fixed quantum.

Threads rotate to the tail whenever a charge arrives while they are still
runnable (i.e. at quantum expiry); blocked threads simply leave the ring
and rejoin at the tail on wakeup.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional, Set

from repro.errors import SchedulingError
from repro.schedulers.base import LeafScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class RoundRobinScheduler(LeafScheduler):
    """Equal time slices in circular order."""

    algorithm = "round-robin"

    def __init__(self, quantum: Optional[int] = None) -> None:
        self._threads: Set["SimThread"] = set()
        self._ring: Deque["SimThread"] = deque()
        self._quantum = quantum

    def add_thread(self, thread: "SimThread") -> None:
        if thread in self._threads:
            raise SchedulingError("thread %r already registered" % (thread,))
        self._threads.add(thread)

    def remove_thread(self, thread: "SimThread") -> None:
        self._threads.discard(thread)
        if thread in self._ring:
            self._ring.remove(thread)

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        if thread not in self._threads:
            raise SchedulingError("thread %r not registered" % (thread,))
        if thread not in self._ring:
            self._ring.append(thread)

    def on_block(self, thread: "SimThread", now: int) -> None:
        if thread in self._ring:
            self._ring.remove(thread)

    def pick_next(self, now: int) -> Optional["SimThread"]:
        return self._ring[0] if self._ring else None

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        # Quantum used up while still runnable: go to the back of the ring.
        if thread.is_runnable and self._ring and self._ring[0] is thread:
            self._ring.rotate(-1)

    def has_runnable(self) -> bool:
        return bool(self._ring)

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return self._quantum
