"""SFQ as a leaf scheduler (paper §5.4, Figure 10).

A thin adapter putting threads (instead of tree nodes) into an
:class:`~repro.core.sfq.SfqQueue`.  Thread weights are read at charge time,
so dynamic weight changes (Figure 11) behave exactly as at internal nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.sfq import SfqQueue
from repro.core.tags import TagMath
from repro.schedulers.base import LeafScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class SfqScheduler(LeafScheduler):
    """Start-time Fair Queuing over the threads of one class."""

    algorithm = "sfq"

    def __init__(self, tag_math: Optional[TagMath] = None,
                 quantum: Optional[int] = None) -> None:
        self.queue = SfqQueue(tag_math)
        self._quantum = quantum

    def add_thread(self, thread: "SimThread") -> None:
        self.queue.add(thread)

    def remove_thread(self, thread: "SimThread") -> None:
        if self.queue.is_runnable(thread):
            self.queue.set_blocked(thread)
        self.queue.remove(thread)

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        self.queue.set_runnable(thread)

    def on_block(self, thread: "SimThread", now: int) -> None:
        self.queue.set_blocked(thread)

    def pick_next(self, now: int) -> Optional["SimThread"]:
        return self.queue.pick()

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        self.queue.charge(thread, work)

    def has_runnable(self) -> bool:
        return self.queue.has_runnable()

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return self._quantum
