"""SFQ as a leaf scheduler (paper §5.4, Figure 10).

A thin adapter putting threads (instead of tree nodes) into an
:class:`~repro.core.sfq.SfqQueue`.  Thread weights are read at charge time,
so dynamic weight changes (Figure 11) behave exactly as at internal nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.sfq import (
    SfqQueue,
    queue_charge,
    queue_pick,
    queue_set_blocked,
    queue_set_runnable,
)
from repro.core.tags import TagMath
from repro.schedulers.base import LeafScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class SfqScheduler(LeafScheduler):
    """Start-time Fair Queuing over the threads of one class.

    The per-thread queue operations route through the module-level
    functions of :mod:`repro.core.sfq`, so the selected engine
    (``REPRO_ENGINE``) covers leaf dispatch as well as the tree walks.
    """

    algorithm = "sfq"

    def __init__(self, tag_math: Optional[TagMath] = None,
                 quantum: Optional[int] = None) -> None:
        self.queue = SfqQueue(tag_math)
        self._quantum = quantum

    def add_thread(self, thread: "SimThread") -> None:
        self.queue.add(thread)

    def remove_thread(self, thread: "SimThread") -> None:
        if self.queue.is_runnable(thread):
            queue_set_blocked(self.queue, thread)
        self.queue.remove(thread)

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        queue_set_runnable(self.queue, thread)

    def on_block(self, thread: "SimThread", now: int) -> None:
        queue_set_blocked(self.queue, thread)

    def pick_next(self, now: int) -> Optional["SimThread"]:
        return queue_pick(self.queue)

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        queue_charge(self.queue, thread, work)

    def has_runnable(self) -> bool:
        return self.queue.has_runnable()

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return self._quantum
