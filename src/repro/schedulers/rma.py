"""Rate Monotonic scheduling — static-priority hard real-time leaf.

Priorities are fixed at admission: the shorter the period, the higher the
priority (Liu & Layland).  The paper's Figure 9 experiment runs two
periodic threads (10 ms/60 ms and 150 ms/960 ms) under RMA inside the
hierarchy; the admission bound lives in :mod:`repro.qos.admission`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.schedulers.base import LeafScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread

_seq = itertools.count()


class _RmaRecord:
    __slots__ = ("thread", "base_period", "inherited_period", "runnable",
                 "version")

    def __init__(self, thread: "SimThread", period: int) -> None:
        self.thread = thread
        self.base_period = period
        #: temporarily shortened period via priority inheritance (§4)
        self.inherited_period: Optional[int] = None
        self.runnable = False
        self.version = 0

    @property
    def period(self) -> int:
        """Effective period: the base, shortened by any inheritance."""
        if self.inherited_period is not None:
            return min(self.base_period, self.inherited_period)
        return self.base_period


class RmaScheduler(LeafScheduler):
    """Static rate-monotonic priorities (shorter period runs first)."""

    algorithm = "rma"

    def __init__(self, quantum: Optional[int] = None) -> None:
        self._records: Dict[int, _RmaRecord] = {}
        self._heap: List[Tuple[int, int, int, _RmaRecord]] = []
        self._runnable = 0
        self._quantum = quantum

    def add_thread(self, thread: "SimThread") -> None:
        if id(thread) in self._records:
            raise SchedulingError("thread %r already registered" % (thread,))
        period = thread.params.get("period")
        if period is None:
            raise SchedulingError("RMA thread %r needs params['period']" % (thread,))
        self._records[id(thread)] = _RmaRecord(thread, int(period))

    def remove_thread(self, thread: "SimThread") -> None:
        record = self._records.pop(id(thread), None)
        if record is not None and record.runnable:
            record.runnable = False
            record.version += 1
            self._runnable -= 1

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        if record.runnable:
            return
        record.runnable = True
        record.version += 1
        self._runnable += 1
        heapq.heappush(self._heap,
                       (record.period, next(_seq), record.version, record))

    def on_block(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        if record.runnable:
            record.runnable = False
            record.version += 1
            self._runnable -= 1

    def pick_next(self, now: int) -> Optional["SimThread"]:
        record = self._peek()
        return record.thread if record is not None else None

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        return

    def has_runnable(self) -> bool:
        return self._runnable > 0

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return thread.params.get("quantum", self._quantum)

    def should_preempt(self, current: "SimThread", candidate: "SimThread",
                       now: int) -> bool:
        return self._record(candidate).period < self._record(current).period

    # --- priority inheritance (paper §4) -----------------------------------

    def set_inherited_period(self, thread: "SimThread",
                             period: Optional[int]) -> None:
        """Temporarily run ``thread`` at ``period`` (None restores base).

        The paper: "if the leaf scheduler uses static priority Rate
        Monotonic algorithm, then standard priority inheritance techniques
        can be employed" — a mutex holder inherits the shortest period
        among its waiters (see
        :class:`repro.sync.inheritance.PriorityInheritanceMutex`).
        """
        record = self._record(thread)
        record.inherited_period = period
        if record.runnable:
            # re-key the heap entry at the new effective priority
            record.version += 1
            heapq.heappush(self._heap,
                           (record.period, next(_seq), record.version,
                            record))

    def effective_period_of(self, thread: "SimThread") -> int:
        """Current effective (possibly inherited) period of ``thread``."""
        return self._record(thread).period

    def _record(self, thread: "SimThread") -> _RmaRecord:
        try:
            return self._records[id(thread)]
        except KeyError:
            raise SchedulingError("thread %r not registered" % (thread,)) from None

    def _peek(self) -> Optional[_RmaRecord]:
        heap = self._heap
        while heap:
            __, __, version, record = heap[0]
            if record.runnable and version == record.version:
                return record
            heapq.heappop(heap)
        return None
