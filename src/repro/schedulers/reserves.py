"""Processor Capacity Reserves (Mercer, Savage & Tokuda, ICMCS '94).

The reservation-based multimedia scheduler the paper cites as
complementary related work [13]: each thread reserves ``C`` of CPU time
every period ``T``.  While a thread has budget it runs ahead of
unreserved/depleted threads; when the budget is exhausted it falls to
background until the next replenishment.

The paper's criticism (§6) — "most of these algorithms require precise
characterization of resource requirements of a task" — is exactly what
the EXP-AB8 ablation demonstrates: with unpredictable VBR demands a
reserve is either oversized (wasting admission capacity) or undersized
(frames spill into background service and the frame rate jitters),
whereas SFQ needs only relative weights.

Budgets are tracked in instructions; replenishment is computed lazily
from the clock (budget resets at every period boundary), so no timer
events are needed.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.errors import SchedulingError
from repro.schedulers.base import LeafScheduler
from repro.units import SECOND, time_from_work, work_from_time

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class _ReserveRecord:
    __slots__ = ("thread", "period", "budget_full", "budget", "period_index",
                 "queued_reserved", "queued_background")

    def __init__(self, thread: "SimThread", period: int,
                 budget_full: int) -> None:
        self.thread = thread
        self.period = period
        self.budget_full = budget_full
        self.budget = budget_full
        self.period_index = 0
        self.queued_reserved = False
        self.queued_background = False


class ReservesScheduler(LeafScheduler):
    """Reserve-based scheduling: budget ``reserve`` per ``period``.

    Thread parameters: ``params["period"]`` (ns) and ``params["reserve"]``
    (ns of CPU per period).  Threads without a reserve run purely in
    background.
    """

    algorithm = "reserves"

    def __init__(self, capacity_ips: int,
                 background_quantum: Optional[int] = None) -> None:
        if capacity_ips <= 0:
            raise SchedulingError("capacity must be positive")
        self.capacity_ips = capacity_ips
        self.background_quantum = background_quantum
        self._records: Dict[int, _ReserveRecord] = {}
        self._reserved: Deque[_ReserveRecord] = deque()
        self._background: Deque[_ReserveRecord] = deque()

    # --- membership -------------------------------------------------------

    def add_thread(self, thread: "SimThread") -> None:
        if id(thread) in self._records:
            raise SchedulingError("thread %r already registered" % (thread,))
        period = int(thread.params.get("period", 0))
        reserve_ns = int(thread.params.get("reserve", 0))
        if reserve_ns and not period:
            raise SchedulingError(
                "thread %r has a reserve but no period" % (thread,))
        if reserve_ns > period:
            raise SchedulingError(
                "thread %r reserves more than its period" % (thread,))
        budget = work_from_time(reserve_ns, self.capacity_ips)
        self._records[id(thread)] = _ReserveRecord(
            thread, period or SECOND, budget)

    def remove_thread(self, thread: "SimThread") -> None:
        record = self._records.pop(id(thread), None)
        if record is not None:
            self._dequeue(record)

    # --- lifecycle ----------------------------------------------------------

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        self._refresh(record, now)
        self._enqueue(record)

    def on_block(self, thread: "SimThread", now: int) -> None:
        self._dequeue(self._record(thread))

    def pick_next(self, now: int) -> Optional["SimThread"]:
        # Lazy replenishment may promote depleted threads back.
        for record in list(self._background):
            self._refresh(record, now)
            if record.budget > 0:
                self._dequeue(record)
                self._enqueue(record)
        if self._reserved:
            return self._reserved[0].thread
        if self._background:
            return self._background[0].thread
        return None

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        record = self._record(thread)
        self._refresh(record, now)
        record.budget = max(0, record.budget - work)
        if record.thread.is_runnable:
            # re-queue according to the (possibly depleted) budget,
            # rotating round-robin within each band
            self._dequeue(record)
            self._enqueue(record)

    def has_runnable(self) -> bool:
        return bool(self._reserved or self._background)

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        record = self._record(thread)
        if record.budget > 0:
            # run at most to depletion, so overruns never overdraw
            return time_from_work(record.budget, self.capacity_ips)
        return self.background_quantum

    # --- introspection ------------------------------------------------------

    def budget_of(self, thread: "SimThread", now: int) -> int:
        """Remaining budget (instructions) after lazy replenishment."""
        record = self._record(thread)
        self._refresh(record, now)
        return record.budget

    # --- internals -----------------------------------------------------------

    def _record(self, thread: "SimThread") -> _ReserveRecord:
        try:
            return self._records[id(thread)]
        except KeyError:
            raise SchedulingError("thread %r not registered" % (thread,)) from None

    def _refresh(self, record: _ReserveRecord, now: int) -> None:
        index = now // record.period
        if index > record.period_index:
            record.period_index = index
            record.budget = record.budget_full

    def _enqueue(self, record: _ReserveRecord) -> None:
        if record.budget > 0:
            if not record.queued_reserved:
                self._reserved.append(record)
                record.queued_reserved = True
        else:
            if not record.queued_background:
                self._background.append(record)
                record.queued_background = True

    def _dequeue(self, record: _ReserveRecord) -> None:
        if record.queued_reserved:
            self._reserved.remove(record)
            record.queued_reserved = False
        if record.queued_background:
            self._background.remove(record)
            record.queued_background = False
