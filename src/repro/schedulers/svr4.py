"""An SVR4/Solaris-style time-sharing scheduler.

This reproduces the mechanism of the Solaris TS scheduling class the paper
compares against (Figure 5) and embeds as a leaf (Figures 6 and 8): a
60-level multi-level feedback queue driven by a dispatcher parameter table
(``ts_dptbl``).  Each level defines:

* ``quantum`` — the time slice at this priority (long at low priorities,
  short at high ones);
* ``tqexp`` — the (lower) priority assigned when the quantum expires;
* ``slpret`` — the (higher) priority assigned on return from sleep;
* ``maxwait``/``lwait`` — starvation aging: a thread that has waited on the
  ready queue longer than ``maxwait`` is boosted to ``lwait`` by a
  once-per-second update.

Higher numbers mean higher priority (Solaris convention).  The interaction
of demotion, sleep boosts, and aging is exactly what makes per-thread
throughput unpredictable over observation windows — the behaviour Figure 5
demonstrates and SFQ eliminates.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, NamedTuple, Optional

from repro.errors import SchedulingError
from repro.schedulers.base import LeafScheduler
from repro.units import MS, SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread

#: number of time-sharing priority levels
TS_LEVELS = 60

#: default user priority for threads that do not specify one
DEFAULT_USER_PRIORITY = 29


class DispatchRow(NamedTuple):
    """One row of the dispatcher parameter table."""

    quantum: int   # ns
    tqexp: int     # priority after quantum expiry
    slpret: int    # priority after sleep return
    maxwait: int   # ns a thread may wait before aging kicks in
    lwait: int     # priority assigned by aging


def default_dispatch_table() -> List[DispatchRow]:
    """A ts_dptbl patterned after the Solaris 2.4 default.

    Quanta step from 200 ms at the lowest priorities down to 50 ms at the
    highest; expiry demotes by 10 levels; sleep returns boost well above
    the middle.  As in the real table, ``ts_maxwait`` is 0: *every* thread
    still waiting at the once-per-second ``ts_update`` scan is lifted to
    ``ts_lwait`` (in the 50s).  This constant churn — boost, then demote by
    expiry, phase-shifted per thread — is what makes TS throughput
    unpredictable over observation windows (Figure 5).
    """
    table = []
    for pri in range(TS_LEVELS):
        quantum = (200 - 30 * (pri // 10)) * MS  # 200,170,...,50 ms by decade
        tqexp = max(0, pri - 10)
        slpret = min(TS_LEVELS - 1, pri + 25)
        lwait = min(TS_LEVELS - 1, 50 + pri // 10)
        table.append(DispatchRow(quantum, tqexp, slpret, 0, lwait))
    return table


class _TsRecord:
    """Per-thread TS state."""

    __slots__ = ("thread", "priority", "enqueued_at", "sleeping", "queued")

    def __init__(self, thread: "SimThread", priority: int) -> None:
        self.thread = thread
        self.priority = priority
        self.enqueued_at = 0
        self.sleeping = False
        self.queued = False


class Svr4TimeSharing(LeafScheduler):
    """The SVR4/Solaris time-sharing class as a leaf (or flat) scheduler."""

    algorithm = "svr4-ts"

    def __init__(self, table: Optional[List[DispatchRow]] = None) -> None:
        self.table = table if table is not None else default_dispatch_table()
        if len(self.table) != TS_LEVELS:
            raise SchedulingError(
                "dispatch table must have %d rows, got %d"
                % (TS_LEVELS, len(self.table)))
        self._records: Dict[int, _TsRecord] = {}
        self._ready: List[Deque[_TsRecord]] = [deque() for __ in range(TS_LEVELS)]
        self._ready_count = 0
        self._last_age = 0

    # --- membership -------------------------------------------------------

    def add_thread(self, thread: "SimThread") -> None:
        if id(thread) in self._records:
            raise SchedulingError("thread %r already registered" % (thread,))
        priority = int(thread.params.get("priority", DEFAULT_USER_PRIORITY))
        if not 0 <= priority < TS_LEVELS:
            raise SchedulingError("TS priority must be in [0, %d)" % TS_LEVELS)
        self._records[id(thread)] = _TsRecord(thread, priority)

    def remove_thread(self, thread: "SimThread") -> None:
        record = self._records.pop(id(thread), None)
        if record is not None and record.queued:
            self._dequeue(record)

    # --- lifecycle -----------------------------------------------------------

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        if record.queued:
            return
        if record.sleeping:
            record.priority = self.table[record.priority].slpret
            record.sleeping = False
        self._enqueue(record, now)

    def on_block(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        if record.queued:
            self._dequeue(record)
        record.sleeping = True

    def pick_next(self, now: int) -> Optional["SimThread"]:
        self._age(now)
        for priority in range(TS_LEVELS - 1, -1, -1):
            queue = self._ready[priority]
            if queue:
                return queue[0].thread
        return None

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        record = self._record(thread)
        if thread.is_runnable and record.queued:
            # Quantum expired while still hungry: demote and requeue at tail.
            self._dequeue(record)
            record.priority = self.table[record.priority].tqexp
            self._enqueue(record, now)

    def has_runnable(self) -> bool:
        return self._ready_count > 0

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return self.table[self._record(thread).priority].quantum

    # --- internals --------------------------------------------------------------

    def priority_of(self, thread: "SimThread") -> int:
        """Current dynamic priority of ``thread`` (for tests and tracing)."""
        return self._record(thread).priority

    def _record(self, thread: "SimThread") -> _TsRecord:
        try:
            return self._records[id(thread)]
        except KeyError:
            raise SchedulingError("thread %r not registered" % (thread,)) from None

    def _enqueue(self, record: _TsRecord, now: int) -> None:
        record.enqueued_at = now
        record.queued = True
        self._ready[record.priority].append(record)
        self._ready_count += 1

    def _dequeue(self, record: _TsRecord) -> None:
        self._ready[record.priority].remove(record)
        record.queued = False
        self._ready_count -= 1

    def _age(self, now: int) -> None:
        """Once-per-second starvation pass (ts_update in Solaris)."""
        if now - self._last_age < SECOND:
            return
        self._last_age = now
        boosted = []
        for priority in range(TS_LEVELS):
            row = self.table[priority]
            if row.lwait <= priority:
                continue
            queue = self._ready[priority]
            for record in list(queue):
                if now - record.enqueued_at > row.maxwait:
                    queue.remove(record)
                    record.priority = row.lwait
                    boosted.append(record)
        for record in boosted:
            # Preserve accumulated wait so aging remains progressive.
            self._ready[record.priority].append(record)
