"""The fair-queuing baselines the paper compares SFQ against (§6).

* :class:`WfqScheduler` — Weighted Fair Queuing (Demers, Keshav & Shenker):
  start/finish tags against a *hypothetical constant-rate server's* virtual
  time; dispatch in finish-tag order.
* :class:`FqsScheduler` — Fair Queuing based on Start-time (Greenberg &
  Madras): WFQ's tags, dispatched in start-tag order (making it usable when
  quantum lengths are unknown).
* :class:`ScfqScheduler` — Self-Clocked Fair Queuing (Golestani): virtual
  time approximated by the finish tag of the quantum in service.

All three need an **assumed quantum length** at stamping time (WFQ's
documented drawback: the length must be known a priori, so the maximum is
assumed and early-blocking threads lose service).  WFQ/FQS additionally
advance virtual time at the *nominal* CPU rate — which is precisely why
they lose fairness when the effective bandwidth fluctuates (interrupts),
the paper's key argument for SFQ.  The EXP-AB1 ablation demonstrates this.

The virtual-time emulation here is the standard rate-based one
(``v' = C / sum of runnable weights`` during a busy period, reset at each
new busy period), not an exact fluid-server simulation; the paper itself
notes the exact simulation is computationally expensive, and the emulation
preserves exactly the failure mode being demonstrated.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.obs import events as obs
from repro.schedulers.base import LeafScheduler
from repro.units import SECOND

#: module-level alias of the process-wide bus: emit-site guards are on
#: the per-dispatch hot path, and `_BUS.active` is one attribute lookup
#: cheaper than `obs.BUS.active`.
_BUS = obs.BUS

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread

_seq = itertools.count()


class _FqRecord:
    __slots__ = ("thread", "start", "finish", "runnable", "version", "epoch",
                 "counted_weight")

    def __init__(self, thread: "SimThread") -> None:
        self.thread = thread
        self.start = 0.0
        self.finish = 0.0
        self.runnable = False
        self.version = 0
        self.epoch = -1
        #: the weight this record currently contributes to ``_weight_sum``
        #: (0 while blocked); refreshed wherever ``thread.weight`` is read
        self.counted_weight = 0


class _FairQueueBase(LeafScheduler):
    """Shared tag/heap machinery for WFQ, FQS, and SCFQ."""

    #: "start" or "finish" — which tag orders the dispatch heap
    order_by = "finish"
    #: short algorithm name; subclasses override (labels observability events)
    algorithm = "fq"

    def __init__(self, assumed_quantum_work: int,
                 quantum: Optional[int] = None) -> None:
        if assumed_quantum_work <= 0:
            raise SchedulingError("assumed quantum work must be positive")
        self.assumed_quantum_work = assumed_quantum_work
        self._records: Dict[int, _FqRecord] = {}
        self._heap: List[Tuple[float, int, int, _FqRecord]] = []
        self._runnable = 0
        self._quantum = quantum
        self._epoch = 0
        # Incremental sum of runnable threads' weights.  Weights are
        # integers, so the running sum is exact and independent of update
        # order — the rate clock reads it instead of scanning every record
        # per virtual-time advance (the old O(threads) hot-path cost).
        self._weight_sum = 0

    # --- virtual time: implemented by subclasses ---------------------------

    def _virtual_time(self, now: int) -> float:
        raise NotImplementedError

    def _note_busy_start(self, now: int) -> None:
        """Called when the queue transitions idle -> busy."""

    def _note_pick(self, record: _FqRecord) -> None:
        """Called when a record is selected for service."""

    def _note_charge(self, record: _FqRecord, work: int, now: int) -> None:
        """Called when a quantum completes."""

    # --- LeafScheduler ----------------------------------------------------

    def add_thread(self, thread: "SimThread") -> None:
        if id(thread) in self._records:
            raise SchedulingError("thread %r already registered" % (thread,))
        self._records[id(thread)] = _FqRecord(thread)

    def remove_thread(self, thread: "SimThread") -> None:
        record = self._records.pop(id(thread), None)
        if record is not None and record.runnable:
            record.runnable = False
            record.version += 1
            self._runnable -= 1
            self._weight_sum -= record.counted_weight
            record.counted_weight = 0

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        if record.runnable:
            return
        if self._runnable == 0:
            # New busy period: virtual time restarts (classic WFQ semantics);
            # stale finish tags from earlier busy periods do not carry over.
            self._epoch += 1
            self._note_busy_start(now)
        virtual = self._virtual_time(now)
        weight = thread.weight
        finish = record.finish if record.epoch == self._epoch else 0.0
        record.start = max(virtual, finish)
        record.finish = record.start + self.assumed_quantum_work / weight
        record.epoch = self._epoch
        record.runnable = True
        self._push(record)
        self._runnable += 1
        self._weight_sum += weight
        record.counted_weight = weight
        if _BUS.active:
            _BUS.emit(obs.TAG_UPDATE, now, node="fq:" + self.algorithm,
                         tid=thread.tid, start=record.start,
                         finish=record.finish, work=0)

    def on_block(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        if record.runnable:
            record.runnable = False
            record.version += 1
            self._runnable -= 1
            self._weight_sum -= record.counted_weight
            record.counted_weight = 0

    def pick_next(self, now: int) -> Optional["SimThread"]:
        record = self._peek()
        if record is None:
            return None
        self._note_pick(record)
        return record.thread

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        record = self._record(thread)
        self._note_charge(record, work, now)
        if record.runnable:
            # Next quantum: tags computed as at stamping time, with the
            # previous *assumed* finish as the baseline (WFQ does not revise
            # tags to the actual length — the paper's §6 criticism).
            # A dynamic weight change takes effect here, before the clock
            # advances — the same instant the old per-advance scan would
            # first have seen it.
            weight = thread.weight
            if weight != record.counted_weight:
                self._weight_sum += weight - record.counted_weight
                record.counted_weight = weight
            virtual = self._virtual_time(now)
            record.start = max(virtual, record.finish)
            record.finish = record.start + self.assumed_quantum_work / weight
            self._push(record)
            if _BUS.active:
                _BUS.emit(obs.TAG_UPDATE, now,
                             node="fq:" + self.algorithm, tid=thread.tid,
                             start=record.start, finish=record.finish,
                             work=work)

    def has_runnable(self) -> bool:
        return self._runnable > 0

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return self._quantum

    # --- helpers ------------------------------------------------------------

    def _record(self, thread: "SimThread") -> _FqRecord:
        try:
            return self._records[id(thread)]
        except KeyError:
            raise SchedulingError("thread %r not registered" % (thread,)) from None

    def _key(self, record: _FqRecord) -> float:
        return record.start if self.order_by == "start" else record.finish

    def _push(self, record: _FqRecord) -> None:
        record.version += 1
        heappush(self._heap,
                 (self._key(record), next(_seq), record.version, record))

    def _peek(self) -> Optional[_FqRecord]:
        heap = self._heap
        while heap:
            __, __, version, record = heap[0]
            if record.runnable and version == record.version:
                return record
            heappop(heap)
        return None


class _RateClockMixin:
    """Virtual time advancing at the CPU's *nominal* rate.

    ``v`` integrates ``C / sum(weights of runnable threads)`` over wall
    clock while busy.  Interrupt-stolen time still advances ``v`` — the
    divergence between assumed and actual service under fluctuation is the
    unfairness the paper demonstrates.
    """

    def _init_clock(self, capacity_ips: int) -> None:
        if capacity_ips <= 0:
            raise SchedulingError("capacity must be positive")
        self.capacity_ips = capacity_ips
        self._v = 0.0
        self._v_updated = 0

    def _virtual_time(self, now: int) -> float:
        self._advance_clock(now)
        return self._v

    def _note_busy_start(self, now: int) -> None:
        self._v = 0.0
        self._v_updated = now

    def _advance_clock(self, now: int) -> None:
        if now <= self._v_updated:
            return
        weight_sum = self._weight_sum
        if weight_sum > 0:
            elapsed = now - self._v_updated
            self._v += (elapsed * self.capacity_ips) / (SECOND * weight_sum)
            if _BUS.active:
                _BUS.emit(obs.VTIME_ADVANCE, now,
                             node="fq:" + self.algorithm, v=self._v)
        self._v_updated = now


class WfqScheduler(_RateClockMixin, _FairQueueBase):
    """Weighted Fair Queuing: rate-based virtual clock, finish-tag order."""

    algorithm = "wfq"
    order_by = "finish"

    def __init__(self, assumed_quantum_work: int, capacity_ips: int,
                 quantum: Optional[int] = None) -> None:
        _FairQueueBase.__init__(self, assumed_quantum_work, quantum)
        self._init_clock(capacity_ips)

    def on_block(self, thread: "SimThread", now: int) -> None:
        self._advance_clock(now)
        super().on_block(thread, now)


class FqsScheduler(WfqScheduler):
    """Fair Queuing based on Start-time: WFQ tags, start-tag order."""

    algorithm = "fqs"
    order_by = "start"


class ScfqScheduler(_FairQueueBase):
    """Self-Clocked Fair Queuing: v = finish tag of the quantum in service."""

    algorithm = "scfq"
    order_by = "finish"

    def __init__(self, assumed_quantum_work: int,
                 quantum: Optional[int] = None) -> None:
        super().__init__(assumed_quantum_work, quantum)
        self._v = 0.0

    def _virtual_time(self, now: int) -> float:
        return self._v

    def _note_busy_start(self, now: int) -> None:
        self._v = 0.0

    def _note_pick(self, record: _FqRecord) -> None:
        self._v = record.finish
