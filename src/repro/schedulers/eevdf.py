"""Earliest Eligible Virtual Deadline First (Stoica, Abdel-Wahab, Jeffay).

The proportionate-share algorithm the paper's §6 cites as contemporaneous
related work ("Recently, a proportional share resource allocation
algorithm, referred to as Earliest Eligible Virtual Deadline First (EEVDF),
has been proposed").  Included as a comparison baseline.

Mechanics (service-clocked formulation):

* virtual time advances by ``served_work / total_runnable_weight``;
* a client's request is stamped with a *virtual eligible time*
  ``ve = max(v, previous vd-progress)`` and a *virtual deadline*
  ``vd = ve + request / weight`` (requests here are one quantum of work);
* among clients with ``ve <= v`` (eligible), the earliest ``vd`` runs;
  if no one is eligible, the earliest ``vd`` overall runs (work
  conservation).

Like SFQ — and unlike WFQ — this formulation is self-clocked by delivered
service, so it does not need the constant-rate hypothetical server.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import SchedulingError
from repro.schedulers.base import LeafScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class _EevdfRecord:
    __slots__ = ("thread", "ve", "vd", "runnable", "lag_done")

    def __init__(self, thread: "SimThread") -> None:
        self.thread = thread
        self.ve = Fraction(0)
        self.vd = Fraction(0)
        self.runnable = False
        #: work already served against the current request
        self.lag_done = 0


class EevdfScheduler(LeafScheduler):
    """Earliest eligible virtual deadline first."""

    algorithm = "eevdf"

    def __init__(self, request_work: int, quantum: Optional[int] = None) -> None:
        if request_work <= 0:
            raise SchedulingError("request_work must be positive")
        self.request_work = request_work
        self._records: Dict[int, _EevdfRecord] = {}
        self._v = Fraction(0)
        self._quantum = quantum
        self._runnable = 0

    # --- LeafScheduler -----------------------------------------------------

    def add_thread(self, thread: "SimThread") -> None:
        if id(thread) in self._records:
            raise SchedulingError("thread %r already registered" % (thread,))
        self._records[id(thread)] = _EevdfRecord(thread)

    def remove_thread(self, thread: "SimThread") -> None:
        record = self._records.pop(id(thread), None)
        if record is not None and record.runnable:
            self._runnable -= 1

    def on_runnable(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        if record.runnable:
            return
        record.runnable = True
        self._runnable += 1
        # A (re)joining client starts a fresh request at the current v:
        # no credit accumulates while blocked.
        record.ve = max(record.ve, self._v)
        record.vd = record.ve + Fraction(self.request_work, thread.weight)
        record.lag_done = 0

    def on_block(self, thread: "SimThread", now: int) -> None:
        record = self._record(thread)
        if record.runnable:
            record.runnable = False
            self._runnable -= 1

    def pick_next(self, now: int) -> Optional["SimThread"]:
        best = None
        best_eligible = None
        for record in self._records.values():
            if not record.runnable:
                continue
            if best is None or record.vd < best.vd:
                best = record
            if record.ve <= self._v and (best_eligible is None
                                         or record.vd < best_eligible.vd):
                best_eligible = record
        chosen = best_eligible if best_eligible is not None else best
        return chosen.thread if chosen is not None else None

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        record = self._record(thread)
        total_weight = sum(r.thread.weight for r in self._records.values()
                           if r.runnable or r is record)
        if total_weight > 0:
            self._v += Fraction(work, total_weight)
        record.lag_done += work
        while record.lag_done >= self.request_work:
            record.lag_done -= self.request_work
            record.ve = record.vd
            record.vd = record.ve + Fraction(self.request_work, thread.weight)

    def has_runnable(self) -> bool:
        return self._runnable > 0

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return self._quantum

    # --- introspection ----------------------------------------------------

    @property
    def virtual_time(self) -> Fraction:
        """Current service-clocked virtual time."""
        return self._v

    def deadline_of(self, thread: "SimThread") -> Fraction:
        """Current virtual deadline of ``thread`` (for tests)."""
        return self._record(thread).vd

    def _record(self, thread: "SimThread") -> _EevdfRecord:
        try:
            return self._records[id(thread)]
        except KeyError:
            raise SchedulingError("thread %r not registered" % (thread,)) from None
