"""Units and conversions used throughout the simulator.

Simulated **time** is an integer number of nanoseconds and **work** is an
integer number of instructions.  Keeping both integral makes the simulation
deterministic (no floating-point drift in the event queue) and makes SFQ tag
arithmetic exact when the ``Fraction`` tag mode is used.

The only floating-point values in the core simulator are derived *metrics*
(throughput, ratios), never state.
"""

from __future__ import annotations

# --- time constants (integer nanoseconds) ---------------------------------

NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000

NS = NANOSECOND
US = MICROSECOND
MS = MILLISECOND


def ns_from_us(us: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(us * MICROSECOND)


def ns_from_ms(ms: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(ms * MILLISECOND)


def ns_from_s(seconds: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(seconds * SECOND)


def s_from_ns(ns: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return ns / SECOND


def ms_from_ns(ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds (reporting only)."""
    return ns / MILLISECOND


# --- work <-> time conversions ---------------------------------------------


def work_from_time(duration_ns: int, capacity_ips: int) -> int:
    """Instructions completed in ``duration_ns`` at ``capacity_ips``.

    Rounds down: a partial instruction is not completed work.
    """
    if duration_ns < 0:
        raise ValueError("duration must be non-negative, got %d" % duration_ns)
    return (duration_ns * capacity_ips) // SECOND


def time_from_work(work: int, capacity_ips: int) -> int:
    """Nanoseconds needed to execute ``work`` instructions at ``capacity_ips``.

    Rounds up: the work is only complete once the last instruction retires.
    """
    if work < 0:
        raise ValueError("work must be non-negative, got %d" % work)
    if capacity_ips <= 0:
        raise ValueError("capacity must be positive, got %d" % capacity_ips)
    return -((-work * SECOND) // capacity_ips)
