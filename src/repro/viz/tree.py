"""Rendering of scheduling structures as text trees."""

from __future__ import annotations

from typing import List

from repro.core.node import InternalNode, LeafNode, Node
from repro.core.structure import SchedulingStructure


def _label(node: Node) -> str:
    name = node.name if node.parent is not None else "/"
    parts = [name, "w=%d" % node.weight]
    if isinstance(node, LeafNode):
        parts.append("[%s]" % node.scheduler.algorithm)
        if node.threads:
            parts.append("{%s}" % ", ".join(
                sorted(t.name for t in node.threads)))
    if node.runnable:
        parts.append("*")
    return " ".join(parts)


def render_structure(structure: SchedulingStructure) -> str:
    """An ASCII tree of the structure, one node per line.

    Leaves show their scheduler algorithm and attached threads; a ``*``
    marks currently runnable nodes — e.g.::

        / w=1 *
        ├── SFQ-1 w=2 [sfq] {dhry-0, dhry-1} *
        ├── SFQ-2 w=6 [sfq]
        └── SVR4 w=1 [svr4-ts]
    """
    lines: List[str] = [_label(structure.root)]

    def walk(node: InternalNode, prefix: str) -> None:
        children = list(node.children.values())
        for index, child in enumerate(children):
            last = index == len(children) - 1
            branch = "└── " if last else "├── "
            lines.append(prefix + branch + _label(child))
            if isinstance(child, InternalNode):
                walk(child, prefix + ("    " if last else "│   "))

    walk(structure.root, "")
    return "\n".join(lines)
