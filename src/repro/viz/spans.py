"""Shared span extraction for the Gantt renderers.

Both Gantt charts answer "who held the CPU when" — per thread
(:mod:`repro.viz.gantt`) or per scheduling node by hierarchy depth
(:mod:`repro.viz.depth_gantt`).  This module turns either trace source
into one normalized :class:`SpanSet` so the renderers never care where
the data came from:

* a :class:`~repro.trace.recorder.Recorder` — live machine tracer with
  per-thread slice lists;
* any iterable of :class:`~repro.obs.events.Event` — a
  :class:`~repro.obs.binlog.BinaryTraceReader`, a replayed list, or a
  live collector's buffer.

Event streams are richer than recorders: they carry the leaf pathname on
every slice plus preempt/interrupt instants, so depth charts prefer
them.  Recorder extraction labels each span with the thread's *current*
leaf path ("/" for flat schedulers) — exact for the static scheduling
structures every experiment in this repo builds.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Iterable, List, NamedTuple,
                    Optional, Tuple)

from repro.obs import events as ev
from repro.trace.recorder import Recorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class Span(NamedTuple):
    """One contiguous run of execution: [t0, t1] by ``tid`` on ``node``."""

    t0: int
    t1: int
    tid: int
    name: str
    node: str


class SpanSet:
    """Execution spans plus preempt/interrupt instants from one trace."""

    __slots__ = ("spans", "interrupts", "preempts")

    def __init__(self, spans: List[Span],
                 interrupts: List[Tuple[int, int]],
                 preempts: List[Tuple[int, int, str]]) -> None:
        #: time-ordered execution spans
        self.spans = spans
        #: interrupt service windows ``(t0, t1)``
        self.interrupts = interrupts
        #: preemption instants ``(t, tid, node)``
        self.preempts = preempts

    def end(self) -> int:
        """Latest timestamp across spans and interrupts (0 when empty)."""
        last = 0
        if self.spans:
            last = max(span.t1 for span in self.spans)
        if self.interrupts:
            last = max(last, max(t1 for __, t1 in self.interrupts))
        return last

    def nodes(self) -> List[str]:
        """Distinct node paths, ordered by (depth, path)."""
        seen = {span.node for span in self.spans}
        seen.update(node for __, __, node in self.preempts)
        return sorted(seen, key=lambda path: (node_depth(path), path))

    def threads(self) -> List[Tuple[int, str]]:
        """Distinct ``(tid, name)`` pairs in tid order."""
        seen = {}
        for span in self.spans:
            seen.setdefault(span.tid, span.name)
        return sorted(seen.items())


def node_depth(path: str) -> int:
    """Hierarchy depth of a node pathname: "/" is 0, "/a/b" is 2.

    Non-path labels (the fair-queuing baselines emit ``fq:sfq``) sit at
    depth 0 alongside the root.
    """
    if not path.startswith("/"):
        return 0
    return path.rstrip("/").count("/")


def extract_spans(source: Any,
                  threads: Optional[Iterable["SimThread"]] = None) -> SpanSet:
    """Normalize ``source`` into a :class:`SpanSet`.

    ``source`` is a :class:`Recorder` or any iterable of events;
    ``threads`` optionally restricts (and orders) recorder extraction,
    exactly like :func:`repro.trace.timeline.merge_timeline`.
    """
    if isinstance(source, Recorder):
        return _from_recorder(source, threads)
    return _from_events(source)


def _from_recorder(recorder: Recorder,
                   threads: Optional[Iterable["SimThread"]]) -> SpanSet:
    if threads is None:
        traces = [recorder.threads[tid] for tid in sorted(recorder.threads)]
    else:
        traces = [recorder.trace_of(thread) for thread in threads]
    spans: List[Span] = []
    for trace in traces:
        thread = trace.thread
        leaf = thread.leaf
        node = leaf.path if leaf is not None else "/"
        for t0, t1, __ in trace.slices:
            spans.append(Span(t0, t1, thread.tid, thread.name, node))
    spans.sort(key=lambda span: (span.t0, span.t1, span.tid))
    interrupts = [(t, t + service) for t, service in recorder.interrupts]
    return SpanSet(spans, interrupts, [])


def _from_events(events: Iterable[ev.Event]) -> SpanSet:
    spans: List[Span] = []
    interrupts: List[Tuple[int, int]] = []
    preempts: List[Tuple[int, int, str]] = []
    for event in events:
        kind = event.kind
        if kind == ev.SLICE:
            data = event.data
            spans.append(Span(data["start"], event.time, data["tid"],
                              data.get("name", "t%d" % data["tid"]),
                              data.get("node", "/")))
        elif kind == ev.INTERRUPT:
            interrupts.append((event.time, event.time + event.data["service"]))
        elif kind == ev.PREEMPT:
            data = event.data
            preempts.append((event.time, data["tid"], data.get("node", "/")))
    spans.sort(key=lambda span: (span.t0, span.t1, span.tid))
    return SpanSet(spans, interrupts, preempts)
