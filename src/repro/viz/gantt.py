"""Text Gantt charts of machine timelines.

Renders which thread held the CPU over time, one row per thread — the
visual counterpart of Figure 3's execution-sequence diagram.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List

from repro.trace.recorder import Recorder
from repro.trace.timeline import merge_timeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


def gantt_chart(recorder: Recorder, threads: Iterable["SimThread"],
                start: int = 0, end: int = 0, width: int = 64,
                title: str = "") -> str:
    """Render a per-thread occupancy strip over [start, end].

    A cell shows ``#`` when the thread ran for most of that cell's time
    span, ``+`` when it ran for part of it, and ``.`` when idle.
    """
    threads = list(threads)
    timeline = merge_timeline(recorder, threads)
    if end <= start:
        end = max((t1 for __, t1, __ in timeline), default=start + 1)
    span = end - start
    cell = span / width

    rows: List[str] = []
    if title:
        rows.append(title)
    name_width = max((len(t.name) for t in threads), default=4)
    for thread in threads:
        occupancy = [0.0] * width
        for t0, t1, owner in timeline:
            if owner is not thread or t1 <= start or t0 >= end:
                continue
            lo = max(t0, start)
            hi = min(t1, end)
            first = int((lo - start) / cell)
            last = min(width - 1, int((hi - start - 1) / cell))
            for index in range(first, last + 1):
                cell_lo = start + index * cell
                cell_hi = cell_lo + cell
                overlap = min(hi, cell_hi) - max(lo, cell_lo)
                if overlap > 0:
                    occupancy[index] += overlap / cell
        strip = "".join(
            "#" if o >= 0.5 else ("+" if o > 0 else ".")
            for o in occupancy)
        rows.append("%s |%s|" % (thread.name.rjust(name_width), strip))
    rows.append("%s  %s%s" % (" " * name_width,
                              ("t=%d" % start).ljust(width - 8),
                              "t=%d" % end))
    return "\n".join(rows)
