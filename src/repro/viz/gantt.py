"""Text Gantt charts of machine timelines.

Renders which thread held the CPU over time, one row per thread — the
visual counterpart of Figure 3's execution-sequence diagram.  The chart
accepts any span source :mod:`repro.viz.spans` understands: a live
:class:`~repro.trace.recorder.Recorder` or an event stream such as a
:class:`~repro.obs.binlog.BinaryTraceReader`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, List, Optional, Tuple

from repro.viz.spans import Span, extract_spans

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


def occupancy_strip(spans: Iterable[Span], start: int, end: int,
                    width: int) -> str:
    """Cell-quantized occupancy of ``[start, end]`` as a text strip.

    A cell shows ``#`` when the spans cover most of that cell's time
    span, ``+`` when they cover part of it, and ``.`` when idle.  Shared
    by both Gantt renderers.
    """
    cell = (end - start) / width
    occupancy = [0.0] * width
    for t0, t1, *_ in spans:
        if t1 <= start or t0 >= end:
            continue
        lo = max(t0, start)
        hi = min(t1, end)
        first = int((lo - start) / cell)
        last = min(width - 1, int((hi - start - 1) / cell))
        for index in range(first, last + 1):
            cell_lo = start + index * cell
            cell_hi = cell_lo + cell
            overlap = min(hi, cell_hi) - max(lo, cell_lo)
            if overlap > 0:
                occupancy[index] += overlap / cell
    return "".join("#" if o >= 0.5 else ("+" if o > 0 else ".")
                   for o in occupancy)


def time_axis(start: int, end: int, width: int, margin: int) -> str:
    """The bottom axis line both Gantt charts share."""
    return "%s  %s%s" % (" " * margin,
                         ("t=%d" % start).ljust(width - 8),
                         "t=%d" % end)


def gantt_chart(source: Any,
                threads: Optional[Iterable["SimThread"]] = None,
                start: int = 0, end: int = 0, width: int = 64,
                title: str = "") -> str:
    """Render a per-thread occupancy strip over [start, end].

    ``source`` is a recorder or an event stream (see
    :func:`repro.viz.spans.extract_spans`); ``threads`` fixes the row
    order (and includes idle threads) — when omitted, rows appear in
    tid order for every thread that ran.
    """
    thread_list = list(threads) if threads is not None else None
    spans = extract_spans(source, thread_list).spans
    if end <= start:
        end = max((span.t1 for span in spans), default=start + 1)

    if thread_list is not None:
        rows_spec: List[Tuple[int, str]] = [(t.tid, t.name)
                                            for t in thread_list]
    else:
        seen = {}
        for span in spans:
            seen.setdefault(span.tid, span.name)
        rows_spec = sorted(seen.items())

    rows: List[str] = []
    if title:
        rows.append(title)
    name_width = max((len(name) for __, name in rows_spec), default=4)
    for tid, name in rows_spec:
        strip = occupancy_strip(
            (span for span in spans if span.tid == tid), start, end, width)
        rows.append("%s |%s|" % (name.rjust(name_width), strip))
    rows.append(time_axis(start, end, width, name_width))
    return "\n".join(rows)
