"""Aligned text tables."""

from __future__ import annotations

from typing import Any, List, Sequence


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "%.0f" % value
        if abs(value) >= 1:
            return "%.3f" % value
        return "%.4g" % value
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    cells: List[List[str]] = [[_render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                "row has %d cells, expected %d" % (len(row), len(headers)))
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
