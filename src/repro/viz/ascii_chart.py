"""ASCII line charts and sparklines."""

from __future__ import annotations

from typing import Dict, List, Sequence

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line intensity strip of ``values`` resampled to ``width``."""
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        resampled = [values[int(i * step)] for i in range(width)]
    else:
        resampled = list(values)
    lo = min(resampled)
    hi = max(resampled)
    span = hi - lo or 1.0
    chars = []
    for v in resampled:
        level = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def line_chart(series: Dict[str, Sequence[float]], height: int = 12,
               width: int = 64, title: str = "") -> str:
    """Plot one or more named series on a shared-axis ASCII grid.

    Each series gets the first letter of its name as its mark; collisions
    render ``*``.
    """
    if not series:
        return title
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return title
    lo = min(all_values)
    hi = max(all_values)
    span = hi - lo or 1.0
    grid: List[List[str]] = [[" "] * width for __ in range(height)]
    for name, values in series.items():
        if not values:
            continue
        mark = name[0]
        n = len(values)
        for col in range(width):
            idx = min(n - 1, int(col * n / width))
            row = int((values[idx] - lo) / span * (height - 1))
            cell = grid[height - 1 - row][col]
            grid[height - 1 - row][col] = "*" if cell not in (" ", mark) else mark
    lines = []
    if title:
        lines.append(title)
    lines.append("%.3g" % hi)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append("%.3g" % lo)
    legend = "  ".join("%s=%s" % (name[0], name) for name in series)
    lines.append(legend)
    return "\n".join(lines)
