"""Depth-axis hierarchy Gantt: time horizontal, scheduling depth vertical.

The natural rendering for this paper's scheduling structure (after
schedsi's depth-indexed Gantt charts): one lane per structure node,
lanes ordered root-outward by hierarchy depth, so the chart reads as
"which subtree held the CPU when".  An ``irq`` lane on top shows
interrupt service windows — time stolen from the whole hierarchy —
and ``!`` marks preemption instants on the owning node's lane.

Works from any span source :mod:`repro.viz.spans` understands; binlogs
are the richest (slices carry leaf pathnames, and preempt/interrupt
instants are preserved)::

    from repro.obs.binlog import BinaryTraceReader
    print(depth_gantt(BinaryTraceReader("run.binlog")))
"""

from __future__ import annotations

from typing import Any, List

from repro.viz.gantt import occupancy_strip, time_axis
from repro.viz.spans import SpanSet, extract_spans, node_depth


def _overlay(strip: str, instants: List[int], start: int, end: int,
             width: int) -> str:
    """Mark instant timestamps on a strip with ``!``."""
    if not instants:
        return strip
    cells = list(strip)
    cell = (end - start) / width
    for t in instants:
        if start <= t < end:
            cells[min(width - 1, int((t - start) / cell))] = "!"
    return "".join(cells)


def depth_gantt(source: Any, start: int = 0, end: int = 0,
                width: int = 64, title: str = "") -> str:
    """Render per-node occupancy lanes ordered by hierarchy depth.

    ``source`` is a recorder, a :class:`~repro.obs.binlog.BinaryTraceReader`,
    or any event iterable; ``[start, end]`` defaults to the whole trace.
    """
    spanset: SpanSet = extract_spans(source)
    if end <= start:
        end = max(spanset.end(), start + 1)

    nodes = spanset.nodes()
    labels = ["irq"] + ["%d %s" % (node_depth(node), node) for node in nodes]
    margin = max(len(label) for label in labels)

    rows: List[str] = []
    if title:
        rows.append(title)
    rows.append("%s |%s|" % (
        "irq".rjust(margin),
        occupancy_strip(spanset.interrupts, start, end, width)))
    for node, label in zip(nodes, labels[1:]):
        strip = occupancy_strip(
            (span for span in spanset.spans if span.node == node),
            start, end, width)
        strip = _overlay(strip,
                         [t for t, __, where in spanset.preempts
                          if where == node],
                         start, end, width)
        rows.append("%s |%s|" % (label.rjust(margin), strip))
    rows.append(time_axis(start, end, width, margin))
    return "\n".join(rows)
