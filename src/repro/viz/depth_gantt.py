"""Depth-axis hierarchy Gantt: time horizontal, scheduling depth vertical.

The natural rendering for this paper's scheduling structure (after
schedsi's depth-indexed Gantt charts): one lane per structure node,
lanes ordered root-outward by hierarchy depth, so the chart reads as
"which subtree held the CPU when".  An ``irq`` lane on top shows
interrupt service windows — time stolen from the whole hierarchy —
and ``!`` marks preemption instants on the owning node's lane.

Works from any span source :mod:`repro.viz.spans` understands; binlogs
are the richest (slices carry leaf pathnames, and preempt/interrupt
instants are preserved)::

    from repro.obs.binlog import BinaryTraceReader
    print(depth_gantt(BinaryTraceReader("run.binlog")))

Cluster runs capture one binlog per host; the ``hosts`` mapping renders
them as host-prefixed lane blocks on one shared time axis::

    print(depth_gantt(hosts={
        "h0": BinaryTraceReader("binlogs/host-h0.binlog"),
        "h1": BinaryTraceReader("binlogs/host-h1.binlog")}))
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.viz.gantt import occupancy_strip, time_axis
from repro.viz.spans import SpanSet, extract_spans, node_depth


def _overlay(strip: str, instants: List[int], start: int, end: int,
             width: int) -> str:
    """Mark instant timestamps on a strip with ``!``."""
    if not instants:
        return strip
    cells = list(strip)
    cell = (end - start) / width
    for t in instants:
        if start <= t < end:
            cells[min(width - 1, int((t - start) / cell))] = "!"
    return "".join(cells)


def _block_labels(spanset: SpanSet, prefix: str) -> List[Tuple[str, str]]:
    """``(label, node)`` lane rows for one span source; irq lane first."""
    rows = [("%sirq" % prefix, "")]
    for node in spanset.nodes():
        rows.append(("%s%d %s" % (prefix, node_depth(node), node), node))
    return rows


def _block_rows(spanset: SpanSet, labels: List[Tuple[str, str]],
                margin: int, start: int, end: int, width: int,
                rows: List[str]) -> None:
    """Append one block's rendered lanes (irq lane, then node lanes)."""
    for label, node in labels:
        if not node:
            strip = occupancy_strip(spanset.interrupts, start, end, width)
        else:
            strip = occupancy_strip(
                (span for span in spanset.spans if span.node == node),
                start, end, width)
            strip = _overlay(strip,
                             [t for t, __, where in spanset.preempts
                              if where == node],
                             start, end, width)
        rows.append("%s |%s|" % (label.rjust(margin), strip))


def depth_gantt(source: Any = None, start: int = 0, end: int = 0,
                width: int = 64, title: str = "",
                hosts: Optional[Dict[str, Any]] = None) -> str:
    """Render per-node occupancy lanes ordered by hierarchy depth.

    ``source`` is a recorder, a :class:`~repro.obs.binlog.BinaryTraceReader`,
    or any event iterable; ``[start, end]`` defaults to the whole trace.

    ``hosts`` renders a *cluster* view instead: a mapping of host key to
    span source (one per-host binlog each, typically), drawn as one lane
    block per host — name-sorted, every lane label prefixed with its
    host key — on a single shared time axis, so cross-host placement and
    migration line up visually.
    """
    if hosts:
        blocks = [(key + " ", extract_spans(hosts[key]))
                  for key in sorted(hosts)]
    elif source is None:
        raise ValueError("depth_gantt needs a source or a hosts mapping")
    else:
        blocks = [("", extract_spans(source))]
    if end <= start:
        end = max(max(spanset.end() for __, spanset in blocks), start + 1)

    labeled = [(spanset, _block_labels(spanset, prefix))
               for prefix, spanset in blocks]
    margin = max(len(label) for __, labels in labeled for label, __ in labels)

    rows: List[str] = []
    if title:
        rows.append(title)
    for spanset, labels in labeled:
        _block_rows(spanset, labels, margin, start, end, width, rows)
    rows.append(time_axis(start, end, width, margin))
    return "\n".join(rows)
