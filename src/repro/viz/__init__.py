"""Plain-text visualization for experiment output.

No plotting dependency is available offline, so experiments render their
figures as aligned tables (:mod:`repro.viz.table`) and ASCII line charts /
sparklines (:mod:`repro.viz.ascii_chart`).
"""

from repro.viz.ascii_chart import line_chart, sparkline
from repro.viz.table import format_table

__all__ = ["format_table", "line_chart", "sparkline"]
