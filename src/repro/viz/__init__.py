"""Plain-text visualization for experiment output.

No plotting dependency is available offline, so experiments render their
figures as aligned tables (:mod:`repro.viz.table`) and ASCII line charts /
sparklines (:mod:`repro.viz.ascii_chart`).
"""

from repro.viz.ascii_chart import line_chart, sparkline
from repro.viz.depth_gantt import depth_gantt
from repro.viz.gantt import gantt_chart
from repro.viz.spans import Span, SpanSet, extract_spans
from repro.viz.table import format_table

__all__ = ["Span", "SpanSet", "depth_gantt", "extract_spans",
           "format_table", "gantt_chart", "line_chart", "sparkline"]
