"""Small statistics helpers used by experiments and tests.

Pure-Python on purpose: these run inside invariant checks in property
tests, where importing numpy per example would dominate runtime.
"""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """stdev / mean — the dispersion metric for Figure 5's comparison."""
    mu = mean(values)
    if mu == 0:
        return 0.0
    return stdev(values) / mu


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly equal, 1/n = maximally unequal."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0-100), linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * p / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac
