"""Fluctuation-Constrained (FC) and Exponentially-Bounded-Fluctuation (EBF)
server models (paper §3.1, after Lee '95).

A server is FC(C, δ) if in any interval [t1, t2] inside a busy period it
does at least ``C * (t2 - t1) - δ`` work: it never falls more than the
burstiness δ behind an ideal constant-rate-C server.  A CPU whose
interrupts steal at most ``s`` out of every ``P`` nanoseconds is FC with
rate ``C * (1 - s/P)`` and burstiness about ``C * s``.

This module can

* state FC parameters analytically for periodic interrupt configurations
  (:func:`fc_params_for_periodic_interrupts`),
* fit the minimal empirical burstiness of a recorded service curve for a
  *given* rate (:func:`fit_fc_params`), and
* propagate FC parameters through SFQ (paper eq. 6): if the CPU is FC,
  each thread's/node's received service is FC with parameters given by
  :func:`sfq_throughput_params` — applied recursively down the hierarchy.
"""

from __future__ import annotations

import math
from typing import List, NamedTuple, Sequence, Tuple

from repro.units import SECOND


class FCParams(NamedTuple):
    """FC server parameters: average rate (inst/s) and burstiness (inst)."""

    rate_ips: float
    burstiness: float


def fc_params_for_periodic_interrupts(capacity_ips: int, period: int,
                                      service: int) -> FCParams:
    """Analytical FC parameters of a CPU with one periodic interrupt source.

    Over any window the source steals at most ``ceil(window/period)``
    services, so the effective rate is ``C * (1 - s/P)`` with burstiness
    one full service's worth of work, ``C * s`` (in instructions).
    """
    if not 0 <= service < period:
        raise ValueError("need 0 <= service < period")
    rate = capacity_ips * (1.0 - service / period)
    burstiness = capacity_ips * (service / SECOND)
    return FCParams(rate, burstiness)


def fit_fc_params(points: Sequence[Tuple[int, float]], rate_ips: float
                  ) -> FCParams:
    """Minimal burstiness making a service curve FC at ``rate_ips``.

    ``points`` are cumulative-service samples ``(t, W(t))`` within one busy
    period, time-sorted.  The minimal δ is::

        max over t1 <= t2 of  rate * (t2 - t1) - (W(t2) - W(t1))

    computed in O(n) by tracking the running maximum of
    ``rate * t1 - W(t1)`` (a classic prefix trick).
    """
    if not points:
        return FCParams(rate_ips, 0.0)
    # delta = max over t1 <= t2 of (rate*t2 - W2) + (W1 - rate*t1);
    # sweep t2 while tracking the best earlier (W1 - rate*t1).
    best_earlier = -math.inf
    delta = 0.0
    for t, w in points:
        deficit_here = rate_ips * (t / SECOND) - w
        if best_earlier > -math.inf:
            delta = max(delta, deficit_here + best_earlier)
        best_earlier = max(best_earlier, -deficit_here)
    return FCParams(rate_ips, max(0.0, delta))


def sfq_throughput_params(cpu: FCParams, weight: int, all_weights: Sequence[int],
                          max_quanta: Sequence[int], own_max_quantum: int
                          ) -> FCParams:
    """SFQ's throughput guarantee (paper eq. 6).

    With weights interpreted as rates (``sum(all_weights) <= C``), a thread
    of weight ``w`` served by SFQ on an FC(C, δ) CPU receives FC service
    with rate ``w`` and burstiness::

        (w / C) * (δ + sum of other threads' max quanta) + own max quantum

    ``all_weights``/``max_quanta`` describe the *competing* threads
    (excluding this one).
    """
    if weight <= 0:
        raise ValueError("weight must be positive")
    if len(all_weights) != len(max_quanta):
        raise ValueError("all_weights and max_quanta must align")
    others = sum(max_quanta)
    burstiness = (weight / cpu.rate_ips) * (cpu.burstiness + others) + own_max_quantum
    return FCParams(float(weight), burstiness)


def check_fc(points: Sequence[Tuple[int, float]], params: FCParams) -> bool:
    """True when the service curve satisfies FC(rate, burstiness)."""
    fitted = fit_fc_params(points, params.rate_ips)
    return fitted.burstiness <= params.burstiness + 1e-6


def ebf_tail(points: Sequence[Tuple[int, float]], rate_ips: float,
             gammas: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical EBF tail: fraction of interval deficits exceeding each γ.

    For every pair of consecutive samples the deficit
    ``rate * dt - dW`` is computed; the result gives, for each γ, the
    fraction of sampled intervals whose deficit exceeds γ — an empirical
    counterpart of the EBF probability bound ``A * B**γ``.
    """
    deficits = []
    for (t1, w1), (t2, w2) in zip(points, points[1:]):
        deficits.append(rate_ips * ((t2 - t1) / SECOND) - (w2 - w1))
    if not deficits:
        return [(g, 0.0) for g in gammas]
    result = []
    for gamma in gammas:
        exceed = sum(1 for d in deficits if d > gamma)
        result.append((gamma, exceed / len(deficits)))
    return result
