"""SFQ's delay guarantee and the §6 delay comparisons.

Paper eq. (8): on an FC(C, δ) CPU, SFQ guarantees that quantum j of thread
f completes by::

    EAT(q_f^j) + (sum over other threads m of l̂_m) / C + δ/C + l_f^j / C

where EAT is the *expected arrival time* — when the quantum would start if
thread f had the CPU to itself at its own reserved rate ``r_f``::

    EAT(q_f^1) = arrival_1
    EAT(q_f^j) = max(arrival_j, EAT(q_f^{j-1}) + l_f^{j-1} / r_f)

§6 additionally derives WFQ's bound (which pays ``Q * l̂max / C`` — one
maximum quantum per *every* competing thread, plus the largest quantum ever
scheduled) and SCFQ's (which inflates SFQ's by ``l̂max * (Q - 1) / C``
relative terms); :func:`wfq_delay_penalty` and :func:`scfq_delay_penalty`
express the differences used by the EXP-AB ablations.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.units import SECOND


def expected_arrival_times(arrivals: Sequence[int], lengths: Sequence[int],
                           rate_ips: float) -> List[float]:
    """EAT recursion (ns).  ``lengths`` in instructions, ``rate`` in inst/s."""
    if len(arrivals) != len(lengths):
        raise ValueError("arrivals and lengths must align")
    if rate_ips <= 0:
        raise ValueError("rate must be positive")
    eats: List[float] = []
    for index, arrival in enumerate(arrivals):
        if index == 0:
            eats.append(float(arrival))
        else:
            prev = eats[-1] + lengths[index - 1] * SECOND / rate_ips
            eats.append(max(float(arrival), prev))
    return eats


def sfq_completion_bounds(arrivals: Sequence[int], lengths: Sequence[int],
                          rate_ips: float, other_max_quanta: Sequence[int],
                          capacity_ips: float, burstiness: float = 0.0
                          ) -> List[float]:
    """Per-quantum completion deadlines guaranteed by SFQ (paper eq. 8).

    Parameters
    ----------
    arrivals / lengths:
        Quantum request times (ns) and lengths (instructions) of thread f.
    rate_ips:
        Thread f's reserved rate (its weight interpreted as a rate).
    other_max_quanta:
        Maximum quantum length (instructions) of every *other* thread.
    capacity_ips / burstiness:
        FC parameters of the CPU (burstiness in instructions).
    """
    if capacity_ips <= 0:
        raise ValueError("capacity must be positive")
    eats = expected_arrival_times(arrivals, lengths, rate_ips)
    cross = (sum(other_max_quanta) + burstiness) * SECOND / capacity_ips
    return [
        eat + cross + length * SECOND / capacity_ips
        for eat, length in zip(eats, lengths)
    ]


def wfq_delay_penalty(num_threads: int, max_quantum: int,
                      capacity_ips: float) -> float:
    """Extra delay (ns) WFQ's bound carries over SFQ's for equal quanta.

    §6: with all quanta equal, SFQ's bound beats WFQ's whenever
    ``Q > C / r_f``; the gap grows with the number of competing threads.
    This helper returns ``num_threads * max_quantum / C`` — the
    per-competitor term in WFQ's bound.
    """
    return num_threads * max_quantum * SECOND / capacity_ips


def scfq_delay_penalty(num_threads: int, max_quantum: int,
                       capacity_ips: float) -> float:
    """SCFQ's extra delay versus SFQ: ``(Q - 1) * l̂ / C`` (§6)."""
    return max(0, num_threads - 1) * max_quantum * SECOND / capacity_ips
