"""Fairness metrics.

The SFQ fairness theorem (paper §3.1) states that for any interval
[t1, t2] in which threads ``f`` and ``m`` are both runnable::

    | W_f(t1,t2)/w_f  -  W_m(t1,t2)/w_m |  <=  l̂_f/w_f + l̂_m/w_m

where ``l̂`` is the maximum quantum length.  The functions here compute the
left-hand side exactly from a recorded trace — taking the maximum over
*all* subintervals of every maximal interval in which both threads are
runnable — so tests can assert the inequality with no slack.

The trick: within one both-runnable interval, define
``D(t) = W_f(t)/w_f - W_m(t)/w_m``.  The gap over subinterval [t1, t2] is
``D(t2) - D(t1)``, so the maximum absolute gap over all subintervals is
``max D - min D``.  ``D`` is piecewise linear with breakpoints only at
slice boundaries, so evaluating it at those breakpoints is exact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.trace.metrics import common_runnable_intervals
from repro.trace.recorder import Recorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


def sfq_fairness_bound(max_quantum_f: int, weight_f: int,
                       max_quantum_m: int, weight_m: int) -> float:
    """The theorem's right-hand side: ``l̂_f/w_f + l̂_m/w_m``."""
    return max_quantum_f / weight_f + max_quantum_m / weight_m


def _breakpoints(recorder: Recorder, thread: "SimThread",
                 lo: int, hi: int) -> List[int]:
    trace = recorder.trace_of(thread)
    points = []
    for t0, t1, __ in trace.slices:
        if t1 < lo or t0 > hi:
            continue
        if lo <= t0 <= hi:
            points.append(t0)
        if lo <= t1 <= hi:
            points.append(t1)
    return points


def normalized_gap_series(recorder: Recorder, thread_f: "SimThread",
                          thread_m: "SimThread", horizon: int,
                          weight_f: int = 0, weight_m: int = 0
                          ) -> List[Tuple[int, float]]:
    """``(t, D(t))`` samples at every breakpoint of both-runnable intervals.

    Weights default to the threads' current weights; pass them explicitly
    when analysing a run with dynamic weight changes.
    """
    wf = weight_f or thread_f.weight
    wm = weight_m or thread_m.weight
    tf = recorder.trace_of(thread_f)
    tm = recorder.trace_of(thread_m)
    series: List[Tuple[int, float]] = []
    for lo, hi in common_runnable_intervals(tf, tm, horizon):
        points = set(_breakpoints(recorder, thread_f, lo, hi))
        points.update(_breakpoints(recorder, thread_m, lo, hi))
        points.add(lo)
        points.add(hi)
        for t in sorted(points):
            gap = tf.service_at(t) / wf - tm.service_at(t) / wm
            series.append((t, gap))
    return series


def max_normalized_service_gap(recorder: Recorder, thread_f: "SimThread",
                               thread_m: "SimThread", horizon: int,
                               weight_f: int = 0, weight_m: int = 0) -> float:
    """Exact maximum of |W_f/w_f - W_m/w_m| over all both-runnable subintervals."""
    wf = weight_f or thread_f.weight
    wm = weight_m or thread_m.weight
    tf = recorder.trace_of(thread_f)
    tm = recorder.trace_of(thread_m)
    worst = 0.0
    for lo, hi in common_runnable_intervals(tf, tm, horizon):
        points = set(_breakpoints(recorder, thread_f, lo, hi))
        points.update(_breakpoints(recorder, thread_m, lo, hi))
        points.add(lo)
        points.add(hi)
        lo_gap = float("inf")
        hi_gap = float("-inf")
        for t in points:
            gap = tf.service_at(t) / wf - tm.service_at(t) / wm
            lo_gap = min(lo_gap, gap)
            hi_gap = max(hi_gap, gap)
        worst = max(worst, hi_gap - lo_gap)
    return worst


def throughput_ratio(recorder: Recorder, thread_a: "SimThread",
                     thread_b: "SimThread", t1: int, t2: int) -> float:
    """W_a / W_b over [t1, t2]; ``inf`` when b received no service."""
    wa = recorder.trace_of(thread_a).work_in(t1, t2)
    wb = recorder.trace_of(thread_b).work_in(t1, t2)
    if wb == 0:
        return float("inf") if wa > 0 else 1.0
    return wa / wb
