"""Analysis: fairness metrics and the paper's analytical bounds.

* :mod:`repro.analysis.fairness` — normalized service gaps (the quantity
  the SFQ fairness theorem bounds), Jain's index, dispersion metrics;
* :mod:`repro.analysis.fc_server` — Fluctuation-Constrained and
  Exponentially-Bounded-Fluctuation server models, parameter fitting from
  traces, and SFQ's throughput guarantee (paper eq. 6);
* :mod:`repro.analysis.bounds` — SFQ's delay guarantee (paper eq. 8) and
  the WFQ/SCFQ delay comparisons of §6;
* :mod:`repro.analysis.stats` — small statistics helpers.
"""

from repro.analysis.bounds import expected_arrival_times, sfq_completion_bounds
from repro.analysis.fairness import (
    max_normalized_service_gap,
    normalized_gap_series,
    sfq_fairness_bound,
)
from repro.analysis.fc_server import FCParams, fit_fc_params, sfq_throughput_params
from repro.analysis.stats import coefficient_of_variation, jain_index, mean, stdev

__all__ = [
    "max_normalized_service_gap",
    "normalized_gap_series",
    "sfq_fairness_bound",
    "FCParams",
    "fit_fc_params",
    "sfq_throughput_params",
    "expected_arrival_times",
    "sfq_completion_bounds",
    "jain_index",
    "coefficient_of_variation",
    "mean",
    "stdev",
]
