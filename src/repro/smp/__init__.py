"""Multiprocessor extension (beyond the paper).

The paper is strictly uniprocessor.  This package extends the framework
to ``p`` identical CPUs sharing one (hierarchical or flat) scheduler —
the configuration studied by the direct follow-on work (Chandra et al.'s
Surplus Fair Scheduling, which starts from SFQ's behaviour on SMPs).

Dispatch discipline: a CPU picks the minimum-start-tag thread and takes
it *out* of the scheduling state while it runs (otherwise a second CPU
would pick the same thread); at quantum end the executed length is
charged and the thread re-enters with a fresh ``S = max(v, F)`` stamp.
This is the standard SMP formulation of start-time fair queuing.

Known property demonstrated by ``repro.experiments.extension_smp``:
with *feasible* weights (no thread's share exceeding one CPU) SMP-SFQ
divides capacity by weight; with an *infeasible* weight (share > 1/p) the
over-weighted thread saturates at one CPU while the tag arithmetic still
debits it as if it received its full share — the unfairness that
motivated Surplus Fair Scheduling.
"""

from repro.smp.machine import SmpMachine

__all__ = ["SmpMachine"]
