"""The multiprocessor machine.

``p`` identical CPUs drive one shared :class:`~repro.cpu.interface.TopScheduler`.
Relative to the uniprocessor :class:`~repro.cpu.machine.Machine` the model
is simplified where parallelism would not change the studied behaviour:

* a dispatched thread is withdrawn from the scheduler (``thread_blocked``)
  for the duration of its quantum and re-submitted (``thread_runnable``)
  after the charge — "in service" entities therefore never appear twice;
* no interrupt sources or scheduling-cost models (use the uniprocessor
  machine for those studies);
* quanta run to completion (no preemption), as in the paper.

Work/time units, workload segments (including synchronization), tracing
hooks, and statistics match the uniprocessor machine, so all metrics and
analysis code work unchanged — slices from different CPUs may overlap in
time, which is exactly what the SMP fairness analysis needs to see.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.interface import TopScheduler
from repro.devtools.schedsan import maybe_wrap as _schedsan_wrap
from repro.errors import SchedulingError, SimulationError, WorkloadError
from repro.obs import events as obs
from repro.sim.engine import Simulator
from repro.sync.mutex import Acquire, Release
from repro.sync.semaphore import Down, Notify, Up, WaitOn
from repro.threads.segments import Compute, Exit, SleepFor, SleepUntil
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.units import MS, SECOND, work_from_time

#: module-level alias of the process-wide bus: emit-site guards are on
#: the per-dispatch hot path, and `_BUS.active` is one attribute lookup
#: cheaper than `obs.BUS.active`.
_BUS = obs.BUS

_MAX_SEGMENT_PULLS = 1000


def _leaf_path(thread: SimThread) -> str:
    """Pathname of the thread's leaf node, "/" for flat schedulers."""
    leaf = thread.leaf
    return leaf.path if leaf is not None else "/"


class _Cpu:
    """Per-CPU dispatch state."""

    __slots__ = ("index", "current", "quantum_left", "quantum_done",
                 "burst_planned", "burst_start", "burst_handle")

    def __init__(self, index: int) -> None:
        self.index = index
        self.current: Optional[SimThread] = None
        self.quantum_left = 0
        self.quantum_done = 0
        self.burst_planned = 0
        self.burst_start = 0
        self.burst_handle = None


class SmpMachine:
    """``num_cpus`` identical CPUs sharing one scheduler."""

    PRIORITY_WAKEUP = 0
    PRIORITY_COMPLETION = 10

    def __init__(self, engine: Simulator, scheduler: TopScheduler,
                 num_cpus: int = 2, capacity_ips: int = 100_000_000,
                 default_quantum: int = 20 * MS, tracer=None) -> None:
        if num_cpus <= 0:
            raise SimulationError("need at least one CPU")
        if capacity_ips <= 0 or default_quantum <= 0:
            raise SimulationError("capacity and quantum must be positive")
        self.engine = engine
        # Opt-in sanitizer (REPRO_SCHEDSAN=1); pass-through when disabled.
        scheduler = _schedsan_wrap(scheduler)
        self.scheduler = scheduler
        self.capacity_ips = capacity_ips  # per CPU
        self.default_quantum = default_quantum
        #: default quantum pre-converted to instructions (per-dispatch path)
        self._default_quantum_work = work_from_time(default_quantum, capacity_ips)
        self.tracer = tracer
        self.cpus = [_Cpu(index) for index in range(num_cpus)]
        self.threads: List[SimThread] = []
        self.busy_time = 0  # summed over CPUs
        self.dispatches = 0
        if hasattr(scheduler, "clock"):
            scheduler.clock = lambda: self.engine.now

    # --- public API ------------------------------------------------------

    @property
    def num_cpus(self) -> int:
        """Number of CPUs in the machine."""
        return len(self.cpus)

    def spawn(self, thread: SimThread, at: Optional[int] = None) -> SimThread:
        """Create ``thread`` now or at absolute time ``at``."""
        self.threads.append(thread)
        if at is None or at <= self.engine.now:
            self._do_spawn(thread)
        else:
            self.engine.at(at, self._do_spawn, thread)
        return thread

    def run_until(self, time: int) -> None:
        """Advance to ``time``; in-flight bursts have their work settled."""
        self.engine.run_until(time)
        for cpu in self.cpus:
            self._flush_burst(cpu)

    def utilization(self) -> float:
        """Mean fraction of CPU-time spent executing threads."""
        if self.engine.now == 0:
            return 0.0  # derived metric, not state  # schedlint: disable=SL004
        return self.busy_time / (self.engine.now * self.num_cpus)  # schedlint: disable=SL004

    # --- spawning / workload ------------------------------------------------

    def _do_spawn(self, thread: SimThread) -> None:
        thread.stats.created_at = self.engine.now
        self.scheduler.admit(thread)
        if self.tracer is not None:
            self.tracer.on_spawn(thread, self.engine.now)
        if _BUS.active:
            _BUS.emit(obs.SPAWN, self.engine.now, tid=thread.tid,
                         name=thread.name, node=_leaf_path(thread),
                         weight=thread.weight)
        self._settle(thread)

    def _settle(self, thread: SimThread) -> None:
        now = self.engine.now
        outcome, wake_time = self._advance_workload(thread)
        if outcome == "run":
            self._make_runnable(thread)
        elif outcome == "sleep":
            if thread.state is not ThreadState.SLEEPING:
                thread.transition(ThreadState.SLEEPING)
            self._schedule_wakeup(thread, wake_time)
        elif outcome == "wait":
            if thread.state is not ThreadState.SLEEPING:
                thread.transition(ThreadState.SLEEPING)
            if self.tracer is not None:
                self.tracer.on_block(thread, now, -1)
            if _BUS.active:
                _BUS.emit(obs.BLOCK, now, tid=thread.tid,
                             node=_leaf_path(thread), wake=-1)
        else:
            thread.transition(ThreadState.EXITED)
            thread.stats.exited_at = now
            self._release_held_mutexes(thread)
            if _BUS.active:
                _BUS.emit(obs.EXIT, now, tid=thread.tid,
                             node=_leaf_path(thread))
            self.scheduler.retire(thread, now)
            if self.tracer is not None:
                self.tracer.on_exit(thread, now)

    def _advance_workload(self, thread: SimThread):
        now = self.engine.now
        for __ in range(_MAX_SEGMENT_PULLS):
            segment = thread.workload.next_segment(now, thread)
            if segment is None or isinstance(segment, Exit):
                return "exit", None
            if isinstance(segment, Compute):
                thread.remaining_work = segment.work
                return "run", None
            if isinstance(segment, SleepFor):
                if segment.duration == 0:
                    continue
                return "sleep", now + segment.duration
            if isinstance(segment, SleepUntil):
                if segment.wakeup <= now:
                    continue
                return "sleep", segment.wakeup
            if isinstance(segment, Acquire):
                if segment.mutex.try_acquire(thread):
                    thread.held_mutexes.append(segment.mutex)
                    continue
                segment.mutex.enqueue_waiter(thread)
                return "wait", None
            if isinstance(segment, Release):
                self._release_mutex(thread, segment.mutex)
                continue
            if isinstance(segment, Down):
                if segment.semaphore.try_down(thread):
                    continue
                segment.semaphore.enqueue_waiter(thread)
                return "wait", None
            if isinstance(segment, Up):
                granted = segment.semaphore.up()
                if granted is not None:
                    self._defer_wake(granted)
                continue
            if isinstance(segment, WaitOn):
                segment.queue.enqueue_waiter(thread)
                return "wait", None
            if isinstance(segment, Notify):
                for woken in segment.queue.notify(segment.count):
                    self._defer_wake(woken)
                continue
            raise WorkloadError("unknown segment %r" % (segment,))
        raise WorkloadError("workload for %r never yields work" % (thread,))

    # --- wakeups --------------------------------------------------------------

    def _make_runnable(self, thread: SimThread) -> None:
        now = self.engine.now
        thread.transition(ThreadState.RUNNABLE)
        thread.last_runnable_at = now
        if self.tracer is not None:
            self.tracer.on_runnable(thread, now)
        if _BUS.active:
            _BUS.emit(obs.RUNNABLE, now, tid=thread.tid,
                         node=_leaf_path(thread))
        self.scheduler.thread_runnable(thread, now)
        self._dispatch_idle_cpus()

    def _schedule_wakeup(self, thread: SimThread, wake_time: int) -> None:
        if self.tracer is not None:
            self.tracer.on_block(thread, self.engine.now, wake_time)
        if _BUS.active:
            _BUS.emit(obs.BLOCK, self.engine.now, tid=thread.tid,
                         node=_leaf_path(thread), wake=wake_time)
        thread.wakeup_handle = self.engine.at(
            wake_time, self._on_wakeup, thread, priority=self.PRIORITY_WAKEUP)

    def _on_wakeup(self, thread: SimThread) -> None:
        thread.wakeup_handle = None
        thread.stats.wakeups += 1
        if self.tracer is not None:
            self.tracer.on_wake(thread, self.engine.now)
        if _BUS.active:
            _BUS.emit(obs.WAKE, self.engine.now, tid=thread.tid,
                         node=_leaf_path(thread))
        if thread.remaining_work > 0:
            self._make_runnable(thread)
        else:
            self._settle(thread)

    def _defer_wake(self, thread: SimThread) -> None:
        self.engine.at(self.engine.now, self._on_wakeup, thread,
                       priority=self.PRIORITY_WAKEUP)

    # --- dispatching --------------------------------------------------------------

    def _dispatch_idle_cpus(self) -> None:
        for cpu in self.cpus:
            if cpu.current is None:
                self._dispatch(cpu)

    def _dispatch(self, cpu: _Cpu) -> None:
        now = self.engine.now
        # One scheduler call instead of has_runnable() + pick_next():
        # pick_next returns None when nothing is runnable (interface
        # contract), so has_runnable() is only consulted to keep the
        # contract-violation diagnostic.
        thread = self.scheduler.pick_next(now)
        if thread is None:
            if self.scheduler.has_runnable():
                raise SchedulingError(
                    "scheduler claimed runnable work, got None")
            return
        # Withdraw the thread for the duration of service: no other CPU
        # may pick it; tags are untouched until the charge.
        self.scheduler.thread_blocked(thread, now)
        thread.transition(ThreadState.RUNNING)
        cpu.current = thread
        self.dispatches += 1
        thread.stats.dispatches += 1
        quantum_ns = self.scheduler.quantum_for(thread)
        if quantum_ns is None:
            cpu.quantum_left = self._default_quantum_work
        else:
            cpu.quantum_left = work_from_time(quantum_ns, self.capacity_ips)
        if cpu.quantum_left <= 0:
            raise SimulationError("quantum too small for capacity")
        cpu.quantum_done = 0
        if self.tracer is not None:
            self.tracer.on_dispatch(thread, now)
        if _BUS.active:
            _BUS.emit(obs.DISPATCH, now, tid=thread.tid,
                         name=thread.name, node=_leaf_path(thread),
                         cpu=cpu.index, depth=self.scheduler.decision_depth,
                         switched=True, overhead_ns=0,
                         quantum_work=cpu.quantum_left)
        self._begin_burst(cpu)

    def _begin_burst(self, cpu: _Cpu) -> None:
        thread = cpu.current
        assert thread is not None
        planned = min(thread.remaining_work, cpu.quantum_left)
        if planned <= 0:
            raise SimulationError("empty burst on cpu%d" % cpu.index)
        cpu.burst_planned = planned
        cpu.burst_start = self.engine.now
        # time_from_work(planned, capacity) inlined: planned > 0 was just
        # checked and capacity was validated at construction.
        duration = -((-planned * SECOND) // self.capacity_ips)
        cpu.burst_handle = self.engine.at(
            self.engine.now + duration, self._on_burst_complete, cpu,
            priority=self.PRIORITY_COMPLETION)

    def _account_burst(self, cpu: _Cpu, executed: int) -> None:
        thread = cpu.current
        assert thread is not None
        if executed <= 0:
            return
        now = self.engine.now
        thread.remaining_work -= executed
        cpu.quantum_left -= executed
        cpu.quantum_done += executed
        elapsed = now - cpu.burst_start
        thread.stats.work_done += executed
        thread.stats.cpu_time += elapsed
        self.busy_time += elapsed
        if self.tracer is not None:
            self.tracer.on_slice(thread, cpu.burst_start, now, executed)
        if _BUS.active:
            _BUS.emit(obs.SLICE, now, tid=thread.tid, name=thread.name,
                         node=_leaf_path(thread), cpu=cpu.index,
                         start=cpu.burst_start, work=executed)

    def _on_burst_complete(self, cpu: _Cpu) -> None:
        cpu.burst_handle = None
        self._account_burst(cpu, cpu.burst_planned)
        self._finish_dispatch(cpu)

    def _flush_burst(self, cpu: _Cpu) -> None:
        if cpu.current is None or cpu.burst_handle is None:
            return
        elapsed = self.engine.now - cpu.burst_start
        executed = min(work_from_time(elapsed, self.capacity_ips),
                       cpu.burst_planned)
        self.engine.cancel(cpu.burst_handle)
        cpu.burst_handle = None
        self._account_burst(cpu, executed)
        if cpu.current.remaining_work == 0 or cpu.quantum_left == 0:
            self._finish_dispatch(cpu)
        else:
            self._begin_burst(cpu)

    def _finish_dispatch(self, cpu: _Cpu) -> None:
        thread = cpu.current
        assert thread is not None
        now = self.engine.now
        cpu.current = None

        if thread.remaining_work > 0:
            outcome, wake_time = "run", None
        else:
            thread.stats.segments_completed += 1
            if self.tracer is not None:
                self.tracer.on_segment_complete(thread, now)
            outcome, wake_time = self._advance_workload(thread)

        if outcome == "run":
            thread.transition(ThreadState.RUNNABLE)
        elif outcome in ("sleep", "wait"):
            thread.transition(ThreadState.SLEEPING)
            thread.stats.blocks += 1
        else:
            thread.transition(ThreadState.EXITED)
            thread.stats.exited_at = now

        if cpu.quantum_done > 0:
            self.scheduler.charge(thread, cpu.quantum_done, now)
            if self.tracer is not None:
                self.tracer.on_charge(thread, now, cpu.quantum_done)
            if _BUS.active:
                _BUS.emit(obs.CHARGE, now, tid=thread.tid,
                             node=_leaf_path(thread), work=cpu.quantum_done)
        cpu.quantum_done = 0
        cpu.quantum_left = 0

        if outcome == "run":
            # re-enter the queues with a fresh stamp S = max(v, F)
            self.scheduler.thread_runnable(thread, now)
        elif outcome == "sleep":
            self._schedule_wakeup(thread, wake_time)
        elif outcome == "wait":
            if self.tracer is not None:
                self.tracer.on_block(thread, now, -1)
            if _BUS.active:
                _BUS.emit(obs.BLOCK, now, tid=thread.tid,
                             node=_leaf_path(thread), wake=-1)
        else:
            self._release_held_mutexes(thread)
            if _BUS.active:
                _BUS.emit(obs.EXIT, now, tid=thread.tid,
                             node=_leaf_path(thread))
            self.scheduler.retire(thread, now)
            if self.tracer is not None:
                self.tracer.on_exit(thread, now)

        self._dispatch_idle_cpus()

    # --- mutexes -----------------------------------------------------------------

    def _release_mutex(self, thread: SimThread, mutex) -> None:
        thread.held_mutexes.remove(mutex)
        granted = mutex.release(thread)
        if granted is not None:
            granted.held_mutexes.append(mutex)
            self._defer_wake(granted)

    def _release_held_mutexes(self, thread: SimThread) -> None:
        while thread.held_mutexes:
            self._release_mutex(thread, thread.held_mutexes[-1])
