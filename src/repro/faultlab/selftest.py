"""Self-test injectors: faults that *should* trip the oracles.

These are deliberately broken configurations used by the acceptance tests
(and ``--fault selftest-*`` campaigns) to prove the oracle/shrinker
pipeline detects real invariant violations end to end.  They are
registered in :data:`repro.faultlab.faults.FAULTS` but excluded from
default campaign grids.
"""

from __future__ import annotations

from functools import partial

from repro.faultlab.faults import FaultContext, FaultInjector, register_fault
from repro.units import MS


@register_fault
class DoubleChargeFault(FaultInjector):
    """Charges the running thread's quantum twice.

    The machine charges the scheduler exactly once per dispatch; a second
    (phantom) charge violates SFQ's one-charge-per-pick protocol and must
    be caught by SCHEDSAN's ``charge-without-dispatch`` rule — the
    oracles' job is to notice, and the shrinker's job is to reduce the
    schedule to this single injection.
    """

    kind = "selftest-double-charge"
    DEFAULTS = {"at_ns": 100 * MS, "work": 50_000, "retries": 200}
    SHRINKABLE = {"work": 1}

    def arm(self, ctx: FaultContext) -> None:
        ctx.engine.at(int(self.params["at_ns"]),  # type: ignore[arg-type]
                      partial(self._strike, ctx,
                              int(self.params["retries"])))  # type: ignore[arg-type]

    def _strike(self, ctx: FaultContext, retries: int) -> None:
        current = ctx.machine.current
        if current is None:
            if retries > 0:
                ctx.engine.after(1 * MS,
                                 partial(self._strike, ctx, retries - 1))
            return
        work = int(self.params["work"])  # type: ignore[arg-type]
        ctx.record(self.kind, "double-charge", thread=current.name,
                   work=work)
        # The phantom charge goes through the machine's (sanitized)
        # scheduler: SCHEDSAN sees a charge with no matching pick.
        ctx.machine.scheduler.charge(current, work, ctx.engine.now)
