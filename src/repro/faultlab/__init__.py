"""faultlab: deterministic fault-injection campaigns for the scheduler.

The paper's central claim is that SFQ stays fair and bounded *even when
CPU bandwidth fluctuates* (§4, the FC/EBF analysis).  faultlab turns that
claim into an adversarial, machine-checked one:

* :mod:`repro.faultlab.faults` — a library of **deterministic fault
  injectors** (interrupt storms, capacity collapse, scheduling-cost
  spikes, thread crash/hang/straggler faults, clock-granularity jitter,
  lost/late timers, mass node churn through the ``hsfq`` API), each
  drawing randomness from a seeded :class:`repro.sim.rng.Stream`
  substream so injectors never collide on RNG state;
* :mod:`repro.faultlab.workloads` — self-contained **workload cells**
  mirroring perfkit's macro-scenarios (enumerated through the public
  :func:`repro.perfkit.scenarios` registry), each with a tracing
  recorder, a collect-mode SCHEDSAN wrapper, and a periodic probe
  thread for the delay-bound oracle;
* :mod:`repro.faultlab.oracles` — per-cell **oracles**: SCHEDSAN
  invariants, the analytical fairness/delay bounds from
  :mod:`repro.analysis` with fault-adjusted slack, QoS admission
  consistency, and liveness (no starved runnable thread);
* :mod:`repro.faultlab.campaign` — the **campaign runner**
  (``python -m repro.faultlab``) sweeping fault × workload grids across
  a multiprocessing pool with per-cell derived seeds, producing a
  byte-stable JSON report;
* :mod:`repro.faultlab.shrink` — the **shrinker**: on oracle failure it
  minimizes the fault schedule (drop faults, then halve parameters) and
  writes a standalone reproducer script replayable from its seed.

Every injection is emitted as a ``fault-inject`` event on the
observability bus when a subscriber is attached, so faults show up on
Perfetto timelines next to the scheduling activity they perturb.  See
docs/ROBUSTNESS.md.
"""

from repro.faultlab.campaign import (
    CellSpec,
    default_grid,
    replay_spec,
    run_campaign,
    run_cell,
)
from repro.faultlab.faults import FAULTS, FaultContext, FaultInjector
from repro.faultlab.oracles import evaluate_cell
from repro.faultlab.shrink import (record_cell_binlog, shrink_spec,
                                   write_reproducer)
from repro.faultlab.workloads import WORKLOADS, CellContext

__all__ = [
    "FAULTS",
    "WORKLOADS",
    "CellContext",
    "CellSpec",
    "FaultContext",
    "FaultInjector",
    "default_grid",
    "evaluate_cell",
    "record_cell_binlog",
    "replay_spec",
    "run_campaign",
    "run_cell",
    "shrink_spec",
    "write_reproducer",
]
