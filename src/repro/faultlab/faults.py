"""Deterministic fault injectors.

Every injector is constructed from a flat dict of JSON-able parameters
(so fault schedules round-trip through campaign reports and reproducer
scripts) and armed against a :class:`FaultContext` before the simulation
starts.  All randomness comes from the context's seeded
:class:`repro.sim.rng.Stream` substream — two arms of the same injector
with the same seed produce the same injection schedule, byte for byte.

Injection semantics worth knowing:

* **Crash/hang/straggler** faults act through workload wrappers, so they
  take effect at the victim's next *segment boundary* — the machine owns
  all mid-burst accounting and a fault may not corrupt it.
* **Jitter/timer-loss** faults transform sleep segments as the victim's
  workload emits them (granularity rounding, seeded delays).
* **Node churn** drives the paper's ``hsfq_mknod``/``hsfq_move``/
  ``hsfq_rmnod`` API under load, moving live (non-running) threads
  through a temporary leaf.
* Windowed CPU-stealing faults report a ``denial_slack`` (the worst
  contiguous time they may deny the CPU to threads) that the oracles add
  to their analytical thresholds.

Each injection is appended to the context's fault log and, when the
observability bus has subscribers, emitted as a ``fault-inject`` event so
it appears on Perfetto timelines.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Dict, List, Type

from repro.cpu.costs import SchedulingCostModel
from repro.cpu.interrupts import PeriodicInterruptSource, PoissonInterruptSource
from repro.errors import SchedulingError, StructureError
from repro.hsfq import HSFQ_LEAF, SCHED_SFQ, hsfq_mknod, hsfq_move, hsfq_rmnod
from repro.obs import events as obs
from repro.threads.segments import Compute, Exit, SleepFor, SleepUntil, Workload
from repro.threads.states import ThreadState
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.machine import Machine
    from repro.sim.engine import Simulator
    from repro.sim.rng import Stream
    from repro.threads.thread import SimThread

#: kind -> injector class; see ``register_fault``
FAULTS: Dict[str, Type["FaultInjector"]] = {}


def register_fault(cls: Type["FaultInjector"]) -> Type["FaultInjector"]:
    """Class decorator adding an injector to the :data:`FAULTS` registry."""
    if not cls.kind:
        raise ValueError("fault class %r has no kind" % (cls,))
    if cls.kind in FAULTS:
        raise ValueError("duplicate fault kind %r" % (cls.kind,))
    FAULTS[cls.kind] = cls
    return cls


class FaultContext:
    """Everything an injector may touch, plus the injection log.

    ``stream`` is the cell's fault substream; each injector derives its
    own child via ``stream.substream(...)`` so injectors never share RNG
    state.  ``log`` accumulates JSON-able injection records keyed by
    simulation time — the campaign digests it, and the shrinker's
    reproducers replay it exactly.
    """

    def __init__(self, machine: "Machine", engine: "Simulator",
                 structure, stream: "Stream", horizon: int) -> None:
        self.machine = machine
        self.engine = engine
        self.structure = structure
        self.stream = stream
        self.horizon = horizon
        self.log: List[Dict[str, object]] = []

    def record(self, fault: str, action: str, **fields: object) -> None:
        """Log one injection (and emit it on the observability bus)."""
        entry: Dict[str, object] = {"time": self.engine.now, "fault": fault,
                                    "action": action}
        entry.update(fields)
        self.log.append(entry)
        if obs.BUS.active:
            obs.BUS.emit(obs.FAULT_INJECT, self.engine.now, fault=fault,
                         action=action, **fields)

    def alive_threads(self) -> List["SimThread"]:
        """Threads not yet exited, in deterministic name order.

        Thread names are unique within a cell, so the order (and hence
        every seeded victim draw) is independent of the process-global
        tid counter.
        """
        return sorted(
            (t for t in self.machine.threads
             if t.state is not ThreadState.EXITED),
            key=lambda t: t.name)

    def for_fault(self, index: int, kind: str) -> "FaultContext":
        """A per-injector view: own RNG substream, shared injection log.

        Keying the substream by grid position *and* kind means two
        injectors of the same kind in one schedule still draw
        independently.
        """
        child = FaultContext(self.machine, self.engine, self.structure,
                             self.stream.substream("%d/%s" % (index, kind)),
                             self.horizon)
        child.log = self.log
        return child


class FaultInjector:
    """Base class: a fault built from params, armed against a context.

    ``SHRINKABLE`` maps integer parameter names to their lower bounds —
    the shrinker halves them toward the bound while the failure still
    reproduces.  ``victim_names`` (populated during the run) names
    threads whose service the fault deliberately destroyed; oracles
    exclude them from fairness/liveness checks.
    """

    kind = ""
    #: parameter defaults; subclasses override
    DEFAULTS: Dict[str, object] = {}
    #: shrinkable integer params -> minimum value
    SHRINKABLE: Dict[str, int] = {}

    def __init__(self, **params: object) -> None:
        unknown = set(params) - set(self.DEFAULTS)
        if unknown:
            raise ValueError("unknown %s params: %s"
                             % (self.kind, ", ".join(sorted(unknown))))
        self.params: Dict[str, object] = dict(self.DEFAULTS)
        self.params.update(params)
        self.victim_names: List[str] = []
        #: threads whose *demand* the fault inflated (still scheduled
        #: normally, but they may overrun any admitted budget)
        self.overrun_names: List[str] = []

    @classmethod
    def from_params(cls, params: Dict[str, object]) -> "FaultInjector":
        """Build an injector from a JSON-able parameter dict."""
        return cls(**params)

    def arm(self, ctx: FaultContext) -> None:
        """Schedule this fault's injections against ``ctx``."""
        raise NotImplementedError

    def denial_slack(self) -> int:
        """Worst contiguous time (ns) this fault may deny the CPU."""
        return 0

    def extra_root_weight(self) -> int:
        """Weight this fault may add at the hierarchy root (dilutes shares)."""
        return 0


def build_fault(spec: Dict[str, object]) -> FaultInjector:
    """Instantiate a fault from ``{"kind": ..., "params": {...}}``."""
    kind = spec["kind"]
    try:
        cls = FAULTS[kind]  # type: ignore[index]
    except KeyError:
        raise ValueError("unknown fault kind %r" % (kind,)) from None
    return cls.from_params(dict(spec.get("params", {})))  # type: ignore[arg-type]


# --- CPU-bandwidth faults ----------------------------------------------------


@register_fault
class InterruptStormFault(FaultInjector):
    """A windowed Poisson interrupt storm (the paper's §3.1 fluctuation)."""

    kind = "interrupt-storm"
    DEFAULTS = {"start_ns": 200 * MS, "duration_ns": 800 * MS,
                "mean_interarrival_ns": 400_000, "mean_service_ns": 120_000}
    SHRINKABLE = {"duration_ns": 1 * MS, "mean_service_ns": 1_000}

    def arm(self, ctx: FaultContext) -> None:
        start = int(self.params["start_ns"])  # type: ignore[arg-type]
        duration = int(self.params["duration_ns"])  # type: ignore[arg-type]
        rng = ctx.stream.substream(self.kind).rng("arrivals")
        source = PoissonInterruptSource(
            mean_interarrival=int(self.params["mean_interarrival_ns"]),  # type: ignore[arg-type]
            mean_service=int(self.params["mean_service_ns"]),  # type: ignore[arg-type]
            rng=rng, exponential_service=True)

        def begin() -> None:
            ctx.record(self.kind, "start", duration_ns=duration)
            ctx.machine.add_interrupt_source(source)

        def end() -> None:
            source.stop()
            ctx.record(self.kind, "stop")

        ctx.engine.at(start, begin)
        ctx.engine.at(start + duration, end)

    def denial_slack(self) -> int:
        return int(self.params["duration_ns"])  # type: ignore[arg-type]


@register_fault
class CapacityCollapseFault(FaultInjector):
    """Periodic interrupts stealing a fixed fraction of the CPU for a window.

    With period ``P`` and stolen fraction ``f`` the effective CPU drops
    to an FC server of rate ``C * (1 - f)`` during the window — the
    regime the paper's fluctuation-constrained bounds are stated for.
    """

    kind = "capacity-collapse"
    DEFAULTS = {"start_ns": 300 * MS, "duration_ns": 600 * MS,
                "period_ns": 2 * MS, "stolen_pct": 60}
    SHRINKABLE = {"duration_ns": 1 * MS, "stolen_pct": 1}

    def arm(self, ctx: FaultContext) -> None:
        start = int(self.params["start_ns"])  # type: ignore[arg-type]
        duration = int(self.params["duration_ns"])  # type: ignore[arg-type]
        period = int(self.params["period_ns"])  # type: ignore[arg-type]
        pct = min(99, max(0, int(self.params["stolen_pct"])))  # type: ignore[arg-type]
        service = min(period - 1, period * pct // 100)
        if service <= 0:
            return
        source = PeriodicInterruptSource(period=period, service=service)

        def begin() -> None:
            ctx.record(self.kind, "start", duration_ns=duration,
                       stolen_pct=pct)
            ctx.machine.add_interrupt_source(source)

        def end() -> None:
            source.stop()
            ctx.record(self.kind, "stop")

        ctx.engine.at(start, begin)
        ctx.engine.at(start + duration, end)

    def denial_slack(self) -> int:
        return int(self.params["duration_ns"])  # type: ignore[arg-type]


class _SpikedCostModel(SchedulingCostModel):
    """Window-aware wrapper multiplying dispatch costs during the spike."""

    def __init__(self, inner: SchedulingCostModel, engine: "Simulator",
                 start: int, end: int, multiplier: int, extra_ns: int) -> None:
        self.inner = inner
        self.engine = engine
        self.start = start
        self.end = end
        self.multiplier = multiplier
        self.extra_ns = extra_ns

    def dispatch_cost(self, depth: int, switched: bool) -> int:
        cost = self.inner.dispatch_cost(depth, switched)
        if self.start <= self.engine.now < self.end:
            return cost * self.multiplier + self.extra_ns
        return cost


@register_fault
class CostSpikeFault(FaultInjector):
    """Scheduling decisions suddenly become expensive (Figure 7 gone wrong)."""

    kind = "cost-spike"
    DEFAULTS = {"start_ns": 250 * MS, "duration_ns": 500 * MS,
                "multiplier": 8, "extra_ns": 40_000}
    SHRINKABLE = {"duration_ns": 1 * MS, "multiplier": 1, "extra_ns": 0}

    def arm(self, ctx: FaultContext) -> None:
        start = int(self.params["start_ns"])  # type: ignore[arg-type]
        duration = int(self.params["duration_ns"])  # type: ignore[arg-type]
        ctx.machine.cost_model = _SpikedCostModel(
            ctx.machine.cost_model, ctx.engine, start, start + duration,
            int(self.params["multiplier"]),  # type: ignore[arg-type]
            int(self.params["extra_ns"]))  # type: ignore[arg-type]
        ctx.engine.at(start, partial(ctx.record, self.kind, "start"))
        ctx.engine.at(start + duration, partial(ctx.record, self.kind, "stop"))

    def denial_slack(self) -> int:
        return int(self.params["duration_ns"])  # type: ignore[arg-type]


# --- thread-level faults -----------------------------------------------------


class _CrashedWorkload(Workload):
    """Replacement workload: the thread exits at its next segment boundary."""

    def next_segment(self, now: int, thread: "SimThread") -> Exit:
        return Exit()


class _HangWorkload(Workload):
    """One long sleep injected before the inner workload continues."""

    def __init__(self, inner: Workload, hang_ns: int) -> None:
        self.inner = inner
        self.hang_ns = hang_ns
        self._hung = False

    def next_segment(self, now: int, thread: "SimThread"):
        if not self._hung:
            self._hung = True
            return SleepFor(self.hang_ns)
        return self.inner.next_segment(now, thread)


class _StragglerWorkload(Workload):
    """Inflates every Compute segment by a fixed factor."""

    def __init__(self, inner: Workload, factor: int) -> None:
        self.inner = inner
        self.factor = factor

    def next_segment(self, now: int, thread: "SimThread"):
        segment = self.inner.next_segment(now, thread)
        if isinstance(segment, Compute):
            return Compute(segment.work * self.factor)
        return segment


class _VictimFault(FaultInjector):
    """Shared machinery: pick ``count`` seeded victims at ``at_ns``."""

    #: name prefixes never chosen as victims (oracle probes)
    PROTECTED = ("probe",)

    def _pick_victims(self, ctx: FaultContext, count: int) -> List["SimThread"]:
        candidates = [t for t in ctx.alive_threads()
                      if not t.name.startswith(self.PROTECTED)]
        if not candidates:
            return []
        rng = ctx.stream.substream(self.kind).rng("victims")
        count = min(count, len(candidates))
        return rng.sample(candidates, count)


@register_fault
class ThreadCrashFault(_VictimFault):
    """Victims exit at their next segment boundary."""

    kind = "thread-crash"
    DEFAULTS = {"at_ns": 400 * MS, "count": 1}
    SHRINKABLE = {"count": 1}

    def arm(self, ctx: FaultContext) -> None:
        def strike() -> None:
            for victim in self._pick_victims(ctx, int(self.params["count"])):  # type: ignore[arg-type]
                victim.workload = _CrashedWorkload()
                self.victim_names.append(victim.name)
                ctx.record(self.kind, "crash", thread=victim.name)

        ctx.engine.at(int(self.params["at_ns"]), strike)  # type: ignore[arg-type]


@register_fault
class ThreadHangFault(_VictimFault):
    """Victims stall in one long sleep, then resume their workload."""

    kind = "thread-hang"
    DEFAULTS = {"at_ns": 350 * MS, "hang_ns": 700 * MS, "count": 1}
    SHRINKABLE = {"hang_ns": 1 * MS, "count": 1}

    def arm(self, ctx: FaultContext) -> None:
        def strike() -> None:
            hang_ns = int(self.params["hang_ns"])  # type: ignore[arg-type]
            for victim in self._pick_victims(ctx, int(self.params["count"])):  # type: ignore[arg-type]
                victim.workload = _HangWorkload(victim.workload, hang_ns)
                self.victim_names.append(victim.name)
                ctx.record(self.kind, "hang", thread=victim.name,
                           hang_ns=hang_ns)

        ctx.engine.at(int(self.params["at_ns"]), strike)  # type: ignore[arg-type]


@register_fault
class StragglerFault(_VictimFault):
    """Victims' compute segments inflate by ``factor`` — SFQ must still be fair.

    Victims are *not* excluded from the fairness oracle: a straggler is
    just a heavier CPU-bound thread, and the fairness theorem is agnostic
    to demand.
    """

    kind = "straggler"
    DEFAULTS = {"at_ns": 300 * MS, "factor": 6, "count": 1}
    SHRINKABLE = {"factor": 1, "count": 1}

    def arm(self, ctx: FaultContext) -> None:
        def strike() -> None:
            factor = max(1, int(self.params["factor"]))  # type: ignore[arg-type]
            for victim in self._pick_victims(ctx, int(self.params["count"])):  # type: ignore[arg-type]
                victim.workload = _StragglerWorkload(victim.workload, factor)
                self.overrun_names.append(victim.name)
                ctx.record(self.kind, "straggle", thread=victim.name,
                           factor=factor)

        ctx.engine.at(int(self.params["at_ns"]), strike)  # type: ignore[arg-type]


# --- timer faults ------------------------------------------------------------


class _JitteredWorkload(Workload):
    """Rounds sleeps up to a granularity and adds seeded jitter/loss delays."""

    def __init__(self, inner: Workload, granularity_ns: int, jitter_ns: int,
                 loss_pct: int, loss_delay_ns: int, rng) -> None:
        self.inner = inner
        self.granularity_ns = max(1, granularity_ns)
        self.jitter_ns = jitter_ns
        self.loss_pct = loss_pct
        self.loss_delay_ns = loss_delay_ns
        self.rng = rng

    def _delay(self) -> int:
        delay = 0
        if self.jitter_ns > 0:
            delay += self.rng.randrange(self.jitter_ns + 1)
        if self.loss_pct > 0 and self.rng.randrange(100) < self.loss_pct:
            delay += self.loss_delay_ns
        return delay

    def _stretch(self, duration: int) -> int:
        gran = self.granularity_ns
        rounded = -(-duration // gran) * gran  # round up to the granularity
        return rounded + self._delay()

    def next_segment(self, now: int, thread: "SimThread"):
        segment = self.inner.next_segment(now, thread)
        if isinstance(segment, SleepFor):
            return SleepFor(self._stretch(segment.duration))
        if isinstance(segment, SleepUntil):
            if segment.wakeup <= now:
                return segment
            return SleepUntil(now + self._stretch(segment.wakeup - now))
        return segment


@register_fault
class ClockJitterFault(FaultInjector):
    """Every sleep rounds up to a coarse clock granularity, plus jitter."""

    kind = "clock-jitter"
    DEFAULTS = {"at_ns": 0, "granularity_ns": 10 * MS, "jitter_ns": 2 * MS}
    SHRINKABLE = {"granularity_ns": 1, "jitter_ns": 0}

    def arm(self, ctx: FaultContext) -> None:
        def strike() -> None:
            rng = ctx.stream.substream(self.kind).rng("jitter")
            for thread in ctx.alive_threads():
                thread.workload = _JitteredWorkload(
                    thread.workload,
                    int(self.params["granularity_ns"]),  # type: ignore[arg-type]
                    int(self.params["jitter_ns"]),  # type: ignore[arg-type]
                    0, 0, rng)
            ctx.record(self.kind, "engage",
                       granularity_ns=self.params["granularity_ns"])

        ctx.engine.at(int(self.params["at_ns"]), strike)  # type: ignore[arg-type]


@register_fault
class TimerLossFault(FaultInjector):
    """A fraction of timer events is lost and re-delivered late."""

    kind = "timer-loss"
    DEFAULTS = {"at_ns": 0, "loss_pct": 20, "loss_delay_ns": 50 * MS}
    SHRINKABLE = {"loss_pct": 1, "loss_delay_ns": 1 * MS}

    def arm(self, ctx: FaultContext) -> None:
        def strike() -> None:
            rng = ctx.stream.substream(self.kind).rng("loss")
            for thread in ctx.alive_threads():
                thread.workload = _JitteredWorkload(
                    thread.workload, 1, 0,
                    int(self.params["loss_pct"]),  # type: ignore[arg-type]
                    int(self.params["loss_delay_ns"]),  # type: ignore[arg-type]
                    rng)
            ctx.record(self.kind, "engage", loss_pct=self.params["loss_pct"])

        ctx.engine.at(int(self.params["at_ns"]), strike)  # type: ignore[arg-type]


# --- structural faults -------------------------------------------------------


@register_fault
class NodeChurnFault(FaultInjector):
    """Mass node churn through the hsfq API under load.

    Each round creates a temporary root-level leaf with ``hsfq_mknod``,
    moves a seeded non-running thread into it with ``hsfq_move``, and
    half an interval later moves the thread home and removes the leaf
    with ``hsfq_rmnod``.  Requires a hierarchical cell; a no-op (with a
    log record) on flat cells.
    """

    kind = "node-churn"
    DEFAULTS = {"start_ns": 200 * MS, "rounds": 6, "interval_ns": 150 * MS,
                "leaf_weight": 1}
    SHRINKABLE = {"rounds": 1, "interval_ns": 2 * MS}

    def arm(self, ctx: FaultContext) -> None:
        if ctx.structure is None:
            ctx.engine.at(int(self.params["start_ns"]),  # type: ignore[arg-type]
                          partial(ctx.record, self.kind, "skipped"))
            return
        start = int(self.params["start_ns"])  # type: ignore[arg-type]
        interval = int(self.params["interval_ns"])  # type: ignore[arg-type]
        for index in range(int(self.params["rounds"])):  # type: ignore[arg-type]
            ctx.engine.at(start + index * interval,
                          partial(self._round, ctx, index))

    def _round(self, ctx: FaultContext, index: int) -> None:
        structure = ctx.structure
        rng = ctx.stream.substream(self.kind).rng("round/%d" % index)
        movable = [t for t in ctx.alive_threads()
                   if t.state is not ThreadState.RUNNING
                   and t.leaf is not None
                   and not t.name.startswith(_VictimFault.PROTECTED)]
        if not movable:
            ctx.record(self.kind, "no-movable", round=index)
            return
        victim = rng.choice(movable)
        home_id = victim.leaf.node_id
        try:
            temp_id = hsfq_mknod(
                structure, "churn-%d" % index, parent=structure.root.node_id,
                weight=int(self.params["leaf_weight"]),  # type: ignore[arg-type]
                flag=HSFQ_LEAF, sid=SCHED_SFQ)
            hsfq_move(structure, victim, temp_id)
        except (StructureError, SchedulingError) as exc:
            ctx.record(self.kind, "move-failed", round=index,
                       error=type(exc).__name__)
            return
        if victim.name not in self.victim_names:
            self.victim_names.append(victim.name)
        ctx.record(self.kind, "churn-out", round=index, thread=victim.name)
        half = max(1, int(self.params["interval_ns"]) // 2)  # type: ignore[arg-type]
        ctx.engine.after(half, partial(self._restore, ctx, index, victim,
                                       home_id, temp_id))

    def _restore(self, ctx: FaultContext, index: int, victim: "SimThread",
                 home_id: int, temp_id: int) -> None:
        try:
            hsfq_move(ctx.structure, victim, home_id)
            hsfq_rmnod(ctx.structure, temp_id)
        except (StructureError, SchedulingError) as exc:
            # A running victim cannot be moved home this instant; retry
            # shortly.  Deterministic: retry time depends only on sim state.
            ctx.record(self.kind, "restore-retry", round=index,
                       error=type(exc).__name__)
            ctx.engine.after(1 * MS, partial(self._restore, ctx, index, victim,
                                             home_id, temp_id))
            return
        ctx.record(self.kind, "churn-home", round=index, thread=victim.name)

    def extra_root_weight(self) -> int:
        return int(self.params["leaf_weight"])  # type: ignore[arg-type]

    def denial_slack(self) -> int:
        # While churned out, the victim competes at the temporary leaf's
        # (possibly tiny) share; treat the whole churn window as slack.
        rounds = int(self.params["rounds"])  # type: ignore[arg-type]
        interval = int(self.params["interval_ns"])  # type: ignore[arg-type]
        return rounds * interval


@register_fault
class HostChurnFault(FaultInjector):
    """Whole-host churn: take hosts down (and back up) at epoch barriers.

    The cluster analogue of :class:`NodeChurnFault`, one tier up — where
    node churn drives ``hsfq_mknod``/``hsfq_rmnod`` under load, host
    churn drives the placement tier's drain/fail-over/rejoin path.  Only
    meaningful when armed against a
    :class:`~repro.cluster.churn.ClusterFaultContext`; on a single-host
    cell (no ``cluster`` attribute) it skips with a log record, exactly
    like node churn skips on flat cells.

    The schedule is drawn entirely at arm time from the context's seeded
    stream: ``downs`` distinct hosts (never the whole fleet) each get a
    down epoch in ``[first_epoch, last_epoch]`` (``last_epoch`` 0 means
    ``epochs - 3``) and come back up ``min_down_epochs..max_down_epochs``
    epochs after their drain barrier — or stay down if that lands past
    the horizon.
    """

    kind = "host-churn"
    DEFAULTS = {"downs": 1, "first_epoch": 2, "last_epoch": 0,
                "min_down_epochs": 2, "max_down_epochs": 4}
    SHRINKABLE = {"downs": 1, "max_down_epochs": 1}

    def arm(self, ctx: FaultContext) -> None:
        cluster = getattr(ctx, "cluster", None)
        if cluster is None:
            ctx.record(self.kind, "skipped")
            return
        rng = ctx.stream.substream(self.kind).rng("schedule")
        hosts = cluster.host_names()
        downs = min(int(self.params["downs"]), max(0, len(hosts) - 1))  # type: ignore[arg-type]
        if downs <= 0 or cluster.epochs < 5:
            ctx.record(self.kind, "skipped", reason="cluster-too-small")
            return
        min_down = max(1, int(self.params["min_down_epochs"]))  # type: ignore[arg-type]
        max_down = max(min_down, int(self.params["max_down_epochs"]))  # type: ignore[arg-type]
        latest_down = cluster.epochs - 3
        last = int(self.params["last_epoch"])  # type: ignore[arg-type]
        if last > 0:
            latest_down = min(latest_down, last)
        first = min(int(self.params["first_epoch"]), latest_down)  # type: ignore[arg-type]
        schedule = getattr(ctx, "churn")
        for host in sorted(rng.sample(hosts, downs)):
            down = rng.randrange(first, latest_down + 1)
            up = down + 1 + rng.randrange(min_down, max_down + 1)
            schedule.append((down, "down", host))
            ctx.record(self.kind, "host-down", host=host, epoch=down)
            if up < cluster.epochs:
                schedule.append((up, "up", host))
                ctx.record(self.kind, "host-up", host=host, epoch=up)


#: fault kinds that only act on a cluster context (excluded from the
#: single-host campaign grid, like self-test faults)
CLUSTER_FAULT_KINDS = ("host-churn",)


def _selftest_faults() -> None:
    """Import the self-test injectors (registered but not in default grids)."""
    import repro.faultlab.selftest  # noqa: F401  (import registers)


_SELFTEST_KINDS = ("selftest-double-charge",)


def ensure_registered(kind: str) -> None:
    """Make sure ``kind`` is importable — self-test faults load lazily."""
    if kind not in FAULTS and kind in _SELFTEST_KINDS:
        _selftest_faults()
