"""Workload cells: the simulations faults are injected into.

Each builder constructs a fresh, self-contained simulation — engine,
machine (with a tracing :class:`~repro.trace.recorder.Recorder` and a
collect-mode SCHEDSAN wrapper), threads, and optionally a scheduling
structure and QoS manager — and returns a :class:`CellContext` the
campaign runner arms faults against and the oracles evaluate.

The cells mirror perfkit's macro-scenarios (:data:`PERFKIT_MIRRORS` maps
each cell to the scenario it is derived from, validated against the
public :func:`repro.perfkit.scenarios` registry) but are sized for
fault campaigns and instrumented for the oracles:

* every cell carries same-leaf *fair pairs* of CPU-bound threads for the
  SFQ fairness-bound oracle;
* most cells carry a periodic *probe* thread whose actual release and
  completion times feed the paper's eq. (8) delay-bound oracle;
* the QoS cell records every admission decision (with the inputs the
  decision was made from) for the admission-consistency oracle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.cpu.flat import FlatScheduler
from repro.cpu.machine import Machine
from repro.devtools.schedsan import SchedsanScheduler
from repro.errors import AdmissionError
from repro.experiments.common import figure6_structure
from repro.qos.manager import QosManager
from repro.qos.spec import BEST_EFFORT, HARD_RT, SOFT_RT, QosRequest
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.sim.rng import Stream
from repro.threads.segments import Compute, SleepUntil, Workload
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.units import MS, SECOND, work_from_time
from repro.workloads.bursty import BurstyWorkload
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.interactive import InteractiveWorkload

#: capacity of every cell's CPU (the paper's ~100 MIPS machine)
CAPACITY = 100_000_000


class PeriodicProbe(Workload):
    """A periodic thread that records its actual release times.

    Each period it computes ``work`` instructions.  ``releases`` holds the
    time each request actually became runnable (after any timer faults),
    and the recorder's ``segment_completions`` holds the matching
    completion times — together exactly the inputs eq. (8) bounds.
    """

    def __init__(self, period: int, work: int, start: int = 0) -> None:
        self.period = period
        self.work = work
        self.start = start
        self.releases: List[int] = []
        self._k = 0
        self._pending = False

    def next_segment(self, now: int, thread: "SimThread"):
        if self._pending:
            self._pending = False
            self.releases.append(now)
            return Compute(self.work)
        release = self.start + self._k * self.period
        self._k += 1
        self._pending = True
        return SleepUntil(release)

    def reset(self) -> None:
        self.releases = []
        self._k = 0
        self._pending = False


class CellContext:
    """One built cell: the simulation plus everything the oracles need."""

    def __init__(self, name: str, engine: Simulator, machine: Machine,
                 structure: Optional[SchedulingStructure],
                 recorder: Recorder, horizon: int, default_quantum: int,
                 fair_pairs: Optional[List[Tuple[str, str]]] = None,
                 probe_name: Optional[str] = None,
                 probe_fraction: float = 0.0,
                 root_weight_total: int = 0,
                 qos: Optional[QosManager] = None,
                 admission_log: Optional[List[Dict[str, object]]] = None
                 ) -> None:
        self.name = name
        self.engine = engine
        self.machine = machine
        self.structure = structure
        self.recorder = recorder
        self.horizon = horizon
        self.capacity_ips = machine.capacity_ips
        self.default_quantum = default_quantum
        self.fair_pairs = fair_pairs or []
        self.probe_name = probe_name
        self.probe_fraction = probe_fraction
        self.root_weight_total = root_weight_total
        self.qos = qos
        self.admission_log = admission_log if admission_log is not None else []

    @property
    def quantum_work(self) -> int:
        """The default quantum in instructions (the fairness bound's l̂)."""
        return work_from_time(self.default_quantum, self.capacity_ips)

    def thread(self, name: str) -> SimThread:
        """Look up a thread by (unique within a cell) name."""
        for candidate in self.machine.threads:
            if candidate.name == name:
                return candidate
        raise KeyError("no thread named %r in cell %s" % (name, self.name))

    def violations(self) -> List[object]:
        """SCHEDSAN violations collected so far (collect mode)."""
        return list(getattr(self.machine.scheduler, "violations", ()))


def _sanitized(inner) -> SchedsanScheduler:
    """Wrap a top scheduler for collect-mode auditing.

    ``Machine`` applies ``maybe_wrap`` at construction, which is
    idempotent — so even under ``REPRO_SCHEDSAN=1`` the cell keeps this
    collect-mode wrapper and a violation never aborts a campaign cell.
    """
    return SchedsanScheduler(inner, mode="collect")


def _probe_fraction_flat(machine: Machine, probe: SimThread) -> float:
    total = sum(t.weight for t in machine.threads)
    return probe.weight / total


def _probe_fraction_tree(probe: SimThread) -> float:
    """Reserved share of a thread: weight products up the tree."""
    leaf = probe.leaf
    fraction = probe.weight / sum(t.weight for t in leaf.threads)
    node = leaf
    while node.parent is not None:
        siblings = node.parent.children.values()
        fraction *= node.weight / sum(child.weight for child in siblings)
        node = node.parent
    return fraction


# --- cells -------------------------------------------------------------------


def flat_mix(stream: Stream, quick: bool) -> CellContext:
    """Flat SFQ: three weighted hogs, one interactive daemon, one probe.

    Derived from perfkit's ``figure5_replay``.
    """
    horizon = (2 if quick else 6) * SECOND
    quantum = 20 * MS
    engine = Simulator()
    machine = Machine(engine, _sanitized(FlatScheduler(SfqScheduler())),
                      capacity_ips=CAPACITY, default_quantum=quantum,
                      tracer=Recorder())
    for name, weight in (("hog-a", 1), ("hog-b", 2), ("hog-c", 3)):
        machine.spawn(SimThread(name, DhrystoneWorkload(300, 10_000),
                                weight=weight))
    machine.spawn(SimThread(
        "daemon-0", InteractiveWorkload(burst_work=400_000,
                                        think_time=120 * MS,
                                        rng=stream.rng("daemon/0"))))
    probe = machine.spawn(SimThread(
        "probe", PeriodicProbe(period=50 * MS, work=500_000, start=10 * MS),
        weight=2))
    return CellContext(
        "flat_mix", engine, machine, None, machine.tracer, horizon, quantum,
        fair_pairs=[("hog-a", "hog-b"), ("hog-a", "hog-c")],
        probe_name="probe", probe_fraction=_probe_fraction_flat(machine, probe))


def hierarchy_mix(stream: Stream, quick: bool) -> CellContext:
    """The paper's Figure-6 hierarchy under mixed load.

    Derived from perfkit's ``figure8_replay``.
    """
    horizon = (2 if quick else 6) * SECOND
    quantum = 20 * MS
    structure, sfq1, sfq2, svr4 = figure6_structure(
        sfq1_weight=2, sfq2_weight=6, svr4_weight=1)
    engine = Simulator()
    machine = Machine(engine, _sanitized(HierarchicalScheduler(structure)),
                      capacity_ips=CAPACITY, default_quantum=quantum,
                      tracer=Recorder())
    for name, weight, leaf in (("hog-a", 1, sfq1), ("hog-b", 2, sfq1),
                               ("hog-c", 1, sfq2), ("hog-d", 3, sfq2)):
        thread = SimThread(name, DhrystoneWorkload(300, 10_000), weight=weight)
        leaf.attach_thread(thread)
        machine.spawn(thread)
    for index in range(2):
        thread = SimThread(
            "bg-%d" % index,
            BurstyWorkload(mean_busy_work=10_000_000,
                           mean_idle_time=300 * MS,
                           rng=stream.rng("bg/%d" % index)))
        svr4.attach_thread(thread)
        machine.spawn(thread)
    probe = SimThread("probe",
                      PeriodicProbe(period=50 * MS, work=400_000,
                                    start=10 * MS),
                      weight=2)
    sfq2.attach_thread(probe)
    machine.spawn(probe)
    root_total = sum(child.weight
                     for child in structure.root.children.values())
    return CellContext(
        "hierarchy_mix", engine, machine, structure, machine.tracer, horizon,
        quantum,
        fair_pairs=[("hog-a", "hog-b"), ("hog-c", "hog-d")],
        probe_name="probe", probe_fraction=_probe_fraction_tree(probe),
        root_weight_total=root_total)


def deep_tree(stream: Stream, quick: bool) -> CellContext:
    """A deep chain hierarchy: dispatch walks several SFQ levels.

    Derived from perfkit's ``deep_hierarchy`` (shallower, sized for
    campaigns rather than throughput measurement).
    """
    horizon = (2 if quick else 6) * SECOND
    quantum = 10 * MS
    structure = SchedulingStructure()
    leaves = []
    for top in range(2):
        node = structure.mknod("g%d" % top, 1 + top)
        for level in range(2):
            node = structure.mknod("c%d" % level, 1, parent=node)
        leaves.append(structure.mknod("leaf", 1, parent=node,
                                      scheduler=SfqScheduler()))
    engine = Simulator()
    machine = Machine(engine, _sanitized(HierarchicalScheduler(structure)),
                      capacity_ips=CAPACITY, default_quantum=quantum,
                      tracer=Recorder())
    for name, weight, leaf in (("hog-a", 1, leaves[0]), ("hog-b", 2, leaves[0]),
                               ("hog-c", 1, leaves[1])):
        thread = SimThread(name, DhrystoneWorkload(300, 10_000), weight=weight)
        leaf.attach_thread(thread)
        machine.spawn(thread)
    for index in range(2):
        thread = SimThread(
            "churny-%d" % index,
            InteractiveWorkload(burst_work=200_000, think_time=20 * MS,
                                rng=stream.rng("churny/%d" % index)))
        leaves[index % 2].attach_thread(thread)
        machine.spawn(thread)
    probe = SimThread("probe",
                      PeriodicProbe(period=60 * MS, work=300_000,
                                    start=10 * MS),
                      weight=2)
    leaves[1].attach_thread(probe)
    machine.spawn(probe)
    root_total = sum(child.weight
                     for child in structure.root.children.values())
    return CellContext(
        "deep_tree", engine, machine, structure, machine.tracer, horizon,
        quantum,
        fair_pairs=[("hog-a", "hog-b")],
        probe_name="probe", probe_fraction=_probe_fraction_tree(probe),
        root_weight_total=root_total)


def _submit_logged(manager: QosManager, log: List[Dict[str, object]],
                   request: QosRequest, workload: Workload,
                   weight: int = 1) -> Optional[SimThread]:
    """Submit a request, recording the decision and its inputs."""
    entry: Dict[str, object] = {"name": request.name,
                                "class": request.service_class}
    if request.service_class == HARD_RT:
        tasks = [(r.period, r.wcet) for r in manager._hard_tasks]
        tasks.append((request.period, request.wcet))
        entry["tasks"] = tasks
        entry["share"] = manager._class_fraction(manager.hard_leaf)
    elif request.service_class == SOFT_RT:
        entry["means"] = ([r.mean_demand for r in manager._soft_tasks]
                          + [request.mean_demand])
        entry["stds"] = ([r.std_demand for r in manager._soft_tasks]
                         + [request.std_demand])
        entry["share_ips"] = (manager._class_fraction(manager.soft_leaf)
                              * manager.machine.capacity_ips)
        entry["sigmas"] = manager.overbooking_sigmas
    try:
        thread = manager.submit(request, workload, weight=weight)
        entry["admitted"] = True
    except AdmissionError as exc:
        thread = None
        entry["admitted"] = False
        entry["reason"] = str(exc)
    log.append(entry)
    return thread


def qos_mix(stream: Stream, quick: bool) -> CellContext:
    """The paper's §4 QoS classes with admission control in the loop.

    Derived from perfkit's ``admission_storm`` (a handful of lifecycle
    arrivals rather than thousands, with every decision recorded).
    """
    horizon = (2 if quick else 6) * SECOND
    quantum = 20 * MS
    structure = SchedulingStructure()
    engine = Simulator()
    machine = Machine(engine, _sanitized(HierarchicalScheduler(structure)),
                      capacity_ips=CAPACITY, default_quantum=quantum,
                      tracer=Recorder())
    manager = QosManager(machine, structure, class_weights=(1, 3, 6))
    log: List[Dict[str, object]] = []
    # Two feasible hard real-time tasks (3 ms of CPU every 100 ms each:
    # well inside the class's 10% share under the RMA bound) ...
    for index in range(2):
        _submit_logged(
            manager, log,
            QosRequest("hard-%d" % index, HARD_RT, period=100 * MS,
                       wcet=3 * MS),
            PeriodicProbe(period=100 * MS, work=300_000, start=5 * MS))
    # ... one infeasible one (90% of the CPU: must be denied) ...
    _submit_logged(
        manager, log,
        QosRequest("hard-greedy", HARD_RT, period=100 * MS, wcet=90 * MS),
        PeriodicProbe(period=100 * MS, work=9_000_000))
    # ... two feasible soft real-time decoders and one over-demanding one.
    for index in range(2):
        _submit_logged(
            manager, log,
            QosRequest("soft-%d" % index, SOFT_RT, mean_demand=5e6,
                       std_demand=1e6),
            BurstyWorkload(mean_busy_work=500_000, mean_idle_time=80 * MS,
                           rng=stream.rng("soft/%d" % index)))
    _submit_logged(
        manager, log,
        QosRequest("soft-greedy", SOFT_RT, mean_demand=8e7, std_demand=1e6),
        BurstyWorkload(mean_busy_work=8_000_000, mean_idle_time=10 * MS,
                       rng=stream.rng("soft/greedy")))
    # Best effort is never denied; two weighted hogs share one user leaf.
    _submit_logged(manager, log,
                   QosRequest("hog-a", BEST_EFFORT, user="alice"),
                   DhrystoneWorkload(300, 10_000), weight=1)
    _submit_logged(manager, log,
                   QosRequest("hog-b", BEST_EFFORT, user="alice"),
                   DhrystoneWorkload(300, 10_000), weight=2)
    root_total = sum(child.weight
                     for child in structure.root.children.values())
    return CellContext(
        "qos_mix", engine, machine, structure, machine.tracer, horizon,
        quantum,
        fair_pairs=[("hog-a", "hog-b")],
        root_weight_total=root_total, qos=manager, admission_log=log)


#: cell name -> builder(stream, quick)
WORKLOADS: Dict[str, Callable[[Stream, bool], CellContext]] = {
    "flat_mix": flat_mix,
    "hierarchy_mix": hierarchy_mix,
    "deep_tree": deep_tree,
    "qos_mix": qos_mix,
}

#: cell -> the perfkit macro-scenario it is derived from
PERFKIT_MIRRORS: Dict[str, str] = {
    "flat_mix": "figure5_replay",
    "hierarchy_mix": "figure8_replay",
    "deep_tree": "deep_hierarchy",
    "qos_mix": "admission_storm",
}

#: cells that have a scheduling structure (node churn applies)
STRUCTURED_CELLS = ("hierarchy_mix", "deep_tree", "qos_mix")


def validate_mirrors() -> None:
    """Check every cell's perfkit ancestor exists in the public registry."""
    from repro.perfkit import scenarios
    known = scenarios()
    for cell, ancestor in PERFKIT_MIRRORS.items():
        if ancestor not in known:
            raise ValueError(
                "cell %r claims to mirror unknown perfkit scenario %r"
                % (cell, ancestor))
