"""The campaign runner: fault × workload grids with per-cell seeds.

A *cell* is one (workload, fault schedule, seed) triple.  ``run_cell``
builds the cell's simulation, arms its faults, drives it to the horizon,
and evaluates every oracle; ``run_campaign`` sweeps a grid of cells
across a multiprocessing pool.  Everything is deterministic:

* each cell's seed is derived from the campaign seed and the cell id via
  :func:`repro.sim.rng.derive_seed`, so cells never share RNG state and
  adding a cell never perturbs another;
* cell digests are keyed by thread *names*, never tids (tids come from a
  process-global counter whose offset depends on what ran earlier);
* reports carry no timestamps or host state — the same campaign seed
  produces a byte-identical report on every run, which CI and the
  acceptance tests assert.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from typing import Dict, List, Optional, Sequence

from repro.devtools import schedsan
from repro.faultlab.faults import (
    CLUSTER_FAULT_KINDS,
    FAULTS,
    FaultContext,
    build_fault,
    ensure_registered,
)
from repro.faultlab.oracles import evaluate_cell
from repro.faultlab.workloads import STRUCTURED_CELLS, WORKLOADS
from repro.sim.rng import Stream, derive_seed
from repro.threads.states import ThreadState

#: schema version of campaign reports and cell specs
CAMPAIGN_FORMAT = 1

#: the composite schedule every workload also runs
COMPOSITE_KINDS = ("interrupt-storm", "cost-spike", "thread-crash")


class CellSpec:
    """A JSON-able description of one campaign cell."""

    def __init__(self, workload: str, faults: List[Dict[str, object]],
                 seed: int, quick: bool, cell_id: str) -> None:
        self.workload = workload
        self.faults = faults
        self.seed = seed
        self.quick = quick
        self.cell_id = cell_id

    def to_dict(self) -> Dict[str, object]:
        """The wire/report form of this spec."""
        return {"format": CAMPAIGN_FORMAT, "id": self.cell_id,
                "workload": self.workload, "faults": self.faults,
                "seed": self.seed, "quick": self.quick}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CellSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(workload=str(data["workload"]),
                   faults=list(data.get("faults", ())),  # type: ignore[arg-type]
                   seed=int(data["seed"]),  # type: ignore[arg-type]
                   quick=bool(data.get("quick", True)),
                   cell_id=str(data["id"]))


def default_fault_kinds() -> List[str]:
    """Grid fault kinds: everything registered except self-test and
    cluster-only faults (``host-churn`` needs a cluster context)."""
    return sorted(kind for kind in FAULTS
                  if not kind.startswith("selftest-")
                  and kind not in CLUSTER_FAULT_KINDS)


def default_grid(seed: int, quick: bool = True,
                 workloads: Optional[Sequence[str]] = None,
                 fault_kinds: Optional[Sequence[str]] = None
                 ) -> List[CellSpec]:
    """The standard sweep: baseline + each fault + a composite, per cell."""
    selected = sorted(workloads) if workloads else sorted(WORKLOADS)
    kinds = list(fault_kinds) if fault_kinds else default_fault_kinds()
    specs = []

    def add(workload: str, label: str,
            faults: List[Dict[str, object]]) -> None:
        cell_id = "%s+%s" % (workload, label)
        specs.append(CellSpec(workload, faults, derive_seed(seed, cell_id),
                              quick, cell_id))

    for workload in selected:
        if workload not in WORKLOADS:
            raise ValueError("unknown workload %r (have: %s)"
                             % (workload, ", ".join(sorted(WORKLOADS))))
        add(workload, "none", [])
        for kind in kinds:
            ensure_registered(kind)
            if kind not in FAULTS:
                raise ValueError("unknown fault kind %r (have: %s)"
                                 % (kind, ", ".join(sorted(FAULTS))))
            if kind == "node-churn" and workload not in STRUCTURED_CELLS:
                continue
            add(workload, kind, [{"kind": kind, "params": {}}])
        composite = [{"kind": kind, "params": {}} for kind in COMPOSITE_KINDS]
        add(workload, "composite", composite)
    return specs


def _cell_digest(ctx, fault_log: List[Dict[str, object]],
                 violations: List[object]) -> str:
    """A name-keyed sha256 over everything the simulation produced.

    Deliberately excludes tids and wall-clock state; two runs of the same
    spec must digest identically regardless of what ran before them in
    the process.
    """
    threads = []
    for thread in sorted(ctx.machine.threads, key=lambda t: t.name):
        trace = ctx.recorder.trace_of(thread)
        threads.append({
            "name": thread.name,
            "state": thread.state.name,
            "work": thread.stats.work_done,
            "slices": len(trace.slices),
            "dispatches": thread.stats.dispatches,
            "exited_at": thread.stats.exited_at,
        })
    stats = ctx.machine.stats
    payload = {
        "threads": threads,
        "faults": fault_log,
        "violations": [getattr(v, "rule", str(v)) for v in violations],
        "machine": {
            "dispatches": stats.dispatches,
            "context_switches": stats.context_switches,
            "interrupts": stats.interrupts,
            "preemptions": stats.preemptions,
            "busy_time": stats.busy_time,
            "interrupt_time": stats.interrupt_time,
            "overhead_time": stats.overhead_time,
        },
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_cell(spec_dict: Dict[str, object]) -> Dict[str, object]:
    """Build, fault, run, and judge one cell; returns a JSON-able result.

    Top-level by design: multiprocessing workers import and call it.
    """
    spec = CellSpec.from_dict(spec_dict)
    root = Stream(spec.seed, spec.cell_id)
    builder = WORKLOADS[spec.workload]
    ctx = builder(root.substream("workload"), spec.quick)

    base = FaultContext(ctx.machine, ctx.engine, ctx.structure,
                        root.substream("faults"), ctx.horizon)
    faults = []
    for index, fault_spec in enumerate(spec.faults):
        ensure_registered(str(fault_spec["kind"]))  # type: ignore[index]
        fault = build_fault(fault_spec)  # type: ignore[arg-type]
        fault.arm(base.for_fault(index, fault.kind))
        faults.append(fault)

    ctx.machine.run_until(ctx.horizon)

    failures = evaluate_cell(ctx, faults)
    violations = ctx.violations()
    alive = sum(1 for t in ctx.machine.threads
                if t.state is not ThreadState.EXITED)
    return {
        "id": spec.cell_id,
        "spec": spec.to_dict(),
        "ok": not failures,
        "failures": failures,
        "counters": {
            "events": ctx.engine.events_fired,
            "dispatches": ctx.machine.stats.dispatches,
            "interrupts": ctx.machine.stats.interrupts,
            "injections": len(base.log),
            "violations": len(violations),
            "threads_alive": alive,
        },
        "digest": _cell_digest(ctx, base.log, violations),
    }


def replay_spec(spec_dict: Dict[str, object]) -> Dict[str, object]:
    """Re-run one cell from its spec (what reproducer scripts call)."""
    return run_cell(spec_dict)


def _crash_result(spec_dict: Dict[str, object],
                  exc: BaseException) -> Dict[str, object]:
    """A structured report cell for a worker that crashed.

    A crash must surface as an ordinary oracle failure — never as a
    missing or half-written cell that turns the report render into a
    KeyError.  The digest is derived from the spec and the exception
    type only, so a crash reproduces byte-identically.
    """
    cell_id = str(spec_dict.get("id", "?"))
    token = "worker-crash:%s:%s" % (cell_id, type(exc).__name__)
    return {
        "id": cell_id,
        "spec": spec_dict,
        "ok": False,
        "failures": [{
            "oracle": "worker-crash",
            "message": "cell crashed before producing a result: %s: %s"
                       % (type(exc).__name__, exc),
        }],
        "counters": {
            "events": 0,
            "dispatches": 0,
            "interrupts": 0,
            "injections": 0,
            "violations": 0,
            "threads_alive": 0,
        },
        "digest": hashlib.sha256(token.encode("utf-8")).hexdigest(),
    }


def run_cell_guarded(spec_dict: Dict[str, object]) -> Dict[str, object]:
    """:func:`run_cell` with crash containment and the isolation twin.

    This is what the campaign pool actually maps over.  Any exception
    escaping the cell becomes a structured ``worker-crash`` failure
    (:func:`_crash_result`); under ``REPRO_SCHEDSAN=1`` the cell is
    additionally bracketed by a :class:`~repro.devtools.schedsan
    .IsolationGuard`.  Lazily registered fault kinds are resolved
    *before* the snapshot — growing the registry is an import-time
    effect, not a leak.
    """
    guard = None
    if schedsan.enabled():
        for fault_spec in spec_dict.get("faults", ()):  # type: ignore[attr-defined]
            ensure_registered(str(fault_spec["kind"]))
        guard = schedsan.IsolationGuard(
            "cell %s" % spec_dict.get("id", "?"))
    try:
        result = run_cell(spec_dict)
    except Exception as exc:
        return _crash_result(spec_dict, exc)
    if guard is not None:
        guard.verify()
    return result


def run_campaign(specs: Sequence[CellSpec], workers: int = 0,
                 seed: int = 0, quick: bool = True) -> Dict[str, object]:
    """Run every cell (optionally across a worker pool); build the report.

    ``workers <= 1`` runs serially in-process (tests, debugging); the
    report is identical either way — results are keyed and sorted by
    cell id, and digests are process-independent.  Under
    ``REPRO_SCHEDSAN=1`` every cell and the merge itself run inside
    isolation guards; the report bytes do not change.
    """
    spec_dicts = [spec.to_dict() for spec in specs]
    guard = None
    if schedsan.enabled():
        for spec in specs:
            for fault_spec in spec.faults:
                ensure_registered(str(fault_spec["kind"]))
        guard = schedsan.IsolationGuard("campaign merge")
    if workers and workers > 1:
        with multiprocessing.Pool(workers) as pool:
            results = pool.map(run_cell_guarded, spec_dicts)
    else:
        results = [run_cell_guarded(spec) for spec in spec_dicts]
    results.sort(key=lambda r: r["id"])  # type: ignore[arg-type,return-value]
    if guard is not None:
        guard.verify()
    failures = sum(1 for r in results if not r["ok"])
    return {
        "format": CAMPAIGN_FORMAT,
        "seed": seed,
        "quick": quick,
        "cells": results,
        "cell_count": len(results),
        "failure_count": failures,
    }


def render_report(report: Dict[str, object]) -> str:
    """Canonical byte-stable JSON rendering of a campaign report."""
    return json.dumps(report, sort_keys=True, indent=1) + "\n"
