"""The shrinker: minimize a failing fault schedule to a small reproducer.

Given a failing cell spec, :func:`shrink_spec` searches for a smaller
spec that still fails its oracles:

1. **fault reduction** — greedily try dropping each fault from the
   schedule (re-running the cell each time);
2. **parameter shrinking** — for every surviving fault, repeatedly halve
   each integer parameter the fault class declares ``SHRINKABLE`` toward
   its lower bound, keeping the halved value whenever the failure still
   reproduces.

The search is bounded by ``max_attempts`` cell runs and fully
deterministic (each attempt replays from derived seeds), so the minimal
spec — and the reproducer script :func:`write_reproducer` emits for it —
is byte-identical across runs.  Reproducer scripts are standalone: they
embed the spec JSON and exit 0 when the failure still reproduces, 2 when
it no longer does.
"""

from __future__ import annotations

import copy
import json
import os
from typing import Dict, List, Tuple

from repro.faultlab.campaign import run_cell
from repro.faultlab.faults import FAULTS, ensure_registered

#: default budget of cell re-runs during a shrink
DEFAULT_MAX_ATTEMPTS = 64

_REPRODUCER_TEMPLATE = '''\
#!/usr/bin/env python
"""faultlab reproducer: cell %(cell_id)s (campaign-derived seed %(seed)d).

Replays one fault-injection cell that failed its oracles, minimized by
the faultlab shrinker.  Deterministic: the spec below fully describes
the simulation.  Exit status 0 means the failure reproduced; 2 means it
did not (the bug this script witnessed is gone).

Run with the repository's src/ on PYTHONPATH:

    PYTHONPATH=src python %(filename)s
"""

import json
import sys

SPEC = json.loads("""
%(spec_json)s
""")


def main():
    from repro.faultlab.campaign import replay_spec

    result = replay_spec(SPEC)
    for failure in result["failures"]:
        sys.stderr.write("%%(oracle)s: %%(message)s\\n" %% failure)
    if result["ok"]:
        sys.stderr.write("cell passed: failure no longer reproduces\\n")
        return 2
    sys.stderr.write("failure reproduced (digest %%s)\\n" %% result["digest"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
'''


def _fails(spec_dict: Dict[str, object]) -> bool:
    return not run_cell(spec_dict)["ok"]


def _shrink_faults(spec: Dict[str, object], budget: List[int]) -> None:
    """Greedily drop faults while the failure still reproduces."""
    faults = list(spec["faults"])  # type: ignore[arg-type]
    index = 0
    while index < len(faults) and budget[0] > 0:
        candidate = dict(spec)
        candidate["faults"] = faults[:index] + faults[index + 1:]
        budget[0] -= 1
        if _fails(candidate):
            faults = candidate["faults"]  # type: ignore[assignment]
        else:
            index += 1
    spec["faults"] = faults


def _shrink_params(spec: Dict[str, object], budget: List[int]) -> None:
    """Halve shrinkable integer params toward their declared floors."""
    fault_specs = spec["faults"]  # type: ignore[assignment]
    for index, fault_spec in enumerate(fault_specs):  # type: ignore[arg-type]
        kind = str(fault_spec["kind"])
        ensure_registered(kind)
        cls = FAULTS.get(kind)
        if cls is None:
            continue
        params = dict(cls.DEFAULTS)
        params.update(fault_spec.get("params", {}))
        for name, floor in sorted(cls.SHRINKABLE.items()):
            while budget[0] > 0:
                value = int(params[name])  # type: ignore[arg-type]
                if value <= floor:
                    break
                halved = max(floor, value // 2)
                candidate = copy.deepcopy(spec)
                cand_fault = candidate["faults"][index]  # type: ignore[index]
                cand_fault.setdefault("params", {})[name] = halved
                budget[0] -= 1
                if _fails(candidate):
                    params[name] = halved
                    fault_spec.setdefault("params", {})[name] = halved
                else:
                    break


def shrink_spec(spec_dict: Dict[str, object],
                max_attempts: int = DEFAULT_MAX_ATTEMPTS
                ) -> Tuple[Dict[str, object], int]:
    """Minimize a failing spec; returns (minimal spec, attempts used).

    The input spec must fail (one verification run is spent checking);
    raises ``ValueError`` if it passes.
    """
    spec = copy.deepcopy(spec_dict)
    if not _fails(spec):
        raise ValueError("spec %r does not fail; nothing to shrink"
                         % (spec.get("id"),))
    budget = [max_attempts]
    _shrink_faults(spec, budget)
    _shrink_params(spec, budget)
    return spec, max_attempts - budget[0]


def reproducer_name(spec_dict: Dict[str, object]) -> str:
    """Deterministic reproducer filename for a spec."""
    slug = str(spec_dict["id"]).replace("/", "_").replace("+", "_")
    return "repro_%s.py" % slug


def record_cell_binlog(spec_dict: Dict[str, object], out_dir: str) -> str:
    """Re-run a failing cell with a binary trace attached; returns its path.

    The binlog lands next to the reproducer script/spec (same stem,
    ``.binlog``) so a failure ships with its full event history — open it
    with ``python -m repro.obs convert``.  Cells are deterministic, so
    the re-run reproduces the failing execution exactly.  If the cell
    crashes mid-run the partially captured (still sealed, still valid)
    trace is kept: the events leading up to the crash are the evidence.
    """
    from repro.obs.binlog import BinaryTraceWriter
    from repro.obs.events import BUS

    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir,
                        reproducer_name(spec_dict)[:-3] + ".binlog")
    with BinaryTraceWriter(path) as writer:
        with BUS.subscription(writer):
            try:
                run_cell(spec_dict)
            except Exception:  # noqa: BLE001 - crash traces are the point
                pass
    return path


def write_reproducer(spec_dict: Dict[str, object], out_dir: str) -> str:
    """Write the standalone reproducer script; returns its path.

    Also writes the bare spec next to it as ``.json`` so tooling (and
    ``python -m repro.faultlab replay``) can consume it directly.
    """
    os.makedirs(out_dir, exist_ok=True)
    filename = reproducer_name(spec_dict)
    spec_json = json.dumps(spec_dict, sort_keys=True, indent=1)
    script = _REPRODUCER_TEMPLATE % {
        "cell_id": spec_dict["id"],
        "seed": spec_dict["seed"],
        "filename": filename,
        "spec_json": spec_json,
    }
    path = os.path.join(out_dir, filename)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(script)
    json_path = path[:-3] + ".json"
    with open(json_path, "w", encoding="utf-8") as handle:
        handle.write(spec_json + "\n")
    return path
