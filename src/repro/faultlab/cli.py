"""Command-line interface: ``python -m repro.faultlab``.

Subcommands:

``run``
    Sweep a fault × workload campaign grid.  Exit status 0 when every
    cell passes its oracles, 1 when any cell fails (after shrinking,
    writing reproducers, and recording a binary trace of each failing
    cell next to its spec), 2 on usage errors.
``list``
    Print the available fault kinds, workload cells, and the perfkit
    macro-scenarios each cell mirrors.
``replay``
    Re-run a single cell from a ``.json`` spec written next to a
    reproducer; exit 0 when the failure reproduces, 2 when it vanished.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.faultlab import campaign as _campaign
from repro.faultlab.faults import FAULTS, ensure_registered
from repro.faultlab.shrink import (record_cell_binlog, shrink_spec,
                                   write_reproducer)
from repro.faultlab.workloads import PERFKIT_MIRRORS, WORKLOADS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faultlab",
        description="Deterministic fault-injection campaigns for the "
                    "hierarchical SFQ scheduler.")
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="run a campaign grid")
    run.add_argument("--seed", type=int, default=0,
                     help="campaign seed (default 0)")
    run.add_argument("--quick", action="store_true",
                     help="short horizons (CI smoke mode)")
    run.add_argument("--workers", type=int, default=0,
                     help="worker processes (0/1 = serial)")
    run.add_argument("--workload", action="append", dest="workloads",
                     metavar="NAME", help="restrict to this workload "
                     "cell (repeatable)")
    run.add_argument("--fault", action="append", dest="faults",
                     metavar="KIND", help="restrict to this fault kind "
                     "(repeatable)")
    run.add_argument("--out", metavar="PATH",
                     help="write the JSON campaign report here")
    run.add_argument("--repro-dir", metavar="DIR", default="faultlab-repros",
                     help="directory for failure reproducers "
                     "(default: faultlab-repros)")
    run.add_argument("--max-shrink", type=int, default=64,
                     help="cell re-runs budgeted per shrink (default 64)")
    run.add_argument("--no-shrink", action="store_true",
                     help="write reproducers for the unshrunk specs")

    sub.add_parser("list", help="list fault kinds and workload cells")

    replay = sub.add_parser("replay", help="re-run one cell from a spec")
    replay.add_argument("spec", metavar="SPEC_JSON",
                        help="path to a cell spec .json")
    return parser


def _cmd_list() -> int:
    for kind in _campaign.default_fault_kinds():
        ensure_registered(kind)
    print("fault kinds:")
    for kind in sorted(k for k in FAULTS if not k.startswith("selftest-")):
        cls = FAULTS[kind]
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print("  %-18s %s" % (kind, doc))
    print("workload cells (perfkit mirror):")
    for name in sorted(WORKLOADS):
        print("  %-18s %s" % (name, PERFKIT_MIRRORS.get(name, "-")))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        specs = _campaign.default_grid(args.seed, quick=args.quick,
                                       workloads=args.workloads,
                                       fault_kinds=args.faults)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    report = _campaign.run_campaign(specs, workers=args.workers,
                                    seed=args.seed, quick=args.quick)
    rendered = _campaign.render_report(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    for cell in report["cells"]:  # type: ignore[union-attr]
        status = "ok" if cell["ok"] else "FAIL"
        print("%-28s %s" % (cell["id"], status))
        for failure in cell["failures"]:
            print("    %s: %s" % (failure["oracle"], failure["message"]))
    print("%d/%d cells passed" % (
        report["cell_count"] - report["failure_count"],  # type: ignore[operator]
        report["cell_count"]))
    if not report["failure_count"]:
        return 0
    for cell in report["cells"]:  # type: ignore[union-attr]
        if cell["ok"]:
            continue
        spec = cell["spec"]
        crashed = all(f["oracle"] == "worker-crash"
                      for f in cell["failures"])
        if crashed:
            # The cell died before producing a result; re-running subsets
            # of its faults cannot bisect an exception path, so keep the
            # full spec for the reproducer.
            print("cell %s crashed; skipping shrink" % cell["id"])
        elif not args.no_shrink and spec["faults"]:
            try:
                spec, attempts = shrink_spec(spec, args.max_shrink)
                print("shrunk %s in %d attempts" % (cell["id"], attempts))
            except ValueError:
                pass  # flaky-looking cell: keep the original spec
        path = write_reproducer(spec, args.repro_dir)
        print("reproducer: %s" % path)
        binlog = record_cell_binlog(spec, args.repro_dir)
        print("binlog:     %s" % binlog)
    return 1


def _cmd_replay(args: argparse.Namespace) -> int:
    with open(args.spec, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    result = _campaign.replay_spec(spec)
    for failure in result["failures"]:
        print("%s: %s" % (failure["oracle"], failure["message"]),
              file=sys.stderr)
    if result["ok"]:
        print("cell passed: failure no longer reproduces", file=sys.stderr)
        return 2
    print("failure reproduced (digest %s)" % result["digest"],
          file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse ``argv`` and dispatch to a subcommand; returns the exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "replay":
        return _cmd_replay(args)
    parser.print_help()
    return 2
