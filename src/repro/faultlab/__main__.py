"""Entry point for ``python -m repro.faultlab``."""

import sys

from repro.faultlab.cli import main

if __name__ == "__main__":
    sys.exit(main())
