"""Per-cell oracles: what "the scheduler survived the fault" means.

Each oracle inspects a finished :class:`~repro.faultlab.workloads.CellContext`
(plus the armed faults) and returns a list of failure dicts.  The
analytical oracles apply the paper's own bounds with *fault-adjusted
slack*:

* **schedsan** — the collect-mode SCHEDSAN wrapper must have recorded no
  invariant violations (virtual-time monotonicity, tag rules,
  one-charge-per-dispatch, ...);
* **fairness** — for every same-leaf pair of CPU-bound threads, the
  measured ``max |W_f/w_f - W_m/w_m|`` must respect the SFQ fairness
  theorem's bound ``l̂_f/w_f + l̂_m/w_m``.  The theorem is
  server-independent, so no fault slack is added — this is the paper's
  central "fair even under fluctuation" claim, checked literally.
  Threads a fault deliberately destroyed (crashed/hung/churned) are
  excluded;
* **delay** — the probe's actual completion times must respect eq. (8)
  with the FC burstiness parameter set to the instructions the faults
  actually stole (interrupt + overhead time) and the reserved rate
  diluted by any churn-added root weight;
* **admission** — every recorded QoS admission decision must re-derive
  from its recorded inputs (the RMA / statistical tests are re-run);
* **liveness** — no thread goes unserved for longer than a scheduling
  round plus the faults' declared denial slack while it is runnable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.bounds import sfq_completion_bounds
from repro.analysis.fairness import max_normalized_service_gap, sfq_fairness_bound
from repro.faultlab.faults import FaultInjector
from repro.faultlab.workloads import CellContext, PeriodicProbe
from repro.qos.admission import rma_admissible, statistical_admissible
from repro.units import SECOND, work_from_time

#: multiplicative tolerance on analytical bounds (float tag math rounding)
TOLERANCE = 1e-6

Failure = Dict[str, str]


def _fail(oracle: str, message: str) -> Failure:
    return {"oracle": oracle, "message": message}


def _max_quantum_ns(ctx: CellContext, thread) -> int:
    """The largest quantum ``thread``'s leaf scheduler can ever grant it.

    SVR4-style leaves publish a dispatch table whose low-priority rows
    grant quanta an order of magnitude above the machine default (200 ms
    vs 20 ms) — eq. (8)'s ``l̂_m`` must use those, not the default.
    """
    leaf = thread.leaf
    scheduler = getattr(leaf, "scheduler", None) if leaf is not None else None
    if scheduler is None:
        return ctx.default_quantum
    table = getattr(scheduler, "table", None)
    if table:
        return max(max(row.quantum for row in table), ctx.default_quantum)
    quantum = scheduler.quantum_for(thread)
    return quantum if quantum is not None else ctx.default_quantum


def _lhat(ctx: CellContext, thread) -> int:
    """Max quantum of ``thread`` in instructions (eq. (8)'s l̂)."""
    return work_from_time(_max_quantum_ns(ctx, thread), ctx.capacity_ips)


def _is_under(leaf, node) -> bool:
    """True when ``leaf`` is ``node`` or a descendant of it."""
    while leaf is not None:
        if leaf is node:
            return True
        leaf = leaf.parent
    return False


def _lhat_under(ctx: CellContext, node) -> int:
    """Largest single quantum any thread under ``node`` can issue."""
    worst = 0
    for thread in ctx.machine.threads:
        if thread.leaf is not None and _is_under(thread.leaf, node):
            worst = max(worst, _lhat(ctx, thread))
    return worst if worst else work_from_time(ctx.default_quantum,
                                              ctx.capacity_ips)


def _victims(faults: Sequence[FaultInjector]) -> set:
    names = set()
    for fault in faults:
        names.update(fault.victim_names)
    return names


def _total_slack(faults: Sequence[FaultInjector]) -> int:
    return sum(fault.denial_slack() for fault in faults)


def oracle_schedsan(ctx: CellContext,
                    faults: Sequence[FaultInjector]) -> List[Failure]:
    """No SCHEDSAN invariant may have fired."""
    violations = ctx.violations()
    if not violations:
        return []
    sample = "; ".join(repr(v) for v in violations[:3])
    return [_fail("schedsan", "%d invariant violation(s): %s"
                  % (len(violations), sample))]


def oracle_fairness(ctx: CellContext,
                    faults: Sequence[FaultInjector]) -> List[Failure]:
    """The SFQ fairness theorem, checked exactly over the trace."""
    failures = []
    victims = _victims(faults)
    quantum = ctx.quantum_work
    for name_f, name_m in ctx.fair_pairs:
        if name_f in victims or name_m in victims:
            continue
        thread_f = ctx.thread(name_f)
        thread_m = ctx.thread(name_m)
        gap = max_normalized_service_gap(
            ctx.recorder, thread_f, thread_m, ctx.horizon)
        bound = sfq_fairness_bound(quantum, thread_f.weight,
                                   quantum, thread_m.weight)
        if gap > bound * (1.0 + TOLERANCE):
            failures.append(_fail(
                "fairness",
                "pair (%s, %s): normalized service gap %.1f exceeds "
                "bound %.1f" % (name_f, name_m, gap, bound)))
    return failures


def _stolen_work(ctx: CellContext) -> int:
    """Instructions the CPU was denied (interrupt service + dispatch cost)."""
    stolen_ns = ctx.machine.stats.interrupt_time + ctx.machine.stats.overhead_time
    return stolen_ns * ctx.capacity_ips // SECOND


def oracle_delay(ctx: CellContext,
                 faults: Sequence[FaultInjector]) -> List[Failure]:
    """Paper eq. (8): probe completions against fault-adjusted deadlines."""
    if ctx.probe_name is None:
        return []
    victims = _victims(faults)
    if ctx.probe_name in victims:
        return []
    probe = ctx.thread(ctx.probe_name)
    workload = probe.workload
    while not isinstance(workload, PeriodicProbe):
        # Timer faults wrap the probe's workload; unwrap to its releases.
        inner = getattr(workload, "inner", None)
        if inner is None:
            return []
        workload = inner
    completions = ctx.recorder.trace_of(probe).segment_completions
    count = min(len(workload.releases), len(completions))
    if count == 0:
        return [_fail("delay", "probe %r was never served" % ctx.probe_name)]
    arrivals = workload.releases[:count]
    lengths = [workload.work] * count
    # Reserved rate: the probe's full-contention share, diluted by any
    # weight a structural fault may add at the root.
    fraction = ctx.probe_fraction
    extra = sum(fault.extra_root_weight() for fault in faults)
    if extra and ctx.root_weight_total:
        fraction *= ctx.root_weight_total / (ctx.root_weight_total + extra)
    rate = fraction * ctx.capacity_ips
    others = [_lhat(ctx, t) for t in ctx.machine.threads if t is not probe]
    deadlines = sfq_completion_bounds(
        arrivals, lengths, rate, others, ctx.capacity_ips,
        burstiness=float(_stolen_work(ctx)))
    failures = []
    for index, (completion, deadline) in enumerate(zip(completions, deadlines)):
        if deadline >= ctx.horizon:
            continue  # the guarantee extends past the observed window
        if completion > deadline * (1.0 + TOLERANCE):
            failures.append(_fail(
                "delay",
                "probe quantum %d completed at %d ns, past its eq.(8) "
                "deadline %.0f ns" % (index, completion, deadline)))
    return failures


def oracle_admission(ctx: CellContext,
                     faults: Sequence[FaultInjector]) -> List[Failure]:
    """Every recorded QoS decision must re-derive from its recorded inputs."""
    failures = []
    for entry in ctx.admission_log:
        cls = entry["class"]
        admitted = entry["admitted"]
        if cls == "hard-rt":
            expected = rma_admissible(entry["tasks"], entry["share"])  # type: ignore[arg-type]
        elif cls == "soft-rt":
            expected = statistical_admissible(
                entry["means"], entry["stds"], entry["share_ips"],  # type: ignore[arg-type]
                entry["sigmas"])  # type: ignore[arg-type]
        else:
            expected = True  # best effort is never denied
        if bool(admitted) != bool(expected):
            failures.append(_fail(
                "admission",
                "request %r: recorded decision admitted=%s but the %s test "
                "re-derives %s" % (entry["name"], admitted, cls, expected)))
    return failures


def _max_service_gap(slices: List[Tuple[int, int, int]],
                     intervals: List[Tuple[int, int]]) -> int:
    """Longest unserved stretch inside any runnable interval."""
    worst = 0
    for lo, hi in intervals:
        previous = lo
        for t0, t1, __ in slices:
            if t1 <= lo:
                continue
            if t0 >= hi:
                break
            worst = max(worst, max(0, t0 - previous))
            previous = max(previous, t1)
        worst = max(worst, hi - previous)
    return worst


def _starvation_bound(ctx: CellContext, thread) -> int:
    """Worst-case unserved stretch (ns) for a runnable thread, fault-free.

    Two mechanisms delay a runnable thread:

    * **cross traffic** — every leafmate can be mid-quantum and every
      sibling node (at every ancestor level) can have a quantum in
      flight: one l̂ each;
    * **debt repayment** — after an entity issues a quantum of l̂
      instructions at weight w, SFQ serves its siblings l̂ · Σw_sib / w
      instructions before it runs again.  In a hierarchy this applies at
      the thread's own level *and* at every ancestor node: an SVR4
      sibling leaf issuing a 200 ms quantum at root weight 1 makes the
      root repay its other children for seconds of simulated time.

    The bound sums both at every level and doubles the result (leaf
    classes like SVR4 are not weight-fair internally; the factor covers
    one extra intra-leaf rotation).  This is a hang detector with an
    honest analytical shape, not a tight starvation bound.
    """
    total = 0  # instructions
    own = _lhat(ctx, thread)
    leaf = thread.leaf
    if leaf is None:
        mates = [t for t in ctx.machine.threads if t is not thread]
    else:
        mates = [t for t in leaf.threads if t is not thread]
    mate_weight = sum(t.weight for t in mates)
    total += own * mate_weight // max(1, thread.weight)
    total += sum(_lhat(ctx, t) for t in mates)
    node = leaf
    while node is not None and node.parent is not None:
        siblings = [child for child in node.parent.children.values()
                    if child is not node]
        sibling_weight = sum(child.weight for child in siblings)
        total += _lhat_under(ctx, node) * sibling_weight // max(1, node.weight)
        total += sum(_lhat_under(ctx, child) for child in siblings)
        node = node.parent
    return 2 * total * SECOND // ctx.capacity_ips


def _overrun_leaves(ctx: CellContext,
                    faults: Sequence[FaultInjector]) -> List[object]:
    """Leaves holding a thread whose demand a fault inflated.

    A demand-inflated thread is still scheduled normally (so fairness
    applies to it), but a *priority-scheduled* leafmate — e.g. a hard
    real-time sibling under RMA — can be starved without bound once the
    inflated thread overruns the budget admission control trusted.  The
    liveness oracle therefore skips threads sharing a leaf with one.
    """
    leaves = []
    names = set()
    for fault in faults:
        names.update(fault.overrun_names)
    for name in names:
        try:
            leaf = ctx.thread(name).leaf
        except KeyError:
            continue
        if leaf is not None:
            leaves.append(leaf)
    return leaves


def oracle_liveness(ctx: CellContext,
                    faults: Sequence[FaultInjector]) -> List[Failure]:
    """No runnable thread starves beyond its bound plus the faults' slack."""
    failures = []
    victims = _victims(faults)
    slack = _total_slack(faults)
    overrun_leaves = _overrun_leaves(ctx, faults)
    for thread in ctx.machine.threads:
        if thread.name in victims:
            continue
        if thread.leaf is not None and any(thread.leaf is leaf
                                           for leaf in overrun_leaves):
            continue
        threshold = _starvation_bound(ctx, thread) + slack
        trace = ctx.recorder.trace_of(thread)
        gap = _max_service_gap(trace.slices,
                               trace.runnable_intervals(ctx.horizon))
        if gap > threshold:
            failures.append(_fail(
                "liveness",
                "thread %r runnable but unserved for %d ns (threshold %d)"
                % (thread.name, gap, threshold)))
    return failures


ORACLES = (oracle_schedsan, oracle_fairness, oracle_delay, oracle_admission,
           oracle_liveness)


def evaluate_cell(ctx: CellContext,
                  faults: Sequence[FaultInjector]) -> List[Failure]:
    """Run every oracle; return the combined failure list (empty = pass)."""
    failures: List[Failure] = []
    for oracle in ORACLES:
        failures.extend(oracle(ctx, faults))
    return failures
