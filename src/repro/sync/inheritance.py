"""Priority inheritance for rate-monotonic leaves (paper §4).

For SFQ leaves the paper transfers *weights*
(:class:`~repro.sync.mutex.SimMutex` with ``donate_weight=True``); for
static-priority RMA leaves it points at "standard priority inheritance
techniques".  :class:`PriorityInheritanceMutex` implements them: whenever
the mutex is contended, its holder runs at the shortest *period* among
itself and all waiters (periods are RMA priorities — shorter is higher),
and the inheritance is removed at release.  Inheritance is transitive
across grant chains (the new holder immediately inherits from the waiters
still queued behind it).

The mutex needs the :class:`~repro.schedulers.rma.RmaScheduler` managing
the threads, because inheritance must re-key the ready heap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SchedulingError
from repro.schedulers.rma import RmaScheduler
from repro.sync.mutex import SimMutex

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class PriorityInheritanceMutex(SimMutex):
    """A mutex whose holder inherits the shortest waiter period."""

    def __init__(self, name: str, scheduler: RmaScheduler) -> None:
        super().__init__(name, donate_weight=False)
        self.scheduler = scheduler

    # --- inheritance bookkeeping --------------------------------------------

    def _waiter_period(self, thread: "SimThread") -> Optional[int]:
        try:
            return self.scheduler.effective_period_of(thread)
        except SchedulingError:
            return None  # waiter not managed by this RMA leaf

    def _propagate(self) -> None:
        if self.holder is None:
            return
        periods = [p for p in (self._waiter_period(w) for w in self.waiters)
                   if p is not None]
        try:
            self.scheduler.set_inherited_period(
                self.holder, min(periods) if periods else None)
        except SchedulingError:
            pass  # holder not managed by this RMA leaf

    # --- SimMutex overrides -----------------------------------------------------

    def enqueue_waiter(self, thread: "SimThread") -> None:
        super().enqueue_waiter(thread)
        self._propagate()

    def release(self, thread: "SimThread"):
        try:
            self.scheduler.set_inherited_period(thread, None)
        except SchedulingError:
            pass
        granted = super().release(thread)
        self._propagate()
        return granted

    def drop_waiter(self, thread: "SimThread") -> None:
        super().drop_waiter(thread)
        self._propagate()
