"""Simulated mutexes and the Acquire/Release workload segments.

A thread's workload acquires a mutex by yielding ``Acquire(mutex)`` and
releases it with ``Release(mutex)``.  Contended acquisition blocks the
thread (no timeout); release grants the mutex to the head waiter FIFO and
wakes it.

Priority-inversion avoidance (paper §4): when ``donate_weight`` is enabled
on the mutex, a blocking waiter *donates* its weight to the current holder
for as long as it waits — "the blocking thread will have a weight (and
hence, the CPU allocation) that is at least as large as the weight of the
blocked thread."  Donations stack (multiple waiters) and are withdrawn on
grant.  Donation only affects proportional-share leaf schedulers, which
read weights at tag-stamping time; it is exactly the mechanism the paper
proposes for SFQ leaves.

The paper notes inter-class synchronization is undesirable (it voids QoS
guarantees); this implementation permits it but donation still applies —
the *weight* moves with the thread's number, wherever the holder runs.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class Acquire:
    """Workload segment: acquire ``mutex`` (blocking if held)."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: "SimMutex") -> None:
        self.mutex = mutex

    def __repr__(self) -> str:
        return "Acquire(%s)" % self.mutex.name


class Release:
    """Workload segment: release ``mutex`` (must be the holder)."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: "SimMutex") -> None:
        self.mutex = mutex

    def __repr__(self) -> str:
        return "Release(%s)" % self.mutex.name


class SimMutex:
    """A FIFO mutex with optional weight donation."""

    def __init__(self, name: str = "mutex", donate_weight: bool = False) -> None:
        self.name = name
        self.donate_weight = donate_weight
        self.holder: Optional["SimThread"] = None
        self.waiters: Deque["SimThread"] = deque()
        #: live donations: waiter tid -> donated amount (to current holder)
        self._donations: Dict[int, int] = {}

    @property
    def locked(self) -> bool:
        """True while some thread holds the mutex."""
        return self.holder is not None

    def try_acquire(self, thread: "SimThread") -> bool:
        """Take the mutex if free; returns False when the caller must wait."""
        if self.holder is None:
            self.holder = thread
            return True
        if self.holder is thread:
            raise SchedulingError(
                "thread %r re-acquired mutex %r (not reentrant)"
                % (thread, self.name))
        return False

    def enqueue_waiter(self, thread: "SimThread") -> None:
        """Register a blocked waiter; applies weight donation if enabled."""
        self.waiters.append(thread)
        if self.donate_weight and self.holder is not None:
            amount = thread.weight
            self._donations[thread.tid] = amount
            self.holder.set_weight(self.holder.weight + amount)

    def release(self, thread: "SimThread") -> Optional["SimThread"]:
        """Release by ``thread``; returns the next holder (now granted).

        Withdraws every live donation from the old holder; the new holder
        then receives fresh donations from the waiters still queued behind
        it.
        """
        if self.holder is not thread:
            raise SchedulingError(
                "thread %r released mutex %r held by %r"
                % (thread, self.name, self.holder))
        if self._donations:
            returned = sum(self._donations.values())
            thread.set_weight(max(1, thread.weight - returned))
            self._donations.clear()
        if not self.waiters:
            self.holder = None
            return None
        new_holder = self.waiters.popleft()
        self.holder = new_holder
        if self.donate_weight:
            for waiter in self.waiters:
                self._donations[waiter.tid] = waiter.weight
            boost = sum(self._donations.values())
            if boost:
                new_holder.set_weight(new_holder.weight + boost)
        return new_holder

    def drop_waiter(self, thread: "SimThread") -> None:
        """Remove a waiter that will never be granted (exit/teardown)."""
        if thread in self.waiters:
            self.waiters.remove(thread)
            amount = self._donations.pop(thread.tid, 0)
            if amount and self.holder is not None:
                self.holder.set_weight(max(1, self.holder.weight - amount))

    def __repr__(self) -> str:
        return "SimMutex(%r, holder=%s, waiters=%d)" % (
            self.name, self.holder.name if self.holder else None,
            len(self.waiters))
