"""Counting semaphores and condition-style wait queues.

Together with :mod:`repro.sync.mutex` these complete the synchronization
substrate: workloads block with ``Down(semaphore)`` / ``WaitOn(queue)``
segments and wake peers with ``Up(semaphore)`` / ``Notify(queue)``.
Bounded producer/consumer pipelines (a decoder feeding a renderer, the
classic multimedia structure the paper's applications imply) compose from
two semaphores and a mutex with no further machine support — see
``examples/decode_pipeline.py``.

All wakeups are FIFO and granted at release time (no thundering herd: an
``Up`` hands the slot directly to the head waiter).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class SimSemaphore:
    """A counting semaphore with FIFO grant order."""

    def __init__(self, name: str = "sem", initial: int = 0) -> None:
        if initial < 0:
            raise SchedulingError("semaphore count must be non-negative")
        self.name = name
        self.count = initial
        self.waiters: Deque["SimThread"] = deque()

    def try_down(self, thread: "SimThread") -> bool:
        """Consume a unit if available; False means the caller must wait."""
        if self.count > 0:
            self.count -= 1
            return True
        return False

    def enqueue_waiter(self, thread: "SimThread") -> None:
        """Register a blocked Down() caller (machine-invoked)."""
        self.waiters.append(thread)

    def up(self) -> Optional["SimThread"]:
        """Release one unit; returns the waiter it was granted to, if any."""
        if self.waiters:
            # hand the unit straight to the head waiter (count stays 0)
            return self.waiters.popleft()
        self.count += 1
        return None

    def drop_waiter(self, thread: "SimThread") -> None:
        """Remove a waiter that will never be granted."""
        if thread in self.waiters:
            self.waiters.remove(thread)

    def __repr__(self) -> str:
        return "SimSemaphore(%r, count=%d, waiters=%d)" % (
            self.name, self.count, len(self.waiters))


class WaitQueue:
    """A bare FIFO wait queue (condition-variable style, no predicate)."""

    def __init__(self, name: str = "wq") -> None:
        self.name = name
        self.waiters: Deque["SimThread"] = deque()

    def enqueue_waiter(self, thread: "SimThread") -> None:
        """Register a blocked WaitOn() caller (machine-invoked)."""
        self.waiters.append(thread)

    def notify(self, count: int = 1) -> List["SimThread"]:
        """Dequeue up to ``count`` waiters (they are woken by the machine)."""
        woken = []
        for __ in range(count):
            if not self.waiters:
                break
            woken.append(self.waiters.popleft())
        return woken

    def notify_all(self) -> List["SimThread"]:
        """Dequeue every waiter."""
        return self.notify(len(self.waiters))

    def __repr__(self) -> str:
        return "WaitQueue(%r, waiters=%d)" % (self.name, len(self.waiters))


class Down:
    """Workload segment: P(semaphore) — blocks when the count is zero."""

    __slots__ = ("semaphore",)

    def __init__(self, semaphore: SimSemaphore) -> None:
        self.semaphore = semaphore

    def __repr__(self) -> str:
        return "Down(%s)" % self.semaphore.name


class Up:
    """Workload segment: V(semaphore) — never blocks."""

    __slots__ = ("semaphore",)

    def __init__(self, semaphore: SimSemaphore) -> None:
        self.semaphore = semaphore

    def __repr__(self) -> str:
        return "Up(%s)" % self.semaphore.name


class WaitOn:
    """Workload segment: block on a wait queue until notified."""

    __slots__ = ("queue",)

    def __init__(self, queue: WaitQueue) -> None:
        self.queue = queue

    def __repr__(self) -> str:
        return "WaitOn(%s)" % self.queue.name


class Notify:
    """Workload segment: wake up to ``count`` waiters of a queue."""

    __slots__ = ("queue", "count")

    def __init__(self, queue: WaitQueue, count: int = 1) -> None:
        if count < 1:
            raise SchedulingError("Notify count must be at least 1")
        self.queue = queue
        self.count = count

    def __repr__(self) -> str:
        return "Notify(%s, %d)" % (self.queue.name, self.count)
