"""Thread synchronization with priority-inversion avoidance (paper §4).

The paper: "when the leaf scheduler is SFQ, priority inversion can be
avoided by transferring the weight of the blocked thread to the thread
that is blocking it."  This package provides the simulated mutex
(:class:`~repro.sync.mutex.SimMutex`) plus the Acquire/Release workload
segments, and the weight-donation policy implemented by the SFQ leaf.
"""

from repro.sync.inheritance import PriorityInheritanceMutex
from repro.sync.mutex import Acquire, Release, SimMutex
from repro.sync.semaphore import (
    Down,
    Notify,
    SimSemaphore,
    Up,
    WaitOn,
    WaitQueue,
)

__all__ = [
    "SimMutex", "Acquire", "Release", "PriorityInheritanceMutex",
    "SimSemaphore", "Down", "Up",
    "WaitQueue", "WaitOn", "Notify",
]
