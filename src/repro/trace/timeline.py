"""Execution-order reconstruction.

Turns per-thread slice records back into a machine-wide timeline — the
view Figure 3 draws for the SFQ worked example, and the input to the text
Gantt chart in :mod:`repro.viz`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Tuple

from repro.trace.recorder import Recorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


def merge_timeline(recorder: Recorder,
                   threads: Iterable["SimThread"]
                   ) -> List[Tuple[int, int, "SimThread"]]:
    """All execution slices of ``threads``, merged and time-ordered.

    Returns ``[(t0, t1, thread), ...]`` sorted by start time.  Adjacent
    slices of the same thread (split by pauses or quantum boundaries with
    no intervening run of another thread) are coalesced.
    """
    slices: List[Tuple[int, int, "SimThread"]] = []
    for thread in threads:
        trace = recorder.trace_of(thread)
        for t0, t1, __ in trace.slices:
            slices.append((t0, t1, thread))
    slices.sort(key=lambda item: (item[0], item[1]))
    merged: List[Tuple[int, int, "SimThread"]] = []
    for t0, t1, thread in slices:
        if merged and merged[-1][2] is thread and merged[-1][1] >= t0:
            merged[-1] = (merged[-1][0], max(merged[-1][1], t1), thread)
        else:
            merged.append((t0, t1, thread))
    return merged


def execution_order(recorder: Recorder,
                    threads: Iterable["SimThread"]) -> List[str]:
    """Names of threads in the order they received the CPU (coalesced)."""
    return [thread.name for __, __, thread in merge_timeline(recorder, threads)]
